//! The latent domain ontology: the semantic space schemata are drawn from.
//!
//! Concepts ("Person", "Vehicle", "MaintenanceEvent", …) carry attributes
//! ("person id", "begin date", …). A generated schema *realizes* a subset of
//! concepts and attributes; two schemata overlap exactly where they realize
//! the same atoms. The base vocabulary is military/enterprise flavoured to
//! mirror the paper's domain (persons, vehicles, military units, events).

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use sm_schema::DataType;

/// Identifies one semantic atom of the ontology: a concept or one of its
/// attributes. Two schema elements correspond iff they realize the same atom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SemanticId {
    /// The concept itself (realized as a table / complex type).
    Concept(u32),
    /// Attribute `attr` of concept `concept`.
    Attribute {
        /// Concept index.
        concept: u32,
        /// Attribute index within the concept.
        attr: u32,
    },
}

/// One attribute of a concept.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttributeSpec {
    /// Canonical name tokens, lowercase (e.g. `["begin", "date"]`).
    pub tokens: Vec<String>,
    /// Value type.
    pub datatype: DataType,
    /// Canonical documentation sentence.
    pub doc: String,
}

/// One concept of the ontology.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConceptSpec {
    /// Canonical name tokens, lowercase (e.g. `["maintenance", "event"]`).
    pub tokens: Vec<String>,
    /// The concept's attributes.
    pub attributes: Vec<AttributeSpec>,
    /// Canonical documentation sentence.
    pub doc: String,
}

impl ConceptSpec {
    /// Number of elements a full realization produces (1 + attributes).
    pub fn size(&self) -> usize {
        1 + self.attributes.len()
    }
}

/// A generated domain ontology.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ontology {
    /// All concepts.
    pub concepts: Vec<ConceptSpec>,
}

/// Base nouns for concept construction (military/enterprise flavour, after
/// the paper's "persons, vehicles, and military units" and the emergency-
/// response / health examples of §2).
const BASE_CONCEPTS: &[&str] = &[
    "person",
    "vehicle",
    "unit",
    "event",
    "location",
    "weapon",
    "mission",
    "organization",
    "facility",
    "equipment",
    "supply",
    "order",
    "report",
    "track",
    "sensor",
    "aircraft",
    "vessel",
    "convoy",
    "casualty",
    "patient",
    "incident",
    "shipment",
    "contract",
    "asset",
    "route",
    "position",
    "message",
    "observation",
    "target",
    "exercise",
    "deployment",
    "inventory",
    "munition",
    "personnel",
    "agency",
    "operation",
];

/// Modifier nouns used to derive compound concepts (`vehicle maintenance`,
/// `unit readiness`, …).
const MODIFIERS: &[&str] = &[
    "maintenance",
    "status",
    "history",
    "assignment",
    "readiness",
    "schedule",
    "summary",
    "detail",
    "contact",
    "capability",
    "category",
    "authorization",
    "allocation",
    "qualification",
    "movement",
    "support",
];

/// Attribute nouns combined into attribute names.
const ATTR_NOUNS: &[&str] = &[
    "identifier",
    "name",
    "type",
    "status",
    "code",
    "category",
    "description",
    "priority",
    "quantity",
    "count",
    "level",
    "grade",
    "rank",
    "weight",
    "height",
    "width",
    "length",
    "speed",
    "heading",
    "latitude",
    "longitude",
    "altitude",
    "address",
    "city",
    "country",
    "region",
    "phone",
    "frequency",
    "source",
    "remarks",
    "version",
    "comment",
];

/// Attribute qualifiers (prefix position).
const ATTR_QUALIFIERS: &[&str] = &[
    "begin",
    "end",
    "first",
    "last",
    "primary",
    "secondary",
    "current",
    "previous",
    "planned",
    "actual",
    "estimated",
    "reported",
    "effective",
    "expiration",
    "creation",
    "update",
    "review",
];

/// Date-ish attribute nouns (get temporal types).
const DATE_NOUNS: &[&str] = &["date", "time", "datetime"];

impl Ontology {
    /// Generate an ontology with `concept_count` concepts whose attribute
    /// counts are drawn from `[min_attrs, max_attrs]`, deterministically from
    /// `seed`.
    ///
    /// Concepts are unique: base nouns first, then base×modifier compounds,
    /// then base×modifier×modifier (enough for thousands of concepts).
    pub fn generate(seed: u64, concept_count: usize, min_attrs: usize, max_attrs: usize) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let min_attrs = min_attrs.max(1);
        let max_attrs = max_attrs.max(min_attrs);
        let names = concept_name_pool(concept_count, &mut rng);
        let concepts = names
            .into_iter()
            .enumerate()
            .map(|(ci, tokens)| {
                let n_attrs = rng.gen_range(min_attrs..=max_attrs);
                let attributes = make_attributes(&tokens, n_attrs, &mut rng);
                let doc = concept_doc(&tokens, ci);
                ConceptSpec {
                    tokens,
                    attributes,
                    doc,
                }
            })
            .collect();
        Ontology { concepts }
    }

    /// Number of concepts.
    pub fn len(&self) -> usize {
        self.concepts.len()
    }

    /// True when the ontology has no concepts.
    pub fn is_empty(&self) -> bool {
        self.concepts.is_empty()
    }

    /// Total number of semantic atoms (concepts + attributes).
    pub fn atom_count(&self) -> usize {
        self.concepts.iter().map(ConceptSpec::size).sum()
    }

    /// Look up the spec data behind a [`SemanticId`].
    pub fn tokens_of(&self, id: SemanticId) -> &[String] {
        match id {
            SemanticId::Concept(c) => &self.concepts[c as usize].tokens,
            SemanticId::Attribute { concept, attr } => {
                &self.concepts[concept as usize].attributes[attr as usize].tokens
            }
        }
    }

    /// Documentation sentence of an atom.
    pub fn doc_of(&self, id: SemanticId) -> &str {
        match id {
            SemanticId::Concept(c) => &self.concepts[c as usize].doc,
            SemanticId::Attribute { concept, attr } => {
                &self.concepts[concept as usize].attributes[attr as usize].doc
            }
        }
    }
}

/// Build `count` distinct concept-name token sequences.
fn concept_name_pool(count: usize, rng: &mut SmallRng) -> Vec<Vec<String>> {
    let mut names: Vec<Vec<String>> = Vec::with_capacity(count);
    // Tier 1: base nouns, shuffled for variety across seeds.
    let mut bases: Vec<&str> = BASE_CONCEPTS.to_vec();
    bases.shuffle(rng);
    for b in &bases {
        if names.len() >= count {
            return names;
        }
        names.push(vec![b.to_string()]);
    }
    // Tier 2: base × modifier.
    let mut pairs: Vec<(usize, usize)> = (0..bases.len())
        .flat_map(|i| (0..MODIFIERS.len()).map(move |j| (i, j)))
        .collect();
    pairs.shuffle(rng);
    for (i, j) in pairs {
        if names.len() >= count {
            return names;
        }
        names.push(vec![bases[i].to_string(), MODIFIERS[j].to_string()]);
    }
    // Tier 3: base × modifier × modifier (distinct modifiers).
    'tier3: for base in &bases {
        for (j, m1) in MODIFIERS.iter().enumerate() {
            for (k, m2) in MODIFIERS.iter().enumerate() {
                if j == k {
                    continue;
                }
                if names.len() >= count {
                    break 'tier3;
                }
                names.push(vec![base.to_string(), m1.to_string(), m2.to_string()]);
            }
        }
    }
    // Tier 4: base × three distinct modifiers — registry-scale populations
    // (10⁴+ schemata) need more unique concepts than tier 3's ~9k.
    'tier4: for base in &bases {
        for (j, m1) in MODIFIERS.iter().enumerate() {
            for (k, m2) in MODIFIERS.iter().enumerate() {
                if j == k {
                    continue;
                }
                for (l, m3) in MODIFIERS.iter().enumerate() {
                    if l == j || l == k {
                        continue;
                    }
                    if names.len() >= count {
                        break 'tier4;
                    }
                    names.push(vec![
                        base.to_string(),
                        m1.to_string(),
                        m2.to_string(),
                        m3.to_string(),
                    ]);
                }
            }
        }
    }
    names.truncate(count);
    names
}

/// Build `n` distinct attributes for a concept.
fn make_attributes(concept: &[String], n: usize, rng: &mut SmallRng) -> Vec<AttributeSpec> {
    let mut out: Vec<AttributeSpec> = Vec::with_capacity(n);
    let mut used: std::collections::HashSet<Vec<String>> = std::collections::HashSet::new();

    // Every concept gets an identifier and a name first — like real tables.
    let staples: [(&[&str], DataType); 2] = [
        (&["identifier"], DataType::Integer),
        (&["name"], DataType::Text { max_len: Some(80) }),
    ];
    for (toks, dt) in staples {
        if out.len() >= n {
            break;
        }
        let tokens: Vec<String> = toks.iter().map(|s| s.to_string()).collect();
        used.insert(tokens.clone());
        out.push(AttributeSpec {
            doc: attr_doc(concept, &tokens),
            tokens,
            datatype: dt,
        });
    }

    let mut attempts = 0;
    while out.len() < n && attempts < n * 30 {
        attempts += 1;
        let tokens: Vec<String> = if rng.gen_bool(0.25) {
            // Temporal attribute: qualifier + date noun.
            let q = ATTR_QUALIFIERS[rng.gen_range(0..ATTR_QUALIFIERS.len())];
            let d = DATE_NOUNS[rng.gen_range(0..DATE_NOUNS.len())];
            vec![q.to_string(), d.to_string()]
        } else if rng.gen_bool(0.4) {
            // Qualified noun: qualifier + noun.
            let q = ATTR_QUALIFIERS[rng.gen_range(0..ATTR_QUALIFIERS.len())];
            let a = ATTR_NOUNS[rng.gen_range(0..ATTR_NOUNS.len())];
            vec![q.to_string(), a.to_string()]
        } else {
            // Plain noun.
            let a = ATTR_NOUNS[rng.gen_range(0..ATTR_NOUNS.len())];
            vec![a.to_string()]
        };
        if !used.insert(tokens.clone()) {
            continue;
        }
        let datatype = attr_type(&tokens, rng);
        out.push(AttributeSpec {
            doc: attr_doc(concept, &tokens),
            tokens,
            datatype,
        });
    }
    out
}

/// Pick a plausible data type from the attribute's trailing noun.
fn attr_type(tokens: &[String], rng: &mut SmallRng) -> DataType {
    match tokens.last().map(String::as_str) {
        Some("date") => DataType::Date,
        Some("time") => DataType::Time,
        Some("datetime") => DataType::DateTime,
        Some("identifier") | Some("count") | Some("quantity") => DataType::Integer,
        Some("latitude") | Some("longitude") | Some("altitude") | Some("speed")
        | Some("weight") | Some("height") | Some("width") | Some("length") | Some("heading")
        | Some("frequency") => DataType::Float,
        Some("code") | Some("type") | Some("category") | Some("status") | Some("grade")
        | Some("rank") | Some("priority") | Some("level") => DataType::Enum {
            variants: rng.gen_range(3..40),
        },
        _ => DataType::Text {
            max_len: Some(rng.gen_range(20..255)),
        },
    }
}

fn concept_doc(tokens: &[String], idx: usize) -> String {
    format!(
        "Information describing a {} tracked by the enterprise (entity class {}).",
        tokens.join(" "),
        idx
    )
}

fn attr_doc(concept: &[String], tokens: &[String]) -> String {
    format!("The {} of the {}.", tokens.join(" "), concept.join(" "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Ontology::generate(7, 50, 5, 12);
        let b = Ontology::generate(7, 50, 5, 12);
        assert_eq!(a.len(), b.len());
        for (ca, cb) in a.concepts.iter().zip(&b.concepts) {
            assert_eq!(ca.tokens, cb.tokens);
            assert_eq!(ca.attributes.len(), cb.attributes.len());
        }
        let c = Ontology::generate(8, 50, 5, 12);
        let same = a
            .concepts
            .iter()
            .zip(&c.concepts)
            .all(|(x, y)| x.tokens == y.tokens && x.attributes.len() == y.attributes.len());
        assert!(!same, "different seeds should differ somewhere");
    }

    #[test]
    fn concept_names_are_unique() {
        let o = Ontology::generate(1, 400, 3, 6);
        assert_eq!(o.len(), 400);
        let set: std::collections::HashSet<&Vec<String>> =
            o.concepts.iter().map(|c| &c.tokens).collect();
        assert_eq!(set.len(), 400);
    }

    #[test]
    fn attributes_unique_within_concept_and_bounded() {
        let o = Ontology::generate(3, 60, 4, 9);
        for c in &o.concepts {
            assert!(
                c.attributes.len() >= 4 && c.attributes.len() <= 9,
                "{}",
                c.attributes.len()
            );
            let set: std::collections::HashSet<&Vec<String>> =
                c.attributes.iter().map(|a| &a.tokens).collect();
            assert_eq!(set.len(), c.attributes.len());
        }
    }

    #[test]
    fn atoms_counted() {
        let o = Ontology::generate(5, 10, 3, 3);
        assert_eq!(o.atom_count(), 10 * 4);
    }

    #[test]
    fn lookups_by_semantic_id() {
        let o = Ontology::generate(5, 10, 3, 5);
        let c0 = SemanticId::Concept(0);
        assert!(!o.tokens_of(c0).is_empty());
        assert!(o.doc_of(c0).contains("entity class 0"));
        let a00 = SemanticId::Attribute {
            concept: 0,
            attr: 0,
        };
        assert_eq!(o.tokens_of(a00), ["identifier"]);
        assert!(o.doc_of(a00).starts_with("The identifier of the "));
    }

    #[test]
    fn staple_attributes_present() {
        let o = Ontology::generate(11, 30, 5, 10);
        for c in &o.concepts {
            assert_eq!(c.attributes[0].tokens, ["identifier"]);
            assert_eq!(c.attributes[1].tokens, ["name"]);
            assert_eq!(c.attributes[0].datatype, DataType::Integer);
        }
    }

    #[test]
    fn large_ontology_supports_paper_scale() {
        // 1378 elements at ~10 attrs/concept needs ~125 concepts; make sure
        // we can go well beyond.
        let o = Ontology::generate(2, 600, 8, 14);
        assert_eq!(o.len(), 600);
        assert!(o.atom_count() > 1378 * 2);
    }

    #[test]
    fn temporal_attributes_get_temporal_types() {
        let o = Ontology::generate(13, 100, 6, 12);
        let mut saw_temporal = false;
        for c in &o.concepts {
            for a in &c.attributes {
                if matches!(
                    a.tokens.last().map(String::as_str),
                    Some("date") | Some("time") | Some("datetime")
                ) {
                    assert!(
                        a.datatype.is_temporal(),
                        "{:?} has {:?}",
                        a.tokens,
                        a.datatype
                    );
                    saw_temporal = true;
                }
            }
        }
        assert!(saw_temporal);
    }
}

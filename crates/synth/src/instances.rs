//! Synthetic instance-value generation.
//!
//! Generates sampled column/element values for a generated schema so the
//! conventional *instance-based* matching regime can be compared against the
//! paper's documentation-based regime (experiment F9). Elements realizing
//! the same semantic atom draw from the same underlying value distribution,
//! so instance evidence is genuinely informative — exactly the property the
//! paper says is often unavailable ("data … may not yet exist, or may be
//! sensitive").

use crate::ontology::SemanticId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sm_schema::instances::InstanceData;
use sm_schema::{DataType, ElementId, Schema};
use std::collections::HashMap;

/// Configuration of instance sampling.
#[derive(Debug, Clone)]
pub struct InstanceConfig {
    /// Seed; value distributions are keyed by semantic atom, not by schema,
    /// so both sides of a pair should use the *same* seed.
    pub seed: u64,
    /// Sampled rows per element.
    pub rows_per_element: usize,
    /// Fraction of elements that have any data at all (systems in
    /// development have empty tables).
    pub coverage: f64,
}

impl Default for InstanceConfig {
    fn default() -> Self {
        InstanceConfig {
            seed: 0,
            rows_per_element: 24,
            coverage: 0.9,
        }
    }
}

/// Generate instance samples for `schema`, given its element → semantic-atom
/// map (from the generator's ground truth).
pub fn generate_instances(
    schema: &Schema,
    semantics: &HashMap<ElementId, SemanticId>,
    config: &InstanceConfig,
) -> InstanceData {
    let mut data = InstanceData::empty();
    // Per-schema RNG decides coverage; per-atom RNGs decide values so the
    // same atom yields overlapping value sets on both sides.
    let mut coverage_rng = SmallRng::seed_from_u64(config.seed ^ schema.id.0 as u64 ^ 0xC0FF);
    for e in schema.elements() {
        if e.kind.is_container_like() {
            continue;
        }
        if !coverage_rng.gen_bool(config.coverage.clamp(0.0, 1.0)) {
            continue;
        }
        let atom_key = match semantics.get(&e.id) {
            Some(SemanticId::Attribute { concept, attr }) => {
                (u64::from(*concept) << 20) | u64::from(*attr)
            }
            Some(SemanticId::Concept(c)) => u64::from(*c) << 40,
            // Elements outside the atom space (fillers) get per-element
            // streams: they will not overlap with anything.
            None => 0xFFFF_0000 | u64::from(e.id.0),
        };
        let mut value_rng = SmallRng::seed_from_u64(config.seed ^ atom_key.wrapping_mul(0x9E37));
        let values: Vec<String> = (0..config.rows_per_element)
            .map(|_| render_value(e.datatype, atom_key, &mut value_rng))
            .collect();
        data.set(e.id, values);
    }
    data
}

/// Draw one value from the atom's distribution for the given type. The atom
/// key biases the value range so different atoms of the same type still have
/// distinguishable (and overlapping-within-atom) distributions.
fn render_value(datatype: DataType, atom_key: u64, rng: &mut SmallRng) -> String {
    let base = (atom_key % 9000) as i64;
    match datatype {
        DataType::Integer => (base * 10 + rng.gen_range(0..500)).to_string(),
        DataType::Float => format!("{:.2}", base as f64 / 7.0 + rng.gen_range(0.0..90.0)),
        DataType::Decimal { .. } => {
            format!("{:.2}", base as f64 + rng.gen_range(0.0..1000.0))
        }
        DataType::Date => format!(
            "20{:02}-{:02}-{:02}",
            10 + (base % 15),
            rng.gen_range(1..=12),
            rng.gen_range(1..=28)
        ),
        DataType::DateTime => format!(
            "20{:02}-{:02}-{:02}T{:02}:{:02}:00Z",
            10 + (base % 15),
            rng.gen_range(1..=12),
            rng.gen_range(1..=28),
            rng.gen_range(0..24),
            rng.gen_range(0..60)
        ),
        DataType::Time => format!("{:02}:{:02}:00", rng.gen_range(0..24), rng.gen_range(0..60)),
        DataType::Bool => if rng.gen_bool(0.5) { "true" } else { "false" }.to_string(),
        DataType::Enum { variants } => {
            let v = variants.max(2);
            format!("CODE_{}_{}", base % 97, rng.gen_range(0..v))
        }
        DataType::Binary => format!("{:08x}", rng.gen::<u32>()),
        DataType::Text { .. } | DataType::Unknown | DataType::None => {
            // Word-like values drawn from an atom-specific mini-vocabulary.
            let vocab_size = 12u64;
            let pick = rng.gen_range(0..vocab_size);
            format!("v{}w{}", atom_key % 9973, pick)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{GeneratorConfig, SchemaPair};
    use sm_schema::InstanceProfile;

    fn pair() -> SchemaPair {
        SchemaPair::generate(&GeneratorConfig::paper_case_study(9, 0.08))
    }

    #[test]
    fn containers_get_no_values_and_coverage_respected() {
        let p = pair();
        let cfg = InstanceConfig {
            coverage: 1.0,
            ..Default::default()
        };
        let data = generate_instances(&p.source, &p.truth.source_semantics, &cfg);
        for e in p.source.elements() {
            if e.kind.is_container_like() {
                assert!(data.get(e.id).is_none(), "{} is a container", e.name);
            } else {
                assert!(data.get(e.id).is_some());
            }
        }
        let none = generate_instances(
            &p.source,
            &p.truth.source_semantics,
            &InstanceConfig {
                coverage: 0.0,
                ..Default::default()
            },
        );
        assert!(none.is_empty());
    }

    #[test]
    fn shared_atoms_share_value_distributions() {
        let p = pair();
        let cfg = InstanceConfig {
            seed: 5,
            rows_per_element: 30,
            coverage: 1.0,
        };
        let src = generate_instances(&p.source, &p.truth.source_semantics, &cfg);
        let tgt = generate_instances(&p.target, &p.truth.target_semantics, &cfg);
        // For true leaf pairs, the profiles should be more similar than for
        // random cross pairs.
        let mut same_sim = Vec::new();
        for &(s, t) in p.truth.pairs() {
            let (Some(vs), Some(vt)) = (src.get(s), tgt.get(t)) else {
                continue;
            };
            let ps = InstanceProfile::from_values(vs).unwrap();
            let pt = InstanceProfile::from_values(vt).unwrap();
            same_sim.push(ps.similarity(&pt));
        }
        assert!(!same_sim.is_empty());
        let mean_same: f64 = same_sim.iter().sum::<f64>() / same_sim.len() as f64;
        assert!(
            mean_same > 0.5,
            "true pairs should share values: {mean_same}"
        );
    }

    #[test]
    fn values_match_declared_types() {
        let p = pair();
        let cfg = InstanceConfig {
            coverage: 1.0,
            ..Default::default()
        };
        let data = generate_instances(&p.source, &p.truth.source_semantics, &cfg);
        for e in p.source.elements() {
            let Some(values) = data.get(e.id) else {
                continue;
            };
            assert_eq!(values.len(), cfg.rows_per_element);
            match e.datatype {
                DataType::Integer => {
                    assert!(
                        values.iter().all(|v| v.parse::<i64>().is_ok()),
                        "{values:?}"
                    )
                }
                DataType::Date => {
                    assert!(values.iter().all(|v| v.len() == 10 && v.contains('-')))
                }
                DataType::Bool => assert!(values.iter().all(|v| v == "true" || v == "false")),
                _ => {}
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let p = pair();
        let cfg = InstanceConfig::default();
        let a = generate_instances(&p.source, &p.truth.source_semantics, &cfg);
        let b = generate_instances(&p.source, &p.truth.source_semantics, &cfg);
        assert_eq!(a.len(), b.len());
        for e in p.source.ids() {
            assert_eq!(a.get(e), b.get(e));
        }
    }

    #[test]
    fn instance_voter_separates_true_from_false_pairs() {
        use harmony_core::context::MatchContext;
        use harmony_core::voter::{InstanceVoter, MatchVoter};
        let p = pair();
        let cfg = InstanceConfig {
            seed: 5,
            rows_per_element: 30,
            coverage: 1.0,
        };
        let src = generate_instances(&p.source, &p.truth.source_semantics, &cfg);
        let tgt = generate_instances(&p.target, &p.truth.target_semantics, &cfg);
        let normalizer = sm_text::normalize::Normalizer::new();
        let ctx = MatchContext::build_with_instances(&p.source, &p.target, &normalizer, &src, &tgt);
        let mut true_scores = Vec::new();
        for &(s, t) in p.truth.pairs().iter().take(30) {
            let v = InstanceVoter.vote(&ctx, s, t);
            if !v.is_neutral() {
                true_scores.push(v.value());
            }
        }
        assert!(!true_scores.is_empty());
        let mean_true: f64 = true_scores.iter().sum::<f64>() / true_scores.len() as f64;
        assert!(
            mean_true > 0.1,
            "true pairs should vote positive: {mean_true}"
        );
    }
}

//! Synthetic metadata-repository populations.
//!
//! The paper's §2 scenarios (schema search, clustering, COI proposal) run
//! against "an enterprise schema registry … which now contains thousands of
//! schemata". This module generates such a population: `k` latent domains,
//! each with its own ontology, and `n` schemata per domain that realize
//! overlapping subsets of their domain's concepts. Schemata from the same
//! domain overlap heavily; schemata from different domains share almost
//! nothing — the structure clustering should recover.

use crate::docgen::DocStyle;
use crate::naming::{Case, NameRenderer, NamingStyle};
use crate::ontology::Ontology;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sm_schema::{DataType, Documentation, ElementKind, Schema, SchemaFormat, SchemaId};

/// Configuration of a synthetic repository.
#[derive(Debug, Clone)]
pub struct RepositoryConfig {
    /// Master seed.
    pub seed: u64,
    /// Number of latent domains (ground-truth clusters).
    pub domains: usize,
    /// Schemata generated per domain.
    pub schemas_per_domain: usize,
    /// Concepts in each domain ontology.
    pub concepts_per_domain: usize,
    /// Fraction of the domain's concepts each schema realizes.
    pub concept_coverage: f64,
    /// Attribute range per concept.
    pub attrs_per_concept: (usize, usize),
    /// Scope attribute names to their concept and drop generated prose.
    ///
    /// The default corpus is deliberately adversarial to vocabulary pruning:
    /// every concept carries staple attributes (`identifier`, `name`) plus
    /// draws from a shared generic pool, and sparse documentation injects
    /// common English content words — so even cross-domain schema pairs
    /// select exact-name correspondences. With `scoped_attributes` each
    /// attribute name is prefixed by its concept's head token (for example
    /// `identifier` → `vehicle identifier`) and documentation is suppressed,
    /// which keeps heavy within-domain overlap while pushing cross-domain
    /// pairs below any sensible acceptance threshold. This is the clustered
    /// regime the N-way plan-stage pruning benchmarks rely on.
    pub scoped_attributes: bool,
}

impl Default for RepositoryConfig {
    fn default() -> Self {
        RepositoryConfig {
            seed: 0,
            domains: 4,
            schemas_per_domain: 8,
            concepts_per_domain: 20,
            concept_coverage: 0.5,
            attrs_per_concept: (4, 9),
            scoped_attributes: false,
        }
    }
}

/// A generated repository population with cluster ground truth.
pub struct SyntheticRepository {
    /// All schemata, in generation order.
    pub schemas: Vec<Schema>,
    /// Ground-truth domain index of each schema (aligned with `schemas`).
    pub domain_of: Vec<usize>,
    /// The per-domain ontologies.
    pub ontologies: Vec<Ontology>,
}

impl SyntheticRepository {
    /// Generate a repository population.
    ///
    /// Domains generate independently, each from its own RNG seeded by
    /// `(seed, domain)` — so the population is identical at any executor
    /// width, and registry-scale runs (10⁴+ schemata for the incremental
    /// index benches) fan out across the global executor instead of
    /// threading one RNG through every schema.
    pub fn generate(config: &RepositoryConfig) -> Self {
        let styles = [
            NamingStyle::relational(),
            NamingStyle::legacy(),
            NamingStyle::xml(),
            NamingStyle::clean(Case::Camel),
        ];
        let (amin, amax) = config.attrs_per_concept;

        // One master ontology sliced into disjoint per-domain concept sets:
        // domains must not collide on concept names (their *attribute*
        // vocabulary still overlaps through the shared generic pool, which
        // is the realistic part — every system has identifiers and names).
        let master = Ontology::generate(
            config.seed.wrapping_add(0x1000),
            config.domains * config.concepts_per_domain,
            amin,
            amax,
        );
        let domains: Vec<usize> = (0..config.domains).collect();
        let exec = harmony_core::exec::Executor::global();
        let per_domain: Vec<(Vec<Schema>, Ontology)> =
            exec.run_map(exec.threads(), &domains, |_, &d| {
                let mut rng = SmallRng::seed_from_u64(
                    (config.seed ^ 0x5EED_5EED_5EED_5EED)
                        .wrapping_add((d as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                );
                let lo = d * config.concepts_per_domain;
                let hi = (lo + config.concepts_per_domain).min(master.len());
                let ontology = Ontology {
                    concepts: master.concepts[lo..hi].to_vec(),
                };
                let doc_style = if config.scoped_attributes {
                    DocStyle::none()
                } else {
                    DocStyle::sparse()
                };
                let schemas: Vec<Schema> = (0..config.schemas_per_domain)
                    .map(|s| {
                        let style = styles[(d + s) % styles.len()].clone();
                        let renderer = NameRenderer::new(style);
                        realize_subset(
                            &ontology,
                            SchemaId((d * config.schemas_per_domain + s) as u32),
                            format!("D{d}_S{s}"),
                            config.concept_coverage,
                            config.scoped_attributes,
                            &renderer,
                            &doc_style,
                            &mut rng,
                        )
                    })
                    .collect();
                (schemas, ontology)
            });

        let mut schemas = Vec::with_capacity(config.domains * config.schemas_per_domain);
        let mut domain_of = Vec::with_capacity(schemas.capacity());
        let mut ontologies = Vec::with_capacity(config.domains);
        for (d, (domain_schemas, ontology)) in per_domain.into_iter().enumerate() {
            domain_of.extend(std::iter::repeat_n(d, domain_schemas.len()));
            schemas.extend(domain_schemas);
            ontologies.push(ontology);
        }
        SyntheticRepository {
            schemas,
            domain_of,
            ontologies,
        }
    }

    /// Total number of schemata.
    pub fn len(&self) -> usize {
        self.schemas.len()
    }

    /// True when the repository holds no schemata.
    pub fn is_empty(&self) -> bool {
        self.schemas.is_empty()
    }
}

/// Realize a random `coverage` fraction of the ontology's concepts as a
/// generic schema.
#[allow(clippy::too_many_arguments)]
fn realize_subset(
    ontology: &Ontology,
    id: SchemaId,
    name: String,
    coverage: f64,
    scoped: bool,
    renderer: &NameRenderer,
    doc_style: &DocStyle,
    rng: &mut SmallRng,
) -> Schema {
    let mut schema = Schema::new(id, name, SchemaFormat::Generic);
    let n = ((ontology.len() as f64) * coverage.clamp(0.0, 1.0))
        .round()
        .max(1.0) as usize;
    let mut idxs: Vec<usize> = (0..ontology.len()).collect();
    idxs.shuffle(rng);
    idxs.truncate(n);
    idxs.sort_unstable();
    for ci in idxs {
        let spec = &ontology.concepts[ci];
        let anchor = schema.add_root(
            renderer.render(&spec.tokens, rng),
            ElementKind::Group,
            DataType::None,
        );
        if let Some(doc) = crate::docgen::render_doc(&spec.doc, doc_style, rng) {
            schema
                .set_doc(anchor, Documentation::generated(doc))
                .expect("anchor exists");
        }
        // Realize a random prefix of attributes (at least one).
        let k = rng.gen_range(1..=spec.attributes.len());
        for attr in spec.attributes.iter().take(k) {
            let attr_name = if scoped {
                let mut tokens = Vec::with_capacity(attr.tokens.len() + 1);
                tokens.push(spec.tokens[0].clone());
                tokens.extend(attr.tokens.iter().cloned());
                renderer.render(&tokens, rng)
            } else {
                renderer.render(&attr.tokens, rng)
            };
            schema
                .add_child(anchor, attr_name, ElementKind::Column, attr.datatype)
                .expect("anchor exists");
        }
    }
    schema
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_counts() {
        let cfg = RepositoryConfig {
            domains: 3,
            schemas_per_domain: 4,
            ..Default::default()
        };
        let repo = SyntheticRepository::generate(&cfg);
        assert_eq!(repo.len(), 12);
        assert_eq!(repo.domain_of.len(), 12);
        assert_eq!(repo.ontologies.len(), 3);
        for s in &repo.schemas {
            assert!(!s.is_empty());
            s.validate().unwrap();
        }
    }

    #[test]
    fn domains_assigned_in_blocks() {
        let repo = SyntheticRepository::generate(&RepositoryConfig {
            domains: 2,
            schemas_per_domain: 3,
            ..Default::default()
        });
        assert_eq!(repo.domain_of, vec![0, 0, 0, 1, 1, 1]);
    }

    #[test]
    fn generation_deterministic() {
        let cfg = RepositoryConfig::default();
        let a = SyntheticRepository::generate(&cfg);
        let b = SyntheticRepository::generate(&cfg);
        for (x, y) in a.schemas.iter().zip(&b.schemas) {
            assert_eq!(x.len(), y.len());
            let nx: Vec<_> = x.preorder().map(|e| e.name.clone()).collect();
            let ny: Vec<_> = y.preorder().map(|e| e.name.clone()).collect();
            assert_eq!(nx, ny);
        }
    }

    #[test]
    fn same_domain_schemata_share_vocabulary() {
        let repo = SyntheticRepository::generate(&RepositoryConfig {
            domains: 2,
            schemas_per_domain: 2,
            concepts_per_domain: 15,
            concept_coverage: 0.7,
            ..Default::default()
        });
        // Token-level Jaccard between root-name sets, same vs cross domain.
        let tokens_of = |s: &Schema| -> std::collections::HashSet<String> {
            s.elements()
                .iter()
                .flat_map(|e| sm_text::tokenize_identifier(&e.name))
                .collect()
        };
        let t: Vec<_> = repo.schemas.iter().map(tokens_of).collect();
        let jac = |a: &std::collections::HashSet<String>, b: &std::collections::HashSet<String>| {
            let i = a.intersection(b).count() as f64;
            let u = (a.len() + b.len()) as f64 - i;
            if u == 0.0 {
                0.0
            } else {
                i / u
            }
        };
        let same = jac(&t[0], &t[1]);
        let cross = jac(&t[0], &t[2]);
        assert!(
            same > cross,
            "same-domain similarity {same} must exceed cross-domain {cross}"
        );
    }

    #[test]
    fn scoped_attributes_break_cross_domain_name_collisions() {
        let cfg = RepositoryConfig {
            seed: 7,
            domains: 3,
            schemas_per_domain: 2,
            concepts_per_domain: 10,
            scoped_attributes: true,
            ..Default::default()
        };
        let repo = SyntheticRepository::generate(&cfg);
        // No element carries generated prose in the scoped regime.
        for s in &repo.schemas {
            for e in s.elements() {
                assert!(e.doc.is_none(), "scoped corpora suppress documentation");
            }
        }
        // Normalized attribute token sequences never collide across domains:
        // the concept head token scopes every staple (`identifier`, `name`).
        let leaf_keys = |s: &Schema| -> std::collections::HashSet<Vec<String>> {
            s.elements()
                .iter()
                .filter(|e| e.kind == ElementKind::Column)
                .map(|e| sm_text::tokenize_identifier(&e.name))
                .collect()
        };
        let keys: Vec<_> = repo.schemas.iter().map(leaf_keys).collect();
        for i in 0..repo.len() {
            for j in (i + 1)..repo.len() {
                if repo.domain_of[i] != repo.domain_of[j] {
                    assert!(
                        keys[i].is_disjoint(&keys[j]),
                        "schemas {i} and {j} from different domains share an \
                         exact attribute name"
                    );
                }
            }
        }
        // Within a domain the scoped names still overlap heavily.
        assert!(!keys[0].is_disjoint(&keys[1]));
    }

    #[test]
    fn coverage_controls_schema_size() {
        let small = SyntheticRepository::generate(&RepositoryConfig {
            concept_coverage: 0.2,
            seed: 4,
            ..Default::default()
        });
        let large = SyntheticRepository::generate(&RepositoryConfig {
            concept_coverage: 0.9,
            seed: 4,
            ..Default::default()
        });
        let mean = |r: &SyntheticRepository| {
            r.schemas.iter().map(Schema::len).sum::<usize>() as f64 / r.len() as f64
        };
        assert!(mean(&large) > mean(&small) * 2.0);
    }
}

//! Planted ground truth and precision/recall evaluation.
//!
//! Because the workload generator plants the semantic atoms, every generated
//! schema pair knows its true correspondences exactly — enabling the
//! quantitative evaluation (precision / recall / F1 at a threshold) that the
//! paper's real engagement could not perform.

use harmony_core::correspondence::MatchSet;
use serde::{Deserialize, Serialize};
use sm_schema::ElementId;
use std::collections::{HashMap, HashSet};

use crate::ontology::SemanticId;

/// Ground truth of one generated schema pair.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GroundTruth {
    /// True correspondences (source element, target element).
    pairs: HashSet<(ElementId, ElementId)>,
    /// Semantic atom realized by each source element.
    pub source_semantics: HashMap<ElementId, SemanticId>,
    /// Semantic atom realized by each target element.
    pub target_semantics: HashMap<ElementId, SemanticId>,
}

/// Precision/recall evaluation result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrEval {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
    /// tp / (tp + fp); 1.0 when nothing was predicted.
    pub precision: f64,
    /// tp / (tp + fn); 1.0 when nothing was true.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

impl GroundTruth {
    /// Record a true correspondence.
    pub fn add_pair(&mut self, source: ElementId, target: ElementId) {
        self.pairs.insert((source, target));
    }

    /// All true pairs.
    pub fn pairs(&self) -> &HashSet<(ElementId, ElementId)> {
        &self.pairs
    }

    /// Number of true pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when no pairs are planted.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Is `(source, target)` a true correspondence?
    pub fn is_match(&self, source: ElementId, target: ElementId) -> bool {
        self.pairs.contains(&(source, target))
    }

    /// Distinct target elements participating in some true pair — the
    /// denominator of the paper's "34% of S_B matched".
    pub fn matched_targets(&self) -> HashSet<ElementId> {
        self.pairs.iter().map(|&(_, t)| t).collect()
    }

    /// Distinct source elements participating in some true pair.
    pub fn matched_sources(&self) -> HashSet<ElementId> {
        self.pairs.iter().map(|&(s, _)| s).collect()
    }

    /// Evaluate predicted `(source, target)` pairs.
    pub fn evaluate_pairs<'a, I>(&self, predicted: I) -> PrEval
    where
        I: IntoIterator<Item = &'a (ElementId, ElementId)>,
    {
        let predicted: HashSet<(ElementId, ElementId)> = predicted.into_iter().copied().collect();
        let tp = predicted.intersection(&self.pairs).count();
        let fp = predicted.len() - tp;
        let fn_ = self.pairs.len() - tp;
        PrEval::from_counts(tp, fp, fn_)
    }

    /// Evaluate a [`MatchSet`]'s *validated* correspondences.
    pub fn evaluate_validated(&self, matches: &MatchSet) -> PrEval {
        let predicted: Vec<(ElementId, ElementId)> =
            matches.validated().map(|c| (c.source, c.target)).collect();
        self.evaluate_pairs(predicted.iter())
    }

    /// Evaluate *all* correspondences of a set regardless of status (useful
    /// for raw selection-policy output).
    pub fn evaluate_all(&self, matches: &MatchSet) -> PrEval {
        let predicted: Vec<(ElementId, ElementId)> =
            matches.all().iter().map(|c| (c.source, c.target)).collect();
        self.evaluate_pairs(predicted.iter())
    }
}

impl PrEval {
    /// Build from raw counts.
    pub fn from_counts(tp: usize, fp: usize, fn_: usize) -> Self {
        let precision = if tp + fp == 0 {
            1.0
        } else {
            tp as f64 / (tp + fp) as f64
        };
        let recall = if tp + fn_ == 0 {
            1.0
        } else {
            tp as f64 / (tp + fn_) as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        PrEval {
            tp,
            fp,
            fn_,
            precision,
            recall,
            f1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_core::confidence::Confidence;
    use harmony_core::correspondence::{Correspondence, MatchAnnotation};

    fn truth() -> GroundTruth {
        let mut t = GroundTruth::default();
        t.add_pair(ElementId(0), ElementId(0));
        t.add_pair(ElementId(1), ElementId(1));
        t.add_pair(ElementId(2), ElementId(2));
        t
    }

    #[test]
    fn perfect_prediction() {
        let t = truth();
        let predicted = [
            (ElementId(0), ElementId(0)),
            (ElementId(1), ElementId(1)),
            (ElementId(2), ElementId(2)),
        ];
        let e = t.evaluate_pairs(predicted.iter());
        assert_eq!((e.tp, e.fp, e.fn_), (3, 0, 0));
        assert_eq!(e.precision, 1.0);
        assert_eq!(e.recall, 1.0);
        assert_eq!(e.f1, 1.0);
    }

    #[test]
    fn partial_prediction() {
        let t = truth();
        let predicted = [
            (ElementId(0), ElementId(0)),
            (ElementId(5), ElementId(5)), // fp
        ];
        let e = t.evaluate_pairs(predicted.iter());
        assert_eq!((e.tp, e.fp, e.fn_), (1, 1, 2));
        assert!((e.precision - 0.5).abs() < 1e-12);
        assert!((e.recall - 1.0 / 3.0).abs() < 1e-12);
        assert!(e.f1 > 0.0 && e.f1 < 1.0);
    }

    #[test]
    fn empty_prediction_and_empty_truth() {
        let t = truth();
        let e = t.evaluate_pairs(std::iter::empty::<&(ElementId, ElementId)>());
        assert_eq!(e.precision, 1.0, "vacuous precision");
        assert_eq!(e.recall, 0.0);
        assert_eq!(e.f1, 0.0);

        let empty = GroundTruth::default();
        let e2 = empty.evaluate_pairs(std::iter::empty::<&(ElementId, ElementId)>());
        assert_eq!(e2.recall, 1.0, "vacuous recall");
    }

    #[test]
    fn validated_only_counted() {
        let t = truth();
        let mut m = MatchSet::new();
        m.push(
            Correspondence::candidate(ElementId(0), ElementId(0), Confidence::new(0.9))
                .validate("a", MatchAnnotation::Equivalent),
        );
        m.push(Correspondence::candidate(
            ElementId(1),
            ElementId(1),
            Confidence::new(0.9),
        )); // candidate: not counted by evaluate_validated
        let e = t.evaluate_validated(&m);
        assert_eq!(e.tp, 1);
        let e_all = t.evaluate_all(&m);
        assert_eq!(e_all.tp, 2);
    }

    #[test]
    fn matched_sets() {
        let t = truth();
        assert_eq!(t.matched_targets().len(), 3);
        assert_eq!(t.matched_sources().len(), 3);
        assert!(t.is_match(ElementId(0), ElementId(0)));
        assert!(!t.is_match(ElementId(0), ElementId(1)));
    }
}

//! The schema-pair generator.
//!
//! Produces a (relational source, XML target) pair with exact element counts,
//! a planted overlap rate, per-schema naming noise and documentation styles,
//! and full [`GroundTruth`] — the synthetic stand-in for the paper's
//! S_A (1378 elements) × S_B (784 elements, 34% overlapping) case study.
//!
//! # Construction
//!
//! Concepts from a generated [`Ontology`] are realized in three phases:
//!
//! 1. **Shared concepts** until the target's shared-element budget
//!    (`target_elements · overlap_of_target`) is filled. Both schemata
//!    realize the concept node and the *same* attribute subset; each true
//!    atom yields one ground-truth pair.
//! 2. **Target-unique concepts** fill the rest of the target.
//! 3. **Source-unique concepts** fill the rest of the source.
//!
//! Element counts are hit exactly by trimming the last concept's attribute
//! list. A concept needs at least its own node, so a remaining budget of 1
//! realizes an attribute-less concept.

use crate::docgen::{render_doc, DocStyle};
use crate::groundtruth::GroundTruth;
use crate::naming::{NameRenderer, NamingStyle};
use crate::ontology::{Ontology, SemanticId};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sm_schema::{DataType, Documentation, ElementId, ElementKind, Schema, SchemaFormat, SchemaId};

/// Configuration of one generated schema pair.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Master seed; everything downstream is deterministic in it.
    pub seed: u64,
    /// Exact element count of the source schema (the paper's 1378).
    pub source_elements: usize,
    /// Exact element count of the target schema (the paper's 784).
    pub target_elements: usize,
    /// Fraction of *target* elements realized from atoms shared with the
    /// source (the paper's 0.34).
    pub overlap_of_target: f64,
    /// Naming convention of the source schema.
    pub source_style: NamingStyle,
    /// Naming convention of the target schema.
    pub target_style: NamingStyle,
    /// Documentation style of the source schema.
    pub source_doc: DocStyle,
    /// Documentation style of the target schema.
    pub target_doc: DocStyle,
    /// Attribute-count range per ontology concept.
    pub attrs_per_concept: (usize, usize),
}

impl GeneratorConfig {
    /// The paper's case study, shrunk or full-size via `scale` (1.0 = the
    /// real 1378×784).
    pub fn paper_case_study(seed: u64, scale: f64) -> Self {
        let scale = scale.max(0.01);
        GeneratorConfig {
            seed,
            source_elements: ((1378.0 * scale).round() as usize).max(4),
            target_elements: ((784.0 * scale).round() as usize).max(4),
            overlap_of_target: 0.34,
            source_style: NamingStyle::relational(),
            target_style: NamingStyle::legacy(),
            source_doc: DocStyle::rich(),
            target_doc: DocStyle::sparse(),
            // Wide-ish concepts: the paper's S_A mixed narrow tables with
            // wide views (e.g. All_Event_Vitals), giving ~140 concepts over
            // 1378 elements and 10^4–10^5 candidate pairs per sub-tree
            // increment.
            attrs_per_concept: (6, 20),
        }
    }
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig::paper_case_study(0, 1.0)
    }
}

/// A generated pair with its ground truth.
pub struct SchemaPair {
    /// The relational source schema (S_A analogue).
    pub source: Schema,
    /// The XML target schema (S_B analogue).
    pub target: Schema,
    /// Planted ground truth.
    pub truth: GroundTruth,
    /// The latent ontology the pair was drawn from.
    pub ontology: Ontology,
    /// Anchors (concept root elements) of the source schema with their
    /// concept ids — the "concept elements" the paper's engineers identified
    /// (140 in S_A).
    pub source_anchors: Vec<(ElementId, SemanticId)>,
    /// Anchors of the target schema (51 in S_B).
    pub target_anchors: Vec<(ElementId, SemanticId)>,
}

impl SchemaPair {
    /// Generate a pair from a configuration.
    pub fn generate(config: &GeneratorConfig) -> SchemaPair {
        let shared_goal = ((config.target_elements as f64)
            * config.overlap_of_target.clamp(0.0, 1.0))
        .round() as usize;
        let shared_goal = shared_goal
            .min(config.target_elements)
            .min(config.source_elements);

        // Ontology big enough for both unique parts plus shared concepts.
        let (amin, amax) = config.attrs_per_concept;
        let mean_size = 1.0 + (amin + amax) as f64 / 2.0;
        let needed_atoms = config.source_elements + config.target_elements;
        let concept_budget = ((needed_atoms as f64 / mean_size) * 1.8).ceil() as usize + 8;
        let ontology = Ontology::generate(config.seed, concept_budget, amin, amax);

        let mut rng = SmallRng::seed_from_u64(config.seed ^ 0xA5A5_A5A5_DEAD_BEEF);
        let source_renderer = NameRenderer::new(config.source_style.clone());
        let target_renderer = NameRenderer::new(config.target_style.clone());

        let mut source = Schema::new(SchemaId(1), "S_A", SchemaFormat::Relational);
        let mut target = Schema::new(SchemaId(2), "S_B", SchemaFormat::Xml);
        let mut truth = GroundTruth::default();
        let mut source_anchors = Vec::new();
        let mut target_anchors = Vec::new();

        let mut next_concept = 0usize;
        let take_concept = |next: &mut usize| -> Option<u32> {
            if *next < ontology.len() {
                let c = *next as u32;
                *next += 1;
                Some(c)
            } else {
                None
            }
        };

        // --- Phase 1: shared concepts ------------------------------------
        // Realize the source side in concept order, but the target side in a
        // *shuffled* order: independently developed systems interleave the
        // same concepts differently, which is what produces the paper's
        // "criss-crossing lines" in a line-drawing GUI.
        let mut shared_plan: Vec<(u32, usize)> = Vec::new(); // (concept, n_attrs)
        let mut shared_done = 0usize;
        while shared_done < shared_goal {
            let Some(ci) = take_concept(&mut next_concept) else {
                break;
            };
            let spec = &ontology.concepts[ci as usize];
            let remaining = shared_goal - shared_done;
            if remaining == 0 {
                break;
            }
            let n_attrs = spec.attributes.len().min(remaining.saturating_sub(1));
            // Ensure both sides still have element budget.
            let src_left =
                config.source_elements - shared_plan.iter().map(|&(_, n)| n + 1).sum::<usize>();
            let tgt_left = config.target_elements - shared_done;
            if src_left == 0 || tgt_left == 0 {
                break;
            }
            let n_attrs = n_attrs
                .min(src_left.saturating_sub(1))
                .min(tgt_left.saturating_sub(1));
            shared_plan.push((ci, n_attrs));
            shared_done += 1 + n_attrs;
        }

        let mut source_shared: Vec<(u32, ElementId, usize)> = Vec::new();
        for &(ci, n_attrs) in &shared_plan {
            let s_anchor = realize_concept_relational(
                &mut source,
                &ontology,
                ci,
                n_attrs,
                &source_renderer,
                &config.source_doc,
                &mut rng,
                &mut truth.source_semantics,
            );
            source_anchors.push((s_anchor, SemanticId::Concept(ci)));
            source_shared.push((ci, s_anchor, n_attrs));
        }

        let mut target_plan = shared_plan.clone();
        {
            use rand::seq::SliceRandom;
            target_plan.shuffle(&mut rng);
        }
        let mut target_anchor_of: std::collections::HashMap<u32, ElementId> =
            std::collections::HashMap::new();
        for &(ci, n_attrs) in &target_plan {
            let t_anchor = realize_concept_xml(
                &mut target,
                &ontology,
                ci,
                n_attrs,
                &target_renderer,
                &config.target_doc,
                &mut rng,
                &mut truth.target_semantics,
            );
            target_anchors.push((t_anchor, SemanticId::Concept(ci)));
            target_anchor_of.insert(ci, t_anchor);
        }

        // Ground truth: concept node + each shared attribute. Children are
        // created in attribute order right after each anchor on both sides.
        for (ci, s_anchor, n_attrs) in source_shared {
            let t_anchor = target_anchor_of[&ci];
            truth.add_pair(s_anchor, t_anchor);
            for a in 0..n_attrs as u32 {
                let s_el = ElementId(s_anchor.0 + 1 + a);
                let t_el = ElementId(t_anchor.0 + 1 + a);
                debug_assert_eq!(
                    truth.source_semantics.get(&s_el),
                    truth.target_semantics.get(&t_el)
                );
                truth.add_pair(s_el, t_el);
            }
        }

        // --- Phase 2: target-unique concepts ------------------------------
        fill_unique(
            &mut target,
            config.target_elements,
            &ontology,
            &mut next_concept,
            Realization::Xml,
            &target_renderer,
            &config.target_doc,
            &mut rng,
            &mut truth.target_semantics,
            &mut target_anchors,
        );

        // --- Phase 3: source-unique concepts ------------------------------
        fill_unique(
            &mut source,
            config.source_elements,
            &ontology,
            &mut next_concept,
            Realization::Relational,
            &source_renderer,
            &config.source_doc,
            &mut rng,
            &mut truth.source_semantics,
            &mut source_anchors,
        );

        debug_assert!(source.validate().is_ok());
        debug_assert!(target.validate().is_ok());

        SchemaPair {
            source,
            target,
            truth,
            ontology,
            source_anchors,
            target_anchors,
        }
    }

    /// Fraction of target elements with a true counterpart (should be close
    /// to the configured overlap).
    pub fn actual_target_overlap(&self) -> f64 {
        if self.target.is_empty() {
            return 0.0;
        }
        self.truth.matched_targets().len() as f64 / self.target.len() as f64
    }
}

enum Realization {
    Relational,
    Xml,
}

/// Fill `schema` up to `total` elements with concepts realized on one side
/// only.
#[allow(clippy::too_many_arguments)]
fn fill_unique(
    schema: &mut Schema,
    total: usize,
    ontology: &Ontology,
    next_concept: &mut usize,
    realization: Realization,
    renderer: &NameRenderer,
    doc_style: &DocStyle,
    rng: &mut SmallRng,
    semantics: &mut std::collections::HashMap<ElementId, SemanticId>,
    anchors: &mut Vec<(ElementId, SemanticId)>,
) {
    while schema.len() < total {
        if *next_concept >= ontology.len() {
            // Ontology exhausted (shouldn't happen with the 1.8× budget, but
            // degrade gracefully by padding the last concept).
            let Some(&last_root) = schema.roots().last() else {
                break;
            };
            let mut pad = 0u32;
            while schema.len() < total {
                schema
                    .add_child(
                        last_root,
                        format!("filler_{pad}"),
                        ElementKind::Column,
                        DataType::text(),
                    )
                    .expect("root exists");
                pad += 1;
            }
            break;
        }
        let ci = *next_concept as u32;
        *next_concept += 1;
        let spec = &ontology.concepts[ci as usize];
        let left = total - schema.len();
        let n_attrs = spec.attributes.len().min(left.saturating_sub(1));
        let anchor = match realization {
            Realization::Relational => realize_concept_relational(
                schema, ontology, ci, n_attrs, renderer, doc_style, rng, semantics,
            ),
            Realization::Xml => realize_concept_xml(
                schema, ontology, ci, n_attrs, renderer, doc_style, rng, semantics,
            ),
        };
        anchors.push((anchor, SemanticId::Concept(ci)));
    }
}

/// Realize concept `ci` with its first `n_attrs` attributes as a table.
#[allow(clippy::too_many_arguments)]
fn realize_concept_relational(
    schema: &mut Schema,
    ontology: &Ontology,
    ci: u32,
    n_attrs: usize,
    renderer: &NameRenderer,
    doc_style: &DocStyle,
    rng: &mut SmallRng,
    semantics: &mut std::collections::HashMap<ElementId, SemanticId>,
) -> ElementId {
    let spec = &ontology.concepts[ci as usize];
    let table_name = renderer.render(&spec.tokens, rng);
    let anchor = schema.add_root(table_name, ElementKind::Table, DataType::None);
    semantics.insert(anchor, SemanticId::Concept(ci));
    if let Some(doc) = render_doc(&spec.doc, doc_style, rng) {
        schema
            .set_doc(anchor, Documentation::generated(doc))
            .expect("anchor exists");
    }
    for (ai, attr) in spec.attributes.iter().take(n_attrs).enumerate() {
        let col_name = renderer.render(&attr.tokens, rng);
        let col = schema
            .add_child(anchor, col_name, ElementKind::Column, attr.datatype)
            .expect("anchor exists");
        semantics.insert(
            col,
            SemanticId::Attribute {
                concept: ci,
                attr: ai as u32,
            },
        );
        if let Some(doc) = render_doc(&attr.doc, doc_style, rng) {
            schema
                .set_doc(col, Documentation::generated(doc))
                .expect("column exists");
        }
    }
    anchor
}

/// Realize concept `ci` with its first `n_attrs` attributes as a complex
/// type.
#[allow(clippy::too_many_arguments)]
fn realize_concept_xml(
    schema: &mut Schema,
    ontology: &Ontology,
    ci: u32,
    n_attrs: usize,
    renderer: &NameRenderer,
    doc_style: &DocStyle,
    rng: &mut SmallRng,
    semantics: &mut std::collections::HashMap<ElementId, SemanticId>,
) -> ElementId {
    let spec = &ontology.concepts[ci as usize];
    let type_name = renderer.render(&spec.tokens, rng);
    let anchor = schema.add_root(type_name, ElementKind::ComplexType, DataType::None);
    semantics.insert(anchor, SemanticId::Concept(ci));
    if let Some(doc) = render_doc(&spec.doc, doc_style, rng) {
        schema
            .set_doc(anchor, Documentation::generated(doc))
            .expect("anchor exists");
    }
    for (ai, attr) in spec.attributes.iter().take(n_attrs).enumerate() {
        let el_name = renderer.render(&attr.tokens, rng);
        let el = schema
            .add_child(anchor, el_name, ElementKind::XmlElement, attr.datatype)
            .expect("anchor exists");
        semantics.insert(
            el,
            SemanticId::Attribute {
                concept: ci,
                attr: ai as u32,
            },
        );
        if let Some(doc) = render_doc(&attr.doc, doc_style, rng) {
            schema
                .set_doc(el, Documentation::generated(doc))
                .expect("element exists");
        }
    }
    anchor
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(seed: u64) -> GeneratorConfig {
        GeneratorConfig::paper_case_study(seed, 0.1) // 138 × 78
    }

    #[test]
    fn exact_element_counts() {
        let cfg = small_config(1);
        let pair = SchemaPair::generate(&cfg);
        assert_eq!(pair.source.len(), cfg.source_elements);
        assert_eq!(pair.target.len(), cfg.target_elements);
        pair.source.validate().unwrap();
        pair.target.validate().unwrap();
    }

    #[test]
    fn full_paper_scale_counts() {
        let cfg = GeneratorConfig::paper_case_study(7, 1.0);
        let pair = SchemaPair::generate(&cfg);
        assert_eq!(pair.source.len(), 1378);
        assert_eq!(pair.target.len(), 784);
        assert_eq!(pair.source.format, SchemaFormat::Relational);
        assert_eq!(pair.target.format, SchemaFormat::Xml);
    }

    #[test]
    fn overlap_close_to_configured() {
        let cfg = GeneratorConfig::paper_case_study(3, 1.0);
        let pair = SchemaPair::generate(&cfg);
        let overlap = pair.actual_target_overlap();
        assert!(
            (overlap - 0.34).abs() < 0.02,
            "planted overlap {overlap} should be ≈ 0.34"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SchemaPair::generate(&small_config(5));
        let b = SchemaPair::generate(&small_config(5));
        let names_a: Vec<String> = a.source.preorder().map(|e| e.name.clone()).collect();
        let names_b: Vec<String> = b.source.preorder().map(|e| e.name.clone()).collect();
        assert_eq!(names_a, names_b);
        assert_eq!(a.truth.len(), b.truth.len());
        let c = SchemaPair::generate(&small_config(6));
        let names_c: Vec<String> = c.source.preorder().map(|e| e.name.clone()).collect();
        assert_ne!(names_a, names_c);
    }

    #[test]
    fn ground_truth_pairs_share_semantics() {
        let pair = SchemaPair::generate(&small_config(11));
        assert!(!pair.truth.is_empty());
        for &(s, t) in pair.truth.pairs() {
            let ss = pair
                .truth
                .source_semantics
                .get(&s)
                .expect("source semantic");
            let ts = pair
                .truth
                .target_semantics
                .get(&t)
                .expect("target semantic");
            assert_eq!(ss, ts, "paired elements must realize the same atom");
        }
    }

    #[test]
    fn truth_pairs_reference_real_elements() {
        let pair = SchemaPair::generate(&small_config(13));
        for &(s, t) in pair.truth.pairs() {
            assert!(pair.source.get(s).is_some());
            assert!(pair.target.get(t).is_some());
        }
    }

    #[test]
    fn anchors_are_depth_one_containers() {
        let pair = SchemaPair::generate(&small_config(17));
        for &(a, _) in &pair.source_anchors {
            let e = pair.source.element(a);
            assert_eq!(e.depth, 1);
            assert_eq!(e.kind, ElementKind::Table);
        }
        for &(a, _) in &pair.target_anchors {
            let e = pair.target.element(a);
            assert_eq!(e.depth, 1);
            assert_eq!(e.kind, ElementKind::ComplexType);
        }
        // Every root is an anchor.
        assert_eq!(pair.source_anchors.len(), pair.source.roots().len());
        assert_eq!(pair.target_anchors.len(), pair.target.roots().len());
    }

    #[test]
    fn paper_scale_concept_counts_in_range() {
        // The paper's engineers identified 140 concepts in S_A and 51 in
        // S_B; with 6–12 attrs per concept the generator should land in the
        // same regime.
        let pair = SchemaPair::generate(&GeneratorConfig::paper_case_study(23, 1.0));
        let n_src = pair.source_anchors.len();
        let n_tgt = pair.target_anchors.len();
        assert!((100..=220).contains(&n_src), "source concepts {n_src}");
        assert!((55..=130).contains(&n_tgt), "target concepts {n_tgt}");
    }

    #[test]
    fn zero_overlap_supported() {
        let mut cfg = small_config(19);
        cfg.overlap_of_target = 0.0;
        let pair = SchemaPair::generate(&cfg);
        assert!(pair.truth.is_empty());
        assert_eq!(pair.actual_target_overlap(), 0.0);
    }

    #[test]
    fn full_overlap_supported() {
        let mut cfg = small_config(19);
        cfg.overlap_of_target = 1.0;
        let pair = SchemaPair::generate(&cfg);
        let overlap = pair.actual_target_overlap();
        assert!(overlap > 0.95, "overlap {overlap}");
    }

    #[test]
    fn documentation_coverage_reflects_styles() {
        let cfg = GeneratorConfig::paper_case_study(29, 0.5);
        let pair = SchemaPair::generate(&cfg);
        let src_cov = pair.source.doc_coverage();
        let tgt_cov = pair.target.doc_coverage();
        assert!(src_cov > 0.8, "rich source doc coverage {src_cov}");
        assert!(
            tgt_cov > 0.2 && tgt_cov < 0.55,
            "sparse target doc coverage {tgt_cov}"
        );
    }
}

//! # sm-synth — synthetic enterprise-schema workloads
//!
//! The paper's case study matched two proprietary military schemata (S_A:
//! relational, 1378 elements; S_B: XML, 784 elements, reputedly a conceptual
//! subset of S_A) that are not publicly available. Per the reproduction's
//! substitution rule (see DESIGN.md §2) this crate generates schemata with
//! the *statistical properties that drive matcher behaviour*:
//!
//! * element counts and tree shape (tables→columns, types→elements);
//! * a latent **semantic atom** space shared between schemata, with a
//!   controllable overlap rate (the paper measured 34% of S_B overlapping);
//! * realistic **naming-convention noise**: abbreviation (`quantity`→`qty`),
//!   synonym substitution (`begin`→`start`), case-convention changes, and
//!   numeric suffixes — the processes behind the paper's example pair
//!   `DATE_BEGIN_156 ⇔ DATETIME_FIRST_INFO`;
//! * generated element **documentation** with controllable coverage, since
//!   Harmony "relies heavily on textual documentation".
//!
//! Because atoms are planted, every generated pair carries exact
//! [`GroundTruth`], enabling precision/recall evaluation the original
//! engagement could not perform.

#![warn(missing_docs)]

pub mod docgen;
pub mod evolution;
pub mod generator;
pub mod groundtruth;
pub mod instances;
pub mod naming;
pub mod ontology;
pub mod repository;

pub use evolution::{evolve, EvolutionConfig, VersionPair};
pub use generator::{GeneratorConfig, SchemaPair};
pub use groundtruth::{GroundTruth, PrEval};
pub use instances::{generate_instances, InstanceConfig};
pub use naming::{Case, NamingStyle};
pub use ontology::{AttributeSpec, ConceptSpec, Ontology};
pub use repository::{RepositoryConfig, SyntheticRepository};

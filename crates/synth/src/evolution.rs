//! Schema-version evolution.
//!
//! The paper's customer context was a version transition: "Sys(S_A) is
//! currently being redesigned into version 4" (§3.1), and the plan was to
//! fold Sys(S_B)'s distinct elements into the redesign. This module
//! generates a *successor version* of a schema: renamed elements (convention
//! change), dropped elements, and newly added concepts — with ground truth
//! linking survivors, so version-migration matching can be evaluated.

use crate::groundtruth::GroundTruth;
use crate::naming::{NameRenderer, NamingStyle};
use crate::ontology::{Ontology, SemanticId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sm_schema::{DataType, Documentation, ElementId, ElementKind, Schema, SchemaFormat, SchemaId};
use std::collections::HashMap;

/// Parameters of a version transition.
#[derive(Debug, Clone)]
pub struct EvolutionConfig {
    /// Seed (independent of the base schema's seed).
    pub seed: u64,
    /// Naming convention of the new version (renames fall out of the
    /// re-rendering even when the style is unchanged, via abbreviation and
    /// synonym dice).
    pub new_style: NamingStyle,
    /// Probability that a v3 column is dropped in v4.
    pub drop_attr_prob: f64,
    /// Probability that a whole v3 table is dropped in v4.
    pub drop_concept_prob: f64,
    /// Number of brand-new concepts v4 adds.
    pub added_concepts: usize,
    /// Attribute range for the added concepts.
    pub added_attrs: (usize, usize),
}

impl Default for EvolutionConfig {
    fn default() -> Self {
        EvolutionConfig {
            seed: 1,
            new_style: NamingStyle::xml(),
            drop_attr_prob: 0.08,
            drop_concept_prob: 0.05,
            added_concepts: 6,
            added_attrs: (4, 10),
        }
    }
}

/// A version transition: the successor schema plus element-level lineage.
pub struct VersionPair {
    /// The redesigned schema (v4).
    pub next: Schema,
    /// Ground truth: v3 element → v4 element for every survivor.
    pub lineage: GroundTruth,
    /// v3 elements with no v4 counterpart (dropped).
    pub dropped: Vec<ElementId>,
    /// v4 elements with no v3 ancestor (additions).
    pub added: Vec<ElementId>,
}

/// Evolve `base` (a relational schema whose elements carry semantics in
/// `semantics`, as produced by the generator) into a successor version.
///
/// Works directly off the schema tree, so it also applies to hand-built
/// schemata: pass an empty semantics map and lineage is tracked purely by
/// position.
pub fn evolve(
    base: &Schema,
    semantics: &HashMap<ElementId, SemanticId>,
    config: &EvolutionConfig,
) -> VersionPair {
    let mut rng = SmallRng::seed_from_u64(config.seed ^ 0xE001_E001_E001_E001);
    let renderer = NameRenderer::new(config.new_style.clone());
    let mut next = Schema::new(
        SchemaId(base.id.0 + 1000),
        format!("{}_v4", base.name),
        SchemaFormat::Relational,
    );
    let mut lineage = GroundTruth::default();
    let mut dropped = Vec::new();
    let mut added = Vec::new();

    for &root in base.roots() {
        if rng.gen_bool(config.drop_concept_prob) {
            dropped.extend(base.subtree_ids(root));
            continue;
        }
        let old_root = base.element(root);
        let tokens = sm_text::tokenize_identifier(&old_root.name);
        let new_name = renderer.render(&tokens, &mut rng);
        let new_root = next.add_root(new_name, old_root.kind, old_root.datatype);
        if let Some(doc) = &old_root.doc {
            next.set_doc(new_root, doc.clone()).expect("root exists");
        }
        lineage.add_pair(root, new_root);
        copy_semantics(semantics, &mut lineage, root, new_root);

        for &child in &old_root.children {
            if rng.gen_bool(config.drop_attr_prob) {
                dropped.push(child);
                continue;
            }
            let old = base.element(child);
            let tokens = sm_text::tokenize_identifier(&old.name);
            let new_name = renderer.render(&tokens, &mut rng);
            let new_child = next
                .add_child(new_root, new_name, old.kind, old.datatype)
                .expect("root exists");
            if let Some(doc) = &old.doc {
                next.set_doc(new_child, doc.clone()).expect("child exists");
            }
            lineage.add_pair(child, new_child);
            copy_semantics(semantics, &mut lineage, child, new_child);
        }
    }

    // Brand-new concepts (the redesign absorbing new requirements).
    let (amin, amax) = config.added_attrs;
    let addition_pool = Ontology::generate(
        config.seed ^ 0xADD5,
        config.added_concepts,
        amin.max(1),
        amax.max(amin.max(1)),
    );
    for concept in &addition_pool.concepts {
        let mut name = renderer.render(&concept.tokens, &mut rng);
        // Avoid colliding with a surviving table name.
        if next.find_by_name(&name).is_some() {
            name.push_str("_new");
        }
        let root = next.add_root(name, ElementKind::Table, DataType::None);
        next.set_doc(root, Documentation::generated(concept.doc.clone()))
            .expect("root exists");
        added.push(root);
        for attr in &concept.attributes {
            let child = next
                .add_child(
                    root,
                    renderer.render(&attr.tokens, &mut rng),
                    ElementKind::Column,
                    attr.datatype,
                )
                .expect("root exists");
            added.push(child);
        }
    }

    debug_assert!(next.validate().is_ok());
    VersionPair {
        next,
        lineage,
        dropped,
        added,
    }
}

fn copy_semantics(
    semantics: &HashMap<ElementId, SemanticId>,
    lineage: &mut GroundTruth,
    old: ElementId,
    new: ElementId,
) {
    if let Some(&sem) = semantics.get(&old) {
        lineage.source_semantics.insert(old, sem);
        lineage.target_semantics.insert(new, sem);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{GeneratorConfig, SchemaPair};

    fn base() -> (Schema, HashMap<ElementId, SemanticId>) {
        let pair = SchemaPair::generate(&GeneratorConfig::paper_case_study(3, 0.1));
        let sem = pair.truth.source_semantics.clone();
        (pair.source, sem)
    }

    #[test]
    fn survivors_link_and_counts_balance() {
        let (v3, sem) = base();
        let cfg = EvolutionConfig::default();
        let vp = evolve(&v3, &sem, &cfg);
        vp.next.validate().unwrap();
        // Every v3 element is either linked or dropped, never both.
        let linked: std::collections::HashSet<_> =
            vp.lineage.pairs().iter().map(|&(a, _)| a).collect();
        for id in v3.ids() {
            let is_linked = linked.contains(&id);
            let is_dropped = vp.dropped.contains(&id);
            assert!(is_linked ^ is_dropped, "element {id} must be exactly one");
        }
        // v4 = survivors + additions.
        assert_eq!(vp.next.len(), vp.lineage.len() + vp.added.len());
    }

    #[test]
    fn no_drops_no_adds_is_pure_rename() {
        let (v3, sem) = base();
        let cfg = EvolutionConfig {
            drop_attr_prob: 0.0,
            drop_concept_prob: 0.0,
            added_concepts: 0,
            ..Default::default()
        };
        let vp = evolve(&v3, &sem, &cfg);
        assert_eq!(vp.next.len(), v3.len());
        assert!(vp.dropped.is_empty());
        assert!(vp.added.is_empty());
        assert_eq!(vp.lineage.len(), v3.len());
    }

    #[test]
    fn evolution_is_deterministic() {
        let (v3, sem) = base();
        let cfg = EvolutionConfig::default();
        let a = evolve(&v3, &sem, &cfg);
        let b = evolve(&v3, &sem, &cfg);
        assert_eq!(a.next.len(), b.next.len());
        let na: Vec<_> = a.next.preorder().map(|e| e.name.clone()).collect();
        let nb: Vec<_> = b.next.preorder().map(|e| e.name.clone()).collect();
        assert_eq!(na, nb);
    }

    #[test]
    fn renames_actually_happen() {
        let (v3, sem) = base();
        let vp = evolve(&v3, &sem, &EvolutionConfig::default());
        let renamed = vp
            .lineage
            .pairs()
            .iter()
            .filter(|&&(old, new)| v3.element(old).name != vp.next.element(new).name)
            .count();
        assert!(
            renamed > vp.lineage.len() / 4,
            "style change should rename many elements: {renamed}/{}",
            vp.lineage.len()
        );
    }

    #[test]
    fn semantics_propagate_to_survivors() {
        let (v3, sem) = base();
        let vp = evolve(&v3, &sem, &EvolutionConfig::default());
        for &(old, new) in vp.lineage.pairs() {
            if let Some(s) = sem.get(&old) {
                assert_eq!(vp.lineage.target_semantics.get(&new), Some(s));
            }
        }
    }

    #[test]
    fn matcher_recovers_lineage() {
        // The practical point: a matcher should reconnect v3 to v4.
        let (v3, sem) = base();
        let vp = evolve(&v3, &sem, &EvolutionConfig::default());
        let engine = harmony_core::engine::MatchEngine::new().with_threads(1);
        let result = engine.run(&v3, &vp.next);
        let selected = harmony_core::select::Selection::OneToOne {
            min: harmony_core::confidence::Confidence::new(0.3),
        }
        .apply(&result.matrix);
        let predicted: Vec<_> = selected
            .all()
            .iter()
            .map(|c| (c.source, c.target))
            .collect();
        let eval = vp.lineage.evaluate_pairs(predicted.iter());
        assert!(
            eval.f1 > 0.6,
            "version matching should be easy-ish: F1 {}",
            eval.f1
        );
    }
}

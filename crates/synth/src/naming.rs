//! Naming-convention noise.
//!
//! Two independently developed systems never spell the same concept the same
//! way. This module renders canonical token sequences into schema-element
//! names under a per-schema [`NamingStyle`], applying the noise processes
//! visible in the paper's own example (`DATE_BEGIN_156 ⇔
//! DATETIME_FIRST_INFO`): abbreviation, synonym substitution, token
//! reordering, case conventions, and numeric suffixes.

use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use sm_text::abbrev::AbbrevDict;
use std::collections::HashMap;

/// Identifier case conventions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Case {
    /// `begin_date`
    Snake,
    /// `BEGIN_DATE`
    UpperSnake,
    /// `BeginDate`
    Pascal,
    /// `beginDate`
    Camel,
}

impl Case {
    /// Render tokens under this convention.
    pub fn render(self, tokens: &[String]) -> String {
        match self {
            Case::Snake => tokens.join("_"),
            Case::UpperSnake => tokens
                .iter()
                .map(|t| t.to_uppercase())
                .collect::<Vec<_>>()
                .join("_"),
            Case::Pascal => tokens.iter().map(|t| capitalize(t)).collect(),
            Case::Camel => {
                let mut out = String::new();
                for (i, t) in tokens.iter().enumerate() {
                    if i == 0 {
                        out.push_str(t);
                    } else {
                        out.push_str(&capitalize(t));
                    }
                }
                out
            }
        }
    }
}

fn capitalize(t: &str) -> String {
    let mut chars = t.chars();
    match chars.next() {
        Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

/// Synonym classes: members are interchangeable spellings of one meaning.
/// The matcher does NOT know this table — that is the point: synonym noise
/// is what makes the task hard and recall < 1.
const SYNONYM_CLASSES: &[&[&str]] = &[
    &["begin", "start", "initial"],
    &["end", "finish", "final", "termination"],
    &["name", "designation", "title"],
    &["type", "kind", "class"],
    &["identifier", "key"],
    &["description", "narrative", "details"],
    &["remarks", "notes", "comment"],
    &["status", "state", "condition"],
    &["quantity", "amount"],
    &["location", "place", "site"],
    &["priority", "precedence"],
    &["speed", "velocity"],
    &["organization", "organisation"],
    &["update", "revision"],
    &["report", "account"],
];

/// A per-schema naming convention.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NamingStyle {
    /// Case convention.
    pub case: Case,
    /// Probability of replacing a token with a known abbreviation.
    pub abbrev_prob: f64,
    /// Probability of replacing a token with a synonym from its class.
    pub synonym_prob: f64,
    /// Probability of appending a numeric suffix (`_156`).
    pub numeric_suffix_prob: f64,
    /// Optional fixed prefix token (`tbl`, `t`).
    pub prefix: Option<String>,
    /// Probability of dropping a middle token from 3+-token names
    /// (enterprise names truncate: `vehicle maintenance status` →
    /// `vehicle status`).
    pub drop_token_prob: f64,
}

impl NamingStyle {
    /// A clean relational style: lower snake, moderate abbreviation.
    pub fn relational() -> Self {
        NamingStyle {
            case: Case::Snake,
            abbrev_prob: 0.35,
            synonym_prob: 0.15,
            numeric_suffix_prob: 0.05,
            prefix: None,
            drop_token_prob: 0.1,
        }
    }

    /// A legacy style: upper snake, heavy abbreviation and suffixes — the
    /// flavour of the paper's `DATE_BEGIN_156`.
    pub fn legacy() -> Self {
        NamingStyle {
            case: Case::UpperSnake,
            abbrev_prob: 0.55,
            synonym_prob: 0.2,
            numeric_suffix_prob: 0.25,
            prefix: None,
            drop_token_prob: 0.15,
        }
    }

    /// A modern XML style: Pascal case, few abbreviations.
    pub fn xml() -> Self {
        NamingStyle {
            case: Case::Pascal,
            abbrev_prob: 0.1,
            synonym_prob: 0.15,
            numeric_suffix_prob: 0.0,
            prefix: None,
            drop_token_prob: 0.05,
        }
    }

    /// Noise-free rendering (for debugging and ablation baselines).
    pub fn clean(case: Case) -> Self {
        NamingStyle {
            case,
            abbrev_prob: 0.0,
            synonym_prob: 0.0,
            numeric_suffix_prob: 0.0,
            prefix: None,
            drop_token_prob: 0.0,
        }
    }
}

/// Stateful renderer applying a [`NamingStyle`] with a shared RNG.
pub struct NameRenderer {
    style: NamingStyle,
    reverse_abbrev: HashMap<String, String>,
    synonyms: HashMap<String, Vec<String>>,
}

impl NameRenderer {
    /// Build a renderer for one style. The abbreviating map is derived from
    /// the same [`AbbrevDict`] the matcher expands with (single-word
    /// expansions only), keeping generator and matcher vocabularies honest.
    pub fn new(style: NamingStyle) -> Self {
        let dict = AbbrevDict::builtin();
        let mut reverse_abbrev: HashMap<String, String> = HashMap::new();
        for (abbr, expansion) in dict.entries() {
            if expansion.len() == 1 {
                // Prefer the shortest abbreviation for a word; break length
                // ties lexicographically so the map is deterministic
                // regardless of HashMap iteration order.
                let e = reverse_abbrev
                    .entry(expansion[0].clone())
                    .or_insert_with(|| abbr.to_string());
                if abbr.len() < e.len() || (abbr.len() == e.len() && abbr < e.as_str()) {
                    *e = abbr.to_string();
                }
            }
        }
        let mut synonyms: HashMap<String, Vec<String>> = HashMap::new();
        for class in SYNONYM_CLASSES {
            for &w in *class {
                synonyms.insert(
                    w.to_string(),
                    class
                        .iter()
                        .filter(|&&x| x != w)
                        .map(|&x| x.to_string())
                        .collect(),
                );
            }
        }
        NameRenderer {
            style,
            reverse_abbrev,
            synonyms,
        }
    }

    /// Render canonical tokens into a noisy element name.
    pub fn render(&self, tokens: &[String], rng: &mut SmallRng) -> String {
        let mut toks: Vec<String> = tokens.to_vec();
        // Drop a middle token from long names.
        if toks.len() >= 3 && rng.gen_bool(self.style.drop_token_prob) {
            let i = rng.gen_range(1..toks.len() - 1);
            toks.remove(i);
        }
        // Synonym substitution (semantic noise, invisible to the matcher).
        for t in &mut toks {
            if rng.gen_bool(self.style.synonym_prob) {
                if let Some(alts) = self.synonyms.get(t.as_str()) {
                    if !alts.is_empty() {
                        *t = alts[rng.gen_range(0..alts.len())].clone();
                    }
                }
            }
        }
        // Abbreviation (surface noise, recoverable by the matcher's dict).
        for t in &mut toks {
            if rng.gen_bool(self.style.abbrev_prob) {
                if let Some(a) = self.reverse_abbrev.get(t.as_str()) {
                    *t = a.clone();
                }
            }
        }
        if let Some(p) = &self.style.prefix {
            toks.insert(0, p.clone());
        }
        let mut name = self.style.case.render(&toks);
        if rng.gen_bool(self.style.numeric_suffix_prob) {
            let n: u32 = rng.gen_range(1..999);
            name = match self.style.case {
                Case::Snake | Case::UpperSnake => format!("{name}_{n}"),
                _ => format!("{name}{n}"),
            };
        }
        name
    }

    /// The style in use.
    pub fn style(&self) -> &NamingStyle {
        &self.style
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn toks(ws: &[&str]) -> Vec<String> {
        ws.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn case_conventions_render() {
        let t = toks(&["begin", "date"]);
        assert_eq!(Case::Snake.render(&t), "begin_date");
        assert_eq!(Case::UpperSnake.render(&t), "BEGIN_DATE");
        assert_eq!(Case::Pascal.render(&t), "BeginDate");
        assert_eq!(Case::Camel.render(&t), "beginDate");
    }

    #[test]
    fn clean_style_is_deterministic_identity() {
        let r = NameRenderer::new(NamingStyle::clean(Case::Snake));
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(r.render(&toks(&["begin", "date"]), &mut rng), "begin_date");
        assert_eq!(r.render(&toks(&["begin", "date"]), &mut rng), "begin_date");
    }

    #[test]
    fn legacy_style_abbreviates_and_suffixes_sometimes() {
        let r = NameRenderer::new(NamingStyle::legacy());
        let mut rng = SmallRng::seed_from_u64(42);
        let mut abbreviated = 0;
        let mut suffixed = 0;
        for _ in 0..200 {
            let name = r.render(&toks(&["quantity", "date"]), &mut rng);
            if name.contains("QTY") || name.contains("DT") {
                abbreviated += 1;
            }
            if name.chars().last().is_some_and(|c| c.is_ascii_digit()) {
                suffixed += 1;
            }
            assert_eq!(name, name.to_uppercase(), "upper-snake style");
        }
        assert!(abbreviated > 40, "abbreviation rate too low: {abbreviated}");
        assert!(suffixed > 20, "suffix rate too low: {suffixed}");
    }

    #[test]
    fn synonym_substitution_happens() {
        let style = NamingStyle {
            synonym_prob: 1.0,
            ..NamingStyle::clean(Case::Snake)
        };
        let r = NameRenderer::new(style);
        let mut rng = SmallRng::seed_from_u64(3);
        let name = r.render(&toks(&["begin"]), &mut rng);
        assert!(
            name == "start" || name == "initial",
            "begin should be replaced, got {name}"
        );
    }

    #[test]
    fn prefix_applied() {
        let style = NamingStyle {
            prefix: Some("tbl".to_string()),
            ..NamingStyle::clean(Case::Snake)
        };
        let r = NameRenderer::new(style);
        let mut rng = SmallRng::seed_from_u64(3);
        assert_eq!(r.render(&toks(&["person"]), &mut rng), "tbl_person");
    }

    #[test]
    fn token_dropping_shortens_long_names() {
        let style = NamingStyle {
            drop_token_prob: 1.0,
            ..NamingStyle::clean(Case::Snake)
        };
        let r = NameRenderer::new(style);
        let mut rng = SmallRng::seed_from_u64(3);
        let name = r.render(&toks(&["vehicle", "maintenance", "status"]), &mut rng);
        assert_eq!(name, "vehicle_status");
        // Two-token names never drop.
        let short = r.render(&toks(&["begin", "date"]), &mut rng);
        assert_eq!(short, "begin_date");
    }

    #[test]
    fn reverse_abbreviation_round_trips_through_matcher_dict() {
        // Whatever the renderer abbreviates, the matcher's dictionary must
        // expand back to the original word.
        let style = NamingStyle {
            abbrev_prob: 1.0,
            ..NamingStyle::clean(Case::Snake)
        };
        let r = NameRenderer::new(style);
        let dict = AbbrevDict::builtin();
        let mut rng = SmallRng::seed_from_u64(9);
        for word in ["quantity", "organization", "vehicle", "location", "weapon"] {
            let rendered = r.render(&toks(&[word]), &mut rng);
            let expanded = dict.expand(&rendered);
            assert_eq!(expanded, vec![word.to_string()], "{word} → {rendered}");
        }
    }
}

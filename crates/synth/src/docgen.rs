//! Documentation-text generation.
//!
//! Real data-dictionary entries for the same concept in two systems are
//! *paraphrases*, not copies. The generator perturbs the canonical sentence
//! per schema: template variation, filler clauses, and occasional omission
//! (controlled by a coverage rate — the paper stresses that documentation
//! availability varies).

use rand::rngs::SmallRng;
use rand::Rng;

/// Per-schema documentation style.
#[derive(Debug, Clone)]
pub struct DocStyle {
    /// Probability an element gets documentation at all.
    pub coverage: f64,
    /// Verbosity: number of filler clauses appended (0..=max_filler).
    pub max_filler: usize,
}

impl DocStyle {
    /// Well-documented system (the paper: documentation "easier to obtain
    /// than data" in government systems).
    pub fn rich() -> Self {
        DocStyle {
            coverage: 0.9,
            max_filler: 2,
        }
    }

    /// Sparsely documented legacy system.
    pub fn sparse() -> Self {
        DocStyle {
            coverage: 0.35,
            max_filler: 1,
        }
    }

    /// No documentation (ablation baseline).
    pub fn none() -> Self {
        DocStyle {
            coverage: 0.0,
            max_filler: 0,
        }
    }
}

const LEADS: &[&str] = &[
    "", // keep canonical sentence as-is
    "Data element: ",
    "Field containing ",
    "Records ",
    "Captures ",
];

const FILLERS: &[&str] = &[
    "Populated by the source system of record.",
    "Required for interoperability reporting.",
    "Subject to periodic review by the data steward.",
    "Value may be unavailable for legacy records.",
    "Conforms to the community data standard.",
    "Used in daily summary products.",
];

/// Render documentation for one element from its canonical sentence, or
/// `None` when coverage dice say the element goes undocumented.
pub fn render_doc(canonical: &str, style: &DocStyle, rng: &mut SmallRng) -> Option<String> {
    if !rng.gen_bool(style.coverage.clamp(0.0, 1.0)) {
        return None;
    }
    let lead = LEADS[rng.gen_range(0..LEADS.len())];
    let mut text = if lead.is_empty() {
        canonical.to_string()
    } else {
        // Lowercase the canonical head so the lead reads naturally.
        let mut c = canonical.to_string();
        if let Some(first) = c.get(0..1) {
            let lower = first.to_lowercase();
            c.replace_range(0..1, &lower);
        }
        format!("{lead}{c}")
    };
    if style.max_filler > 0 {
        let n = rng.gen_range(0..=style.max_filler);
        for _ in 0..n {
            let f = FILLERS[rng.gen_range(0..FILLERS.len())];
            text.push(' ');
            text.push_str(f);
        }
    }
    Some(text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zero_coverage_never_documents() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(render_doc("The x of y.", &DocStyle::none(), &mut rng).is_none());
        }
    }

    #[test]
    fn full_coverage_always_documents() {
        let style = DocStyle {
            coverage: 1.0,
            max_filler: 0,
        };
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..50 {
            assert!(render_doc("The x of y.", &style, &mut rng).is_some());
        }
    }

    #[test]
    fn canonical_content_is_preserved() {
        let style = DocStyle {
            coverage: 1.0,
            max_filler: 2,
        };
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..50 {
            let d = render_doc("The begin date of the event.", &style, &mut rng).unwrap();
            assert!(
                d.to_lowercase().contains("begin date of the event"),
                "paraphrase lost content: {d}"
            );
        }
    }

    #[test]
    fn paraphrases_vary() {
        let style = DocStyle {
            coverage: 1.0,
            max_filler: 2,
        };
        let mut rng = SmallRng::seed_from_u64(5);
        let docs: std::collections::HashSet<String> = (0..30)
            .map(|_| render_doc("The begin date of the event.", &style, &mut rng).unwrap())
            .collect();
        assert!(docs.len() > 5, "only {} distinct paraphrases", docs.len());
    }

    #[test]
    fn sparse_coverage_near_configured_rate() {
        let style = DocStyle::sparse();
        let mut rng = SmallRng::seed_from_u64(17);
        let documented = (0..1000)
            .filter(|_| render_doc("X.", &style, &mut rng).is_some())
            .count();
        let rate = documented as f64 / 1000.0;
        assert!((rate - 0.35).abs() < 0.06, "rate {rate}");
    }
}

//! # sm-enterprise — schema matching at enterprise scale
//!
//! The paper's §2 and §5 argue that in large enterprises, schemata must be
//! "managed as data themselves" and that matching infrastructure must serve
//! decision makers: CIOs asking "which data sources contain the concept of
//! blood test", planners costing integration projects, registries holding
//! thousands of schemata. This crate implements those operations on top of
//! `harmony-core`:
//!
//! * [`repository`] — a metadata repository storing schemata *and matches as
//!   knowledge artifacts*, with context tags and provenance ("who said that X
//!   is the same as Y, and should I trust that assertion?", §5).
//! * [`index`] — the repository-level inverted token index behind search,
//!   clustering, and COI proposal: posting lists + a frozen IDF weight
//!   table, so repository operations touch only schemata that share
//!   vocabulary instead of scanning the whole registry.
//! * [`shard`] — the production form of that index: token-range sharded,
//!   incrementally maintained (delta logs + tombstones + per-shard
//!   compaction), built in parallel, and score-pinned byte-identical to a
//!   from-scratch [`index::RepositoryIndex`] rebuild.
//! * [`persist`] — compact binary warm-start images of the prepared
//!   registry, so a restarted process skips linguistic re-preparation.
//! * [`search`] — query-by-schema search ("simply use one's target schema as
//!   the query term", §2).
//! * [`cluster`] — schema clustering over overlap distance ("revealing to
//!   integration planners the most promising (i.e., tightly clustered)
//!   candidates for integration", §5).
//! * [`coi`] — community-of-interest proposal from clusters ("a schema
//!   repository such as the MDR could automatically propose new COIs", §2).
//! * [`feasibility`] — project feasibility and cost estimation (§2).
//! * [`team`] — dividing a matching workflow into per-engineer task queues
//!   ("modular task queues appropriate to each team member", §5).

#![warn(missing_docs)]

pub mod cluster;
pub mod coi;
pub mod feasibility;
pub mod index;
pub mod persist;
pub mod repository;
pub mod search;
pub mod shard;
pub mod team;

pub use cluster::{agglomerative, ClusterEval, Clustering, Linkage};
pub use coi::{attach_match_evidence, propose_cois, CoiProposal};
pub use feasibility::{FeasibilityGrade, FeasibilityReport};
pub use index::RepositoryIndex;
pub use persist::{load_registry, save_registry, LoadedRegistry};
pub use repository::{MatchContextTag, MatchRecord, MetadataRepository, Provenance};
pub use search::{FragmentHit, SchemaSearch, SearchHit};
pub use shard::{ShardConfig, ShardedRepositoryIndex};
pub use team::{EngineerProfile, TaskQueue, TeamPlan};

//! Team-based matching workflows.
//!
//! §5: *"How can we divide very large matching workflows into modular task
//! queues appropriate to each team member … to support a team-based matching
//! effort?"* The planner takes the concept list of a summarized schema (the
//! unit of the paper's incremental workflow) and assigns one task per concept
//! to engineers, balancing estimated effort (LPT scheduling) while honouring
//! domain-expertise preferences.

use harmony_core::summarize::Summary;
use serde::{Deserialize, Serialize};
use sm_schema::Schema;
use sm_text::tokenize_identifier;

/// One engineer on the integration team.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineerProfile {
    /// Display name.
    pub name: String,
    /// Lowercase domain keywords this engineer knows well ("vehicle",
    /// "medical"); tasks mentioning them are steered here when balance
    /// permits.
    pub expertise: Vec<String>,
    /// Relative throughput (1.0 = nominal; 2.0 finishes twice as fast).
    pub speed: f64,
}

impl EngineerProfile {
    /// An engineer with nominal speed and no special expertise.
    pub fn new(name: impl Into<String>) -> Self {
        EngineerProfile {
            name: name.into(),
            expertise: Vec::new(),
            speed: 1.0,
        }
    }

    /// Add expertise keywords.
    pub fn expert_in(mut self, keywords: &[&str]) -> Self {
        self.expertise
            .extend(keywords.iter().map(|k| k.to_lowercase()));
        self
    }

    /// Set relative speed.
    pub fn with_speed(mut self, speed: f64) -> Self {
        self.speed = speed.max(0.1);
        self
    }
}

/// One concept-matching task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatchTask {
    /// Concept label (from the schema summary).
    pub concept: String,
    /// Subtree size — proxy for the candidate pairs the increment scans.
    pub elements: usize,
    /// Whether the assignee's expertise matched the concept.
    pub expertise_hit: bool,
}

/// One engineer's queue.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskQueue {
    /// The engineer.
    pub engineer: String,
    /// Assigned tasks, in assignment order.
    pub tasks: Vec<MatchTask>,
    /// Total effort units (elements / speed).
    pub load: f64,
}

/// A complete team plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TeamPlan {
    /// One queue per engineer.
    pub queues: Vec<TaskQueue>,
}

impl TeamPlan {
    /// Max / mean load ratio — 1.0 is perfectly balanced.
    pub fn imbalance(&self) -> f64 {
        let loads: Vec<f64> = self.queues.iter().map(|q| q.load).collect();
        let max = loads.iter().copied().fold(0.0_f64, f64::max);
        let mean = loads.iter().sum::<f64>() / loads.len().max(1) as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Total tasks assigned.
    pub fn task_count(&self) -> usize {
        self.queues.iter().map(|q| q.tasks.len()).sum()
    }

    /// The queue of a named engineer.
    pub fn queue_of(&self, name: &str) -> Option<&TaskQueue> {
        self.queues.iter().find(|q| q.engineer == name)
    }
}

/// Plan a team-based matching effort: one task per concept of `summary`,
/// assigned to `team` by longest-processing-time-first with an expertise
/// bonus (an expert counts the task at 70% cost).
///
/// Returns an empty plan when the team is empty.
pub fn plan_team(schema: &Schema, summary: &Summary, team: &[EngineerProfile]) -> TeamPlan {
    if team.is_empty() {
        return TeamPlan { queues: vec![] };
    }
    let mut queues: Vec<TaskQueue> = team
        .iter()
        .map(|e| TaskQueue {
            engineer: e.name.clone(),
            tasks: Vec::new(),
            load: 0.0,
        })
        .collect();

    // Tasks sorted by descending size (LPT).
    let mut tasks: Vec<(String, usize)> = summary
        .concepts
        .iter()
        .map(|c| {
            let size = schema.get(c.anchor).map(|_| schema.subtree_size(c.anchor));
            (c.label.clone(), size.unwrap_or(c.size()))
        })
        .collect();
    tasks.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    for (label, elements) in tasks {
        let tokens: Vec<String> = tokenize_identifier(&label);
        // Pick the engineer with the lowest *resulting* effective load.
        let mut best: Option<(usize, f64, bool)> = None;
        for (i, profile) in team.iter().enumerate() {
            let hit = profile
                .expertise
                .iter()
                .any(|kw| tokens.iter().any(|t| t == kw));
            let cost = elements as f64 * if hit { 0.7 } else { 1.0 } / profile.speed;
            let resulting = queues[i].load + cost;
            if best.is_none_or(|(_, bl, _)| resulting < bl) {
                best = Some((i, resulting, hit));
            }
        }
        let (i, resulting, hit) = best.expect("team is non-empty");
        queues[i].tasks.push(MatchTask {
            concept: label,
            elements,
            expertise_hit: hit,
        });
        queues[i].load = resulting;
    }
    TeamPlan { queues }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_core::summarize::Summary;
    use sm_schema::{DataType, ElementKind, SchemaFormat, SchemaId};

    fn schema_with_concepts(sizes: &[(&str, usize)]) -> (Schema, Summary) {
        let mut s = Schema::new(SchemaId(1), "S", SchemaFormat::Relational);
        let mut builder = Summary::builder();
        for (name, size) in sizes {
            let t = s.add_root(*name, ElementKind::Table, DataType::None);
            for i in 0..size - 1 {
                s.add_child(
                    t,
                    format!("{name}_{i}"),
                    ElementKind::Column,
                    DataType::text(),
                )
                .unwrap();
            }
            builder = builder.concept_subtree(&s, *name, t);
        }
        (s, builder.build())
    }

    #[test]
    fn every_concept_assigned_exactly_once() {
        let (s, summary) = schema_with_concepts(&[
            ("Vehicle", 20),
            ("Person", 15),
            ("Event", 10),
            ("Unit", 5),
            ("Weapon", 5),
        ]);
        let team = vec![EngineerProfile::new("alice"), EngineerProfile::new("bob")];
        let plan = plan_team(&s, &summary, &team);
        assert_eq!(plan.task_count(), 5);
        let mut all: Vec<&str> = plan
            .queues
            .iter()
            .flat_map(|q| q.tasks.iter().map(|t| t.concept.as_str()))
            .collect();
        all.sort();
        assert_eq!(all, vec!["Event", "Person", "Unit", "Vehicle", "Weapon"]);
    }

    #[test]
    fn loads_are_balanced() {
        let (s, summary) = schema_with_concepts(&[
            ("A", 20),
            ("B", 18),
            ("C", 12),
            ("D", 10),
            ("E", 8),
            ("F", 6),
        ]);
        let team = vec![EngineerProfile::new("alice"), EngineerProfile::new("bob")];
        let plan = plan_team(&s, &summary, &team);
        assert!(
            plan.imbalance() < 1.2,
            "imbalance {} too high: {:?}",
            plan.imbalance(),
            plan.queues.iter().map(|q| q.load).collect::<Vec<_>>()
        );
    }

    #[test]
    fn expertise_steers_assignment() {
        let (s, summary) =
            schema_with_concepts(&[("VehicleMaintenance", 10), ("PatientRecord", 10)]);
        let team = vec![
            EngineerProfile::new("mech").expert_in(&["vehicle"]),
            EngineerProfile::new("doc").expert_in(&["patient"]),
        ];
        let plan = plan_team(&s, &summary, &team);
        let mech = plan.queue_of("mech").unwrap();
        assert!(mech.tasks.iter().any(|t| t.concept == "VehicleMaintenance"));
        assert!(mech
            .tasks
            .iter()
            .all(|t| t.expertise_hit || t.concept != "VehicleMaintenance"));
        let doc = plan.queue_of("doc").unwrap();
        assert!(doc.tasks.iter().any(|t| t.concept == "PatientRecord"));
    }

    #[test]
    fn faster_engineer_gets_more_work() {
        let sizes: Vec<(String, usize)> = (0..12).map(|i| (format!("C{i}"), 10)).collect();
        let refs: Vec<(&str, usize)> = sizes.iter().map(|(n, s)| (n.as_str(), *s)).collect();
        let (s, summary) = schema_with_concepts(&refs);
        let team = vec![
            EngineerProfile::new("fast").with_speed(2.0),
            EngineerProfile::new("slow").with_speed(1.0),
        ];
        let plan = plan_team(&s, &summary, &team);
        let fast = plan.queue_of("fast").unwrap().tasks.len();
        let slow = plan.queue_of("slow").unwrap().tasks.len();
        assert!(fast > slow, "fast {fast} vs slow {slow}");
    }

    #[test]
    fn empty_team_and_empty_summary() {
        let (s, summary) = schema_with_concepts(&[("A", 5)]);
        assert!(plan_team(&s, &summary, &[]).queues.is_empty());
        let empty_summary = Summary::builder().build();
        let plan = plan_team(&s, &empty_summary, &[EngineerProfile::new("x")]);
        assert_eq!(plan.task_count(), 0);
        assert_eq!(plan.imbalance(), 1.0);
    }

    #[test]
    fn plan_is_deterministic() {
        let (s, summary) = schema_with_concepts(&[("A", 7), ("B", 7), ("C", 7)]);
        let team = vec![EngineerProfile::new("x"), EngineerProfile::new("y")];
        let p1 = plan_team(&s, &summary, &team);
        let p2 = plan_team(&s, &summary, &team);
        assert_eq!(p1, p2);
    }
}

//! Schema clustering over overlap distance.
//!
//! §5: *"Numeric characterizations of overlap could also be used as
//! inter-schema distance metrics by a clustering algorithm. The ability to
//! identify clusters of related schemata is vital, providing CIOs with a big
//! picture view of enterprise data sources and revealing to integration
//! planners the most promising (i.e., tightly clustered) candidates for
//! integration."*
//!
//! Distance = 1 − weighted vocabulary overlap (the same cheap signature the
//! search index uses, served by the shared [`PreparedSchema`] feature cache).
//! Clustering = agglomerative hierarchical with selectable linkage, cut
//! either at `k` clusters or at a distance threshold. Quality metrics
//! (purity, adjusted Rand index) evaluate against generated ground truth.

use crate::repository::MetadataRepository;
use crate::shard::{ShardConfig, ShardedRepositoryIndex};
use harmony_core::batch::prepare_schemas_global;
use harmony_core::prepare::PreparedSchema;
use sm_schema::{Schema, SchemaId};
use std::collections::HashMap;
use std::sync::Arc;

/// Linkage criterion for agglomerative clustering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Linkage {
    /// Minimum pairwise distance between clusters.
    Single,
    /// Maximum pairwise distance.
    Complete,
    /// Mean pairwise distance (UPGMA).
    Average,
}

/// A flat clustering of schemata.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    /// Clusters: each is a list of schema ids.
    pub clusters: Vec<Vec<SchemaId>>,
}

impl Clustering {
    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// True when there are no clusters.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Cluster index of a schema.
    pub fn cluster_of(&self, id: SchemaId) -> Option<usize> {
        self.clusters.iter().position(|c| c.contains(&id))
    }
}

/// Pairwise distance matrix over a schema list.
#[derive(Debug, Clone)]
pub struct DistanceMatrix {
    ids: Vec<SchemaId>,
    /// Row-major `n×n` distances in `[0,1]`.
    d: Vec<f64>,
}

impl DistanceMatrix {
    /// Vocabulary-overlap distances for all schemata in a repository,
    /// served by the repository's maintained token index.
    pub fn from_repository(repo: &MetadataRepository) -> Self {
        Self::from_index(&repo.token_index())
    }

    /// Vocabulary-overlap distances for an explicit schema list, bulk-
    /// prepared through the shared feature cache on the process-wide
    /// executor (the batch layer's Plan-stage primitive — cold registries
    /// prepare concurrently instead of one schema at a time).
    pub fn from_schemas(schemas: &[&Schema]) -> Self {
        Self::from_prepared(&prepare_schemas_global(schemas))
    }

    /// Vocabulary-overlap distances over already-prepared schemata (builds
    /// a transient token index in parallel on the global executor).
    pub fn from_prepared(prepared: &[Arc<PreparedSchema>]) -> Self {
        let exec = harmony_core::exec::Executor::global();
        Self::from_index(&ShardedRepositoryIndex::build_parallel(
            prepared,
            exec,
            exec.threads(),
            ShardConfig::default(),
        ))
    }

    /// Overlap distances straight from the batch planner's Plan-stage
    /// estimates ([`harmony_core::batch::OverlapEstimates`], also served
    /// by [`ShardedRepositoryIndex::overlap_estimates`] and
    /// `RepositoryIndex::overlap_estimates`): the same one-walk bounds
    /// that prune pair execution feed clustering, so a cluster-first plan
    /// over a registry estimates once and reuses it for both decisions.
    /// `ids[i]` labels row `i` of the estimates.
    ///
    /// Distances are the estimator's weighted-coverage metric
    /// ([`harmony_core::batch::OverlapEstimates::distance`]) — IDF-mass
    /// coverage of the smaller vocabulary, not the unweighted Jaccard of
    /// [`Self::from_index`]; the two agree on "identical" (0) and
    /// "disjoint" (1) and rank overlaps similarly in between.
    ///
    /// # Panics
    /// Panics when `ids` and the estimates disagree on schema count.
    pub fn from_overlap(
        estimates: &harmony_core::batch::OverlapEstimates,
        ids: Vec<SchemaId>,
    ) -> Self {
        assert_eq!(
            estimates.len(),
            ids.len(),
            "one id per estimated schema row"
        );
        let n = ids.len();
        let mut d = vec![0.0; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let dist = estimates.distance(i, j);
                d[i * n + j] = dist;
                d[j * n + i] = dist;
            }
        }
        DistanceMatrix { ids, d }
    }

    /// Vocabulary-overlap distances from a token index. Pairwise
    /// intersection counts come from one walk over each posting list
    /// (`Σ df²` work) instead of `n²` per-pair set intersections; the
    /// Jaccard distances are identical. Rows cover the index's *live*
    /// schemata, in ascending slot order.
    pub fn from_index(index: &ShardedRepositoryIndex) -> Self {
        let live = index.live_slots();
        let n = live.len();
        let inter = index.pairwise_intersections();
        let mut d = vec![0.0; n * n];
        for i in 0..n {
            let len_i = index.signature(live[i]).len();
            for j in (i + 1)..n {
                let shared = f64::from(inter[i * n + j]);
                let union = (len_i + index.signature(live[j]).len()) as f64 - shared;
                let dist = if union == 0.0 {
                    0.0
                } else {
                    1.0 - shared / union
                };
                d[i * n + j] = dist;
                d[j * n + i] = dist;
            }
        }
        DistanceMatrix {
            ids: live.into_iter().map(|s| index.id_at(s)).collect(),
            d,
        }
    }

    /// Number of schemata.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when no schemata are present.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Distance between schemata by index.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.d[i * self.ids.len() + j]
    }

    /// The schema ids, in matrix order.
    pub fn ids(&self) -> &[SchemaId] {
        &self.ids
    }
}

/// Cut criterion for [`agglomerative`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Cut {
    /// Stop at exactly `k` clusters (or fewer schemata than `k`).
    K(usize),
    /// Stop when the next merge would exceed this distance.
    MaxDistance(f64),
}

/// Agglomerative hierarchical clustering.
pub fn agglomerative(dm: &DistanceMatrix, linkage: Linkage, cut: Cut) -> Clustering {
    let n = dm.len();
    if n == 0 {
        return Clustering { clusters: vec![] };
    }
    // Active clusters as index lists.
    let mut clusters: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();

    let cluster_dist = |a: &[usize], b: &[usize]| -> f64 {
        let mut acc: f64 = match linkage {
            Linkage::Single => f64::INFINITY,
            Linkage::Complete => f64::NEG_INFINITY,
            Linkage::Average => 0.0,
        };
        let mut count = 0usize;
        for &i in a {
            for &j in b {
                let d = dm.get(i, j);
                match linkage {
                    Linkage::Single => acc = acc.min(d),
                    Linkage::Complete => acc = acc.max(d),
                    Linkage::Average => {
                        acc += d;
                        count += 1;
                    }
                }
            }
        }
        if linkage == Linkage::Average {
            acc / count.max(1) as f64
        } else {
            acc
        }
    };

    loop {
        let stop = match cut {
            Cut::K(k) => clusters.len() <= k.max(1),
            Cut::MaxDistance(_) => clusters.len() <= 1,
        };
        if stop {
            break;
        }
        // Find the closest pair.
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..clusters.len() {
            for j in (i + 1)..clusters.len() {
                let d = cluster_dist(&clusters[i], &clusters[j]);
                if best.is_none_or(|(_, _, bd)| d < bd) {
                    best = Some((i, j, d));
                }
            }
        }
        let Some((i, j, d)) = best else { break };
        if let Cut::MaxDistance(max) = cut {
            if d > max {
                break;
            }
        }
        let merged = clusters.remove(j);
        clusters[i].extend(merged);
    }

    Clustering {
        clusters: clusters
            .into_iter()
            .map(|c| c.into_iter().map(|i| dm.ids()[i]).collect())
            .collect(),
    }
}

/// External clustering-quality metrics against ground-truth labels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterEval {
    /// Purity: fraction of schemata in their cluster's majority class.
    pub purity: f64,
    /// Adjusted Rand index in `[-1, 1]` (1 = perfect agreement).
    pub ari: f64,
}

impl ClusterEval {
    /// Evaluate a clustering against ground-truth labels (`labels[i]` is the
    /// true class of `ids[i]` as ordered in the distance matrix / repo).
    pub fn evaluate(clustering: &Clustering, truth: &HashMap<SchemaId, usize>) -> ClusterEval {
        let n: usize = clustering.clusters.iter().map(Vec::len).sum();
        if n == 0 {
            return ClusterEval {
                purity: 0.0,
                ari: 0.0,
            };
        }
        // Purity.
        let mut majority_total = 0usize;
        for cluster in &clustering.clusters {
            let mut counts: HashMap<usize, usize> = HashMap::new();
            for id in cluster {
                if let Some(&label) = truth.get(id) {
                    *counts.entry(label).or_insert(0) += 1;
                }
            }
            majority_total += counts.values().copied().max().unwrap_or(0);
        }
        let purity = majority_total as f64 / n as f64;

        // Adjusted Rand index via the pair-counting contingency table.
        let comb2 = |x: usize| -> f64 { (x as f64) * (x as f64 - 1.0) / 2.0 };
        let mut contingency: HashMap<(usize, usize), usize> = HashMap::new();
        let mut cluster_sizes: Vec<usize> = Vec::new();
        let mut class_sizes: HashMap<usize, usize> = HashMap::new();
        for (ci, cluster) in clustering.clusters.iter().enumerate() {
            cluster_sizes.push(cluster.len());
            for id in cluster {
                if let Some(&label) = truth.get(id) {
                    *contingency.entry((ci, label)).or_insert(0) += 1;
                    *class_sizes.entry(label).or_insert(0) += 1;
                }
            }
        }
        let sum_ij: f64 = contingency.values().map(|&x| comb2(x)).sum();
        let sum_i: f64 = cluster_sizes.iter().map(|&x| comb2(x)).sum();
        let sum_j: f64 = class_sizes.values().map(|&x| comb2(x)).sum();
        let total = comb2(n);
        let expected = sum_i * sum_j / total.max(1.0);
        let max_index = (sum_i + sum_j) / 2.0;
        let ari = if (max_index - expected).abs() < 1e-12 {
            1.0
        } else {
            (sum_ij - expected) / (max_index - expected)
        };
        ClusterEval { purity, ari }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_schema::{DataType, ElementKind, SchemaFormat};

    fn schema(id: u32, words: &[&str]) -> Schema {
        let mut s = Schema::new(SchemaId(id), format!("S{id}"), SchemaFormat::Generic);
        let r = s.add_root("Root", ElementKind::Group, DataType::None);
        for w in words {
            s.add_child(r, *w, ElementKind::Column, DataType::text())
                .unwrap();
        }
        s
    }

    /// Two obvious groups: vehicle-ish and medical-ish.
    fn schemas() -> Vec<Schema> {
        vec![
            schema(0, &["vin", "make", "model", "wheel"]),
            schema(1, &["vin", "engine", "model"]),
            schema(2, &["patient", "blood", "admission"]),
            schema(3, &["patient", "diagnosis", "blood"]),
        ]
    }

    fn dm(schemas: &[Schema]) -> DistanceMatrix {
        let refs: Vec<&Schema> = schemas.iter().collect();
        DistanceMatrix::from_schemas(&refs)
    }

    #[test]
    fn distance_matrix_properties() {
        let ss = schemas();
        let m = dm(&ss);
        assert_eq!(m.len(), 4);
        for i in 0..4 {
            assert_eq!(m.get(i, i), 0.0);
            for j in 0..4 {
                assert!((m.get(i, j) - m.get(j, i)).abs() < 1e-12);
                assert!((0.0..=1.0).contains(&m.get(i, j)));
            }
        }
        // Same-domain pairs are closer than cross-domain.
        assert!(m.get(0, 1) < m.get(0, 2));
        assert!(m.get(2, 3) < m.get(1, 3));
    }

    #[test]
    fn k2_recovers_the_two_domains() {
        let ss = schemas();
        let m = dm(&ss);
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let c = agglomerative(&m, linkage, Cut::K(2));
            assert_eq!(c.len(), 2, "{linkage:?}");
            let c0 = c.cluster_of(SchemaId(0)).unwrap();
            assert_eq!(c.cluster_of(SchemaId(1)), Some(c0));
            let c2 = c.cluster_of(SchemaId(2)).unwrap();
            assert_eq!(c.cluster_of(SchemaId(3)), Some(c2));
            assert_ne!(c0, c2);
        }
    }

    #[test]
    fn distance_cut_stops_before_merging_domains() {
        let ss = schemas();
        let m = dm(&ss);
        let c = agglomerative(&m, Linkage::Average, Cut::MaxDistance(0.8));
        assert_eq!(c.len(), 2);
        // A tiny threshold keeps everything separate.
        let c4 = agglomerative(&m, Linkage::Average, Cut::MaxDistance(0.01));
        assert_eq!(c4.len(), 4);
    }

    #[test]
    fn perfect_clustering_scores_perfectly() {
        let ss = schemas();
        let m = dm(&ss);
        let c = agglomerative(&m, Linkage::Average, Cut::K(2));
        let truth: HashMap<SchemaId, usize> = [
            (SchemaId(0), 0),
            (SchemaId(1), 0),
            (SchemaId(2), 1),
            (SchemaId(3), 1),
        ]
        .into_iter()
        .collect();
        let e = ClusterEval::evaluate(&c, &truth);
        assert_eq!(e.purity, 1.0);
        assert!((e.ari - 1.0).abs() < 1e-9);
    }

    #[test]
    fn broken_clustering_scores_low() {
        let clustering = Clustering {
            clusters: vec![
                vec![SchemaId(0), SchemaId(2)],
                vec![SchemaId(1), SchemaId(3)],
            ],
        };
        let truth: HashMap<SchemaId, usize> = [
            (SchemaId(0), 0),
            (SchemaId(1), 0),
            (SchemaId(2), 1),
            (SchemaId(3), 1),
        ]
        .into_iter()
        .collect();
        let e = ClusterEval::evaluate(&clustering, &truth);
        assert!(e.purity <= 0.5 + 1e-9);
        assert!(e.ari < 0.1, "ari {}", e.ari);
    }

    #[test]
    fn degenerate_inputs() {
        let empty = DistanceMatrix::from_schemas(&[]);
        assert!(agglomerative(&empty, Linkage::Average, Cut::K(3)).is_empty());
        let one = schemas().remove(0);
        let m = DistanceMatrix::from_schemas(&[&one]);
        let c = agglomerative(&m, Linkage::Average, Cut::K(3));
        assert_eq!(c.len(), 1);
        // k = 0 treated as 1.
        let c1 = agglomerative(&m, Linkage::Average, Cut::K(0));
        assert_eq!(c1.len(), 1);
    }

    #[test]
    fn single_cluster_when_k_is_one() {
        let ss = schemas();
        let m = dm(&ss);
        let c = agglomerative(&m, Linkage::Complete, Cut::K(1));
        assert_eq!(c.len(), 1);
        assert_eq!(c.clusters[0].len(), 4);
    }

    /// The core batch planner's `ClusterFirst` partition (union-find
    /// connected components at a distance cut) must equal single-linkage
    /// agglomerative clustering over `from_overlap` distances at the same
    /// cut — the equivalence that lets `harmony_core` plan without
    /// depending on this crate.
    #[test]
    fn cluster_first_components_equal_single_linkage_at_cut() {
        use harmony_core::batch::prepare_schemas_global;
        use harmony_core::batch::{ClusterPlan, OverlapEstimates};

        let ss = schemas();
        let refs: Vec<&Schema> = ss.iter().collect();
        let prepared = prepare_schemas_global(&refs);
        let estimates = OverlapEstimates::from_prepared(&prepared);
        let ids: Vec<SchemaId> = ss.iter().map(|s| s.id).collect();
        let m = DistanceMatrix::from_overlap(&estimates, ids.clone());

        for cut in [0.01, 0.3, 0.6, 0.9] {
            let plan = ClusterPlan::from_overlap(&estimates, cut);
            let aggl = agglomerative(&m, Linkage::Single, Cut::MaxDistance(cut));
            // Compare as partitions: same component ⇔ same cluster.
            for i in 0..ids.len() {
                for j in 0..ids.len() {
                    let same_plan = plan.component_of[i] == plan.component_of[j];
                    let same_aggl = aggl.cluster_of(ids[i]) == aggl.cluster_of(ids[j]);
                    assert_eq!(
                        same_plan, same_aggl,
                        "cut {cut}: pair ({i}, {j}) split differently"
                    );
                }
            }
            assert_eq!(plan.components(), aggl.len(), "cut {cut}");
        }
    }

    #[test]
    fn from_overlap_distances_are_metric_like() {
        use harmony_core::batch::prepare_schemas_global;
        use harmony_core::batch::OverlapEstimates;

        let ss = schemas();
        let refs: Vec<&Schema> = ss.iter().collect();
        let prepared = prepare_schemas_global(&refs);
        let estimates = OverlapEstimates::from_prepared(&prepared);
        let ids: Vec<SchemaId> = ss.iter().map(|s| s.id).collect();
        let m = DistanceMatrix::from_overlap(&estimates, ids);
        for i in 0..4 {
            assert_eq!(m.get(i, i), 0.0);
            for j in 0..4 {
                assert!((m.get(i, j) - m.get(j, i)).abs() < 1e-12);
                assert!((0.0..=1.0).contains(&m.get(i, j)));
            }
        }
        // Same-domain pairs are closer than cross-domain, as in the
        // Jaccard matrix.
        assert!(m.get(0, 1) < m.get(0, 2));
        assert!(m.get(2, 3) < m.get(1, 3));
    }
}

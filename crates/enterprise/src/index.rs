//! The repository-level token index.
//!
//! §5's registry scenarios — query-by-schema search, overlap clustering, COI
//! proposal — all reduce to questions about shared vocabulary between
//! schemata. Before this module each of them answered those questions by
//! linear scans over per-schema signature sets: `SchemaSearch::query`
//! intersected the query signature with *every* indexed schema,
//! `DistanceMatrix` intersected all `n²` signature pairs, and COI proposal
//! re-intersected member signatures cluster by cluster.
//!
//! [`RepositoryIndex`] inverts the data once: token → sorted posting list of
//! schema slots, plus the frozen IDF weight table and per-schema total
//! weights that used to be rebuilt per query. Searching then touches only
//! the posting lists of the query's tokens (schemata sharing no vocabulary
//! are never visited), pairwise intersection counts come from walking each
//! posting list once, and all-member shared vocabulary is a posting-list
//! membership test.
//!
//! Like the element-level blocking index (`harmony_core::index`), the store
//! is a flat CSR layout: one sorted token table, one contiguous postings
//! arena sliced by offsets, and a parallel `f64` weight table — lookups are
//! binary searches over contiguous `u32`s instead of `HashMap` probes, and
//! query accumulation runs over a dense per-slot buffer instead of a
//! `HashMap<u32, f64>`. Building fans schema chunks out across the
//! persistent executor ([`RepositoryIndex::build_parallel`]) and merges the
//! per-chunk `(token, slot)` pair lists in chunk order, so the index — and
//! every weight bit — is identical at any lane count.
//!
//! The index is maintained by
//! [`crate::repository::MetadataRepository::token_index`], which caches it
//! and drops the cache whenever a schema is (re-)registered; schema
//! preparations themselves come from the process-wide
//! [`harmony_core::prepare::FeatureCache`], whose content fingerprints make
//! re-registered-but-unchanged schemata free to re-index.

use harmony_core::exec::Executor;
use harmony_core::prepare::PreparedSchema;
use sm_schema::SchemaId;
use sm_text::intern::{TokenArena, TokenId};
use std::collections::HashMap;
use std::sync::Arc;

/// Smoothed IDF weight of a token present in `df` of `n` schemata — the one
/// definition shared by the index, search scoring, and fragment scoring.
pub(crate) fn idf_weight(n: f64, df: f64) -> f64 {
    ((n + 1.0) / (df + 1.0)).ln() + 1.0
}

/// An inverted token index over a repository's schema signatures, with the
/// IDF weight table frozen at build time.
///
/// Internally everything is keyed by interned [`TokenId`]s straight from the
/// preparations' `signature_ids` — index build resolves strings once (for
/// the display-facing signature lists) and every query afterwards moves
/// integers. Signature id lists are ordered lexicographically by resolved
/// string, which keeps all weight summations in the historical string-sorted
/// order (float addition is not associative).
#[derive(Debug)]
pub struct RepositoryIndex {
    /// Schema ids in slot order (registration order).
    ids: Vec<SchemaId>,
    /// id → slot.
    slot_of: HashMap<SchemaId, u32>,
    /// Content fingerprint of each indexed schema (staleness checks).
    fingerprints: Vec<u64>,
    /// The arena the token ids point into.
    arena: Arc<TokenArena>,
    /// Distinct name token ids of each schema, lexicographically ordered by
    /// resolved string.
    signature_ids: Vec<Vec<TokenId>>,
    /// The same signatures, resolved (display, reports, compat).
    signatures: Vec<Vec<String>>,
    /// Distinct indexed token ids, ascending — the binary-search table.
    tokens: Vec<TokenId>,
    /// `offsets[t]..offsets[t+1]` slices `postings` for `tokens[t]`.
    offsets: Vec<u32>,
    /// Contiguous posting arena: ascending schema slots per token.
    postings: Vec<u32>,
    /// Frozen IDF weight of `tokens[t]`, parallel to `tokens`.
    weights: Vec<f64>,
    /// Weight of a token absent from every indexed schema (`df = 0`).
    unseen_weight: f64,
    /// Per-schema total signature weight, summed in sorted-token order.
    total_weights: Vec<f64>,
}

/// Schemata per parallel build chunk — signature resolution (the string
/// half of a build) dominates, so chunks stay small enough to balance.
const BUILD_CHUNK_SCHEMAS: usize = 16;

impl RepositoryIndex {
    /// Build the index over prepared schemata, in the given (slot) order,
    /// inline on the calling thread.
    ///
    /// # Panics
    /// Panics when the preparations do not all share one token arena
    /// (mixed-arena ids are not comparable).
    pub fn build(prepared: &[Arc<PreparedSchema>]) -> Self {
        Self::build_opt(prepared, None)
    }

    /// [`Self::build`] with schema chunks fanned out across up to
    /// `parallelism` executor lanes. Per-chunk outputs merge in slot order
    /// before the sort that lays out the postings arena, so the index is
    /// bit-identical to the inline build at every lane count.
    pub fn build_parallel(
        prepared: &[Arc<PreparedSchema>],
        exec: &Executor,
        parallelism: usize,
    ) -> Self {
        Self::build_opt(prepared, Some((exec, parallelism)))
    }

    fn build_opt(prepared: &[Arc<PreparedSchema>], par: Option<(&Executor, usize)>) -> Self {
        harmony_core::obs::add(harmony_core::obs::Counter::RepoIndexBuilds, 1);
        let _span = harmony_core::obs::span(
            harmony_core::obs::SpanKind::RepoIndexBuild,
            prepared.len() as u64,
        );
        let arena = prepared
            .first()
            .map(|p| Arc::clone(p.arena()))
            .unwrap_or_else(|| Arc::clone(TokenArena::global()));
        for p in prepared {
            assert!(
                Arc::ptr_eq(p.arena(), &arena),
                "all indexed preparations must share one token arena"
            );
        }
        let ids: Vec<SchemaId> = prepared.iter().map(|p| p.schema_id).collect();
        let fingerprints: Vec<u64> = prepared.iter().map(|p| p.fingerprint).collect();

        // Parallel phase: per schema chunk, resolve the display signatures
        // (the string-allocating half) and emit packed `(token << 32) |
        // slot` posting pairs. Chunk outputs stitch in slot order via the
        // shared deterministic chunk runner.
        struct ChunkOut {
            pairs: Vec<u64>,
            signatures: Vec<Vec<String>>,
        }
        let outs: Vec<ChunkOut> = harmony_core::index::run_chunked(
            par,
            prepared.len(),
            BUILD_CHUNK_SCHEMAS,
            |_, range| {
                let mut out = ChunkOut {
                    pairs: Vec::new(),
                    signatures: Vec::with_capacity(range.len()),
                };
                for slot in range {
                    let sig = prepared[slot].signature_ids();
                    for &t in sig {
                        out.pairs.push((u64::from(t.0) << 32) | slot as u64);
                    }
                    out.signatures.push(arena.resolve_all(sig));
                }
                out
            },
        );

        let mut signatures: Vec<Vec<String>> = Vec::with_capacity(prepared.len());
        let mut pairs: Vec<u64> = Vec::with_capacity(outs.iter().map(|o| o.pairs.len()).sum());
        for out in outs {
            signatures.extend(out.signatures);
            pairs.extend(out.pairs);
        }
        let signature_ids: Vec<Vec<TokenId>> = prepared
            .iter()
            .map(|p| p.signature_ids().to_vec())
            .collect();

        // Token-major, slot-ascending: the CSR layout order. Signatures are
        // distinct per schema, so there are no duplicate pairs. The CSR
        // assembly (and the one smoothed-IDF formula) is shared with the
        // element-level blocking index.
        pairs.sort_unstable();
        let n = ids.len().max(1) as f64;
        let csr = harmony_core::index::csr_from_sorted_pairs(&pairs, n);
        let tokens: Vec<TokenId> = csr.keys.into_iter().map(TokenId).collect();
        let (offsets, postings, weights) = (csr.offsets, csr.postings, csr.weights);
        let unseen_weight = idf_weight(n, 0.0);

        // Sorted-token summation order keeps totals deterministic (float
        // addition is not associative).
        let weight_of = |t: TokenId| -> f64 {
            let slot = tokens.binary_search(&t).expect("signature token indexed");
            weights[slot]
        };
        let total_weights: Vec<f64> = signature_ids
            .iter()
            .map(|sig| sig.iter().map(|&t| weight_of(t)).sum())
            .collect();
        let slot_of = ids
            .iter()
            .enumerate()
            .map(|(slot, &id)| (id, slot as u32))
            .collect();
        RepositoryIndex {
            ids,
            slot_of,
            fingerprints,
            arena,
            signature_ids,
            signatures,
            tokens,
            offsets,
            postings,
            weights,
            unseen_weight,
            total_weights,
        }
    }

    /// Number of indexed schemata.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Schema ids in slot order.
    pub fn ids(&self) -> &[SchemaId] {
        &self.ids
    }

    /// Slot of a schema id.
    pub fn slot(&self, id: SchemaId) -> Option<u32> {
        self.slot_of.get(&id).copied()
    }

    /// Content fingerprint the slot was indexed under.
    pub fn fingerprint(&self, slot: u32) -> u64 {
        self.fingerprints[slot as usize]
    }

    /// Sorted distinct name tokens of a slot.
    pub fn signature(&self, slot: u32) -> &[String] {
        &self.signatures[slot as usize]
    }

    /// Interned signature of a slot, lexicographically ordered by resolved
    /// string.
    pub fn signature_ids(&self, slot: u32) -> &[TokenId] {
        &self.signature_ids[slot as usize]
    }

    /// The arena this index's token ids point into.
    pub fn arena(&self) -> &Arc<TokenArena> {
        &self.arena
    }

    /// Total signature weight of a slot (frozen at build).
    pub fn total_weight(&self, slot: u32) -> f64 {
        self.total_weights[slot as usize]
    }

    /// Slot of a token in the sorted table, if indexed.
    #[inline]
    fn token_slot(&self, token: TokenId) -> Option<usize> {
        self.tokens.binary_search(&token).ok()
    }

    /// Frozen IDF weight of an interned token (`df = 0` weight for tokens
    /// absent from every indexed schema).
    pub fn weight_by_id(&self, token: TokenId) -> f64 {
        self.token_slot(token)
            .map_or(self.unseen_weight, |slot| self.weights[slot])
    }

    /// Frozen IDF weight of a token (`df = 0` weight for unseen tokens).
    pub fn weight(&self, token: &str) -> f64 {
        self.arena
            .lookup(token)
            .map_or(self.unseen_weight, |id| self.weight_by_id(id))
    }

    /// Posting slice and frozen IDF weight of an interned token — one
    /// binary search for both (`None` when unindexed).
    #[inline]
    fn probe_token(&self, token: TokenId) -> Option<(&[u32], f64)> {
        let slot = self.token_slot(token)?;
        let range = self.offsets[slot] as usize..self.offsets[slot + 1] as usize;
        Some((&self.postings[range], self.weights[slot]))
    }

    /// Posting list of an interned token: ascending slots of schemata
    /// containing it.
    pub fn postings_by_id(&self, token: TokenId) -> &[u32] {
        self.probe_token(token).map_or(&[], |(posting, _)| posting)
    }

    /// Posting list of a token: ascending slots of schemata containing it.
    pub fn postings(&self, token: &str) -> &[u32] {
        self.arena
            .lookup(token)
            .map_or(&[], |id| self.postings_by_id(id))
    }

    /// Accumulate the shared signature weight between a query signature and
    /// every indexed schema, visiting only posting lists of the query's
    /// tokens. Returns `(slot, shared_weight)` for every schema sharing at
    /// least one token, slots ascending. `query_tokens` must be in
    /// lexicographic resolved-string order so each slot's weight sum has the
    /// deterministic historical order.
    pub fn accumulate_ids(&self, query_tokens: &[TokenId]) -> Vec<(u32, f64)> {
        // Dense per-slot accumulator + touched list: the per-slot addition
        // order is the query-token order, exactly as the historical
        // map-keyed accumulator summed.
        let mut acc: Vec<f64> = vec![0.0; self.len()];
        let mut touched: Vec<u32> = Vec::new();
        let mut postings_touched = 0u64;
        for &t in query_tokens {
            let Some((posting, w)) = self.probe_token(t) else {
                continue;
            };
            postings_touched += posting.len() as u64;
            for &slot in posting {
                if acc[slot as usize] == 0.0 {
                    touched.push(slot);
                }
                acc[slot as usize] += w;
            }
        }
        harmony_core::obs::add(harmony_core::obs::Counter::RepoProbeRows, 1);
        harmony_core::obs::add(harmony_core::obs::Counter::RepoPostings, postings_touched);
        touched.sort_unstable();
        touched
            .into_iter()
            .map(|slot| (slot, acc[slot as usize]))
            .collect()
    }

    /// String-keyed [`Self::accumulate_ids`] (inspection and tests; the
    /// search path feeds pre-interned signature ids).
    pub fn accumulate<'q>(
        &self,
        query_tokens: impl IntoIterator<Item = &'q str>,
    ) -> Vec<(u32, f64)> {
        let ids: Vec<TokenId> = query_tokens
            .into_iter()
            .filter_map(|t| self.arena.lookup(t))
            .collect();
        self.accumulate_ids(&ids)
    }

    /// Pairwise signature-intersection counts, as a dense row-major `n×n`
    /// symmetric matrix (diagonal zero). Each posting list is walked once,
    /// so the cost is `Σ_token df(token)²` instead of the `n² · |signature|`
    /// of all-pairs set intersection — far cheaper when overlap is sparse,
    /// never asymptotically worse.
    pub fn pairwise_intersections(&self) -> Vec<u32> {
        let n = self.len();
        let mut inter = vec![0u32; n * n];
        for w in self.offsets.windows(2) {
            let posting = &self.postings[w[0] as usize..w[1] as usize];
            for (i, &a) in posting.iter().enumerate() {
                for &b in &posting[i + 1..] {
                    inter[a as usize * n + b as usize] += 1;
                    inter[b as usize * n + a as usize] += 1;
                }
            }
        }
        inter
    }

    /// IDF-weighted vocabulary-overlap upper bounds for all `n²` schema
    /// pairs — the batch planner's Plan-stage estimator
    /// ([`harmony_core::batch::OverlapEstimates`]) served straight from
    /// this index's frozen postings and weights in **one walk** over the
    /// posting arena, no per-pair probes. Tokens posted in more than
    /// `df_cap` schemata are charged to the shared ubiquitous mass instead
    /// of walked quadratically (pass `usize::MAX` for exact bounds).
    ///
    /// The vocabulary here is the registry's *signature* (name-token)
    /// vocabulary, weighted by the same frozen IDF table every search and
    /// clustering probe uses — coarser than the element-level blocking
    /// features the in-core batch estimator walks, which is what makes it
    /// free at registry scale.
    pub fn overlap_estimates(&self, df_cap: usize) -> harmony_core::batch::OverlapEstimates {
        harmony_core::batch::OverlapEstimates::from_token_postings(
            self.len(),
            self.offsets.windows(2).enumerate().map(|(t, w)| {
                let posting = &self.postings[w[0] as usize..w[1] as usize];
                (self.weights[t], posting)
            }),
            df_cap,
        )
    }

    /// Tokens present in *every* given schema, sorted. Walks the smallest
    /// member's signature and keeps tokens whose posting list contains all
    /// other members (binary search per member). Unindexed ids yield an
    /// empty result.
    pub fn shared_tokens(&self, members: &[SchemaId]) -> Vec<String> {
        let Some(mut slots) = members
            .iter()
            .map(|&id| self.slot(id))
            .collect::<Option<Vec<u32>>>()
        else {
            return Vec::new();
        };
        // Dedup: a repeated member must not inflate the posting-size
        // pre-check below.
        slots.sort_unstable();
        slots.dedup();
        let Some(&smallest) = slots
            .iter()
            .min_by_key(|&&s| self.signature_ids[s as usize].len())
        else {
            return Vec::new();
        };
        // Walk the smallest signature's ids (lexical order is preserved
        // into the result) and keep tokens posted in every member.
        let kept: Vec<TokenId> = self.signature_ids[smallest as usize]
            .iter()
            .filter(|&&t| {
                let posting = self.postings_by_id(t);
                posting.len() >= slots.len()
                    && slots.iter().all(|s| posting.binary_search(s).is_ok())
            })
            .copied()
            .collect();
        self.arena.resolve_all(&kept)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_core::prepare::FeatureCache;
    use sm_schema::{DataType, ElementKind, Schema, SchemaFormat};
    use sm_text::normalize::Normalizer;

    fn schema(id: u32, words: &[&str]) -> Schema {
        let mut s = Schema::new(SchemaId(id), format!("S{id}"), SchemaFormat::Generic);
        let r = s.add_root("Root", ElementKind::Group, DataType::None);
        for w in words {
            s.add_child(r, *w, ElementKind::Column, DataType::text())
                .unwrap();
        }
        s
    }

    fn index(schemas: &[Schema]) -> RepositoryIndex {
        let cache = FeatureCache::new(Normalizer::new());
        let prepared: Vec<_> = schemas.iter().map(|s| cache.prepare(s)).collect();
        RepositoryIndex::build(&prepared)
    }

    fn world() -> Vec<Schema> {
        vec![
            schema(0, &["vin", "make", "model"]),
            schema(1, &["vin", "engine"]),
            schema(2, &["patient", "blood"]),
        ]
    }

    #[test]
    fn postings_are_sorted_slots() {
        let idx = index(&world());
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.postings("vin"), &[0, 1]);
        assert_eq!(idx.postings("patient"), &[2]);
        assert_eq!(idx.postings("absent"), &[] as &[u32]);
        assert_eq!(idx.slot(SchemaId(1)), Some(1));
        assert_eq!(idx.slot(SchemaId(9)), None);
    }

    #[test]
    fn rare_tokens_weigh_more_and_unseen_most() {
        let idx = index(&world());
        assert!(idx.weight("patient") > idx.weight("vin"));
        assert!(idx.weight("never-indexed") > idx.weight("patient"));
    }

    #[test]
    fn accumulate_visits_only_sharing_schemata() {
        let idx = index(&world());
        // "engin" is the stemmed form of "engine", present only in slot 1.
        let hits = idx.accumulate(["engin", "vin"]);
        // Slot 2 shares neither token and must not appear.
        assert_eq!(hits.iter().map(|&(s, _)| s).collect::<Vec<_>>(), vec![0, 1]);
        let w0 = hits[0].1;
        let w1 = hits[1].1;
        assert!(w1 > w0, "slot 1 shares vin + engin, slot 0 only vin");
    }

    #[test]
    fn pairwise_intersections_match_direct_counts() {
        let idx = index(&world());
        let inter = idx.pairwise_intersections();
        let n = idx.len();
        // Every schema shares the "root" container token; 0 and 1 also
        // share "vin".
        assert_eq!(inter[n], 2, "schemas 1,0 share vin + root");
        assert_eq!(inter[1], 2, "symmetric");
        assert_eq!(inter[2], 1, "vehicle/medical share only root");
        assert_eq!(inter[0], 0, "diagonal untouched");
    }

    #[test]
    fn shared_tokens_require_all_members() {
        let idx = index(&world());
        let both = idx.shared_tokens(&[SchemaId(0), SchemaId(1)]);
        assert!(both.contains(&"vin".to_string()));
        assert!(!both.contains(&"make".to_string()));
        assert!(
            idx.shared_tokens(&[SchemaId(0), SchemaId(2)])
                .iter()
                .all(|t| t == "root"), // only the shared Root container token, if kept
        );
        assert!(idx.shared_tokens(&[SchemaId(0), SchemaId(99)]).is_empty());
        // Duplicate members must not shrink the result.
        assert_eq!(
            idx.shared_tokens(&[SchemaId(0), SchemaId(0)]),
            idx.shared_tokens(&[SchemaId(0)]),
        );
    }
}

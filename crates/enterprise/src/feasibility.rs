//! Project feasibility and cost estimation.
//!
//! The first two use cases of §2. *Project feasibility*: "schema matching
//! tools are needed to quickly estimate the extent to which it will be
//! feasible to generate a community vocabulary from a collection of data
//! sources" — no resources are committed "unless the potential value is
//! clear". *Project planning*: "how much time and money should be allocated
//! to these projects?".
//!
//! A [`FeasibilityReport`] combines pairwise overlap estimates (from quick
//! matches or vocabulary signatures) with the `harmony-core` effort model to
//! produce the go/no-go evidence and the cost estimate a contract would be
//! written against.

use harmony_core::batch::prepare_schemas_global;
use harmony_core::effort::{EffortEstimate, EffortModel};
use harmony_core::prepare::PreparedSchema;
use serde::{Deserialize, Serialize};
use sm_schema::{Schema, SchemaId};
use std::sync::Arc;

/// Go / no-go grading of a proposed integration project.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeasibilityGrade {
    /// High overlap: a community vocabulary will come cheaply.
    Favorable,
    /// Moderate overlap: feasible with real effort.
    Marginal,
    /// Low overlap: the sources barely share concepts; reconsider scope.
    Unfavorable,
}

/// Feasibility assessment for building a community vocabulary over a set of
/// candidate source schemata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeasibilityReport {
    /// The candidate sources.
    pub members: Vec<SchemaId>,
    /// Mean pairwise vocabulary overlap in `[0,1]`.
    pub mean_overlap: f64,
    /// Minimum pairwise overlap (the weakest link).
    pub min_overlap: f64,
    /// Total elements across members.
    pub total_elements: usize,
    /// Grade derived from the overlap statistics.
    pub grade: FeasibilityGrade,
    /// Estimated matching effort to build the vocabulary.
    pub effort: EffortEstimate,
}

/// Assess the feasibility of convening a COI over `schemas`.
///
/// `overlap` is measured as pairwise normalized-token Jaccard — the quick
/// approximation §5 calls for, not a full match. The effort estimate assumes
/// the paper's workflow: summarize each source, then match each source pair
/// incrementally.
pub fn assess(schemas: &[&Schema], model: &EffortModel) -> FeasibilityReport {
    // Bulk-prepare on the shared executor: a feasibility sweep over a cold
    // candidate set is exactly the batch layer's Plan-stage workload.
    let prepared: Vec<Arc<PreparedSchema>> = prepare_schemas_global(schemas);

    let mut overlaps: Vec<f64> = Vec::new();
    for i in 0..prepared.len() {
        let sig_i = prepared[i].signature();
        for p in prepared.iter().skip(i + 1) {
            let sig_j = p.signature();
            let inter = sig_i.intersection(sig_j).count() as f64;
            let union = (sig_i.len() + sig_j.len()) as f64 - inter;
            overlaps.push(if union == 0.0 { 0.0 } else { inter / union });
        }
    }
    let mean_overlap = if overlaps.is_empty() {
        0.0
    } else {
        overlaps.iter().sum::<f64>() / overlaps.len() as f64
    };
    let min_overlap = overlaps.iter().copied().fold(f64::INFINITY, f64::min);
    let min_overlap = if min_overlap.is_finite() {
        min_overlap
    } else {
        0.0
    };

    let grade = if mean_overlap >= 0.25 {
        FeasibilityGrade::Favorable
    } else if mean_overlap >= 0.08 {
        FeasibilityGrade::Marginal
    } else {
        FeasibilityGrade::Unfavorable
    };

    // Effort: one summarization per schema (≈ one concept per ~9 elements,
    // the paper's S_A density), plus pairwise incremental matching.
    let total_elements: usize = schemas.iter().map(|s| s.len()).sum();
    let concepts = (total_elements as f64 / 9.0).ceil() as usize;
    let mut inspections = 0usize;
    let mut validations = 0usize;
    for i in 0..schemas.len() {
        for j in (i + 1)..schemas.len() {
            let pairs = schemas[i].len() * schemas[j].len();
            // Empirical survival of the confidence filter ≈ 2·10⁻³ at the
            // default threshold plus overlap-driven validations.
            inspections += (pairs as f64 * 2e-3).round() as usize;
            let smaller = schemas[i].len().min(schemas[j].len());
            validations += (smaller as f64 * mean_overlap).round() as usize;
        }
    }
    let effort = model.estimate(&harmony_core::effort::Workload {
        inspections,
        validations,
        concepts,
        increments: concepts,
    });

    FeasibilityReport {
        members: schemas.iter().map(|s| s.id).collect(),
        mean_overlap,
        min_overlap,
        total_elements,
        grade,
        effort,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_schema::{DataType, ElementKind, SchemaFormat};

    fn schema(id: u32, words: &[&str]) -> Schema {
        // The first word names the root so schemata share only the listed
        // vocabulary and nothing incidental.
        let mut s = Schema::new(SchemaId(id), format!("S{id}"), SchemaFormat::Generic);
        let r = s.add_root(words[0], ElementKind::Group, DataType::None);
        for w in &words[1..] {
            s.add_child(r, *w, ElementKind::Column, DataType::text())
                .unwrap();
        }
        s
    }

    #[test]
    fn overlapping_sources_grade_favorable() {
        let a = schema(1, &["aircraft", "mission", "sortie", "pilot"]);
        let b = schema(2, &["aircraft", "mission", "payload"]);
        let r = assess(&[&a, &b], &EffortModel::default());
        assert!(r.mean_overlap > 0.25, "{}", r.mean_overlap);
        assert_eq!(r.grade, FeasibilityGrade::Favorable);
        assert_eq!(r.members, vec![SchemaId(1), SchemaId(2)]);
    }

    #[test]
    fn disjoint_sources_grade_unfavorable() {
        let a = schema(1, &["aircraft", "mission"]);
        let b = schema(2, &["tariff", "customs"]);
        let r = assess(&[&a, &b], &EffortModel::default());
        assert_eq!(r.mean_overlap, 0.0);
        assert_eq!(r.grade, FeasibilityGrade::Unfavorable);
    }

    #[test]
    fn effort_grows_with_schema_count_and_size() {
        let model = EffortModel::default();
        let small: Vec<Schema> = (0..2)
            .map(|i| schema(i, &["alpha", "beta", "gamma"]))
            .collect();
        let small_refs: Vec<&Schema> = small.iter().collect();
        let r_small = assess(&small_refs, &model);

        let big: Vec<Schema> = (0..5)
            .map(|i| {
                let words: Vec<String> = (0..40).map(|j| format!("w{i}_{j}")).collect();
                let refs: Vec<&str> = words.iter().map(String::as_str).collect();
                schema(i, &refs)
            })
            .collect();
        let big_refs: Vec<&Schema> = big.iter().collect();
        let r_big = assess(&big_refs, &model);
        assert!(r_big.effort.person_days > r_small.effort.person_days);
        assert!(r_big.total_elements > r_small.total_elements);
    }

    #[test]
    fn single_schema_and_empty_set() {
        let a = schema(1, &["x"]);
        let r = assess(&[&a], &EffortModel::default());
        assert_eq!(r.mean_overlap, 0.0);
        assert_eq!(r.min_overlap, 0.0);
        let r2 = assess(&[], &EffortModel::default());
        assert!(r2.members.is_empty());
        assert_eq!(r2.total_elements, 0);
    }

    #[test]
    fn min_overlap_is_weakest_link() {
        let a = schema(1, &["aircraft", "mission", "pilot"]);
        let b = schema(2, &["aircraft", "mission", "sortie"]);
        let c = schema(3, &["tariff", "customs"]);
        let r = assess(&[&a, &b, &c], &EffortModel::default());
        assert_eq!(r.min_overlap, 0.0, "c shares nothing");
        assert!(r.mean_overlap > 0.0);
    }
}

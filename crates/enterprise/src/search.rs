//! Query-by-schema search.
//!
//! §2: *"A powerful way to search the MDR would be to simply use one's target
//! schema as the 'query term.' Using schema matching technology, the system
//! would rank the available schemata."* Running the full match engine against
//! thousands of registry schemata is wasteful; search instead uses a cheap
//! vocabulary signature (normalized name tokens weighted by rarity across the
//! repository) — the "characterize overlap approximately but quickly" of §5.
//!
//! Retrieval runs against the repository-level [`ShardedRepositoryIndex`]:
//! the query's tokens are looked up in per-shard posting lists, so only
//! schemata sharing at least one token are ever visited — no per-candidate
//! signature intersection, no per-query IDF weight table (weights derive
//! from live document frequencies maintained by the index). Shared-token
//! details are materialized only for the top-`limit` hits that are actually
//! returned.
//!
//! Signatures come from the shared [`PreparedSchema`] feature cache
//! ([`FeatureCache::global`]), so the index never re-tokenizes a schema the
//! match engine (or clustering, or COI proposal) has already prepared — and
//! vice versa.

use crate::repository::MetadataRepository;
use crate::shard::{ShardConfig, ShardedRepositoryIndex};
use harmony_core::prepare::{FeatureCache, PreparedSchema};
use sm_schema::{Schema, SchemaId};
use sm_text::intern::TokenId;
use std::collections::HashSet;
use std::sync::Arc;

/// One ranked search result.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit {
    /// The matching schema.
    pub schema_id: SchemaId,
    /// Relevance in `[0,1]` (weighted token overlap).
    pub score: f64,
    /// Tokens shared with the query (up to a display cap), most
    /// discriminating first.
    pub shared_tokens: Vec<String>,
}

/// One ranked fragment (sub-schema) result — see
/// [`SchemaSearch::query_fragments`].
#[derive(Debug, Clone, PartialEq)]
pub struct FragmentHit {
    /// Root element of the fragment within the candidate schema.
    pub root: sm_schema::ElementId,
    /// Fraction of the fragment's (weighted) vocabulary shared with the
    /// query, in `[0,1]`.
    pub score: f64,
    /// Tokens shared with the query, most discriminating first.
    pub shared_tokens: Vec<String>,
}

/// A search façade over a repository's token index.
pub struct SchemaSearch {
    /// The sharded inverted index snapshot queries run against.
    index: Arc<ShardedRepositoryIndex>,
    /// The cache queries are prepared through — always the one whose
    /// normalizer produced the indexed signatures, so index-side and
    /// query-side tokenization can never diverge.
    cache: Arc<FeatureCache>,
}

impl SchemaSearch {
    /// Build the search façade over a repository's maintained token index
    /// (see [`MetadataRepository::token_index`]); queries are prepared
    /// through the shared global feature cache that built it.
    pub fn build(repo: &MetadataRepository) -> Self {
        SchemaSearch {
            index: repo.token_index(),
            cache: Arc::clone(FeatureCache::global()),
        }
    }

    /// Build a free-standing index from already-prepared schemata. `cache`
    /// must be the cache (and therefore normalizer configuration) that
    /// produced them; queries are prepared through the same cache.
    pub fn from_prepared(
        prepared: impl IntoIterator<Item = Arc<PreparedSchema>>,
        cache: Arc<FeatureCache>,
    ) -> Self {
        let prepared: Vec<Arc<PreparedSchema>> = prepared.into_iter().collect();
        let exec = harmony_core::exec::Executor::global();
        SchemaSearch {
            index: Arc::new(ShardedRepositoryIndex::build_parallel(
                &prepared,
                exec,
                exec.threads(),
                ShardConfig::default(),
            )),
            cache,
        }
    }

    /// The underlying token index snapshot.
    pub fn index(&self) -> &Arc<ShardedRepositoryIndex> {
        &self.index
    }

    /// Number of indexed schemata.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when the index is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Rank indexed schemata by relevance to `query`, best first. Schemata
    /// with zero shared vocabulary are never visited, let alone returned.
    /// `query` itself is skipped if it is one of the indexed schemata
    /// (searching for *other* relevant schemata).
    pub fn query(&self, query: &Schema, limit: usize) -> Vec<SearchHit> {
        self.query_cancellable(query, limit, None)
            .expect("no token, cannot cancel")
    }

    /// [`Self::query`] with a serving-layer cancellation token, checked at
    /// the three phase boundaries (prepare / accumulate+score / materialize)
    /// so a shed or deadline-tripped search stops without unwinding —
    /// repository searches read immutable snapshots, so a `Result` return
    /// is cheaper than the panic-based unwind the pipeline stages need.
    pub fn query_cancellable(
        &self,
        query: &Schema,
        limit: usize,
        token: Option<&harmony_core::serve::JobToken>,
    ) -> Result<Vec<SearchHit>, harmony_core::serve::CancelReason> {
        let check = |t: Option<&harmony_core::serve::JobToken>| match t {
            Some(t) => match t.state() {
                Some(reason) => Err(reason),
                None => Ok(()),
            },
            None => Ok(()),
        };
        check(token)?;
        let _span = harmony_core::obs::span(
            harmony_core::obs::SpanKind::RepoQuery,
            self.index.len() as u64,
        );
        let prepared = self.cache.prepare(query);
        check(token)?;
        // Interned query signature, lexicographically ordered by resolved
        // string — the deterministic weight-summation order.
        let q_ids = prepared.signature_ids();
        if q_ids.is_empty() {
            return Ok(Vec::new());
        }
        let q_weight: f64 = q_ids.iter().map(|&t| self.index.weight_by_id(t)).sum();

        // Posting-list accumulation, then weighted-Jaccard scoring of the
        // touched slots only. All integer-keyed: no string hashing per
        // query.
        let mut hits: Vec<(u32, f64)> = self
            .index
            .accumulate_ids(q_ids)
            .into_iter()
            .filter(|&(slot, _)| self.index.id_at(slot) != query.id)
            .map(|(slot, shared_weight)| {
                let score =
                    shared_weight / (q_weight + self.index.total_weight(slot) - shared_weight);
                (slot, score)
            })
            .collect();
        hits.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("finite")
                .then(self.index.id_at(a.0).cmp(&self.index.id_at(b.0)))
        });
        hits.truncate(limit);
        check(token)?;

        // Shared-token details only for the hits actually returned.
        let q_set: HashSet<TokenId> = q_ids.iter().copied().collect();
        Ok(hits
            .into_iter()
            .map(|(slot, score)| SearchHit {
                schema_id: self.index.id_at(slot),
                score,
                shared_tokens: self.shared_token_sample(&q_set, slot),
            })
            .collect())
    }

    /// Up to 8 tokens shared between the query signature and a slot,
    /// most discriminating first (weight desc, token asc).
    fn shared_token_sample(&self, q_set: &HashSet<TokenId>, slot: u32) -> Vec<String> {
        let slot_ids = self.index.signature_ids(slot);
        let mut shared: Vec<(&String, f64)> = self
            .index
            .signature(slot)
            .iter()
            .zip(slot_ids)
            .filter(|(_, id)| q_set.contains(id))
            .map(|(t, &id)| (t, self.index.weight_by_id(id)))
            .collect();
        shared.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("finite")
                .then_with(|| a.0.cmp(b.0))
        });
        shared.into_iter().take(8).map(|(t, _)| t.clone()).collect()
    }

    /// Fragment search — §5's "a more sophisticated one could return
    /// relevant schema fragments": for one candidate schema, rank its
    /// depth-1 subtrees (tables / top-level types) by weighted token overlap
    /// with the query. Returns (fragment root, score, shared tokens).
    pub fn query_fragments(
        &self,
        query: &Schema,
        candidate: &Schema,
        limit: usize,
    ) -> Vec<FragmentHit> {
        let _span = harmony_core::obs::span(
            harmony_core::obs::SpanKind::RepoQuery,
            self.index.len() as u64,
        );
        let prepared_query = self.cache.prepare(query);
        let q_ids = prepared_query.signature_ids();
        if q_ids.is_empty() {
            return Vec::new();
        }
        let q_set: HashSet<TokenId> = q_ids.iter().copied().collect();
        let prepared_candidate = self.cache.prepare(candidate);
        let arena = prepared_candidate.arena();
        // Per-query scratch, reused across fragments (the per-fragment
        // allocate-sort-drop pattern this replaces dominated multi-root
        // candidates; cf. `index::ProbeScratch` on the blocked path).
        let mut sig: Vec<TokenId> = Vec::new();
        let mut shared: Vec<(String, f64)> = Vec::new();
        let mut hits: Vec<FragmentHit> = Vec::new();
        for &root in candidate.roots().iter() {
            // Distinct fragment vocabulary, lexicographically ordered so
            // the fragment-weight sum keeps the deterministic historical
            // order.
            sig.clear();
            sig.extend(candidate.subtree(root).flat_map(|e| {
                prepared_candidate
                    .element(e.id.index())
                    .name_set
                    .iter()
                    .copied()
            }));
            sig.sort_unstable();
            sig.dedup();
            arena.sort_lexical(&mut sig);
            // Weights come from the index's live df table — no per-query
            // weight table.
            shared.clear();
            shared.extend(
                sig.iter()
                    .filter(|id| q_set.contains(id))
                    .map(|&id| (arena.resolve(id).to_string(), self.index.weight_by_id(id))),
            );
            if shared.is_empty() {
                continue;
            }
            shared.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .expect("finite")
                    .then_with(|| a.0.cmp(&b.0))
            });
            let shared_weight: f64 = shared.iter().map(|(_, w)| w).sum();
            let frag_weight: f64 = sig.iter().map(|&id| self.index.weight_by_id(id)).sum();
            hits.push(FragmentHit {
                root,
                score: shared_weight / frag_weight.max(1e-12),
                shared_tokens: shared.drain(..).take(8).map(|(t, _)| t).collect(),
            });
        }
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .expect("finite")
                .then(a.root.cmp(&b.root))
        });
        hits.truncate(limit);
        hits
    }

    /// Mean reciprocal rank of `relevant` schemata for a query — the search-
    /// quality metric reported in EXPERIMENTS.md (experiment F4).
    pub fn mrr(&self, query: &Schema, relevant: &HashSet<SchemaId>) -> f64 {
        let hits = self.query(query, self.len());
        for (rank, hit) in hits.iter().enumerate() {
            if relevant.contains(&hit.schema_id) {
                return 1.0 / (rank + 1) as f64;
            }
        }
        0.0
    }

    /// Precision@k for a query.
    pub fn precision_at_k(&self, query: &Schema, relevant: &HashSet<SchemaId>, k: usize) -> f64 {
        if k == 0 {
            return 0.0;
        }
        let hits = self.query(query, k);
        if hits.is_empty() {
            return 0.0;
        }
        let rel = hits
            .iter()
            .filter(|h| relevant.contains(&h.schema_id))
            .count();
        rel as f64 / k.min(self.len().saturating_sub(1)).max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_schema::{DataType, ElementKind, SchemaFormat};

    /// Reference weighted sum in sorted-token order — the historical
    /// string-path computation the interned query path must reproduce.
    fn weighted_sum<S>(tokens: &HashSet<S>, weight: &impl Fn(&str) -> f64) -> f64
    where
        S: AsRef<str> + std::hash::Hash + Eq,
    {
        let mut sorted: Vec<&str> = tokens.iter().map(|t| t.as_ref()).collect();
        sorted.sort_unstable();
        sorted.into_iter().map(weight).sum()
    }

    fn schema(id: u32, tables: &[(&str, &[&str])]) -> Schema {
        let mut s = Schema::new(SchemaId(id), format!("S{id}"), SchemaFormat::Generic);
        for (t, cols) in tables {
            let tid = s.add_root(*t, ElementKind::Table, DataType::None);
            for c in *cols {
                s.add_child(tid, *c, ElementKind::Column, DataType::text())
                    .unwrap();
            }
        }
        s
    }

    fn repo() -> MetadataRepository {
        let mut r = MetadataRepository::new();
        r.register_schema(schema(
            1,
            &[("Vehicle", &["vin", "make", "model"]), ("Wheel", &["size"])],
        ));
        r.register_schema(schema(
            2,
            &[
                ("VehicleType", &["vin", "manufacturer"]),
                ("Engine", &["power"]),
            ],
        ));
        r.register_schema(schema(3, &[("Patient", &["blood_type", "admission_date"])]));
        r
    }

    fn vehicle_query() -> Schema {
        schema(99, &[("vehicle_record", &["vin", "model_name"])])
    }

    #[test]
    fn relevant_schemata_rank_above_irrelevant() {
        let r = repo();
        let search = SchemaSearch::build(&r);
        let hits = search.query(&vehicle_query(), 10);
        assert!(!hits.is_empty());
        assert!(
            hits[0].schema_id == SchemaId(1) || hits[0].schema_id == SchemaId(2),
            "vehicle schema first, got {:?}",
            hits[0]
        );
        // Patient schema shares no vehicle vocabulary → absent or last.
        let patient_rank = hits.iter().position(|h| h.schema_id == SchemaId(3));
        assert!(patient_rank.is_none(), "patient schema must not match");
    }

    #[test]
    fn shared_tokens_reported() {
        let r = repo();
        let search = SchemaSearch::build(&r);
        let hits = search.query(&vehicle_query(), 10);
        assert!(hits[0]
            .shared_tokens
            .iter()
            .any(|t| t == "vin" || t == "vehicl"));
    }

    #[test]
    fn query_excludes_itself() {
        let r = repo();
        let search = SchemaSearch::build(&r);
        let this = r.schema(SchemaId(1)).unwrap();
        let hits = search.query(this, 10);
        assert!(hits.iter().all(|h| h.schema_id != SchemaId(1)));
    }

    #[test]
    fn empty_query_and_empty_index() {
        let r = repo();
        let search = SchemaSearch::build(&r);
        let empty = Schema::new(SchemaId(50), "empty", SchemaFormat::Generic);
        assert!(search.query(&empty, 10).is_empty());
        let empty_repo = MetadataRepository::new();
        let s2 = SchemaSearch::build(&empty_repo);
        assert!(s2.is_empty());
        assert!(s2.query(&vehicle_query(), 10).is_empty());
    }

    #[test]
    fn limit_respected() {
        let r = repo();
        let search = SchemaSearch::build(&r);
        assert!(search.query(&vehicle_query(), 1).len() <= 1);
    }

    #[test]
    fn cancellable_query_honors_token_without_unwinding() {
        use harmony_core::serve::{CancelReason, JobToken};
        let r = repo();
        let search = SchemaSearch::build(&r);
        let live = JobToken::new();
        let hits = search
            .query_cancellable(&vehicle_query(), 10, Some(&live))
            .expect("untripped token completes");
        assert_eq!(hits, search.query(&vehicle_query(), 10));

        let tripped = JobToken::new();
        tripped.cancel();
        assert_eq!(
            search.query_cancellable(&vehicle_query(), 10, Some(&tripped)),
            Err(CancelReason::Cancelled)
        );
        let expired = JobToken::deadline_in(std::time::Duration::ZERO);
        assert_eq!(
            search.query_cancellable(&vehicle_query(), 10, Some(&expired)),
            Err(CancelReason::Deadline)
        );
    }

    #[test]
    fn mrr_and_precision() {
        let r = repo();
        let search = SchemaSearch::build(&r);
        let relevant: HashSet<SchemaId> = [SchemaId(1), SchemaId(2)].into_iter().collect();
        let mrr = search.mrr(&vehicle_query(), &relevant);
        assert_eq!(mrr, 1.0, "a relevant schema ranks first");
        let p2 = search.precision_at_k(&vehicle_query(), &relevant, 2);
        assert!(p2 > 0.99, "both top-2 are relevant: {p2}");
        let none: HashSet<SchemaId> = HashSet::new();
        assert_eq!(search.mrr(&vehicle_query(), &none), 0.0);
    }

    #[test]
    fn fragment_search_ranks_relevant_subtrees() {
        let r = repo();
        let search = SchemaSearch::build(&r);
        let candidate = r.schema(SchemaId(1)).unwrap(); // Vehicle + Wheel
        let hits = search.query_fragments(&vehicle_query(), candidate, 10);
        assert!(!hits.is_empty());
        // The Vehicle subtree shares vin/model tokens; Wheel shares nothing.
        let top = candidate.element(hits[0].root);
        assert_eq!(top.name, "Vehicle");
        assert!(hits
            .iter()
            .all(|h| candidate.element(h.root).name != "Wheel"));
        assert!(hits[0].score > 0.0 && hits[0].score <= 1.0);
        assert!(!hits[0].shared_tokens.is_empty());
    }

    #[test]
    fn fragment_search_empty_query_or_disjoint_candidate() {
        let r = repo();
        let search = SchemaSearch::build(&r);
        let empty = Schema::new(SchemaId(60), "empty", SchemaFormat::Generic);
        let candidate = r.schema(SchemaId(1)).unwrap();
        assert!(search.query_fragments(&empty, candidate, 5).is_empty());
        let patient = r.schema(SchemaId(3)).unwrap();
        assert!(search
            .query_fragments(&vehicle_query(), patient, 5)
            .is_empty());
    }

    #[test]
    fn rare_tokens_dominate_ranking() {
        let mut r = MetadataRepository::new();
        // "identifier" everywhere; "vin" only in schema 1.
        r.register_schema(schema(1, &[("A", &["identifier", "vin"])]));
        r.register_schema(schema(2, &[("B", &["identifier", "blood"])]));
        r.register_schema(schema(3, &[("C", &["identifier", "cargo"])]));
        let search = SchemaSearch::build(&r);
        let q = schema(99, &[("Q", &["identifier", "vin"])]);
        let hits = search.query(&q, 10);
        assert_eq!(hits[0].schema_id, SchemaId(1));
        assert!(hits[0].score > hits[1].score);
    }

    /// The frozen weight table must reproduce the historical per-query IDF
    /// weighting exactly: the weighted-Jaccard score of a hit equals a
    /// from-scratch computation over the same signatures.
    #[test]
    fn frozen_weights_match_direct_weighted_jaccard() {
        let r = repo();
        let search = SchemaSearch::build(&r);
        let q = vehicle_query();
        let hits = search.query(&q, 10);
        let index = search.index();
        let q_sig = FeatureCache::global().prepare(&q);
        for hit in hits {
            let slot = index.slot(hit.schema_id).unwrap();
            let cand: HashSet<std::sync::Arc<str>> = index
                .signature(slot)
                .iter()
                .map(|s| std::sync::Arc::from(s.as_str()))
                .collect();
            let weight = |t: &str| index.weight(t);
            let shared: f64 = {
                let mut ts: Vec<&str> = q_sig
                    .signature()
                    .intersection(&cand)
                    .map(|t| &**t)
                    .collect();
                ts.sort_unstable();
                ts.into_iter().map(weight).sum()
            };
            let qw = weighted_sum(q_sig.signature(), &weight);
            let cw = weighted_sum(&cand, &weight);
            let expect = shared / (qw + cw - shared);
            assert!(
                (hit.score - expect).abs() < 1e-12,
                "{} vs {expect}",
                hit.score
            );
        }
    }
}

//! The enterprise metadata repository.
//!
//! §5: *"A schema (metadata) repository is an appropriate context in which to
//! cluster schemata, to summarize them, to search for match candidates and to
//! store resulting match information. … these [commercial tools] ignore the
//! importance of schema matches as knowledge artifacts."* Matches here are
//! first-class records with **context tags** (a match good enough for search
//! may be too imprecise for business intelligence) and **provenance** (who
//! asserted it, trust queries).

use crate::index::RepositoryIndex;
use harmony_core::batch::prepare_schemas_global;
use harmony_core::confidence::Confidence;
use harmony_core::correspondence::{MatchAnnotation, MatchSet, MatchStatus};
use harmony_core::engine::MatchEngine;
use harmony_core::prepare::{FeatureCache, PreparedSchema};
use harmony_core::select::Selection;
use serde::{Deserialize, Serialize};
use sm_schema::{ElementId, Schema, SchemaId, SchemaPath};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// The intended consumption context of a stored match — §5's observation
/// that "matches are context-dependent". Ordered by the precision the
/// context demands (search tolerates noise; BI does not).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MatchContextTag {
    /// Discovery / search: recall over precision.
    Search,
    /// Project planning: moderate precision.
    Planning,
    /// Integration engineering: high precision.
    Integration,
    /// Business intelligence: only fully trusted matches.
    BusinessIntelligence,
}

impl MatchContextTag {
    /// Is a match recorded for `self` trustworthy enough for `required`?
    /// (A BI-grade match serves search; not vice versa.)
    pub fn satisfies(self, required: MatchContextTag) -> bool {
        self >= required
    }
}

/// A stored match artifact.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MatchRecord {
    /// Source schema.
    pub source_id: SchemaId,
    /// Target schema.
    pub target_id: SchemaId,
    /// The correspondences.
    pub matches: MatchSet,
    /// Consumption context the match was produced for.
    pub context: MatchContextTag,
    /// Who produced the record (tool run, engineer, team).
    pub created_by: String,
    /// Logical creation timestamp (repository-assigned, monotonically
    /// increasing).
    pub created_at: u64,
    /// Free-text notes.
    pub notes: String,
}

/// One provenance assertion: who said `source ≈ target`, in which record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Provenance {
    /// Index of the record in the repository.
    pub record_index: usize,
    /// Who asserted the correspondence (per-correspondence, e.g. the
    /// validating engineer).
    pub asserted_by: String,
    /// The record's creator (tool/team).
    pub record_created_by: String,
    /// The record's context tag.
    pub context: MatchContextTag,
    /// Validation status of the assertion.
    pub status: MatchStatus,
    /// Logical timestamp of the record.
    pub created_at: u64,
}

/// Dense slot assignment for the schemata a batch references: schemas are
/// registered on first sight and the slot list feeds
/// [`harmony_core::batch::BatchPlanner::plan`]. Shared by the bulk match
/// paths here and in [`crate::coi`].
#[derive(Default)]
pub(crate) struct SlotMap<'a> {
    schemas: Vec<&'a Schema>,
    slot_of: HashMap<SchemaId, usize>,
}

impl<'a> SlotMap<'a> {
    pub(crate) fn new() -> Self {
        SlotMap::default()
    }

    /// The slot of `schema`, registering it on first sight.
    pub(crate) fn slot_for(&mut self, schema: &'a Schema) -> usize {
        let schemas = &mut self.schemas;
        *self.slot_of.entry(schema.id).or_insert_with(|| {
            schemas.push(schema);
            schemas.len() - 1
        })
    }

    /// The slot of an already-registered schema id.
    pub(crate) fn slot_of(&self, id: SchemaId) -> usize {
        self.slot_of[&id]
    }

    /// The registered schemata, in slot order.
    pub(crate) fn schemas(&self) -> &[&'a Schema] {
        &self.schemas
    }
}

/// An in-memory enterprise metadata repository.
#[derive(Debug, Default)]
pub struct MetadataRepository {
    schemas: HashMap<SchemaId, Schema>,
    insertion_order: Vec<SchemaId>,
    records: Vec<MatchRecord>,
    clock: u64,
    /// Lazily built repository-level token index; dropped whenever a schema
    /// is (re-)registered, rebuilt on next access.
    index_cache: Mutex<Option<Arc<RepositoryIndex>>>,
}

impl MetadataRepository {
    /// Empty repository.
    pub fn new() -> Self {
        MetadataRepository::default()
    }

    /// Register a schema. Replaces any previous schema with the same id
    /// (returning it), mirroring registry re-posts of new versions.
    pub fn register_schema(&mut self, schema: Schema) -> Option<Schema> {
        let id = schema.id;
        let prev = self.schemas.insert(id, schema);
        if prev.is_none() {
            self.insertion_order.push(id);
        }
        // The token index no longer reflects the registry's content; drop
        // it so the next consumer rebuilds. (Re-preparation of unchanged
        // schemata is free — the FeatureCache is content-fingerprint keyed.)
        *self.index_cache.lock().expect("index cache poisoned") = None;
        prev
    }

    /// Fetch a schema.
    pub fn schema(&self, id: SchemaId) -> Option<&Schema> {
        self.schemas.get(&id)
    }

    /// All schemata in registration order.
    pub fn schemas(&self) -> impl Iterator<Item = &Schema> {
        self.insertion_order
            .iter()
            .filter_map(move |id| self.schemas.get(id))
    }

    /// Number of registered schemata.
    pub fn schema_count(&self) -> usize {
        self.schemas.len()
    }

    /// Prepared linguistic features of a registered schema, served from the
    /// process-wide [`FeatureCache`]. Repeated calls — and every other
    /// consumer of the cache (match engine, search, clustering, COI) — share
    /// one preparation per schema content.
    pub fn prepared(&self, id: SchemaId) -> Option<Arc<PreparedSchema>> {
        self.schema(id).map(|s| FeatureCache::global().prepare(s))
    }

    /// Warm the feature cache for every registered schema (e.g. before a
    /// batch of repository-wide searches); returns the preparations in
    /// registration order. Runs as a bulk prepare on the process-wide
    /// executor — cold registries preprocess concurrently, and racing
    /// consumers coalesce on the cache's in-flight build slots.
    pub fn prepare_all(&self) -> Vec<Arc<PreparedSchema>> {
        let schemas: Vec<&Schema> = self.schemas().collect();
        prepare_schemas_global(&schemas)
    }

    /// Bulk match-and-record: execute every requested schema pair as one
    /// planned batch (shared preparation + token index, all pairs
    /// concurrent on the executor — see [`harmony_core::batch`]), select
    /// one-to-one correspondences above `threshold`, auto-validate them as
    /// `created_by`, and store one [`MatchRecord`] per pair under
    /// `context`. Returns the new record indices in request order.
    ///
    /// This is the production path for populating a registry's match
    /// knowledge — the per-pair `engine.run(..)` + `record_match(..)` loop
    /// it replaces repaid preparation and indexing once per pair.
    pub fn match_and_record_all(
        &mut self,
        engine: &MatchEngine,
        requests: &[(SchemaId, SchemaId)],
        threshold: Confidence,
        context: MatchContextTag,
        created_by: &str,
        notes: &str,
    ) -> Result<Vec<usize>, String> {
        // Resolve ids to slots over exactly the schemata the requests name
        // (deduplicated) — planning over the whole registry would prepare
        // and index every registered schema for possibly one pair of real
        // work. Unknown ids fail here, before any matching runs.
        let mut slots = SlotMap::new();
        let mut slot_requests = Vec::with_capacity(requests.len());
        for &(source, target) in requests {
            for id in [source, target] {
                let schema = self
                    .schema(id)
                    .ok_or_else(|| format!("schema {id} not registered"))?;
                slots.slot_for(schema);
            }
            slot_requests.push((slots.slot_of(source), slots.slot_of(target)));
        }

        let selection = Selection::OneToOne { min: threshold };
        let batch = engine.batch().plan(slots.schemas(), slot_requests);
        // Selection-only execution: recording never reads scores, so
        // per-pair matrices drop inside the batch jobs.
        let result = batch.run_select_only(&selection);
        drop(batch);

        let mut indices = Vec::with_capacity(result.pairs.len());
        // Results come back in request order; zipping states that invariant
        // instead of relying on positional indexing.
        for (pair, &(source_id, target_id)) in result.pairs.iter().zip(requests) {
            let validated =
                MatchSet::validated_from(&pair.selected, created_by, MatchAnnotation::Equivalent);
            indices.push(
                self.record_match(source_id, target_id, validated, context, created_by, notes)?,
            );
        }
        Ok(indices)
    }

    /// The repository-level token index over all registered schemata —
    /// the retrieval structure behind [`crate::search::SchemaSearch`],
    /// [`crate::cluster::DistanceMatrix::from_repository`], and COI
    /// proposal. Built lazily from the shared [`FeatureCache`] preparations
    /// and cached until the next [`Self::register_schema`] invalidates it,
    /// so repeated searches against a stable registry pay the build once.
    pub fn token_index(&self) -> Arc<RepositoryIndex> {
        let mut guard = self.index_cache.lock().expect("index cache poisoned");
        if let Some(index) = guard.as_ref() {
            // The cache is only populated from the current registry state
            // and dropped on every mutation, so stored fingerprints always
            // match the live schemata; verify in debug builds.
            debug_assert!(self.schemas().zip(index.ids()).all(|(s, &id)| {
                s.id == id
                    && index.fingerprint(index.slot(id).expect("indexed"))
                        == harmony_core::prepare::schema_fingerprint(s)
            }));
            return Arc::clone(index);
        }
        let exec = harmony_core::exec::Executor::global();
        let index = Arc::new(RepositoryIndex::build_parallel(
            &self.prepare_all(),
            exec,
            exec.threads(),
        ));
        *guard = Some(Arc::clone(&index));
        index
    }

    /// Store a match artifact; returns its record index. Both schemata must
    /// be registered first (matches against unregistered schemata would be
    /// dangling knowledge).
    pub fn record_match(
        &mut self,
        source_id: SchemaId,
        target_id: SchemaId,
        matches: MatchSet,
        context: MatchContextTag,
        created_by: impl Into<String>,
        notes: impl Into<String>,
    ) -> Result<usize, String> {
        if !self.schemas.contains_key(&source_id) {
            return Err(format!("source schema {source_id} not registered"));
        }
        if !self.schemas.contains_key(&target_id) {
            return Err(format!("target schema {target_id} not registered"));
        }
        self.clock += 1;
        self.records.push(MatchRecord {
            source_id,
            target_id,
            matches,
            context,
            created_by: created_by.into(),
            created_at: self.clock,
            notes: notes.into(),
        });
        Ok(self.records.len() - 1)
    }

    /// All match records.
    pub fn records(&self) -> &[MatchRecord] {
        &self.records
    }

    /// Records between two schemata (either orientation).
    pub fn records_between(&self, a: SchemaId, b: SchemaId) -> Vec<(usize, &MatchRecord)> {
        self.records
            .iter()
            .enumerate()
            .filter(|(_, r)| {
                (r.source_id == a && r.target_id == b) || (r.source_id == b && r.target_id == a)
            })
            .collect()
    }

    /// Records suitable for a required context (record context ≥ required).
    pub fn records_for_context(&self, required: MatchContextTag) -> Vec<(usize, &MatchRecord)> {
        self.records
            .iter()
            .enumerate()
            .filter(|(_, r)| r.context.satisfies(required))
            .collect()
    }

    /// Provenance query — §5's "who said that X is the same as Y, and should
    /// I trust that assertion in my application?". Returns every assertion
    /// linking the two elements across all records, newest first.
    pub fn who_said(
        &self,
        source_schema: SchemaId,
        source: ElementId,
        target_schema: SchemaId,
        target: ElementId,
    ) -> Vec<Provenance> {
        let mut out: Vec<Provenance> = Vec::new();
        for (idx, r) in self.records.iter().enumerate() {
            let forward = r.source_id == source_schema && r.target_id == target_schema;
            let backward = r.source_id == target_schema && r.target_id == source_schema;
            if !forward && !backward {
                continue;
            }
            for c in r.matches.all() {
                let hit = if forward {
                    c.source == source && c.target == target
                } else {
                    c.source == target && c.target == source
                };
                if hit {
                    out.push(Provenance {
                        record_index: idx,
                        asserted_by: c.asserted_by.clone(),
                        record_created_by: r.created_by.clone(),
                        context: r.context,
                        status: c.status,
                        created_at: r.created_at,
                    });
                }
            }
        }
        out.sort_by_key(|p| std::cmp::Reverse(p.created_at));
        out
    }

    /// CIO concept lookup (§2 "Enterprise information asset awareness"):
    /// which schemata contain an element whose name mentions `concept`?
    /// Returns (schema id, matching element paths).
    pub fn schemas_mentioning(&self, concept: &str) -> Vec<(SchemaId, Vec<SchemaPath>)> {
        let needle: Vec<String> = sm_text::tokenize_identifier(concept)
            .iter()
            .map(|t| sm_text::porter_stem(t))
            .collect();
        if needle.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        for schema in self.schemas() {
            let mut paths = Vec::new();
            for e in schema.elements() {
                let tokens: Vec<String> = sm_text::tokenize_identifier(&e.name)
                    .iter()
                    .map(|t| sm_text::porter_stem(t))
                    .collect();
                if needle.iter().all(|n| tokens.contains(n)) {
                    paths.push(schema.path(e.id));
                }
            }
            if !paths.is_empty() {
                out.push((schema.id, paths));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_core::confidence::Confidence;
    use harmony_core::correspondence::{Correspondence, MatchAnnotation};
    use sm_schema::{DataType, ElementKind, SchemaFormat};

    fn schema(id: u32, roots: &[&str]) -> Schema {
        let mut s = Schema::new(SchemaId(id), format!("S{id}"), SchemaFormat::Generic);
        for r in roots {
            let t = s.add_root(*r, ElementKind::Table, DataType::None);
            s.add_child(t, format!("{r}_id"), ElementKind::Column, DataType::Integer)
                .unwrap();
        }
        s
    }

    fn match_set(validated_by: &str) -> MatchSet {
        let mut m = MatchSet::new();
        m.push(
            Correspondence::candidate(ElementId(0), ElementId(0), Confidence::new(0.9))
                .validate(validated_by, MatchAnnotation::Equivalent),
        );
        m
    }

    #[test]
    fn register_and_fetch() {
        let mut repo = MetadataRepository::new();
        assert!(repo.register_schema(schema(1, &["Person"])).is_none());
        assert!(repo.register_schema(schema(2, &["Vehicle"])).is_none());
        assert_eq!(repo.schema_count(), 2);
        assert!(repo.schema(SchemaId(1)).is_some());
        assert!(repo.schema(SchemaId(9)).is_none());
        // Re-registration replaces and returns the old version.
        let old = repo.register_schema(schema(1, &["PersonV2"]));
        assert!(old.is_some());
        assert_eq!(repo.schema_count(), 2);
        assert_eq!(repo.schemas().count(), 2);
    }

    #[test]
    fn record_match_requires_registered_schemas() {
        let mut repo = MetadataRepository::new();
        repo.register_schema(schema(1, &["A"]));
        let err = repo
            .record_match(
                SchemaId(1),
                SchemaId(2),
                MatchSet::new(),
                MatchContextTag::Search,
                "tool",
                "",
            )
            .unwrap_err();
        assert!(err.contains("not registered"));
        repo.register_schema(schema(2, &["B"]));
        let idx = repo
            .record_match(
                SchemaId(1),
                SchemaId(2),
                MatchSet::new(),
                MatchContextTag::Search,
                "tool",
                "",
            )
            .unwrap();
        assert_eq!(idx, 0);
    }

    #[test]
    fn context_tags_order_by_required_precision() {
        use MatchContextTag::*;
        assert!(BusinessIntelligence.satisfies(Search));
        assert!(Integration.satisfies(Planning));
        assert!(!Search.satisfies(Integration));
        assert!(Planning.satisfies(Planning));
    }

    #[test]
    fn records_for_context_filters() {
        let mut repo = MetadataRepository::new();
        repo.register_schema(schema(1, &["A"]));
        repo.register_schema(schema(2, &["B"]));
        repo.record_match(
            SchemaId(1),
            SchemaId(2),
            MatchSet::new(),
            MatchContextTag::Search,
            "t",
            "",
        )
        .unwrap();
        repo.record_match(
            SchemaId(1),
            SchemaId(2),
            MatchSet::new(),
            MatchContextTag::Integration,
            "t",
            "",
        )
        .unwrap();
        assert_eq!(repo.records_for_context(MatchContextTag::Search).len(), 2);
        assert_eq!(repo.records_for_context(MatchContextTag::Planning).len(), 1);
        assert_eq!(
            repo.records_for_context(MatchContextTag::BusinessIntelligence)
                .len(),
            0
        );
    }

    #[test]
    fn who_said_returns_provenance_newest_first() {
        let mut repo = MetadataRepository::new();
        repo.register_schema(schema(1, &["A"]));
        repo.register_schema(schema(2, &["B"]));
        repo.record_match(
            SchemaId(1),
            SchemaId(2),
            match_set("alice"),
            MatchContextTag::Planning,
            "team-1",
            "",
        )
        .unwrap();
        repo.record_match(
            SchemaId(1),
            SchemaId(2),
            match_set("bob"),
            MatchContextTag::Integration,
            "team-2",
            "",
        )
        .unwrap();
        let prov = repo.who_said(SchemaId(1), ElementId(0), SchemaId(2), ElementId(0));
        assert_eq!(prov.len(), 2);
        assert_eq!(prov[0].asserted_by, "bob", "newest first");
        assert_eq!(prov[1].asserted_by, "alice");
        assert_eq!(prov[0].context, MatchContextTag::Integration);
        // Reverse orientation finds the same assertions.
        let rev = repo.who_said(SchemaId(2), ElementId(0), SchemaId(1), ElementId(0));
        assert_eq!(rev.len(), 2);
        // Unknown pair: empty.
        assert!(repo
            .who_said(SchemaId(1), ElementId(5), SchemaId(2), ElementId(5))
            .is_empty());
    }

    #[test]
    fn records_between_is_orientation_agnostic() {
        let mut repo = MetadataRepository::new();
        repo.register_schema(schema(1, &["A"]));
        repo.register_schema(schema(2, &["B"]));
        repo.record_match(
            SchemaId(2),
            SchemaId(1),
            MatchSet::new(),
            MatchContextTag::Search,
            "t",
            "",
        )
        .unwrap();
        assert_eq!(repo.records_between(SchemaId(1), SchemaId(2)).len(), 1);
    }

    #[test]
    fn token_index_is_cached_and_invalidated_by_registration() {
        let mut repo = MetadataRepository::new();
        repo.register_schema(schema(1, &["Person"]));
        let i1 = repo.token_index();
        let i2 = repo.token_index();
        assert!(Arc::ptr_eq(&i1, &i2), "stable registry reuses the index");
        assert_eq!(i1.len(), 1);
        assert!(!i1.postings("person").is_empty());

        repo.register_schema(schema(2, &["Vehicle"]));
        let i3 = repo.token_index();
        assert!(!Arc::ptr_eq(&i1, &i3), "registration invalidates the index");
        assert_eq!(i3.len(), 2);
        assert!(!i3.postings("vehicl").is_empty());

        // Re-registering changed content re-indexes it.
        repo.register_schema(schema(1, &["PersonV2", "Address"]));
        let i4 = repo.token_index();
        assert!(!i4.postings("address").is_empty());
        assert_eq!(i4.len(), 2, "replaced, not duplicated");
    }

    #[test]
    fn match_and_record_all_batches_and_stores() {
        let mut repo = MetadataRepository::new();
        repo.register_schema(schema(1, &["Person", "Vehicle"]));
        repo.register_schema(schema(2, &["Person", "Weapon"]));
        repo.register_schema(schema(3, &["Vehicle", "Facility"]));
        let engine = MatchEngine::new();
        let threshold = Confidence::new(0.3);
        let requests = [
            (SchemaId(1), SchemaId(2)),
            (SchemaId(1), SchemaId(3)),
            (SchemaId(2), SchemaId(3)),
        ];
        let indices = repo
            .match_and_record_all(
                &engine,
                &requests,
                threshold,
                MatchContextTag::Planning,
                "batch-tool",
                "bulk",
            )
            .expect("all schemata registered");
        assert_eq!(indices, vec![0, 1, 2]);
        // Each record matches the standalone blocked run + selection.
        for (idx, &(source_id, target_id)) in indices.iter().zip(&requests) {
            let r = &repo.records()[*idx];
            assert_eq!((r.source_id, r.target_id), (source_id, target_id));
            assert_eq!(r.context, MatchContextTag::Planning);
            let standalone = engine.run_blocked(
                repo.schema(source_id).unwrap(),
                repo.schema(target_id).unwrap(),
                &harmony_core::index::BlockingPolicy::default(),
            );
            let expected = Selection::OneToOne { min: threshold }.apply(&standalone.matrix);
            assert_eq!(r.matches.len(), expected.len());
            assert!(r.matches.validated().count() == r.matches.len());
        }
        // Shared tables collide across schemata, so some record is non-empty.
        assert!(repo.records().iter().any(|r| !r.matches.is_empty()));
        // Unknown ids fail fast without recording anything.
        let before = repo.records().len();
        let err = repo
            .match_and_record_all(
                &engine,
                &[(SchemaId(1), SchemaId(99))],
                threshold,
                MatchContextTag::Search,
                "t",
                "",
            )
            .unwrap_err();
        assert!(err.contains("not registered"));
        assert_eq!(repo.records().len(), before);
    }

    #[test]
    fn cio_concept_lookup() {
        let mut repo = MetadataRepository::new();
        let mut s1 = schema(1, &["Patient"]);
        let t = s1.roots()[0];
        s1.add_child(
            t,
            "blood_test_result",
            ElementKind::Column,
            DataType::text(),
        )
        .unwrap();
        repo.register_schema(s1);
        repo.register_schema(schema(2, &["Vehicle"]));
        let hits = repo.schemas_mentioning("BloodTest");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, SchemaId(1));
        assert_eq!(hits[0].1[0].to_string(), "Patient/blood_test_result");
        // Stemmed matching: plural query still hits.
        assert_eq!(repo.schemas_mentioning("blood tests").len(), 1);
        assert!(repo.schemas_mentioning("dialysis").is_empty());
        assert!(repo.schemas_mentioning("").is_empty());
    }
}

//! The enterprise metadata repository.
//!
//! §5: *"A schema (metadata) repository is an appropriate context in which to
//! cluster schemata, to summarize them, to search for match candidates and to
//! store resulting match information. … these [commercial tools] ignore the
//! importance of schema matches as knowledge artifacts."* Matches here are
//! first-class records with **context tags** (a match good enough for search
//! may be too imprecise for business intelligence) and **provenance** (who
//! asserted it, trust queries).

use crate::shard::{ShardConfig, ShardedRepositoryIndex};
use harmony_core::batch::prepare_schemas_global;
use harmony_core::confidence::Confidence;
use harmony_core::correspondence::{MatchAnnotation, MatchSet, MatchStatus};
use harmony_core::engine::MatchEngine;
use harmony_core::obs;
use harmony_core::prepare::{schema_fingerprint, FeatureCache, PreparedSchema};
use harmony_core::select::Selection;
use harmony_core::swap::SnapCell;
use serde::{Deserialize, Serialize};
use sm_schema::{ElementId, Schema, SchemaId, SchemaPath};
use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// The intended consumption context of a stored match — §5's observation
/// that "matches are context-dependent". Ordered by the precision the
/// context demands (search tolerates noise; BI does not).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MatchContextTag {
    /// Discovery / search: recall over precision.
    Search,
    /// Project planning: moderate precision.
    Planning,
    /// Integration engineering: high precision.
    Integration,
    /// Business intelligence: only fully trusted matches.
    BusinessIntelligence,
}

impl MatchContextTag {
    /// Is a match recorded for `self` trustworthy enough for `required`?
    /// (A BI-grade match serves search; not vice versa.)
    pub fn satisfies(self, required: MatchContextTag) -> bool {
        self >= required
    }
}

/// A stored match artifact.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MatchRecord {
    /// Source schema.
    pub source_id: SchemaId,
    /// Target schema.
    pub target_id: SchemaId,
    /// The correspondences.
    pub matches: MatchSet,
    /// Consumption context the match was produced for.
    pub context: MatchContextTag,
    /// Who produced the record (tool run, engineer, team).
    pub created_by: String,
    /// Logical creation timestamp (repository-assigned, monotonically
    /// increasing).
    pub created_at: u64,
    /// Free-text notes.
    pub notes: String,
}

/// One provenance assertion: who said `source ≈ target`, in which record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Provenance {
    /// Index of the record in the repository.
    pub record_index: usize,
    /// Who asserted the correspondence (per-correspondence, e.g. the
    /// validating engineer).
    pub asserted_by: String,
    /// The record's creator (tool/team).
    pub record_created_by: String,
    /// The record's context tag.
    pub context: MatchContextTag,
    /// Validation status of the assertion.
    pub status: MatchStatus,
    /// Logical timestamp of the record.
    pub created_at: u64,
}

/// Dense slot assignment for the schemata a batch references: schemas are
/// registered on first sight and the slot list feeds
/// [`harmony_core::batch::BatchPlanner::plan`]. Shared by the bulk match
/// paths here and in [`crate::coi`].
#[derive(Default)]
pub(crate) struct SlotMap<'a> {
    schemas: Vec<&'a Schema>,
    slot_of: HashMap<SchemaId, usize>,
}

impl<'a> SlotMap<'a> {
    pub(crate) fn new() -> Self {
        SlotMap::default()
    }

    /// The slot of `schema`, registering it on first sight.
    pub(crate) fn slot_for(&mut self, schema: &'a Schema) -> usize {
        let schemas = &mut self.schemas;
        *self.slot_of.entry(schema.id).or_insert_with(|| {
            schemas.push(schema);
            schemas.len() - 1
        })
    }

    /// The slot of an already-registered schema id.
    pub(crate) fn slot_of(&self, id: SchemaId) -> usize {
        self.slot_of[&id]
    }

    /// The registered schemata, in slot order.
    pub(crate) fn schemas(&self) -> &[&'a Schema] {
        &self.schemas
    }
}

/// The maintained sharded index: a lock-free snapshot for readers plus the
/// coalesced refresh rendezvous for the (rare) thread that has to apply
/// pending maintenance.
///
/// Readers ([`MetadataRepository::token_index`]) take the published snapshot
/// without any lock when it is current. When it is stale, exactly one caller
/// refreshes — incrementally applying the touched ids to the previous
/// snapshot — while racing callers wait on the condvar and share the result
/// (the `FeatureCache::get_or_prepare` coalescing discipline; the historical
/// `Mutex<Option<Arc<_>>>` cache let racing callers both rebuild).
#[derive(Debug, Default)]
struct IndexCell {
    snap: SnapCell<ShardedRepositoryIndex>,
    state: Mutex<IndexState>,
    refreshed: Condvar,
    /// Bumped on every registry mutation (registration or removal).
    version: AtomicU64,
    /// The mutation version the published snapshot reflects.
    applied: AtomicU64,
}

#[derive(Debug, Default)]
struct IndexState {
    /// Ids mutated since the last applied refresh, in first-touch order
    /// (the deterministic order maintenance ops are applied in).
    touched: Vec<SchemaId>,
    /// Membership mirror of `touched` (bulk registration would otherwise
    /// pay a linear scan per mutation).
    touched_set: HashSet<SchemaId>,
    /// A refresh is in flight; waiters block on `refreshed`.
    refreshing: bool,
}

impl IndexCell {
    fn note_mutation(&self, id: SchemaId) {
        let mut st = self.state.lock().expect("index state poisoned");
        if st.touched_set.insert(id) {
            st.touched.push(id);
        }
        drop(st);
        self.version.fetch_add(1, Ordering::SeqCst);
    }
}

/// Resets the in-flight flag (and wakes waiters) even when a refresh
/// unwinds, so a panicking build never wedges later readers.
struct RefreshGuard<'a> {
    cell: &'a IndexCell,
}

impl Drop for RefreshGuard<'_> {
    fn drop(&mut self) {
        let mut st = self
            .cell
            .state
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        st.refreshing = false;
        drop(st);
        self.cell.refreshed.notify_all();
    }
}

/// An in-memory enterprise metadata repository.
#[derive(Debug, Default)]
pub struct MetadataRepository {
    schemas: HashMap<SchemaId, Schema>,
    insertion_order: Vec<SchemaId>,
    /// Content fingerprint of each registered schema, computed once at
    /// registration (schemata are immutable while registered — mutation is
    /// re-registration). Warm-start matching consumes these instead of
    /// re-hashing every schema's full content inside its timed window.
    fingerprints: HashMap<SchemaId, u64>,
    records: Vec<MatchRecord>,
    clock: u64,
    /// Shard/compaction knobs of the maintained index.
    shard_config: ShardConfig,
    /// The maintained sharded token index (see [`IndexCell`]).
    index: IndexCell,
}

impl MetadataRepository {
    /// Empty repository.
    pub fn new() -> Self {
        MetadataRepository::default()
    }

    /// Empty repository with explicit index shard/compaction knobs.
    pub fn with_shard_config(config: ShardConfig) -> Self {
        MetadataRepository {
            shard_config: config,
            ..MetadataRepository::default()
        }
    }

    /// The maintained index's shard/compaction configuration.
    pub fn shard_config(&self) -> ShardConfig {
        self.shard_config
    }

    /// Register a schema. Replaces any previous schema with the same id
    /// (returning it), mirroring registry re-posts of new versions.
    ///
    /// The write path is O(1): the mutation is recorded and folded into the
    /// maintained index *incrementally* on the next [`Self::token_index`]
    /// (delta log + tombstone, no full rebuild) — re-registering unchanged
    /// content is a fingerprint-checked no-op there.
    pub fn register_schema(&mut self, schema: Schema) -> Option<Schema> {
        let id = schema.id;
        self.fingerprints.insert(id, schema_fingerprint(&schema));
        let prev = self.schemas.insert(id, schema);
        if prev.is_none() {
            self.insertion_order.push(id);
        }
        self.index.note_mutation(id);
        prev
    }

    /// Remove a schema from the registry, returning it (or `None` when the
    /// id is unknown). The maintained index tombstones the schema on the
    /// next refresh; stored match records referencing it are kept — they
    /// remain knowledge artifacts about past registry states.
    pub fn remove_schema(&mut self, id: SchemaId) -> Option<Schema> {
        let prev = self.schemas.remove(&id)?;
        self.fingerprints.remove(&id);
        self.insertion_order.retain(|&x| x != id);
        self.index.note_mutation(id);
        Some(prev)
    }

    /// Fetch a schema.
    pub fn schema(&self, id: SchemaId) -> Option<&Schema> {
        self.schemas.get(&id)
    }

    /// All schemata in registration order.
    pub fn schemas(&self) -> impl Iterator<Item = &Schema> {
        self.insertion_order
            .iter()
            .filter_map(move |id| self.schemas.get(id))
    }

    /// Number of registered schemata.
    pub fn schema_count(&self) -> usize {
        self.schemas.len()
    }

    /// Prepared linguistic features of a registered schema, served from the
    /// process-wide [`FeatureCache`]. Repeated calls — and every other
    /// consumer of the cache (match engine, search, clustering, COI) — share
    /// one preparation per schema content.
    pub fn prepared(&self, id: SchemaId) -> Option<Arc<PreparedSchema>> {
        self.schema(id).map(|s| FeatureCache::global().prepare(s))
    }

    /// Warm the feature cache for every registered schema (e.g. before a
    /// batch of repository-wide searches); returns the preparations in
    /// registration order. Runs as a bulk prepare on the process-wide
    /// executor — cold registries preprocess concurrently, and racing
    /// consumers coalesce on the cache's in-flight build slots.
    pub fn prepare_all(&self) -> Vec<Arc<PreparedSchema>> {
        let schemas: Vec<&Schema> = self.schemas().collect();
        prepare_schemas_global(&schemas)
    }

    /// Bulk match-and-record: execute every requested schema pair as one
    /// planned batch (shared preparation + token index, all pairs
    /// concurrent on the executor — see [`harmony_core::batch`]), select
    /// one-to-one correspondences above `threshold`, auto-validate them as
    /// `created_by`, and store one [`MatchRecord`] per pair under
    /// `context`. Returns the new record indices in request order.
    ///
    /// This is the production path for populating a registry's match
    /// knowledge — the per-pair `engine.run(..)` + `record_match(..)` loop
    /// it replaces repaid preparation and indexing once per pair.
    pub fn match_and_record_all(
        &mut self,
        engine: &MatchEngine,
        requests: &[(SchemaId, SchemaId)],
        threshold: Confidence,
        context: MatchContextTag,
        created_by: &str,
        notes: &str,
    ) -> Result<Vec<usize>, String> {
        // Resolve ids to slots over exactly the schemata the requests name
        // (deduplicated) — planning over the whole registry would prepare
        // and index every registered schema for possibly one pair of real
        // work. Unknown ids fail here, before any matching runs.
        let mut slots = SlotMap::new();
        let mut slot_requests = Vec::with_capacity(requests.len());
        for &(source, target) in requests {
            for id in [source, target] {
                let schema = self
                    .schema(id)
                    .ok_or_else(|| format!("schema {id} not registered"))?;
                slots.slot_for(schema);
            }
            slot_requests.push((slots.slot_of(source), slots.slot_of(target)));
        }

        let selection = Selection::OneToOne { min: threshold };
        let batch = engine.batch().plan(slots.schemas(), slot_requests);
        // Selection-only execution: recording never reads scores, so
        // per-pair matrices drop inside the batch jobs.
        let result = batch.run_select_only(&selection);
        drop(batch);

        let mut indices = Vec::with_capacity(result.pairs.len());
        // Results come back in request order; zipping states that invariant
        // instead of relying on positional indexing.
        for (pair, &(source_id, target_id)) in result.pairs.iter().zip(requests) {
            let validated =
                MatchSet::validated_from(&pair.selected, created_by, MatchAnnotation::Equivalent);
            indices.push(
                self.record_match(source_id, target_id, validated, context, created_by, notes)?,
            );
        }
        Ok(indices)
    }

    /// The repository-level token index over all registered schemata —
    /// the retrieval structure behind [`crate::search::SchemaSearch`],
    /// [`crate::cluster::DistanceMatrix::from_repository`], and COI
    /// proposal.
    ///
    /// Reads are lock-free once the index is current: the published
    /// snapshot is taken from a [`SnapCell`], so concurrent query traffic
    /// never serializes on a writer's lock. After mutations, the first
    /// caller folds the accumulated delta into the index *incrementally*
    /// (shard-local delta logs + tombstones, no full rebuild) and publishes
    /// a new snapshot; racing callers coalesce on that one refresh instead
    /// of each rebuilding — mirroring `FeatureCache::get_or_prepare`.
    pub fn token_index(&self) -> Arc<ShardedRepositoryIndex> {
        let target = self.index.version.load(Ordering::SeqCst);
        if self.index.applied.load(Ordering::SeqCst) == target {
            if let Some(snap) = self.index.snap.read() {
                // Snapshot is current: fingerprints always match the live
                // schemata because `applied` only advances when a refresh
                // folded every noted mutation; verify in debug builds.
                debug_assert!(
                    self.schemas().all(|s| {
                        snap.slot(s.id)
                            .is_some_and(|slot| snap.fingerprint(slot) == schema_fingerprint(s))
                    }) && snap.len() == self.schemas.len()
                );
                return snap;
            }
        }
        self.refresh_index(target)
    }

    /// Slow path of [`Self::token_index`]: coalesce racing refreshers onto
    /// one incremental fold-and-publish.
    fn refresh_index(&self, target: u64) -> Arc<ShardedRepositoryIndex> {
        let mut st = self.index.state.lock().expect("index state poisoned");
        loop {
            // Someone else may have refreshed (or be refreshing) past our
            // target; wait them out and re-check rather than re-folding.
            if self.index.applied.load(Ordering::SeqCst) >= target {
                if let Some(snap) = self.index.snap.read() {
                    return snap;
                }
            }
            if !st.refreshing {
                break;
            }
            st = self.index.refreshed.wait(st).expect("index state poisoned");
        }
        st.refreshing = true;
        let touched = std::mem::take(&mut st.touched);
        st.touched_set.clear();
        // Pin the version *before* folding: mutations need `&mut self`, so
        // none can race this `&self` refresh, but the protocol stays honest
        // if that ever changes.
        let version = self.index.version.load(Ordering::SeqCst);
        drop(st);
        let _guard = RefreshGuard { cell: &self.index };
        let next = self.rebuild_or_apply(&touched);
        self.index.snap.publish(Arc::clone(&next));
        self.index.applied.store(version, Ordering::SeqCst);
        obs::add(obs::Counter::RepoSnapshots, 1);
        next
    }

    /// Fold `touched` schema ids into the current snapshot as delta
    /// upserts/tombstones, or rebuild from scratch when there is no usable
    /// base (first build, or more ids touched than the base holds).
    fn rebuild_or_apply(&self, touched: &[SchemaId]) -> Arc<ShardedRepositoryIndex> {
        let base = self.index.snap.read();
        if let Some(base) = base {
            if !base.is_empty() && !touched.is_empty() && touched.len() < base.len() {
                let cache = FeatureCache::global();
                let mut next = base.begin_update();
                for &id in touched {
                    match self.schemas.get(&id) {
                        Some(schema) => next.upsert_in_place(&cache.prepare(schema)),
                        None => {
                            next.remove_in_place(id);
                        }
                    }
                }
                // Compactions skipped while the memory governor held the
                // pressure flag catch up here, on the next refresh after
                // pressure clears.
                next.compact_pending();
                return Arc::new(next);
            }
        }
        let exec = harmony_core::exec::Executor::global();
        Arc::new(ShardedRepositoryIndex::build_parallel(
            &self.prepare_all(),
            exec,
            exec.threads(),
            self.shard_config,
        ))
    }

    /// Serialize every registered schema's prepared features plus the index
    /// configuration to `path` — the warm-start image consumed by
    /// [`Self::warm_start`]. Written from the current index snapshot (it is
    /// refreshed first), so the image always matches the registry state.
    pub fn save_registry(&self, path: &Path) -> std::io::Result<()> {
        let index = self.token_index();
        let prepared: Vec<Arc<PreparedSchema>> = index
            .live_slots()
            .into_iter()
            .map(|slot| {
                Arc::clone(
                    index
                        .prepared(slot)
                        .expect("live slots retain their preparation"),
                )
            })
            .collect();
        crate::persist::save_registry(path, &prepared, index.config())
    }

    /// Load a warm-start image saved by [`Self::save_registry`] and publish
    /// it as the current index snapshot, skipping linguistic re-preparation
    /// of every schema whose registered content still matches the image.
    /// Returns how many preparations were reused. Schemata present in the
    /// registry are required; image entries for unregistered ids are
    /// ignored.
    pub fn warm_start(&self, path: &Path) -> std::io::Result<usize> {
        let _span = obs::span(obs::SpanKind::RepoWarmLoad, 0);

        let loaded = crate::persist::load_registry(path)?;

        let mut by_fingerprint: HashMap<u64, Arc<PreparedSchema>> =
            HashMap::with_capacity(loaded.prepared.len());
        for p in loaded.prepared {
            by_fingerprint.insert(p.fingerprint, p);
        }
        let cache = FeatureCache::global();
        let mut reused = 0usize;
        let prepared: Vec<Arc<PreparedSchema>> = self
            .insertion_order
            .iter()
            .map(|id| {
                let schema = &self.schemas[id];
                let fp = self.fingerprints[id];
                match by_fingerprint.get(&fp) {
                    Some(p) if p.schema_id == schema.id => {
                        reused += 1;
                        Arc::clone(p)
                    }
                    _ => cache.prepare(schema),
                }
            })
            .collect();
        // One bulk admission (single cache lock + one eviction sweep)
        // instead of 10⁴ per-schema admits each running an O(capacity)
        // LRU scan against an already-full cache.
        cache.admit_all(&prepared);

        let exec = harmony_core::exec::Executor::global();
        let config = ShardConfig {
            shards: loaded.shard_count,
            ..self.shard_config
        };
        let index = Arc::new(ShardedRepositoryIndex::build_parallel(
            &prepared,
            exec,
            exec.threads(),
            config,
        ));
        // Publish under the state lock so we don't clobber (or get
        // clobbered by) a concurrent refresh mid-fold.
        let mut st = self.index.state.lock().expect("index state poisoned");
        while st.refreshing {
            st = self.index.refreshed.wait(st).expect("index state poisoned");
        }
        st.touched.clear();
        st.touched_set.clear();
        let version = self.index.version.load(Ordering::SeqCst);
        self.index.snap.publish(index);
        self.index.applied.store(version, Ordering::SeqCst);
        obs::add(obs::Counter::RepoSnapshots, 1);
        Ok(reused)
    }

    /// Store a match artifact; returns its record index. Both schemata must
    /// be registered first (matches against unregistered schemata would be
    /// dangling knowledge).
    pub fn record_match(
        &mut self,
        source_id: SchemaId,
        target_id: SchemaId,
        matches: MatchSet,
        context: MatchContextTag,
        created_by: impl Into<String>,
        notes: impl Into<String>,
    ) -> Result<usize, String> {
        if !self.schemas.contains_key(&source_id) {
            return Err(format!("source schema {source_id} not registered"));
        }
        if !self.schemas.contains_key(&target_id) {
            return Err(format!("target schema {target_id} not registered"));
        }
        self.clock += 1;
        self.records.push(MatchRecord {
            source_id,
            target_id,
            matches,
            context,
            created_by: created_by.into(),
            created_at: self.clock,
            notes: notes.into(),
        });
        Ok(self.records.len() - 1)
    }

    /// All match records.
    pub fn records(&self) -> &[MatchRecord] {
        &self.records
    }

    /// Records between two schemata (either orientation).
    pub fn records_between(&self, a: SchemaId, b: SchemaId) -> Vec<(usize, &MatchRecord)> {
        self.records
            .iter()
            .enumerate()
            .filter(|(_, r)| {
                (r.source_id == a && r.target_id == b) || (r.source_id == b && r.target_id == a)
            })
            .collect()
    }

    /// Records suitable for a required context (record context ≥ required).
    pub fn records_for_context(&self, required: MatchContextTag) -> Vec<(usize, &MatchRecord)> {
        self.records
            .iter()
            .enumerate()
            .filter(|(_, r)| r.context.satisfies(required))
            .collect()
    }

    /// Provenance query — §5's "who said that X is the same as Y, and should
    /// I trust that assertion in my application?". Returns every assertion
    /// linking the two elements across all records, newest first.
    pub fn who_said(
        &self,
        source_schema: SchemaId,
        source: ElementId,
        target_schema: SchemaId,
        target: ElementId,
    ) -> Vec<Provenance> {
        let mut out: Vec<Provenance> = Vec::new();
        for (idx, r) in self.records.iter().enumerate() {
            let forward = r.source_id == source_schema && r.target_id == target_schema;
            let backward = r.source_id == target_schema && r.target_id == source_schema;
            if !forward && !backward {
                continue;
            }
            for c in r.matches.all() {
                let hit = if forward {
                    c.source == source && c.target == target
                } else {
                    c.source == target && c.target == source
                };
                if hit {
                    out.push(Provenance {
                        record_index: idx,
                        asserted_by: c.asserted_by.clone(),
                        record_created_by: r.created_by.clone(),
                        context: r.context,
                        status: c.status,
                        created_at: r.created_at,
                    });
                }
            }
        }
        out.sort_by_key(|p| std::cmp::Reverse(p.created_at));
        out
    }

    /// CIO concept lookup (§2 "Enterprise information asset awareness"):
    /// which schemata contain an element whose name mentions `concept`?
    /// Returns (schema id, matching element paths).
    pub fn schemas_mentioning(&self, concept: &str) -> Vec<(SchemaId, Vec<SchemaPath>)> {
        let needle: Vec<String> = sm_text::tokenize_identifier(concept)
            .iter()
            .map(|t| sm_text::porter_stem(t))
            .collect();
        if needle.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        for schema in self.schemas() {
            let mut paths = Vec::new();
            for e in schema.elements() {
                let tokens: Vec<String> = sm_text::tokenize_identifier(&e.name)
                    .iter()
                    .map(|t| sm_text::porter_stem(t))
                    .collect();
                if needle.iter().all(|n| tokens.contains(n)) {
                    paths.push(schema.path(e.id));
                }
            }
            if !paths.is_empty() {
                out.push((schema.id, paths));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_core::confidence::Confidence;
    use harmony_core::correspondence::{Correspondence, MatchAnnotation};
    use sm_schema::{DataType, ElementKind, SchemaFormat};

    fn schema(id: u32, roots: &[&str]) -> Schema {
        let mut s = Schema::new(SchemaId(id), format!("S{id}"), SchemaFormat::Generic);
        for r in roots {
            let t = s.add_root(*r, ElementKind::Table, DataType::None);
            s.add_child(t, format!("{r}_id"), ElementKind::Column, DataType::Integer)
                .unwrap();
        }
        s
    }

    fn match_set(validated_by: &str) -> MatchSet {
        let mut m = MatchSet::new();
        m.push(
            Correspondence::candidate(ElementId(0), ElementId(0), Confidence::new(0.9))
                .validate(validated_by, MatchAnnotation::Equivalent),
        );
        m
    }

    #[test]
    fn register_and_fetch() {
        let mut repo = MetadataRepository::new();
        assert!(repo.register_schema(schema(1, &["Person"])).is_none());
        assert!(repo.register_schema(schema(2, &["Vehicle"])).is_none());
        assert_eq!(repo.schema_count(), 2);
        assert!(repo.schema(SchemaId(1)).is_some());
        assert!(repo.schema(SchemaId(9)).is_none());
        // Re-registration replaces and returns the old version.
        let old = repo.register_schema(schema(1, &["PersonV2"]));
        assert!(old.is_some());
        assert_eq!(repo.schema_count(), 2);
        assert_eq!(repo.schemas().count(), 2);
    }

    #[test]
    fn record_match_requires_registered_schemas() {
        let mut repo = MetadataRepository::new();
        repo.register_schema(schema(1, &["A"]));
        let err = repo
            .record_match(
                SchemaId(1),
                SchemaId(2),
                MatchSet::new(),
                MatchContextTag::Search,
                "tool",
                "",
            )
            .unwrap_err();
        assert!(err.contains("not registered"));
        repo.register_schema(schema(2, &["B"]));
        let idx = repo
            .record_match(
                SchemaId(1),
                SchemaId(2),
                MatchSet::new(),
                MatchContextTag::Search,
                "tool",
                "",
            )
            .unwrap();
        assert_eq!(idx, 0);
    }

    #[test]
    fn context_tags_order_by_required_precision() {
        use MatchContextTag::*;
        assert!(BusinessIntelligence.satisfies(Search));
        assert!(Integration.satisfies(Planning));
        assert!(!Search.satisfies(Integration));
        assert!(Planning.satisfies(Planning));
    }

    #[test]
    fn records_for_context_filters() {
        let mut repo = MetadataRepository::new();
        repo.register_schema(schema(1, &["A"]));
        repo.register_schema(schema(2, &["B"]));
        repo.record_match(
            SchemaId(1),
            SchemaId(2),
            MatchSet::new(),
            MatchContextTag::Search,
            "t",
            "",
        )
        .unwrap();
        repo.record_match(
            SchemaId(1),
            SchemaId(2),
            MatchSet::new(),
            MatchContextTag::Integration,
            "t",
            "",
        )
        .unwrap();
        assert_eq!(repo.records_for_context(MatchContextTag::Search).len(), 2);
        assert_eq!(repo.records_for_context(MatchContextTag::Planning).len(), 1);
        assert_eq!(
            repo.records_for_context(MatchContextTag::BusinessIntelligence)
                .len(),
            0
        );
    }

    #[test]
    fn who_said_returns_provenance_newest_first() {
        let mut repo = MetadataRepository::new();
        repo.register_schema(schema(1, &["A"]));
        repo.register_schema(schema(2, &["B"]));
        repo.record_match(
            SchemaId(1),
            SchemaId(2),
            match_set("alice"),
            MatchContextTag::Planning,
            "team-1",
            "",
        )
        .unwrap();
        repo.record_match(
            SchemaId(1),
            SchemaId(2),
            match_set("bob"),
            MatchContextTag::Integration,
            "team-2",
            "",
        )
        .unwrap();
        let prov = repo.who_said(SchemaId(1), ElementId(0), SchemaId(2), ElementId(0));
        assert_eq!(prov.len(), 2);
        assert_eq!(prov[0].asserted_by, "bob", "newest first");
        assert_eq!(prov[1].asserted_by, "alice");
        assert_eq!(prov[0].context, MatchContextTag::Integration);
        // Reverse orientation finds the same assertions.
        let rev = repo.who_said(SchemaId(2), ElementId(0), SchemaId(1), ElementId(0));
        assert_eq!(rev.len(), 2);
        // Unknown pair: empty.
        assert!(repo
            .who_said(SchemaId(1), ElementId(5), SchemaId(2), ElementId(5))
            .is_empty());
    }

    #[test]
    fn records_between_is_orientation_agnostic() {
        let mut repo = MetadataRepository::new();
        repo.register_schema(schema(1, &["A"]));
        repo.register_schema(schema(2, &["B"]));
        repo.record_match(
            SchemaId(2),
            SchemaId(1),
            MatchSet::new(),
            MatchContextTag::Search,
            "t",
            "",
        )
        .unwrap();
        assert_eq!(repo.records_between(SchemaId(1), SchemaId(2)).len(), 1);
    }

    #[test]
    fn token_index_is_cached_and_invalidated_by_registration() {
        let mut repo = MetadataRepository::new();
        repo.register_schema(schema(1, &["Person"]));
        let i1 = repo.token_index();
        let i2 = repo.token_index();
        assert!(Arc::ptr_eq(&i1, &i2), "stable registry reuses the index");
        assert_eq!(i1.len(), 1);
        assert!(!i1.postings("person").is_empty());

        repo.register_schema(schema(2, &["Vehicle"]));
        let i3 = repo.token_index();
        assert!(!Arc::ptr_eq(&i1, &i3), "registration invalidates the index");
        assert_eq!(i3.len(), 2);
        assert!(!i3.postings("vehicl").is_empty());

        // Re-registering changed content re-indexes it.
        repo.register_schema(schema(1, &["PersonV2", "Address"]));
        let i4 = repo.token_index();
        assert!(!i4.postings("address").is_empty());
        assert_eq!(i4.len(), 2, "replaced, not duplicated");
    }

    #[test]
    fn match_and_record_all_batches_and_stores() {
        let mut repo = MetadataRepository::new();
        repo.register_schema(schema(1, &["Person", "Vehicle"]));
        repo.register_schema(schema(2, &["Person", "Weapon"]));
        repo.register_schema(schema(3, &["Vehicle", "Facility"]));
        let engine = MatchEngine::new();
        let threshold = Confidence::new(0.3);
        let requests = [
            (SchemaId(1), SchemaId(2)),
            (SchemaId(1), SchemaId(3)),
            (SchemaId(2), SchemaId(3)),
        ];
        let indices = repo
            .match_and_record_all(
                &engine,
                &requests,
                threshold,
                MatchContextTag::Planning,
                "batch-tool",
                "bulk",
            )
            .expect("all schemata registered");
        assert_eq!(indices, vec![0, 1, 2]);
        // Each record matches the standalone blocked run + selection.
        for (idx, &(source_id, target_id)) in indices.iter().zip(&requests) {
            let r = &repo.records()[*idx];
            assert_eq!((r.source_id, r.target_id), (source_id, target_id));
            assert_eq!(r.context, MatchContextTag::Planning);
            let standalone = engine.run_blocked(
                repo.schema(source_id).unwrap(),
                repo.schema(target_id).unwrap(),
                &harmony_core::index::BlockingPolicy::default(),
            );
            let expected = Selection::OneToOne { min: threshold }.apply(&standalone.matrix);
            assert_eq!(r.matches.len(), expected.len());
            assert!(r.matches.validated().count() == r.matches.len());
        }
        // Shared tables collide across schemata, so some record is non-empty.
        assert!(repo.records().iter().any(|r| !r.matches.is_empty()));
        // Unknown ids fail fast without recording anything.
        let before = repo.records().len();
        let err = repo
            .match_and_record_all(
                &engine,
                &[(SchemaId(1), SchemaId(99))],
                threshold,
                MatchContextTag::Search,
                "t",
                "",
            )
            .unwrap_err();
        assert!(err.contains("not registered"));
        assert_eq!(repo.records().len(), before);
    }

    #[test]
    fn cio_concept_lookup() {
        let mut repo = MetadataRepository::new();
        let mut s1 = schema(1, &["Patient"]);
        let t = s1.roots()[0];
        s1.add_child(
            t,
            "blood_test_result",
            ElementKind::Column,
            DataType::text(),
        )
        .unwrap();
        repo.register_schema(s1);
        repo.register_schema(schema(2, &["Vehicle"]));
        let hits = repo.schemas_mentioning("BloodTest");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, SchemaId(1));
        assert_eq!(hits[0].1[0].to_string(), "Patient/blood_test_result");
        // Stemmed matching: plural query still hits.
        assert_eq!(repo.schemas_mentioning("blood tests").len(), 1);
        assert!(repo.schemas_mentioning("dialysis").is_empty());
        assert!(repo.schemas_mentioning("").is_empty());
    }
}

//! The sharded, incrementally-maintained repository index.
//!
//! [`crate::index::RepositoryIndex`] is a single monolithic CSR blob: every
//! registration throws the whole structure away and the next reader rebuilds
//! all of it. At the paper's repository scale (10^4–10^6 schemata) that write
//! path costs seconds per registration. [`ShardedRepositoryIndex`] keeps the
//! same query semantics — byte-identical scores, see below — while making
//! maintenance incremental:
//!
//! * **Token-range shards.** The interned token-id space is dealt out to
//!   shards in blocks of 64 consecutive ids (block-cyclic, so shards stay
//!   balanced regardless of intern order). Each shard is an independent flat
//!   CSR postings store, built in parallel on the global `Executor` and
//!   compacted independently. A token routes to exactly one shard, so
//!   shard-local document frequency *is* global document frequency — IDF
//!   weights need no cross-shard reconciliation.
//! * **Delta maintenance.** Inserting a schema appends its slot to the
//!   touched shards' delta logs (`token → added slots`); removing one flips
//!   a global tombstone bit and bumps per-token drop counts. Probes consult
//!   base CSR and delta log side by side, skipping tombstoned slots. No full
//!   rebuild happens on the write path.
//! * **Size-triggered compaction.** When a shard's accumulated delta +
//!   tombstone ops outgrow a fraction of its base postings, that one shard
//!   folds its live postings back into a fresh flat CSR and clears its logs.
//!   Compaction only re-arranges storage — which slots are live and every
//!   per-token live df are unchanged — so it is invisible to scores.
//!
//! ## Score equivalence with a from-scratch rebuild
//!
//! The pinned invariant (see `tests/shard_pin.rs`): after any interleaving
//! of insert / remove / compact, query scores are **byte-identical** to a
//! monolithic [`crate::index::RepositoryIndex`] built from scratch over the
//! live schemata. Three properties carry it:
//!
//! 1. Weights are the pure function `idf_weight(n_live, df_live)`; `n_live`
//!    and each token's live df are maintained exactly (tombstones decrement
//!    df), not approximated.
//! 2. Probes iterate *query tokens* in their given (lexicographic) order and
//!    route each token to its shard — never shard-major — so each slot's
//!    shared-weight sum adds the same `f64`s in the same order as the
//!    monolithic accumulator (float addition is not associative).
//! 3. Per-schema total weights sum `signature_ids` in the same lexicographic
//!    order, computed lazily per snapshot (they depend on `n_live`, which
//!    moves with every maintenance op).
//!
//! Slot numbers are physical (append-only, holes where tombstones sit) and
//! differ from a fresh build's registration-order slots, but no score
//! depends on slot numbering and search tie-breaks on `SchemaId`.
//!
//! Snapshots are immutable: writers [`ShardedRepositoryIndex::begin_update`]
//! a cheap copy-on-write clone (shard bases are `Arc`-shared), apply ops in
//! place, and publish the result through a
//! [`harmony_core::swap::SnapCell`] — see
//! [`crate::repository::MetadataRepository::token_index`].

use crate::index::idf_weight;
use harmony_core::exec::Executor;
use harmony_core::obs;
use harmony_core::prepare::PreparedSchema;
use sm_schema::SchemaId;
use sm_text::intern::{TokenArena, TokenId};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// Token-id block width (log2) of the block-cyclic shard routing: 64
/// consecutive interned ids land on one shard, the next 64 on the next.
const TOKEN_BLOCK_BITS: u32 = 6;

/// Schemata per parallel build chunk (signature resolution dominates a
/// build, so chunks stay small enough to balance).
const BUILD_CHUNK_SCHEMAS: usize = 16;

/// Shard-count and compaction-trigger knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardConfig {
    /// Number of token-range shards (≥ 1). Fixed at build; scores are
    /// identical at any count, so this only tunes parallelism and
    /// compaction granularity.
    pub shards: usize,
    /// Minimum delta + tombstone ops before a shard is even considered for
    /// compaction (keeps tiny indices from compacting on every op).
    pub min_compact_ops: usize,
    /// Compact a shard once its pending ops exceed this fraction of its
    /// base postings.
    pub compact_fraction: f64,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: 8,
            min_compact_ops: 64,
            compact_fraction: 0.25,
        }
    }
}

/// One indexed schema slot. Slots are append-only: removal tombstones a
/// slot (`alive = false`, preparation dropped) and the number is never
/// reused, so delta-log postings stay ascending forever.
#[derive(Debug, Clone)]
struct SlotEntry {
    id: SchemaId,
    fingerprint: u64,
    alive: bool,
    /// Resolved signature, lexicographic (display + shared-token reports).
    signatures: Arc<[String]>,
    /// The slot's preparation — the source of `signature_ids` and what
    /// warm-start serialization persists. `None` once tombstoned.
    prepared: Option<Arc<PreparedSchema>>,
}

/// A shard's immutable base: flat CSR over the shard's token subset.
/// `Arc`-shared between snapshots so copy-on-write clones are O(delta).
#[derive(Debug)]
struct ShardBase {
    /// Distinct token ids, ascending.
    tokens: Vec<TokenId>,
    /// `offsets[t]..offsets[t+1]` slices `postings` for `tokens[t]`.
    offsets: Vec<u32>,
    /// Ascending slots per token (may include tombstoned slots until the
    /// next compaction).
    postings: Vec<u32>,
}

impl ShardBase {
    fn empty() -> Self {
        ShardBase {
            tokens: Vec::new(),
            offsets: vec![0],
            postings: Vec::new(),
        }
    }

    /// Assemble from `(token << 32) | slot` pairs, sorted ascending.
    fn from_sorted_pairs(pairs: &[u64]) -> Self {
        debug_assert!(pairs.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
        let mut base = ShardBase::empty();
        base.postings.reserve(pairs.len());
        let mut i = 0usize;
        while i < pairs.len() {
            let token = (pairs[i] >> 32) as u32;
            while i < pairs.len() && (pairs[i] >> 32) as u32 == token {
                base.postings.push((pairs[i] & 0xffff_ffff) as u32);
                i += 1;
            }
            base.tokens.push(TokenId(token));
            base.offsets.push(base.postings.len() as u32);
        }
        base
    }

    /// Posting slice of a token, `None` when absent from the base.
    #[inline]
    fn posting(&self, t: TokenId) -> Option<&[u32]> {
        let k = self.tokens.binary_search(&t).ok()?;
        Some(&self.postings[self.offsets[k] as usize..self.offsets[k + 1] as usize])
    }
}

/// One token-range shard: `Arc`-shared base CSR plus this snapshot's delta
/// log and tombstone counts.
#[derive(Debug, Clone)]
struct Shard {
    base: Arc<ShardBase>,
    /// Slots appended since the last compaction, ascending per token (slot
    /// numbers grow monotonically, so pushes keep order).
    delta: HashMap<TokenId, Vec<u32>>,
    /// Per-token count of tombstoned slots still present in base ∪ delta —
    /// `live df = base df + delta df − drop df`, O(1) per token.
    df_drop: HashMap<TokenId, u32>,
    /// Maintenance ops (delta pushes + tombstone bumps) since the last
    /// compaction — the compaction trigger.
    pending_ops: usize,
}

impl Shard {
    fn empty() -> Self {
        Shard {
            base: Arc::new(ShardBase::empty()),
            delta: HashMap::new(),
            df_drop: HashMap::new(),
            pending_ops: 0,
        }
    }

    /// Live document frequency of a token in this shard (= globally, since
    /// a token routes to exactly one shard).
    #[inline]
    fn live_df(&self, t: TokenId) -> u32 {
        let base = self.posting_len(t);
        let added = self.delta.get(&t).map_or(0, |v| v.len() as u32);
        let dropped = self.df_drop.get(&t).copied().unwrap_or(0);
        base + added - dropped
    }

    #[inline]
    fn posting_len(&self, t: TokenId) -> u32 {
        self.base.posting(t).map_or(0, |p| p.len() as u32)
    }
}

/// The sharded repository index — same query surface as
/// [`crate::index::RepositoryIndex`], plus in-place maintenance. See the
/// module docs for the layout and the score-equivalence argument.
#[derive(Debug)]
pub struct ShardedRepositoryIndex {
    arena: Arc<TokenArena>,
    config: ShardConfig,
    slots: Vec<SlotEntry>,
    /// id → live slot.
    slot_of: HashMap<SchemaId, u32>,
    /// Live slot count (`n` of the IDF formula).
    live: u32,
    shards: Vec<Shard>,
    /// Lazy per-slot total signature weight. Depends on `n_live`, which
    /// changes with every maintenance op, so each snapshot memoizes its own
    /// totals on first use instead of eagerly recomputing all of them.
    total_weights: Vec<OnceLock<f64>>,
}

impl ShardedRepositoryIndex {
    /// Build over prepared schemata in slot order, inline on the caller.
    ///
    /// # Panics
    /// Panics when the preparations do not share one token arena, or when
    /// two preparations carry the same schema id.
    pub fn build(prepared: &[Arc<PreparedSchema>], config: ShardConfig) -> Self {
        Self::build_opt(prepared, None, config)
    }

    /// [`Self::build`] with schema chunks and per-shard CSR assembly fanned
    /// out across up to `parallelism` executor lanes. Bit-identical to the
    /// inline build at every lane count: chunk outputs merge in slot order
    /// and each shard sorts the same pair multiset.
    pub fn build_parallel(
        prepared: &[Arc<PreparedSchema>],
        exec: &Executor,
        parallelism: usize,
        config: ShardConfig,
    ) -> Self {
        Self::build_opt(prepared, Some((exec, parallelism)), config)
    }

    fn build_opt(
        prepared: &[Arc<PreparedSchema>],
        par: Option<(&Executor, usize)>,
        config: ShardConfig,
    ) -> Self {
        obs::add(obs::Counter::RepoIndexBuilds, 1);
        let _span = obs::span(obs::SpanKind::RepoIndexBuild, prepared.len() as u64);
        let shard_count = config.shards.max(1);
        let arena = prepared
            .first()
            .map(|p| Arc::clone(p.arena()))
            .unwrap_or_else(|| Arc::clone(TokenArena::global()));
        for p in prepared {
            assert!(
                Arc::ptr_eq(p.arena(), &arena),
                "all indexed preparations must share one token arena"
            );
        }

        // Parallel phase 1: per schema chunk, resolve display signatures and
        // emit per-shard packed `(token << 32) | slot` pairs. Chunk outputs
        // stitch in slot order via the shared deterministic chunk runner.
        struct ChunkOut {
            pairs: Vec<Vec<u64>>,
            signatures: Vec<Arc<[String]>>,
        }
        let route = |t: TokenId| -> usize { ((t.0 >> TOKEN_BLOCK_BITS) as usize) % shard_count };
        let outs: Vec<ChunkOut> = harmony_core::index::run_chunked(
            par,
            prepared.len(),
            BUILD_CHUNK_SCHEMAS,
            |_, range| {
                let mut out = ChunkOut {
                    pairs: vec![Vec::new(); shard_count],
                    signatures: Vec::with_capacity(range.len()),
                };
                for slot in range {
                    let sig = prepared[slot].signature_ids();
                    for &t in sig {
                        out.pairs[route(t)].push((u64::from(t.0) << 32) | slot as u64);
                    }
                    out.signatures.push(arena.resolve_all(sig).into());
                }
                out
            },
        );
        let mut shard_pairs: Vec<Vec<u64>> = vec![Vec::new(); shard_count];
        let mut signatures: Vec<Arc<[String]>> = Vec::with_capacity(prepared.len());
        for out in outs {
            for (s, pairs) in out.pairs.into_iter().enumerate() {
                shard_pairs[s].extend(pairs);
            }
            signatures.extend(out.signatures);
        }

        // Parallel phase 2: sort each shard's pairs and lay out its CSR.
        // Each shard sorts one fixed multiset, so the result is identical at
        // any lane count or assignment.
        let build_shard = |pairs: &mut Vec<u64>| -> Shard {
            let _span = obs::span(obs::SpanKind::RepoShardBuild, pairs.len() as u64);
            obs::add(obs::Counter::RepoShardBuilds, 1);
            pairs.sort_unstable();
            Shard {
                base: Arc::new(ShardBase::from_sorted_pairs(pairs)),
                ..Shard::empty()
            }
        };
        let shards: Vec<Shard> = match par {
            Some((exec, parallelism)) if parallelism > 1 && shard_count > 1 => {
                let items: Vec<std::sync::Mutex<Vec<u64>>> =
                    shard_pairs.into_iter().map(std::sync::Mutex::new).collect();
                exec.run_map(parallelism, &items, |_, m| {
                    let mut pairs = std::mem::take(&mut *m.lock().expect("shard pairs poisoned"));
                    build_shard(&mut pairs)
                })
            }
            _ => shard_pairs.iter_mut().map(build_shard).collect(),
        };

        let slots: Vec<SlotEntry> = prepared
            .iter()
            .zip(signatures)
            .map(|(p, signatures)| SlotEntry {
                id: p.schema_id,
                fingerprint: p.fingerprint,
                alive: true,
                signatures,
                prepared: Some(Arc::clone(p)),
            })
            .collect();
        let mut slot_of = HashMap::with_capacity(slots.len());
        for (slot, entry) in slots.iter().enumerate() {
            let prev = slot_of.insert(entry.id, slot as u32);
            assert!(prev.is_none(), "duplicate schema id {} in build", entry.id);
        }
        let total_weights = (0..slots.len()).map(|_| OnceLock::new()).collect();
        ShardedRepositoryIndex {
            arena,
            config,
            live: slots.len() as u32,
            slots,
            slot_of,
            shards,
            total_weights,
        }
    }

    // -- introspection ------------------------------------------------------

    /// The shard/compaction configuration.
    pub fn config(&self) -> ShardConfig {
        self.config
    }

    /// Number of token-range shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of *live* (non-tombstoned) schemata.
    pub fn len(&self) -> usize {
        self.live as usize
    }

    /// True when no live schema is indexed.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of physical slots, tombstones included.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Pending (uncompacted) delta + tombstone ops, summed over shards.
    pub fn pending_ops(&self) -> usize {
        self.shards.iter().map(|s| s.pending_ops).sum()
    }

    /// Schema id at a physical slot (defined for tombstoned slots too).
    pub fn id_at(&self, slot: u32) -> SchemaId {
        self.slots[slot as usize].id
    }

    /// Live slot of a schema id.
    pub fn slot(&self, id: SchemaId) -> Option<u32> {
        self.slot_of.get(&id).copied()
    }

    /// Is the slot live (not tombstoned)?
    pub fn is_live(&self, slot: u32) -> bool {
        self.slots[slot as usize].alive
    }

    /// Ascending physical slots of the live schemata.
    pub fn live_slots(&self) -> Vec<u32> {
        (0..self.slots.len() as u32)
            .filter(|&s| self.slots[s as usize].alive)
            .collect()
    }

    /// Content fingerprint a slot was indexed under.
    pub fn fingerprint(&self, slot: u32) -> u64 {
        self.slots[slot as usize].fingerprint
    }

    /// Resolved signature of a slot, lexicographic.
    pub fn signature(&self, slot: u32) -> &[String] {
        &self.slots[slot as usize].signatures
    }

    /// Interned signature of a slot, lexicographically ordered by resolved
    /// string (empty for tombstoned slots).
    pub fn signature_ids(&self, slot: u32) -> &[TokenId] {
        self.slots[slot as usize]
            .prepared
            .as_ref()
            .map_or(&[], |p| p.signature_ids())
    }

    /// The preparation a live slot was indexed from (`None` once
    /// tombstoned) — retained so warm-start serialization and downstream
    /// operators reuse it instead of re-preparing.
    pub fn prepared(&self, slot: u32) -> Option<&Arc<PreparedSchema>> {
        self.slots[slot as usize].prepared.as_ref()
    }

    /// The arena this index's token ids point into.
    pub fn arena(&self) -> &Arc<TokenArena> {
        &self.arena
    }

    // -- weights ------------------------------------------------------------

    #[inline]
    fn n_live(&self) -> f64 {
        self.live.max(1) as f64
    }

    #[inline]
    fn route(&self, t: TokenId) -> usize {
        ((t.0 >> TOKEN_BLOCK_BITS) as usize) % self.shards.len()
    }

    /// IDF weight of an interned token over the live schemata — the same
    /// `idf_weight(n, df)` a from-scratch rebuild would freeze (`df = 0`
    /// weight for tokens in no live schema).
    pub fn weight_by_id(&self, token: TokenId) -> f64 {
        let df = self.shards[self.route(token)].live_df(token);
        idf_weight(self.n_live(), f64::from(df))
    }

    /// IDF weight of a token (`df = 0` weight for unseen tokens).
    pub fn weight(&self, token: &str) -> f64 {
        self.arena.lookup(token).map_or_else(
            || idf_weight(self.n_live(), 0.0),
            |id| self.weight_by_id(id),
        )
    }

    /// Total signature weight of a live slot, summed in the signature's
    /// lexicographic order. Memoized per snapshot (first caller computes;
    /// the `OnceLock` makes racing readers agree).
    pub fn total_weight(&self, slot: u32) -> f64 {
        *self.total_weights[slot as usize].get_or_init(|| {
            self.signature_ids(slot)
                .iter()
                .map(|&t| self.weight_by_id(t))
                .sum()
        })
    }

    // -- probes -------------------------------------------------------------

    /// Accumulate the shared signature weight between a query signature and
    /// every live schema, visiting only posting lists of the query's tokens.
    /// Returns `(physical slot, shared_weight)` for every live schema
    /// sharing at least one token, slots ascending. `query_tokens` must be
    /// in lexicographic resolved-string order — each token routes to its
    /// shard O(1), so the per-slot addition order stays the query-token
    /// order (the monolithic accumulator's order, bit for bit).
    pub fn accumulate_ids(&self, query_tokens: &[TokenId]) -> Vec<(u32, f64)> {
        let n = self.n_live();
        let mut acc: Vec<f64> = vec![0.0; self.slots.len()];
        let mut touched: Vec<u32> = Vec::new();
        let mut postings_touched = 0u64;
        for &t in query_tokens {
            let shard = &self.shards[self.route(t)];
            let df = shard.live_df(t);
            if df == 0 {
                continue;
            }
            let w = idf_weight(n, f64::from(df));
            let mut visit = |slot: u32| {
                postings_touched += 1;
                if !self.slots[slot as usize].alive {
                    return;
                }
                if acc[slot as usize] == 0.0 {
                    touched.push(slot);
                }
                acc[slot as usize] += w;
            };
            if let Some(posting) = shard.base.posting(t) {
                posting.iter().copied().for_each(&mut visit);
            }
            if let Some(delta) = shard.delta.get(&t) {
                delta.iter().copied().for_each(&mut visit);
            }
        }
        obs::add(obs::Counter::RepoProbeRows, 1);
        obs::add(obs::Counter::RepoPostings, postings_touched);
        touched.sort_unstable();
        touched
            .into_iter()
            .map(|slot| (slot, acc[slot as usize]))
            .collect()
    }

    /// String-keyed [`Self::accumulate_ids`] (inspection and tests).
    pub fn accumulate<'q>(
        &self,
        query_tokens: impl IntoIterator<Item = &'q str>,
    ) -> Vec<(u32, f64)> {
        let ids: Vec<TokenId> = query_tokens
            .into_iter()
            .filter_map(|t| self.arena.lookup(t))
            .collect();
        self.accumulate_ids(&ids)
    }

    /// Live posting slots of an interned token, ascending (base ∪ delta,
    /// tombstones skipped — materialized, unlike the monolithic slice view).
    pub fn postings_by_id(&self, token: TokenId) -> Vec<u32> {
        let shard = &self.shards[self.route(token)];
        let mut out = Vec::new();
        if let Some(posting) = shard.base.posting(token) {
            out.extend(posting.iter().filter(|&&s| self.slots[s as usize].alive));
        }
        if let Some(delta) = shard.delta.get(&token) {
            out.extend(delta.iter().filter(|&&s| self.slots[s as usize].alive));
        }
        out.sort_unstable();
        out
    }

    /// Live posting slots of a token, ascending.
    pub fn postings(&self, token: &str) -> Vec<u32> {
        self.arena
            .lookup(token)
            .map_or_else(Vec::new, |id| self.postings_by_id(id))
    }

    /// Does the token's posting (base ∪ delta) contain this live slot?
    fn posting_contains(&self, token: TokenId, slot: u32) -> bool {
        let shard = &self.shards[self.route(token)];
        if let Some(posting) = shard.base.posting(token) {
            if posting.binary_search(&slot).is_ok() {
                return true;
            }
        }
        shard
            .delta
            .get(&token)
            .is_some_and(|d| d.binary_search(&slot).is_ok())
    }

    /// Pairwise signature-intersection counts over the live schemata, as a
    /// dense row-major `n×n` symmetric matrix (diagonal zero) in
    /// [`Self::live_slots`] order. Counts are integers, so shards are walked
    /// independently and their contributions summed — order-free.
    pub fn pairwise_intersections(&self) -> Vec<u32> {
        let live = self.live_slots();
        let n = live.len();
        // Physical slot → dense live rank.
        let mut rank = vec![u32::MAX; self.slots.len()];
        for (r, &s) in live.iter().enumerate() {
            rank[s as usize] = r as u32;
        }
        let mut inter = vec![0u32; n * n];
        let mut row: Vec<u32> = Vec::new();
        for shard in &self.shards {
            let mut count = |row: &[u32]| {
                for (i, &a) in row.iter().enumerate() {
                    for &b in &row[i + 1..] {
                        inter[a as usize * n + b as usize] += 1;
                        inter[b as usize * n + a as usize] += 1;
                    }
                }
            };
            for (k, w) in shard.base.offsets.windows(2).enumerate() {
                let token = shard.base.tokens[k];
                let posting = &shard.base.postings[w[0] as usize..w[1] as usize];
                row.clear();
                row.extend(
                    posting
                        .iter()
                        .filter(|&&s| rank[s as usize] != u32::MAX)
                        .map(|&s| rank[s as usize]),
                );
                // Delta postings of the same token join the same row.
                if let Some(delta) = shard.delta.get(&token) {
                    row.extend(
                        delta
                            .iter()
                            .filter(|&&s| rank[s as usize] != u32::MAX)
                            .map(|&s| rank[s as usize]),
                    );
                }
                count(&row);
            }
            // Tokens that exist only in the delta log.
            for (t, delta) in &shard.delta {
                if shard.base.posting(*t).is_some() {
                    continue;
                }
                row.clear();
                row.extend(
                    delta
                        .iter()
                        .filter(|&&s| rank[s as usize] != u32::MAX)
                        .map(|&s| rank[s as usize]),
                );
                count(&row);
            }
        }
        inter
    }

    /// IDF-weighted vocabulary-overlap upper bounds for all live schema
    /// pairs ([`harmony_core::batch::OverlapEstimates`]) in
    /// [`Self::live_slots`] order — the batch planner's Plan-stage
    /// estimator served from the maintained registry index, in one walk
    /// over every shard's live postings (base ∪ delta, tombstones
    /// skipped). Weights are the index's own live `idf_weight(n, df)`, so
    /// the bounds agree with search scoring at any point of the
    /// insert/remove/compact lifecycle. Tokens posted in more than
    /// `df_cap` live schemata join the shared ubiquitous mass instead of
    /// being walked quadratically (pass `usize::MAX` for exact bounds).
    pub fn overlap_estimates(&self, df_cap: usize) -> harmony_core::batch::OverlapEstimates {
        let live = self.live_slots();
        let n = live.len();
        let mut rank = vec![u32::MAX; self.slots.len()];
        for (r, &s) in live.iter().enumerate() {
            rank[s as usize] = r as u32;
        }
        // One (weight, live ranks) posting per live token, gathered shard
        // by shard — a token routes to exactly one shard, so no token is
        // visited twice and shard-local df is global df.
        let mut postings: Vec<(f64, Vec<u32>)> = Vec::new();
        let mut row: Vec<u32> = Vec::new();
        let nf = self.n_live();
        for shard in &self.shards {
            let mut push = |token: TokenId, row: &[u32]| {
                if !row.is_empty() {
                    let df = shard.live_df(token);
                    postings.push((idf_weight(nf, f64::from(df)), row.to_vec()));
                }
            };
            for (k, w) in shard.base.offsets.windows(2).enumerate() {
                let token = shard.base.tokens[k];
                let posting = &shard.base.postings[w[0] as usize..w[1] as usize];
                row.clear();
                row.extend(
                    posting
                        .iter()
                        .filter(|&&s| rank[s as usize] != u32::MAX)
                        .map(|&s| rank[s as usize]),
                );
                if let Some(delta) = shard.delta.get(&token) {
                    row.extend(
                        delta
                            .iter()
                            .filter(|&&s| rank[s as usize] != u32::MAX)
                            .map(|&s| rank[s as usize]),
                    );
                }
                push(token, &row);
            }
            for (t, delta) in &shard.delta {
                if shard.base.posting(*t).is_some() {
                    continue;
                }
                row.clear();
                row.extend(
                    delta
                        .iter()
                        .filter(|&&s| rank[s as usize] != u32::MAX)
                        .map(|&s| rank[s as usize]),
                );
                push(*t, &row);
            }
        }
        harmony_core::batch::OverlapEstimates::from_token_postings(n, postings, df_cap)
    }

    /// Tokens present in *every* given live schema, sorted lexicographically
    /// (walks the smallest member's signature; unknown ids yield empty).
    pub fn shared_tokens(&self, members: &[SchemaId]) -> Vec<String> {
        let Some(mut slots) = members
            .iter()
            .map(|&id| self.slot(id))
            .collect::<Option<Vec<u32>>>()
        else {
            return Vec::new();
        };
        slots.sort_unstable();
        slots.dedup();
        let Some(&smallest) = slots.iter().min_by_key(|&&s| self.signature_ids(s).len()) else {
            return Vec::new();
        };
        let kept: Vec<TokenId> = self
            .signature_ids(smallest)
            .iter()
            .filter(|&&t| {
                self.shards[self.route(t)].live_df(t) as usize >= slots.len()
                    && slots.iter().all(|&s| self.posting_contains(t, s))
            })
            .copied()
            .collect();
        self.arena.resolve_all(&kept)
    }

    // -- maintenance --------------------------------------------------------

    /// Copy-on-write clone for a maintenance pass: shard bases are shared,
    /// delta logs and slot tables are copied, and the total-weight memo is
    /// reset (every op changes `n_live`, invalidating all totals).
    pub fn begin_update(&self) -> Self {
        ShardedRepositoryIndex {
            arena: Arc::clone(&self.arena),
            config: self.config,
            slots: self.slots.clone(),
            slot_of: self.slot_of.clone(),
            live: self.live,
            shards: self.shards.clone(),
            total_weights: (0..self.slots.len()).map(|_| OnceLock::new()).collect(),
        }
    }

    /// Insert or replace a schema in place. A re-registration with an
    /// unchanged fingerprint is a no-op; a changed one tombstones the old
    /// slot and appends a new one. Call on a [`Self::begin_update`] clone —
    /// published snapshots are immutable.
    pub fn upsert_in_place(&mut self, prepared: &Arc<PreparedSchema>) {
        assert!(
            Arc::ptr_eq(prepared.arena(), &self.arena),
            "preparation must share the index arena"
        );
        if let Some(slot) = self.slot(prepared.schema_id) {
            if self.slots[slot as usize].fingerprint == prepared.fingerprint {
                return;
            }
            self.remove_in_place(prepared.schema_id);
        }
        let slot = self.slots.len() as u32;
        let sig = prepared.signature_ids();
        self.slots.push(SlotEntry {
            id: prepared.schema_id,
            fingerprint: prepared.fingerprint,
            alive: true,
            signatures: self.arena.resolve_all(sig).into(),
            prepared: Some(Arc::clone(prepared)),
        });
        self.total_weights.push(OnceLock::new());
        self.slot_of.insert(prepared.schema_id, slot);
        self.live += 1;
        for &t in prepared.signature_ids() {
            let s = self.route(t);
            let shard = &mut self.shards[s];
            shard.delta.entry(t).or_default().push(slot);
            shard.pending_ops += 1;
        }
        obs::add(obs::Counter::RepoDeltaOps, sig.len() as u64);
        self.maybe_compact();
    }

    /// Tombstone a schema in place; returns false when the id is not live.
    /// Call on a [`Self::begin_update`] clone.
    pub fn remove_in_place(&mut self, id: SchemaId) -> bool {
        let Some(slot) = self.slot_of.remove(&id) else {
            return false;
        };
        let entry = &mut self.slots[slot as usize];
        entry.alive = false;
        let prepared = entry.prepared.take().expect("live slot has preparation");
        let sig = prepared.signature_ids();
        for &t in sig {
            let s = self.route(t);
            let shard = &mut self.shards[s];
            *shard.df_drop.entry(t).or_default() += 1;
            shard.pending_ops += 1;
        }
        self.live -= 1;
        obs::add(obs::Counter::RepoDeltaOps, sig.len() as u64);
        self.maybe_compact();
        true
    }

    /// Compact every shard whose pending ops crossed its size trigger.
    /// Deferred wholesale while the process is under memory pressure — a
    /// compaction transiently doubles a shard's posting storage, which is
    /// exactly what the governor is trying to avoid; the delta logs stay
    /// correct (just slower to probe) and [`Self::compact_pending`] catches
    /// up once pressure clears.
    fn maybe_compact(&mut self) {
        if harmony_core::serve::memory_pressure() {
            obs::add(obs::Counter::RepoCompactionsDeferred, 1);
            return;
        }
        for s in 0..self.shards.len() {
            let shard = &self.shards[s];
            let threshold = (self.config.min_compact_ops.max(1))
                .max((shard.base.postings.len() as f64 * self.config.compact_fraction) as usize);
            if shard.pending_ops > threshold {
                self.compact_shard(s);
            }
        }
    }

    /// Catch-up entry point for compactions deferred under memory
    /// pressure: re-runs the normal trigger check (no-op while pressure
    /// persists or no shard is over threshold).
    pub fn compact_pending(&mut self) {
        self.maybe_compact();
    }

    /// Force-compact every shard with pending ops (bench/serialization
    /// hygiene; scores are unchanged by construction).
    pub fn compact_all(&mut self) {
        for s in 0..self.shards.len() {
            if self.shards[s].pending_ops > 0 {
                self.compact_shard(s);
            }
        }
    }

    /// Fold one shard's live postings (base minus tombstones, plus delta)
    /// into a fresh flat CSR and clear its logs. Which slots are live and
    /// every per-token live df are unchanged, so probes and weights — and
    /// therefore scores — cannot observe a compaction.
    fn compact_shard(&mut self, s: usize) {
        let slots = &self.slots;
        let shard = &mut self.shards[s];
        let _span = obs::span(
            obs::SpanKind::RepoCompact,
            (shard.base.postings.len() + shard.pending_ops) as u64,
        );
        obs::add(obs::Counter::RepoCompactions, 1);
        obs::add(obs::Counter::RepoShardBuilds, 1);
        let mut pairs: Vec<u64> = Vec::with_capacity(shard.base.postings.len() + shard.delta.len());
        for (k, w) in shard.base.offsets.windows(2).enumerate() {
            let t = shard.base.tokens[k];
            for &slot in &shard.base.postings[w[0] as usize..w[1] as usize] {
                if slots[slot as usize].alive {
                    pairs.push((u64::from(t.0) << 32) | u64::from(slot));
                }
            }
        }
        for (&t, delta) in &shard.delta {
            for &slot in delta {
                if slots[slot as usize].alive {
                    pairs.push((u64::from(t.0) << 32) | u64::from(slot));
                }
            }
        }
        pairs.sort_unstable();
        shard.base = Arc::new(ShardBase::from_sorted_pairs(&pairs));
        shard.delta.clear();
        shard.df_drop.clear();
        shard.pending_ops = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::RepositoryIndex;
    use harmony_core::prepare::FeatureCache;
    use sm_schema::{DataType, ElementKind, Schema, SchemaFormat};
    use sm_text::normalize::Normalizer;

    fn schema(id: u32, words: &[&str]) -> Schema {
        let mut s = Schema::new(SchemaId(id), format!("S{id}"), SchemaFormat::Generic);
        let r = s.add_root("Root", ElementKind::Group, DataType::None);
        for w in words {
            s.add_child(r, *w, ElementKind::Column, DataType::text())
                .unwrap();
        }
        s
    }

    fn prepare(schemas: &[Schema]) -> Vec<Arc<PreparedSchema>> {
        let cache = FeatureCache::new(Normalizer::new());
        schemas.iter().map(|s| cache.prepare(s)).collect()
    }

    fn world() -> Vec<Schema> {
        vec![
            schema(0, &["vin", "make", "model"]),
            schema(1, &["vin", "engine"]),
            schema(2, &["patient", "blood"]),
            schema(3, &["vin", "blood", "cargo"]),
        ]
    }

    /// Tiny thresholds so every maintenance op triggers compaction paths.
    fn eager() -> ShardConfig {
        ShardConfig {
            shards: 3,
            min_compact_ops: 1,
            compact_fraction: 0.0,
        }
    }

    /// The sharded index must agree with the monolithic reference, bit for
    /// bit, on weights, accumulation, and totals — at any shard count.
    #[test]
    fn full_build_matches_monolithic_bitwise() {
        let prepared = prepare(&world());
        let mono = RepositoryIndex::build(&prepared);
        for shards in [1usize, 2, 3, 8, 64] {
            let sharded = ShardedRepositoryIndex::build(
                &prepared,
                ShardConfig {
                    shards,
                    ..ShardConfig::default()
                },
            );
            assert_eq!(sharded.len(), mono.len());
            assert_eq!(sharded.shard_count(), shards);
            for slot in 0..mono.len() as u32 {
                assert_eq!(sharded.signature(slot), mono.signature(slot));
                assert_eq!(
                    sharded.total_weight(slot).to_bits(),
                    mono.total_weight(slot).to_bits(),
                    "totals must be byte-identical"
                );
            }
            let q = prepared[3].signature_ids();
            let a = sharded.accumulate_ids(q);
            let b = mono.accumulate_ids(q);
            assert_eq!(a.len(), b.len());
            for ((s1, w1), (s2, w2)) in a.iter().zip(&b) {
                assert_eq!(s1, s2);
                assert_eq!(w1.to_bits(), w2.to_bits());
            }
            for t in ["vin", "blood", "unseen-token"] {
                assert_eq!(sharded.weight(t).to_bits(), mono.weight(t).to_bits());
            }
        }
    }

    /// Overlap estimates served from the sharded index must equal the
    /// monolithic index's — at build time and after delta maintenance
    /// (live slots only, live weights).
    #[test]
    fn overlap_estimates_match_monolithic_through_maintenance() {
        let schemas = world();
        let prepared = prepare(&schemas);
        for config in [ShardConfig::default(), eager()] {
            let mut idx = ShardedRepositoryIndex::build(&prepared[..2], config);
            for p in &prepared[2..] {
                let mut next = idx.begin_update();
                next.upsert_in_place(p);
                idx = next;
            }
            let mut next = idx.begin_update();
            assert!(next.remove_in_place(SchemaId(1)));
            idx = next;

            let live: Vec<Arc<PreparedSchema>> = [0usize, 2, 3]
                .iter()
                .map(|&i| Arc::clone(&prepared[i]))
                .collect();
            let rebuilt = RepositoryIndex::build(&live);
            let a = idx.overlap_estimates(usize::MAX);
            let b = rebuilt.overlap_estimates(usize::MAX);
            assert_eq!(a.len(), 3);
            for i in 0..3 {
                assert!(
                    (a.self_weight(i) - b.self_weight(i)).abs() < 1e-9,
                    "config {config:?}"
                );
                for j in 0..3 {
                    assert!(
                        (a.bound(i, j) - b.bound(i, j)).abs() < 1e-9,
                        "config {config:?}: bound({i}, {j})"
                    );
                    assert!(
                        (a.distance(i, j) - b.distance(i, j)).abs() < 1e-9,
                        "config {config:?}: distance({i}, {j})"
                    );
                }
            }
            // Live ranks: 0 → schema 0, 1 → schema 2, 2 → schema 3.
            // Schemata 0 and 3 share "vin", 0 and 2 share only the "root"
            // container token — strictly more overlap for the vin pair.
            assert!(a.bound(0, 1) < a.bound(0, 2));
        }
    }

    /// Incremental inserts + removals must agree with a from-scratch build
    /// over the live set — including with compaction forced on every op.
    #[test]
    fn delta_maintenance_matches_rebuild() {
        let schemas = world();
        let prepared = prepare(&schemas);
        for config in [ShardConfig::default(), eager()] {
            // Start from the first two, insert the rest, remove one, replace
            // one.
            let mut idx = ShardedRepositoryIndex::build(&prepared[..2], config);
            for p in &prepared[2..] {
                let mut next = idx.begin_update();
                next.upsert_in_place(p);
                idx = next;
            }
            let mut next = idx.begin_update();
            assert!(next.remove_in_place(SchemaId(1)));
            assert!(!next.remove_in_place(SchemaId(99)));
            idx = next;

            let live: Vec<Arc<PreparedSchema>> = [0usize, 2, 3]
                .iter()
                .map(|&i| Arc::clone(&prepared[i]))
                .collect();
            let rebuilt = RepositoryIndex::build(&live);
            assert_eq!(idx.len(), 3);
            let q = prepared[1].signature_ids();
            let a = idx.accumulate_ids(q);
            let b = rebuilt.accumulate_ids(q);
            assert_eq!(a.len(), b.len(), "config {config:?}");
            for ((s1, w1), (s2, w2)) in a.iter().zip(&b) {
                assert_eq!(idx.id_at(*s1), rebuilt.ids()[*s2 as usize]);
                assert_eq!(w1.to_bits(), w2.to_bits(), "config {config:?}");
            }
            for (&(s1, _), &(s2, _)) in a.iter().zip(&b) {
                assert_eq!(
                    idx.total_weight(s1).to_bits(),
                    rebuilt.total_weight(s2).to_bits()
                );
            }
            // Tombstoned schema is invisible.
            assert_eq!(idx.slot(SchemaId(1)), None);
            assert!(idx.postings("engin").is_empty());
        }
    }

    #[test]
    fn unchanged_upsert_is_a_noop_and_changed_replaces() {
        let prepared = prepare(&world());
        let idx = ShardedRepositoryIndex::build(&prepared, ShardConfig::default());
        let mut next = idx.begin_update();
        next.upsert_in_place(&prepared[0]);
        assert_eq!(next.slot_count(), idx.slot_count(), "no-op re-register");

        let changed = prepare(&[schema(0, &["vin", "make", "model", "plate"])]);
        let mut next = idx.begin_update();
        next.upsert_in_place(&changed[0]);
        assert_eq!(next.len(), 4, "replaced, not duplicated");
        assert_eq!(next.slot_count(), 5, "old slot tombstoned, new appended");
        assert!(!next.postings("plate").is_empty());
    }

    #[test]
    fn compaction_reclaims_tombstones() {
        let prepared = prepare(&world());
        let mut idx = ShardedRepositoryIndex::build(&prepared, ShardConfig::default());
        let before: usize = idx.shards.iter().map(|s| s.base.postings.len()).sum();
        let mut next = idx.begin_update();
        next.remove_in_place(SchemaId(0));
        assert!(next.pending_ops() > 0);
        next.compact_all();
        assert_eq!(next.pending_ops(), 0);
        let after: usize = next.shards.iter().map(|s| s.base.postings.len()).sum();
        assert!(after < before, "dead postings dropped: {after} < {before}");
        idx = next;
        assert_eq!(idx.len(), 3);
        // Re-inserting after compaction appends a fresh slot.
        let mut next = idx.begin_update();
        next.upsert_in_place(&prepared[0]);
        assert_eq!(next.len(), 4);
        assert_eq!(next.postings("vin").len(), 3);
    }

    #[test]
    fn shared_tokens_and_intersections_over_live_set() {
        let prepared = prepare(&world());
        let mut idx = ShardedRepositoryIndex::build(&prepared, eager());
        let shared = idx.shared_tokens(&[SchemaId(0), SchemaId(1)]);
        assert!(shared.contains(&"vin".to_string()));
        let mut next = idx.begin_update();
        next.remove_in_place(SchemaId(1));
        idx = next;
        assert!(idx.shared_tokens(&[SchemaId(0), SchemaId(1)]).is_empty());

        // Pairwise counts over live slots match the monolithic rebuild.
        let live: Vec<Arc<PreparedSchema>> = [0usize, 2, 3]
            .iter()
            .map(|&i| Arc::clone(&prepared[i]))
            .collect();
        let rebuilt = RepositoryIndex::build(&live);
        assert_eq!(
            idx.pairwise_intersections(),
            rebuilt.pairwise_intersections()
        );
    }

    /// Parallel build equals the inline build exactly.
    #[test]
    fn parallel_build_is_deterministic() {
        let schemas: Vec<Schema> = (0..40)
            .map(|i| {
                schema(
                    i,
                    &[
                        ["alpha", "beta", "gamma", "delta"][i as usize % 4],
                        ["vin", "blood", "cargo"][i as usize % 3],
                    ],
                )
            })
            .collect();
        let prepared = prepare(&schemas);
        let inline = ShardedRepositoryIndex::build(&prepared, ShardConfig::default());
        let exec = Executor::global();
        let par = ShardedRepositoryIndex::build_parallel(
            &prepared,
            exec,
            exec.threads(),
            ShardConfig::default(),
        );
        for slot in 0..inline.slot_count() as u32 {
            assert_eq!(
                inline.total_weight(slot).to_bits(),
                par.total_weight(slot).to_bits()
            );
        }
        let q = prepared[0].signature_ids();
        let a = inline.accumulate_ids(q);
        let b = par.accumulate_ids(q);
        assert_eq!(a.len(), b.len());
        for ((s1, w1), (s2, w2)) in a.iter().zip(&b) {
            assert_eq!(s1, s2);
            assert_eq!(w1.to_bits(), w2.to_bits());
        }
    }
}

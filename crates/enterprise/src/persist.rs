//! Warm-start persistence of the repository's prepared features.
//!
//! Cold-starting a registry of 10⁴ schemata re-runs the full linguistic
//! pipeline (tokenization, abbreviation expansion, stemming, Soundex,
//! blocking features) on every element — by far the dominant cost of the
//! first query. This module serializes each schema's
//! [`PreparedSchemaParts`] — exactly the normalizer *output* — to a compact
//! binary image, so a restarted process re-interns strings and recomputes
//! the cheap derived fields instead of re-normalizing.
//!
//! ## Format (version 1, little-endian)
//!
//! ```text
//! magic              8 B   b"SMREPIDX"
//! version            u32   1
//! shard_count        u32   ShardConfig::shards at save time
//! string table       u32 count, then per string: u32 len + UTF-8 bytes
//!                    + 1 role byte (bit 0: appears as a raw element name,
//!                    bit 1: appears as a normalized name token)
//! element table      u32 count, then per distinct element record:
//!                    raw-name table id, acronym table id, then 5 id lists
//!                    (name / doc / parent / children / block features),
//!                    each u32 count + u32 table ids
//! schema count       u32
//! per schema:        schema id u32, fingerprint u64,
//!                    signature (u32 count + u32 table ids, in canonical
//!                    lexical-by-string order),
//!                    u32 count + u32 element-table references
//! checksum           u64   FNV-1a (64-bit folded) over every preceding byte
//! ```
//!
//! Every token string is stored **once** in the string table, and every
//! distinct element record **once** in the element table — registries are
//! massively repetitive at both granularities (the same column under the
//! same concept recurs across thousands of schema variants), and a
//! [`PreparedElement`] carries no schema-specific state, so
//! identical records reconstruct to one shared `Arc<PreparedElement>`. At
//! load the string table is interned into the process-wide [`TokenArena`]
//! in one pass — the table position → arena id remap — every string-derived
//! feature (char profile, token stats, Soundex key, decoded chars) is
//! memoized per distinct table string, and each distinct element record is
//! built exactly once; per-schema reconstruction is then `Arc` clones plus
//! integer-level schema-level views. Interned arena ids are deliberately
//! *not* stored: they are process-local (intern order differs run to run),
//! and everything score-relevant is ordered by resolved string, which the
//! table preserves exactly.
//!
//! Corruption (bad magic, unknown version, truncation, checksum mismatch,
//! invalid UTF-8, out-of-range table ids) surfaces as
//! [`std::io::ErrorKind::InvalidData`] — a damaged image falls back to a
//! cold start, never a wrong index.

use crate::shard::ShardConfig;
use harmony_core::prepare::{PreparedElement, PreparedSchema};
use sm_schema::SchemaId;
use sm_text::bounds::{id_signature, CharProfile, TokenStat};
use sm_text::intern::{to_sorted_set, TokenArena, TokenId};
use sm_text::normalize::TokenBag;
use sm_text::soundex::soundex_key;
use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::Arc;

const MAGIC: &[u8; 8] = b"SMREPIDX";
const VERSION: u32 = 1;

/// A loaded warm-start image.
#[derive(Debug)]
pub struct LoadedRegistry {
    /// Reconstructed preparations, in the order they were saved
    /// (registration order).
    pub prepared: Vec<Arc<PreparedSchema>>,
    /// The shard count the saving repository indexed with.
    pub shard_count: usize,
}

/// The trailer checksum: FNV-1a folded 64 bits at a stride (8-byte
/// little-endian words, byte-wise tail). Not interoperable with byte-wise
/// FNV-1a — it doesn't need to be, the format is ours and version-gated —
/// but ~8× faster over a multi-MB image, which matters when the whole load
/// budget is a fraction of a second.
fn checksum64(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut words = bytes.chunks_exact(8);
    for w in &mut words {
        h ^= u64::from_le_bytes(w.try_into().unwrap());
        h = h.wrapping_mul(PRIME);
    }
    for &b in words.remainder() {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Table-entry role: the string appears as a raw element name somewhere, so
/// the loader must memoize its char decode, char profile, and Soundex key.
const ROLE_RAW: u8 = 1;
/// Table-entry role: the string appears as a normalized name token, so the
/// loader must memoize its [`TokenStat`].
const ROLE_NAME: u8 = 2;

/// Deduplicating string table builder: first appearance assigns the id.
/// Each entry accumulates the roles it is referenced under, so the loader
/// derives per-string features only where some element will consume them
/// (block-feature and documentation vocabulary — most of the table —
/// needs none).
#[derive(Default)]
struct TableBuilder {
    strings: Vec<String>,
    roles: Vec<u8>,
    ids: HashMap<String, u32>,
}

impl TableBuilder {
    fn id(&mut self, s: &str, role: u8) -> u32 {
        if let Some(&id) = self.ids.get(s) {
            self.roles[id as usize] |= role;
            return id;
        }
        let id = self.strings.len() as u32;
        self.strings.push(s.to_string());
        self.roles.push(role);
        self.ids.insert(s.to_string(), id);
        id
    }
}

/// Serialize `prepared` (plus the index shard count) to `path`. The image
/// is written atomically-enough for a cache: to a temp sibling first, then
/// renamed over `path`, so readers never observe a half-written file.
pub fn save_registry(
    path: &Path,
    prepared: &[Arc<PreparedSchema>],
    config: ShardConfig,
) -> io::Result<()> {
    // Stream schema records straight off the prepared elements, borrowing
    // every token string in place. The historical `parts()`-based walk
    // materialized millions of transient `String`s at registry scale; the
    // ensuing free-list churn degraded every later allocation in the
    // process (measured 25x+ on warm-start loads that ran after a save).
    //
    // Elements are deduplicated by serialized body: registries repeat the
    // same columns across thousands of schema variants, so the element
    // table is typically an order of magnitude smaller than the element
    // count — and the loader reconstructs each distinct record once. The
    // string and element tables are written before the schema records but
    // discovered during the walk, so records land in side buffers that are
    // spliced in order once the walk is done.
    let mut table = TableBuilder::default();
    let mut element_bodies: Vec<u8> = Vec::new();
    let mut element_ids: HashMap<Vec<u8>, u32> = HashMap::new();
    let mut n_distinct_elements: u32 = 0;
    let mut scratch: Vec<u8> = Vec::new();
    let mut records = Vec::new();
    put_u32(&mut records, prepared.len() as u32);
    for p in prepared {
        put_u32(&mut records, p.schema_id.0);
        put_u64(&mut records, p.fingerprint);
        let arena = p.arena();
        // The schema signature, in its canonical order (distinct name
        // tokens sorted lexicographically by string). Lexical *string*
        // order is process-independent even though arena ids are not, so
        // the loader can reuse this order verbatim and skip a per-schema
        // dedup + string-compare sort — at 10⁴ schemata those dominated
        // warm-start schema assembly.
        let signature = arena.resolve_shared(p.signature_ids());
        put_u32(&mut records, signature.len() as u32);
        for s in &signature {
            put_u32(&mut records, table.id(s, 0));
        }
        put_u32(&mut records, p.elements().len() as u32);
        for e in p.elements().iter() {
            scratch.clear();
            put_u32(&mut scratch, table.id(&e.raw_name, ROLE_RAW));
            put_u32(&mut scratch, table.id(&arena.resolve(e.acronym_id), 0));
            for (list, role) in [
                (&e.name_bag.tokens, ROLE_NAME),
                (&e.doc_bag.tokens, 0),
                (&e.parent_bag.tokens, 0),
                (&e.children_bag.tokens, 0),
            ] {
                put_u32(&mut scratch, list.len() as u32);
                for t in list {
                    put_u32(&mut scratch, table.id(t, role));
                }
            }
            let blocks = arena.resolve_shared(&e.block_features);
            put_u32(&mut scratch, blocks.len() as u32);
            for b in &blocks {
                put_u32(&mut scratch, table.id(b, 0));
            }
            // String-table ids are assigned deterministically during this
            // walk, so identical element content serializes to identical
            // bytes — the body is its own dedup key.
            let eid = *element_ids.entry(scratch.clone()).or_insert_with(|| {
                element_bodies.extend_from_slice(&scratch);
                n_distinct_elements += 1;
                n_distinct_elements - 1
            });
            put_u32(&mut records, eid);
        }
    }

    let mut out =
        Vec::with_capacity(records.len() + element_bodies.len() + 16 * table.strings.len() + 64);
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, VERSION);
    put_u32(&mut out, config.shards as u32);
    put_u32(&mut out, table.strings.len() as u32);
    for (s, &role) in table.strings.iter().zip(&table.roles) {
        put_u32(&mut out, s.len() as u32);
        out.extend_from_slice(s.as_bytes());
        out.push(role);
    }
    put_u32(&mut out, n_distinct_elements);
    out.extend_from_slice(&element_bodies);
    out.extend_from_slice(&records);
    let checksum = checksum64(&out);
    put_u64(&mut out, checksum);

    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, &out)?;
    std::fs::rename(&tmp, path)
}

/// Bounds-checked little-endian cursor over the image bytes.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

fn corrupt(what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("warm-start image corrupt: {what}"),
    )
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| corrupt("truncated"))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A `u32` count with a sanity bound: a count cannot exceed the bytes
    /// remaining (each counted item is ≥ 1 byte in this format), so a
    /// corrupt length fails fast instead of attempting a huge allocation.
    fn count(&mut self) -> io::Result<usize> {
        let n = self.u32()? as usize;
        if n > self.buf.len().saturating_sub(self.pos) {
            return Err(corrupt("implausible count"));
        }
        Ok(n)
    }
}

/// Skip one element record, validating structure (counts, bounds, table id
/// range) so the parallel reconstruction pass can parse its byte extent
/// without failure paths. Returns the record's `(start, end)` within the
/// body.
fn walk_element_record(r: &mut Reader<'_>, table_len: usize) -> io::Result<(usize, usize)> {
    let start = r.pos;
    for _ in 0..2 {
        // raw name id, acronym id
        if r.u32()? as usize >= table_len {
            return Err(corrupt("token id out of range"));
        }
    }
    for _ in 0..5 {
        let n = r.count()?;
        for _ in 0..n {
            if r.u32()? as usize >= table_len {
                return Err(corrupt("token id out of range"));
            }
        }
    }
    Ok((start, r.pos))
}

/// Everything the record parser needs per table entry, computed exactly once
/// per **distinct** string: the arena remap plus every string-derived
/// per-element feature. A registry has millions of token occurrences but only
/// thousands of distinct tokens, so deriving per occurrence (what cold
/// preparation inherently does — it has no table) is the dominant cost this
/// table removes from the warm path.
struct TableMemos {
    remap: Vec<TokenId>,
    /// The arena's own shared allocation of each table string — token lists
    /// are assembled by `Arc` clone, never by copying string bytes.
    arcs: Vec<Arc<str>>,
    stats: Vec<TokenStat>,
    profiles: Vec<CharProfile>,
    /// One decode per distinct string; every element holding that raw name
    /// shares the allocation (`PreparedElement::raw_chars` is `Arc<[char]>`).
    chars: Vec<Arc<[char]>>,
    soundex: Vec<Option<u32>>,
}

impl TableMemos {
    /// Derive only what some element will consume: `roles` marks which
    /// entries appear as raw names (chars / profile / Soundex) or name
    /// tokens (stats). Most of the table is block-feature and documentation
    /// vocabulary needing neither; unflagged entries get shared placeholders
    /// no element ever reads.
    fn build(table: &[&str], roles: &[u8], arena: &TokenArena) -> Self {
        let remap = arena.intern_all(table);
        let arcs = arena.resolve_shared(&remap);
        let no_chars: Arc<[char]> = Arc::from(&[][..]);
        let no_profile = CharProfile::of_chars(&[]);
        let no_stat = TokenStat::of("");
        let chars: Vec<Arc<[char]>> = table
            .iter()
            .zip(roles)
            .map(|(s, &f)| {
                if f & ROLE_RAW != 0 {
                    s.chars().collect()
                } else {
                    Arc::clone(&no_chars)
                }
            })
            .collect();
        TableMemos {
            stats: table
                .iter()
                .zip(roles)
                .map(|(s, &f)| {
                    if f & ROLE_NAME != 0 {
                        TokenStat::of(s)
                    } else {
                        no_stat
                    }
                })
                .collect(),
            profiles: chars
                .iter()
                .zip(roles)
                .map(|(c, &f)| {
                    if f & ROLE_RAW != 0 {
                        CharProfile::of_chars(c)
                    } else {
                        no_profile.clone()
                    }
                })
                .collect(),
            soundex: table
                .iter()
                .zip(roles)
                .map(|(s, &f)| {
                    if f & ROLE_RAW != 0 {
                        soundex_key(s)
                    } else {
                        None
                    }
                })
                .collect(),
            remap,
            arcs,
            chars,
        }
    }
}

/// Parse one walked (already-validated) element record straight into a
/// [`PreparedElement`]: token lists by `Arc` clone off the memos, ids via
/// the remap, string-derived features by memo lookup. No hashing, no
/// string-byte copies, no per-character analysis, and no intermediate
/// "parts" representation — at registry scale the transient allocations of
/// a two-step parse-then-assemble were themselves a dominant load cost.
/// Runs once per **distinct** element record; every schema holding the
/// record shares the resulting `Arc`.
fn parse_element_record(bytes: &[u8], table: &[&str], memos: &TableMemos) -> Arc<PreparedElement> {
    let remap = &memos.remap;
    let mut r = Reader { buf: bytes, pos: 0 };
    let take_u32 = |r: &mut Reader<'_>| r.u32().expect("record walked");
    let raw_id = take_u32(&mut r) as usize;
    let acro_id = take_u32(&mut r) as usize;

    let n_names = take_u32(&mut r) as usize;
    let mut name_tokens = Vec::with_capacity(n_names);
    let mut name_ids = Vec::with_capacity(n_names);
    let mut name_token_stats = Vec::with_capacity(n_names);
    for _ in 0..n_names {
        let tid = take_u32(&mut r) as usize;
        name_tokens.push(Arc::clone(&memos.arcs[tid]));
        name_ids.push(remap[tid]);
        name_token_stats.push(memos.stats[tid]);
    }

    // The corpus document is name tokens then doc tokens; fill it at exact
    // capacity while streaming the doc list instead of clone-then-extend
    // (which reallocates mid-growth).
    let n_docs = take_u32(&mut r) as usize;
    let mut doc_tokens = Vec::with_capacity(n_docs);
    let mut corpus_tokens = Vec::with_capacity(n_names + n_docs);
    corpus_tokens.extend(name_tokens.iter().cloned());
    let mut corpus_ids = Vec::with_capacity(n_names + n_docs);
    corpus_ids.extend_from_slice(&name_ids);
    for _ in 0..n_docs {
        let tid = take_u32(&mut r) as usize;
        doc_tokens.push(Arc::clone(&memos.arcs[tid]));
        corpus_tokens.push(Arc::clone(&memos.arcs[tid]));
        corpus_ids.push(remap[tid]);
    }

    let n_parents = take_u32(&mut r) as usize;
    let mut parent_tokens = Vec::with_capacity(n_parents);
    let mut parent_ids = Vec::with_capacity(n_parents);
    for _ in 0..n_parents {
        let tid = take_u32(&mut r) as usize;
        parent_tokens.push(Arc::clone(&memos.arcs[tid]));
        parent_ids.push(remap[tid]);
    }
    let n_children = take_u32(&mut r) as usize;
    let mut children_tokens = Vec::with_capacity(n_children);
    let mut children_ids = Vec::with_capacity(n_children);
    for _ in 0..n_children {
        let tid = take_u32(&mut r) as usize;
        children_tokens.push(Arc::clone(&memos.arcs[tid]));
        children_ids.push(remap[tid]);
    }
    // PreparedElement keeps block features as ids only — no string clones.
    let n_blocks = take_u32(&mut r) as usize;
    let mut block_features = Vec::with_capacity(n_blocks);
    for _ in 0..n_blocks {
        block_features.push(remap[take_u32(&mut r) as usize]);
    }

    let name_set = to_sorted_set(name_ids.clone());
    let parent_set = to_sorted_set(parent_ids);
    let children_set = to_sorted_set(children_ids);
    Arc::new(PreparedElement {
        name_sig: id_signature(&name_set),
        children_sig: id_signature(&children_set),
        corpus_sig: id_signature(&corpus_ids),
        raw_profile: memos.profiles[raw_id].clone(),
        name_token_stats,
        name_set,
        name_ids,
        raw_name_id: remap[raw_id],
        raw_chars: Arc::clone(&memos.chars[raw_id]),
        acronym_id: remap[acro_id],
        raw_soundex: memos.soundex[raw_id],
        parent_set,
        children_set,
        corpus_ids,
        block_features,
        name_bag: TokenBag {
            tokens: name_tokens,
        },
        raw_name: table[raw_id].to_string(),
        doc_bag: TokenBag { tokens: doc_tokens },
        parent_bag: TokenBag {
            tokens: parent_tokens,
        },
        children_bag: TokenBag {
            tokens: children_tokens,
        },
        corpus_tokens,
    })
}

/// Load a warm-start image saved by [`save_registry`], reconstructing the
/// preparations against the process-wide [`TokenArena`].
///
/// The string table is interned exactly once — the table-position → arena-id
/// remap — after which a serial validation pass walks the schema records
/// (bounds and table-id range checks only, no string work) and a parallel
/// pass parses each record's byte extent straight into prepared elements,
/// assembled via the hash-free
/// [`PreparedSchema::from_prepared_elements_presorted`] (the image carries
/// each schema's signature in canonical order). Per-token work in the hot
/// pass is an index into the remap plus an `Arc` clone — no hashing, no
/// arena lock, no string-byte copy — which is what keeps registry-scale
/// loads a small fraction of cold re-preparation.
pub fn load_registry(path: &Path) -> io::Result<LoadedRegistry> {
    let bytes = std::fs::read(path)?;

    if bytes.len() < MAGIC.len() + 8 {
        return Err(corrupt("too short"));
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(trailer.try_into().unwrap());
    if checksum64(body) != stored {
        return Err(corrupt("checksum mismatch"));
    }
    let mut r = Reader { buf: body, pos: 0 };
    if r.take(MAGIC.len())? != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(corrupt("unsupported version"));
    }
    let shard_count = r.u32()? as usize;

    // Borrowed straight off the image bytes — the table is only read during
    // this load, so there is no reason to own 10⁵ short strings.
    let n_strings = r.count()?;
    let mut table: Vec<&str> = Vec::with_capacity(n_strings);
    let mut roles: Vec<u8> = Vec::with_capacity(n_strings);
    for _ in 0..n_strings {
        let len = r.count()?;
        let s = std::str::from_utf8(r.take(len)?).map_err(|_| corrupt("invalid utf-8"))?;
        table.push(s);
        roles.push(r.take(1)?[0]);
    }

    let n_elem_records = r.count()?;
    let mut extents: Vec<(usize, usize)> = Vec::with_capacity(n_elem_records);
    for _ in 0..n_elem_records {
        extents.push(walk_element_record(&mut r, table.len())?);
    }

    let n_schemas = r.count()?;
    let mut schema_recs: Vec<(SchemaId, u64, Vec<u32>, Vec<u32>)> = Vec::with_capacity(n_schemas);
    for _ in 0..n_schemas {
        let id = SchemaId(r.u32()?);
        let fingerprint = r.u64()?;
        let n_sig = r.count()?;
        let mut sig = Vec::with_capacity(n_sig);
        for _ in 0..n_sig {
            let t = r.u32()?;
            if t as usize >= table.len() {
                return Err(corrupt("token id out of range"));
            }
            sig.push(t);
        }
        let n = r.count()?;
        let mut refs = Vec::with_capacity(n);
        for _ in 0..n {
            let e = r.u32()?;
            if e as usize >= n_elem_records {
                return Err(corrupt("element id out of range"));
            }
            refs.push(e);
        }
        schema_recs.push((id, fingerprint, sig, refs));
    }
    if r.pos != body.len() {
        return Err(corrupt("trailing bytes"));
    }

    // The table → arena remap plus every string-derived feature, computed
    // once per distinct table string: the only interning and the only
    // per-character analysis the whole load performs.
    let arena = TokenArena::global();
    let memos = TableMemos::build(&table, &roles, arena);

    // Each distinct element record is built exactly once; schemas assemble
    // by `Arc` clone. Registries repeat element content heavily across
    // schema variants, so this pass runs over the much smaller
    // deduplicated element table.
    let exec = harmony_core::exec::Executor::global();
    let elements: Vec<Arc<PreparedElement>> =
        exec.run_map(exec.threads(), &extents, |_idx, &(start, end)| {
            parse_element_record(&body[start..end], &table, &memos)
        });

    let prepared = exec.run_map(exec.threads(), &schema_recs, |_idx, rec| {
        let signature_ids = rec.2.iter().map(|&t| memos.remap[t as usize]).collect();
        let elems = rec
            .3
            .iter()
            .map(|&e| Arc::clone(&elements[e as usize]))
            .collect();
        Arc::new(PreparedSchema::from_prepared_elements_presorted(
            rec.0,
            rec.1,
            elems,
            signature_ids,
            Arc::clone(arena),
        ))
    });
    Ok(LoadedRegistry {
        prepared,
        shard_count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_core::prepare::default_normalizer;
    use sm_schema::{DataType, ElementKind, Schema, SchemaFormat, SchemaId};

    fn schema(id: u32) -> Schema {
        let mut s = Schema::new(SchemaId(id), format!("S{id}"), SchemaFormat::Relational);
        let t = s.add_root("Customer", ElementKind::Table, DataType::None);
        for name in ["customer_id", "firstName", "dob", "emailAddress"] {
            s.add_child(t, name, ElementKind::Column, DataType::varchar(64))
                .unwrap();
        }
        s
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("sm_persist_{}_{name}.bin", std::process::id()))
    }

    #[test]
    fn round_trip_reconstructs_parts_exactly() {
        let arena = TokenArena::global();
        let prepared: Vec<Arc<PreparedSchema>> = (0..5)
            .map(|i| {
                Arc::new(PreparedSchema::build_with_arena(
                    &schema(i),
                    default_normalizer(),
                    Arc::clone(arena),
                ))
            })
            .collect();
        let path = tmp("round_trip");
        save_registry(&path, &prepared, ShardConfig::default()).unwrap();
        let loaded = load_registry(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.shard_count, ShardConfig::default().shards);
        assert_eq!(loaded.prepared.len(), prepared.len());
        for (l, p) in loaded.prepared.iter().zip(&prepared) {
            // Same process, same arena: reconstruction is exact down to ids.
            assert_eq!(l.parts(), p.parts());
            assert_eq!(l.signature_ids(), p.signature_ids());
            for (le, pe) in l.elements().iter().zip(p.elements()) {
                assert_eq!(le.block_features, pe.block_features);
                assert_eq!(le.corpus_ids, pe.corpus_ids);
            }
        }
    }

    #[test]
    fn corruption_is_invalid_data_not_garbage() {
        let arena = TokenArena::global();
        let prepared = vec![Arc::new(PreparedSchema::build_with_arena(
            &schema(9),
            default_normalizer(),
            Arc::clone(arena),
        ))];
        let path = tmp("corrupt");
        save_registry(&path, &prepared, ShardConfig::default()).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();

        // Flip a byte mid-file: checksum must catch it.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let err = load_registry(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // Truncation.
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let err = load_registry(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // Bad magic.
        bytes[0] = b'X';
        std::fs::write(&path, &bytes).unwrap();
        let err = load_registry(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_registry_round_trips() {
        let path = tmp("empty");
        save_registry(
            &path,
            &[],
            ShardConfig {
                shards: 3,
                ..Default::default()
            },
        )
        .unwrap();
        let loaded = load_registry(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.shard_count, 3);
        assert!(loaded.prepared.is_empty());
    }
}

//! Community-of-interest (COI) proposal.
//!
//! §2: *"a schema repository such as the MDR could automatically propose new
//! COIs by clustering the schemata into related groups."* A COI proposal is a
//! cluster of at least two schemata plus the evidence a convening decision
//! maker needs: the shared vocabulary sample and a cohesion score (the
//! "potential value" that justifies committing resources).

use crate::cluster::{agglomerative, Cut, DistanceMatrix, Linkage};
use crate::repository::MetadataRepository;
use sm_schema::SchemaId;
use std::collections::HashMap;

/// A proposed community of interest.
#[derive(Debug, Clone, PartialEq)]
pub struct CoiProposal {
    /// Member schemata (≥ 2).
    pub members: Vec<SchemaId>,
    /// Cohesion in `[0,1]`: 1 − mean pairwise distance within the cluster.
    pub cohesion: f64,
    /// Sample of vocabulary shared by *all* members (up to 12 tokens) — the
    /// seed of the community vocabulary the COI would build.
    pub shared_vocabulary: Vec<String>,
}

/// Propose COIs by clustering the repository and keeping clusters of at
/// least two schemata whose cohesion clears `min_cohesion`.
pub fn propose_cois(
    repo: &MetadataRepository,
    max_distance: f64,
    min_cohesion: f64,
) -> Vec<CoiProposal> {
    let index = repo.token_index();
    let dm = DistanceMatrix::from_index(&index);
    if dm.is_empty() {
        return Vec::new();
    }
    let clustering = agglomerative(&dm, Linkage::Average, Cut::MaxDistance(max_distance));
    let index_of: HashMap<SchemaId, usize> = dm
        .ids()
        .iter()
        .enumerate()
        .map(|(i, &id)| (id, i))
        .collect();

    let mut proposals: Vec<CoiProposal> = clustering
        .clusters
        .into_iter()
        .filter(|c| c.len() >= 2)
        .filter_map(|members| {
            // Cohesion: 1 − mean pairwise distance.
            let mut dist_sum = 0.0;
            let mut pairs = 0usize;
            for i in 0..members.len() {
                for j in (i + 1)..members.len() {
                    dist_sum += dm.get(index_of[&members[i]], index_of[&members[j]]);
                    pairs += 1;
                }
            }
            let cohesion = 1.0 - dist_sum / pairs.max(1) as f64;
            if cohesion < min_cohesion {
                return None;
            }
            // Vocabulary shared by *all* members: a posting-list membership
            // test on the repository token index, already sorted.
            let mut shared_vocabulary = index.shared_tokens(&members);
            shared_vocabulary.truncate(12);
            Some(CoiProposal {
                members,
                cohesion,
                shared_vocabulary,
            })
        })
        .collect();
    proposals.sort_by(|a, b| {
        b.cohesion
            .partial_cmp(&a.cohesion)
            .expect("finite")
            .then(a.members.len().cmp(&b.members.len()))
    });
    proposals
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_schema::{DataType, ElementKind, Schema, SchemaFormat};

    fn schema(id: u32, words: &[&str]) -> Schema {
        let mut s = Schema::new(SchemaId(id), format!("S{id}"), SchemaFormat::Generic);
        let r = s.add_root("Root", ElementKind::Group, DataType::None);
        for w in words {
            s.add_child(r, *w, ElementKind::Column, DataType::text())
                .unwrap();
        }
        s
    }

    fn repo() -> MetadataRepository {
        let mut r = MetadataRepository::new();
        // Air-operations community.
        r.register_schema(schema(0, &["aircraft", "sortie", "mission", "runway"]));
        r.register_schema(schema(1, &["aircraft", "mission", "payload"]));
        r.register_schema(schema(2, &["sortie", "aircraft", "pilot"]));
        // Medical community.
        r.register_schema(schema(3, &["patient", "blood", "diagnosis"]));
        r.register_schema(schema(4, &["patient", "blood", "ward"]));
        // A loner.
        r.register_schema(schema(5, &["tariff", "customs", "duty"]));
        r
    }

    #[test]
    fn proposes_the_two_communities() {
        let proposals = propose_cois(&repo(), 0.85, 0.1);
        assert_eq!(proposals.len(), 2, "{proposals:?}");
        let sizes: Vec<usize> = proposals.iter().map(|p| p.members.len()).collect();
        assert!(sizes.contains(&3) && sizes.contains(&2));
        // The loner appears in no proposal.
        for p in &proposals {
            assert!(!p.members.contains(&SchemaId(5)));
        }
    }

    #[test]
    fn shared_vocabulary_is_common_to_all_members() {
        let proposals = propose_cois(&repo(), 0.85, 0.1);
        let air = proposals
            .iter()
            .find(|p| p.members.len() == 3)
            .expect("air community");
        assert!(
            air.shared_vocabulary.iter().any(|t| t == "aircraft"),
            "{:?}",
            air.shared_vocabulary
        );
        let med = proposals.iter().find(|p| p.members.len() == 2).unwrap();
        assert!(med
            .shared_vocabulary
            .iter()
            .any(|t| t == "blood" || t == "patient"));
    }

    #[test]
    fn cohesion_ranks_tighter_groups_first() {
        let proposals = propose_cois(&repo(), 0.85, 0.0);
        for w in proposals.windows(2) {
            assert!(w[0].cohesion >= w[1].cohesion);
        }
        for p in &proposals {
            assert!((0.0..=1.0).contains(&p.cohesion));
        }
    }

    #[test]
    fn min_cohesion_filters() {
        let none = propose_cois(&repo(), 0.85, 0.99);
        assert!(none.is_empty());
    }

    #[test]
    fn empty_repository_proposes_nothing() {
        let r = MetadataRepository::new();
        assert!(propose_cois(&r, 0.9, 0.0).is_empty());
    }

    #[test]
    fn strict_distance_threshold_prevents_grouping() {
        let proposals = propose_cois(&repo(), 0.0, 0.0);
        assert!(proposals.is_empty(), "nothing merges at distance 0");
    }
}

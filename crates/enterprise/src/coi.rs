//! Community-of-interest (COI) proposal.
//!
//! §2: *"a schema repository such as the MDR could automatically propose new
//! COIs by clustering the schemata into related groups."* A COI proposal is a
//! cluster of at least two schemata plus the evidence a convening decision
//! maker needs: the shared vocabulary sample and a cohesion score (the
//! "potential value" that justifies committing resources).

use crate::cluster::{agglomerative, Cut, DistanceMatrix, Linkage};
use crate::repository::{MetadataRepository, SlotMap};
use harmony_core::confidence::Confidence;
use harmony_core::engine::MatchEngine;
use harmony_core::select::Selection;
use sm_schema::SchemaId;
use std::collections::HashMap;

/// A proposed community of interest.
#[derive(Debug, Clone, PartialEq)]
pub struct CoiProposal {
    /// Member schemata (≥ 2).
    pub members: Vec<SchemaId>,
    /// Cohesion in `[0,1]`: 1 − mean pairwise distance within the cluster.
    pub cohesion: f64,
    /// Sample of vocabulary shared by *all* members (up to 12 tokens) — the
    /// seed of the community vocabulary the COI would build.
    pub shared_vocabulary: Vec<String>,
    /// Validated one-to-one correspondences among member pairs — the hard
    /// match evidence behind the proposal. `None` until
    /// [`attach_match_evidence`] runs (cheap signature clustering proposes;
    /// real matching substantiates).
    pub match_support: Option<usize>,
}

/// Propose COIs by clustering the repository and keeping clusters of at
/// least two schemata whose cohesion clears `min_cohesion`.
pub fn propose_cois(
    repo: &MetadataRepository,
    max_distance: f64,
    min_cohesion: f64,
) -> Vec<CoiProposal> {
    let index = repo.token_index();
    let dm = DistanceMatrix::from_index(&index);
    if dm.is_empty() {
        return Vec::new();
    }
    let clustering = agglomerative(&dm, Linkage::Average, Cut::MaxDistance(max_distance));
    let index_of: HashMap<SchemaId, usize> = dm
        .ids()
        .iter()
        .enumerate()
        .map(|(i, &id)| (id, i))
        .collect();

    let mut proposals: Vec<CoiProposal> = clustering
        .clusters
        .into_iter()
        .filter(|c| c.len() >= 2)
        .filter_map(|members| {
            // Cohesion: 1 − mean pairwise distance.
            let mut dist_sum = 0.0;
            let mut pairs = 0usize;
            for i in 0..members.len() {
                for j in (i + 1)..members.len() {
                    dist_sum += dm.get(index_of[&members[i]], index_of[&members[j]]);
                    pairs += 1;
                }
            }
            let cohesion = 1.0 - dist_sum / pairs.max(1) as f64;
            if cohesion < min_cohesion {
                return None;
            }
            // Vocabulary shared by *all* members: a posting-list membership
            // test on the repository token index, already sorted.
            let mut shared_vocabulary = index.shared_tokens(&members);
            shared_vocabulary.truncate(12);
            Some(CoiProposal {
                members,
                cohesion,
                shared_vocabulary,
                match_support: None,
            })
        })
        .collect();
    proposals.sort_by(|a, b| {
        b.cohesion
            .partial_cmp(&a.cohesion)
            .expect("finite")
            .then(a.members.len().cmp(&b.members.len()))
    });
    proposals
}

/// Substantiate proposals with actual match evidence: every member pair of
/// every proposal is executed as **one** planned batch (shared preparation
/// and token index, all pairs concurrent on the engine's executor — see
/// [`harmony_core::batch`]), and each proposal's `match_support` is filled
/// with the total one-to-one correspondences selected at `threshold`
/// across its member pairs.
///
/// A convening decision maker reads `cohesion` as "these schemata talk
/// about the same things" and `match_support` as "and here is how many
/// element-level agreements a COI vocabulary could start from". A proposal
/// with a member the repository no longer holds (a stale proposal from an
/// earlier registry snapshot) keeps `match_support == None` — a partial
/// count would be indistinguishable from "matched and found little".
pub fn attach_match_evidence(
    repo: &MetadataRepository,
    engine: &MatchEngine,
    proposals: &mut [CoiProposal],
    threshold: Confidence,
) {
    // Stale proposals (any member gone from the repo) contribute nothing
    // to the batch — decided first, so their still-registered members are
    // not needlessly prepared and indexed.
    let complete: Vec<bool> = proposals
        .iter()
        .map(|p| p.members.iter().all(|id| repo.schema(*id).is_some()))
        .collect();

    // One schema list over all complete proposals (members are disjoint
    // clusters, but dedup defensively), one batch over all within-proposal
    // pairs.
    let mut slots = SlotMap::new();
    let mut requests: Vec<(usize, usize)> = Vec::new();
    let mut owner: Vec<usize> = Vec::new();
    for (pi, proposal) in proposals.iter().enumerate() {
        if !complete[pi] {
            continue;
        }
        for &id in &proposal.members {
            slots.slot_for(repo.schema(id).expect("membership checked above"));
        }
        for i in 0..proposal.members.len() {
            for j in (i + 1)..proposal.members.len() {
                requests.push((
                    slots.slot_of(proposal.members[i]),
                    slots.slot_of(proposal.members[j]),
                ));
                owner.push(pi);
            }
        }
    }

    // Selection-only execution: only the selected-correspondence counts
    // matter, so per-pair matrices drop inside the batch jobs.
    let selection = Selection::OneToOne { min: threshold };
    let result = engine
        .batch()
        .plan(slots.schemas(), requests)
        .run_select_only(&selection);
    let mut support = vec![0usize; proposals.len()];
    for (pair, &pi) in result.pairs.iter().zip(&owner) {
        support[pi] += pair.selected.len();
    }
    for ((proposal, support), complete) in proposals.iter_mut().zip(support).zip(complete) {
        proposal.match_support = complete.then_some(support);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_schema::{DataType, ElementKind, Schema, SchemaFormat};

    fn schema(id: u32, words: &[&str]) -> Schema {
        let mut s = Schema::new(SchemaId(id), format!("S{id}"), SchemaFormat::Generic);
        let r = s.add_root("Root", ElementKind::Group, DataType::None);
        for w in words {
            s.add_child(r, *w, ElementKind::Column, DataType::text())
                .unwrap();
        }
        s
    }

    fn repo() -> MetadataRepository {
        let mut r = MetadataRepository::new();
        // Air-operations community.
        r.register_schema(schema(0, &["aircraft", "sortie", "mission", "runway"]));
        r.register_schema(schema(1, &["aircraft", "mission", "payload"]));
        r.register_schema(schema(2, &["sortie", "aircraft", "pilot"]));
        // Medical community.
        r.register_schema(schema(3, &["patient", "blood", "diagnosis"]));
        r.register_schema(schema(4, &["patient", "blood", "ward"]));
        // A loner.
        r.register_schema(schema(5, &["tariff", "customs", "duty"]));
        r
    }

    #[test]
    fn proposes_the_two_communities() {
        let proposals = propose_cois(&repo(), 0.85, 0.1);
        assert_eq!(proposals.len(), 2, "{proposals:?}");
        let sizes: Vec<usize> = proposals.iter().map(|p| p.members.len()).collect();
        assert!(sizes.contains(&3) && sizes.contains(&2));
        // The loner appears in no proposal.
        for p in &proposals {
            assert!(!p.members.contains(&SchemaId(5)));
        }
    }

    #[test]
    fn shared_vocabulary_is_common_to_all_members() {
        let proposals = propose_cois(&repo(), 0.85, 0.1);
        let air = proposals
            .iter()
            .find(|p| p.members.len() == 3)
            .expect("air community");
        assert!(
            air.shared_vocabulary.iter().any(|t| t == "aircraft"),
            "{:?}",
            air.shared_vocabulary
        );
        let med = proposals.iter().find(|p| p.members.len() == 2).unwrap();
        assert!(med
            .shared_vocabulary
            .iter()
            .any(|t| t == "blood" || t == "patient"));
    }

    #[test]
    fn cohesion_ranks_tighter_groups_first() {
        let proposals = propose_cois(&repo(), 0.85, 0.0);
        for w in proposals.windows(2) {
            assert!(w[0].cohesion >= w[1].cohesion);
        }
        for p in &proposals {
            assert!((0.0..=1.0).contains(&p.cohesion));
        }
    }

    #[test]
    fn min_cohesion_filters() {
        let none = propose_cois(&repo(), 0.85, 0.99);
        assert!(none.is_empty());
    }

    #[test]
    fn empty_repository_proposes_nothing() {
        let r = MetadataRepository::new();
        assert!(propose_cois(&r, 0.9, 0.0).is_empty());
    }

    #[test]
    fn strict_distance_threshold_prevents_grouping() {
        let proposals = propose_cois(&repo(), 0.0, 0.0);
        assert!(proposals.is_empty(), "nothing merges at distance 0");
    }

    #[test]
    fn match_evidence_fills_support_from_one_batch() {
        let repo = repo();
        let mut proposals = propose_cois(&repo, 0.85, 0.1);
        assert!(proposals.iter().all(|p| p.match_support.is_none()));
        let engine = MatchEngine::new();
        attach_match_evidence(&repo, &engine, &mut proposals, Confidence::new(0.3));
        for p in &proposals {
            let support = p.match_support.expect("evidence attached");
            assert!(
                support > 0,
                "members share vocabulary, so one-to-one matches must exist: {p:?}"
            );
            // Support is bounded by the total one-to-one capacity of the
            // member pairs.
            let cap: usize = (0..p.members.len())
                .flat_map(|i| ((i + 1)..p.members.len()).map(move |j| (i, j)))
                .map(|(i, j)| {
                    let a = repo.schema(p.members[i]).unwrap().len();
                    let b = repo.schema(p.members[j]).unwrap().len();
                    a.min(b)
                })
                .sum();
            assert!(support <= cap);
        }
        // A stale proposal naming an unregistered schema stays unfilled —
        // a partial count would masquerade as real evidence.
        let mut stale = vec![CoiProposal {
            members: vec![SchemaId(0), SchemaId(999)],
            cohesion: 0.5,
            shared_vocabulary: vec![],
            match_support: None,
        }];
        attach_match_evidence(&repo, &engine, &mut stale, Confidence::new(0.3));
        assert_eq!(stale[0].match_support, None);
    }
}

//! Criterion bench behind experiment E5: building the comprehensive
//! vocabulary (union-find closure + cell partition) as N grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use harmony_core::prelude::*;
use sm_schema::Schema;
use sm_synth::{RepositoryConfig, SyntheticRepository};

/// Pre-compute pairwise validated matches once; the bench measures the
/// vocabulary construction itself.
fn pairwise_matches(schemas: &[&Schema]) -> Vec<(usize, usize, MatchSet)> {
    let engine = MatchEngine::new();
    let mut out = Vec::new();
    for i in 0..schemas.len() {
        for j in (i + 1)..schemas.len() {
            let result = engine.run(schemas[i], schemas[j]);
            let selected = Selection::OneToOne {
                min: Confidence::new(0.35),
            }
            .apply(&result.matrix);
            let mut validated = MatchSet::new();
            for c in selected.all() {
                validated.push(c.clone().validate("engine", MatchAnnotation::Equivalent));
            }
            out.push((i, j, validated));
        }
    }
    out
}

fn bench_vocabulary(c: &mut Criterion) {
    let population = SyntheticRepository::generate(&RepositoryConfig {
        seed: 23,
        domains: 1,
        schemas_per_domain: 6,
        concepts_per_domain: 30,
        concept_coverage: 0.55,
        attrs_per_concept: (5, 9),
        ..Default::default()
    });
    let mut group = c.benchmark_group("e5_vocabulary");
    for n in [2usize, 4, 6] {
        let schemas: Vec<&Schema> = population.schemas.iter().take(n).collect();
        let matches = pairwise_matches(&schemas);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut nway = NWayMatch::new(schemas.clone());
                for (i, j, m) in &matches {
                    nway.add_pairwise(*i, *j, m);
                }
                nway.vocabulary()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vocabulary);
criterion_main!(benches);

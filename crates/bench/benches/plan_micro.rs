//! Plan-stage kernel micro-benches: the N² overlap-bound walk and the
//! cluster-first partition over its estimates, at the `nway_baseline` n100
//! tier's registry scale (100 schemata, 4,950 unordered pairs). These
//! isolate the planning kernels so estimator regressions are visible
//! without running the full `nway_baseline` bin.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use harmony_core::prelude::*;
use sm_schema::Schema;
use sm_synth::{RepositoryConfig, SyntheticRepository};
use sm_text::normalize::Normalizer;
use std::sync::Arc;

fn prepared_registry() -> Vec<Arc<PreparedSchema>> {
    let population = SyntheticRepository::generate(&RepositoryConfig {
        seed: 2031,
        domains: 10,
        schemas_per_domain: 10,
        concepts_per_domain: 12,
        concept_coverage: 0.65,
        attrs_per_concept: (3, 6),
        scoped_attributes: true,
    });
    let schemas: Vec<&Schema> = population.schemas.iter().collect();
    let engine = MatchEngine::new().with_normalizer(Normalizer::new());
    let (prepared, _) = engine.batch().plan_all_pairs(&schemas).into_plan_parts();
    prepared
}

fn bench_overlap_walk(c: &mut Criterion) {
    let prepared = prepared_registry();
    let n = prepared.len();
    let mut group = c.benchmark_group("plan_overlap_walk");
    group.throughput(Throughput::Elements((n * (n - 1) / 2) as u64));
    // The single posting walk that replaces per-pair vocabulary probes:
    // all N² bounds from one pass over the shared blocking vocabulary.
    group.bench_function("uncapped", |b| {
        b.iter(|| OverlapEstimates::from_prepared(&prepared));
    });
    group.bench_function("df_cap_32", |b| {
        b.iter(|| OverlapEstimates::from_prepared_capped(&prepared, 32));
    });
    group.finish();
}

fn bench_cluster_partition(c: &mut Criterion) {
    let prepared = prepared_registry();
    let n = prepared.len();
    let estimates = OverlapEstimates::from_prepared(&prepared);
    let mut group = c.benchmark_group("plan_cluster_partition");
    group.throughput(Throughput::Elements((n * (n - 1) / 2) as u64));
    group.bench_function("from_overlap", |b| {
        b.iter(|| ClusterPlan::from_overlap(&estimates, 0.8));
    });
    group.finish();
}

criterion_group!(benches, bench_overlap_walk, bench_cluster_partition);
criterion_main!(benches);

//! Score-stage kernel micro-benches: the two-tier cascade versus the
//! reference full voter panel over the same blocked candidate set, at half
//! the paper's 1378×784 scale. These isolate the Score/Merge pass so
//! cascade-level regressions (a tier-1 bound getting slower than the
//! voters it skips, say) are visible without running the full
//! `pipeline_baseline` bin.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use harmony_core::index::BlockingPolicy;
use harmony_core::prelude::*;
use sm_bench::case_study;

fn bench_blocked_score(c: &mut Criterion) {
    let pair = case_study(0.5);
    let policy = BlockingPolicy::default();
    // Floor at the 0.30 operating threshold, mirroring pipeline_baseline's
    // cascade configuration (the reference runs the same floor, so the
    // byte-identity assertion below is the cascade's losslessness claim).
    let cascade = MatchEngine::new()
        .with_threads(1)
        .with_score_floor(Some(0.3));
    let reference = MatchEngine::new()
        .with_threads(1)
        .with_score_floor(Some(0.3))
        .with_cascade(false);
    // Warm both engines' feature caches so the iterations time the
    // Block+Score+Merge stages, not linguistic preparation.
    let warm = cascade
        .pipeline()
        .run_blocked(&pair.source, &pair.target, &policy);
    let check = reference
        .pipeline()
        .run_blocked(&pair.source, &pair.target, &policy);
    assert_eq!(
        warm.matrix.as_slice(),
        check.matrix.as_slice(),
        "cascade must be lossless before its speed matters"
    );
    let pairs = warm.pairs_scored as u64;

    let mut group = c.benchmark_group("blocked_score");
    group.throughput(Throughput::Elements(pairs));
    group.bench_function("cascade", |b| {
        b.iter(|| {
            cascade
                .pipeline()
                .run_blocked(&pair.source, &pair.target, &policy)
        });
    });
    group.bench_function("full_panel", |b| {
        b.iter(|| {
            reference
                .pipeline()
                .run_blocked(&pair.source, &pair.target, &policy)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_blocked_score);
criterion_main!(benches);

//! Microbenchmarks of the linguistic substrate — the per-element work that
//! the match context amortizes and the per-pair work voters repeat ~10^6
//! times in experiment E1.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sm_text::normalize::Normalizer;
use sm_text::similarity::{jaro_winkler, levenshtein_sim, monge_elkan};
use sm_text::{porter_stem, tokenize_identifier, Corpus};

fn bench_tokenize(c: &mut Criterion) {
    c.bench_function("tokenize_identifier", |b| {
        b.iter(|| tokenize_identifier(black_box("DATE_BEGIN_156_XMLHttpRequest")));
    });
}

fn bench_stem(c: &mut Criterion) {
    let words = [
        "locations",
        "identification",
        "organizational",
        "effectiveness",
        "begin",
    ];
    c.bench_function("porter_stem_5_words", |b| {
        b.iter(|| {
            for w in words {
                black_box(porter_stem(black_box(w)));
            }
        });
    });
}

fn bench_similarity(c: &mut Criterion) {
    c.bench_function("jaro_winkler", |b| {
        b.iter(|| {
            jaro_winkler(
                black_box("date_begin_156"),
                black_box("datetime_first_info"),
            )
        });
    });
    c.bench_function("levenshtein_sim", |b| {
        b.iter(|| {
            levenshtein_sim(
                black_box("date_begin_156"),
                black_box("datetime_first_info"),
            )
        });
    });
    let a: Vec<String> = ["date", "begin"].iter().map(|s| s.to_string()).collect();
    let bb: Vec<String> = ["datetime", "first", "info"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    c.bench_function("monge_elkan_jw", |b| {
        b.iter(|| monge_elkan(black_box(&a), black_box(&bb), jaro_winkler));
    });
}

fn bench_normalize(c: &mut Criterion) {
    let n = Normalizer::new();
    c.bench_function("normalize_name", |b| {
        b.iter(|| n.name(black_box("PERS_DOB_UPDATE_DTTM")));
    });
    c.bench_function("normalize_prose", |b| {
        b.iter(|| {
            n.prose(black_box(
                "The date and time at which information about the event first arrived.",
            ))
        });
    });
}

fn bench_tfidf(c: &mut Criterion) {
    // A corpus shaped like one schema side of the paper's problem.
    let docs: Vec<Vec<String>> = (0..1000)
        .map(|i| {
            vec![
                format!("word{}", i % 97),
                format!("word{}", i % 31),
                "common".to_string(),
                format!("rare{i}"),
            ]
        })
        .collect();
    c.bench_function("tfidf_build_1000_docs", |b| {
        b.iter(|| {
            let mut corpus = Corpus::new();
            for d in &docs {
                corpus.add_document(d);
            }
            corpus.finalize()
        });
    });
    let mut corpus = Corpus::new();
    for d in &docs {
        corpus.add_document(d);
    }
    let f = corpus.finalize();
    let v1 = f.vector(0).clone();
    let v2 = f.vector(500).clone();
    c.bench_function("tfidf_cosine", |b| {
        b.iter(|| black_box(&v1).cosine(black_box(&v2)));
    });
}

criterion_group!(
    benches,
    bench_tokenize,
    bench_stem,
    bench_similarity,
    bench_normalize,
    bench_tfidf
);
criterion_main!(benches);

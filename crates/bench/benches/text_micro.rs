//! Microbenchmarks of the linguistic substrate — the per-element work that
//! the match context amortizes and the per-pair work voters repeat ~10^6
//! times in experiment E1.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sm_text::intern::{sorted_ids_jaccard, to_sorted_set, TokenArena};
use sm_text::normalize::Normalizer;
use sm_text::similarity::{
    jaro_winkler, levenshtein_sim, monge_elkan, monge_elkan_interned, ngram_jaccard,
};
use sm_text::{porter_stem, tokenize_identifier, Corpus};
use std::sync::Arc;

fn bench_tokenize(c: &mut Criterion) {
    c.bench_function("tokenize_identifier", |b| {
        b.iter(|| tokenize_identifier(black_box("DATE_BEGIN_156_XMLHttpRequest")));
    });
}

fn bench_stem(c: &mut Criterion) {
    let words = [
        "locations",
        "identification",
        "organizational",
        "effectiveness",
        "begin",
    ];
    c.bench_function("porter_stem_5_words", |b| {
        b.iter(|| {
            for w in words {
                black_box(porter_stem(black_box(w)));
            }
        });
    });
}

fn bench_similarity(c: &mut Criterion) {
    c.bench_function("jaro_winkler", |b| {
        b.iter(|| {
            jaro_winkler(
                black_box("date_begin_156"),
                black_box("datetime_first_info"),
            )
        });
    });
    c.bench_function("levenshtein_sim", |b| {
        b.iter(|| {
            levenshtein_sim(
                black_box("date_begin_156"),
                black_box("datetime_first_info"),
            )
        });
    });
    let a: Vec<String> = ["date", "begin"].iter().map(|s| s.to_string()).collect();
    let bb: Vec<String> = ["datetime", "first", "info"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    c.bench_function("monge_elkan_jw", |b| {
        b.iter(|| monge_elkan(black_box(&a), black_box(&bb), jaro_winkler));
    });
}

fn bench_normalize(c: &mut Criterion) {
    let n = Normalizer::new();
    c.bench_function("normalize_name", |b| {
        b.iter(|| n.name(black_box("PERS_DOB_UPDATE_DTTM")));
    });
    c.bench_function("normalize_prose", |b| {
        b.iter(|| {
            n.prose(black_box(
                "The date and time at which information about the event first arrived.",
            ))
        });
    });
}

fn bench_tfidf(c: &mut Criterion) {
    // A corpus shaped like one schema side of the paper's problem.
    let docs: Vec<Vec<String>> = (0..1000)
        .map(|i| {
            vec![
                format!("word{}", i % 97),
                format!("word{}", i % 31),
                "common".to_string(),
                format!("rare{i}"),
            ]
        })
        .collect();
    c.bench_function("tfidf_build_1000_docs", |b| {
        b.iter(|| {
            let mut corpus = Corpus::new();
            for d in &docs {
                corpus.add_document(d);
            }
            corpus.finalize()
        });
    });
    let mut corpus = Corpus::new();
    for d in &docs {
        corpus.add_document(d);
    }
    let f = corpus.finalize();
    let v1 = f.vector(0).clone();
    let v2 = f.vector(500).clone();
    c.bench_function("tfidf_cosine", |b| {
        b.iter(|| black_box(&v1).cosine(black_box(&v2)));
    });
}

/// The interned merge-walk kernels of the per-pair hot path: sorted-id
/// Jaccard, the id-shortcut Monge-Elkan, rank-keyed cosine, and the packed
/// u64 n-gram Jaccard — each next to the string-path operation it retired.
fn bench_interned_kernels(c: &mut Criterion) {
    let arena = Arc::new(TokenArena::new());
    let toks = |ws: &[&str]| ws.iter().map(|s| s.to_string()).collect::<Vec<String>>();
    let a = toks(&["date", "begin", "event", "vital"]);
    let b = toks(&["datetime", "first", "info", "event"]);
    let a_ids = arena.intern_all(&a);
    let b_ids = arena.intern_all(&b);
    let a_set = to_sorted_set(a_ids.clone());
    let b_set = to_sorted_set(b_ids.clone());

    c.bench_function("jaccard_string_sets", |bch| {
        bch.iter(|| {
            let sa: std::collections::HashSet<&str> =
                black_box(&a).iter().map(String::as_str).collect();
            let sb: std::collections::HashSet<&str> =
                black_box(&b).iter().map(String::as_str).collect();
            sm_text::similarity::set_jaccard(&sa, &sb)
        });
    });
    c.bench_function("jaccard_sorted_ids", |bch| {
        bch.iter(|| sorted_ids_jaccard(black_box(&a_set), black_box(&b_set)));
    });

    c.bench_function("monge_elkan_interned_jw", |bch| {
        bch.iter(|| {
            monge_elkan_interned(
                black_box(&a),
                &a_ids,
                &a_set,
                black_box(&b),
                &b_ids,
                &b_set,
                jaro_winkler,
            )
        });
    });

    c.bench_function("ngram_jaccard_packed_u64", |bch| {
        bch.iter(|| ngram_jaccard(black_box("date_begin_156"), black_box("datetime_first"), 2));
    });

    // Rank-keyed cosine over vectors shaped like documented elements.
    let mut corpus = Corpus::with_arena(Arc::clone(&arena));
    let d1 = corpus.add_document(&toks(&[
        "date",
        "begin",
        "event",
        "time",
        "information",
        "arrive",
        "first",
    ]));
    let d2 = corpus.add_document(&toks(&[
        "datetime", "first", "info", "event", "time", "record", "begin",
    ]));
    corpus.add_document(&toks(&["vehicle", "wheel", "size"]));
    let f = corpus.finalize();
    let (v1, v2) = (f.vector(d1).clone(), f.vector(d2).clone());
    c.bench_function("tfidf_cosine_interned", |bch| {
        bch.iter(|| black_box(&v1).cosine(black_box(&v2)));
    });
}

criterion_group!(
    benches,
    bench_tokenize,
    bench_stem,
    bench_similarity,
    bench_normalize,
    bench_tfidf,
    bench_interned_kernels
);
criterion_main!(benches);

//! Criterion bench behind experiment F3: distance-matrix construction and
//! agglomerative clustering as the registry grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sm_enterprise::cluster::{agglomerative, Cut, DistanceMatrix, Linkage};
use sm_schema::Schema;
use sm_synth::{RepositoryConfig, SyntheticRepository};

fn population(domains: usize, per_domain: usize) -> SyntheticRepository {
    SyntheticRepository::generate(&RepositoryConfig {
        seed: 77,
        domains,
        schemas_per_domain: per_domain,
        concepts_per_domain: 15,
        concept_coverage: 0.5,
        attrs_per_concept: (4, 8),
        ..Default::default()
    })
}

fn bench_distance_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("f3_distance_matrix");
    group.sample_size(10);
    for n in [20usize, 40, 80] {
        let pop = population(4, n / 4);
        let refs: Vec<&Schema> = pop.schemas.iter().collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &refs, |b, refs| {
            b.iter(|| DistanceMatrix::from_schemas(refs));
        });
    }
    group.finish();
}

fn bench_agglomerative(c: &mut Criterion) {
    let mut group = c.benchmark_group("f3_agglomerative");
    group.sample_size(10);
    for n in [20usize, 40, 80] {
        let pop = population(4, n / 4);
        let refs: Vec<&Schema> = pop.schemas.iter().collect();
        let dm = DistanceMatrix::from_schemas(&refs);
        group.bench_with_input(BenchmarkId::from_parameter(n), &dm, |b, dm| {
            b.iter(|| agglomerative(dm, Linkage::Average, Cut::K(4)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_distance_matrix, bench_agglomerative);
criterion_main!(benches);

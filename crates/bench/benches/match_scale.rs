//! Criterion bench behind experiment E1: full automated match runtime as
//! schema size grows toward the paper's 1378×784, plus the cold-vs-cached
//! Prepare stage at exactly that scale (the `PreparedSchema` feature cache's
//! reason to exist).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use harmony_core::context::MatchContext;
use harmony_core::prelude::*;
use harmony_core::prepare::PreparedSchema;
use sm_bench::case_study;
use sm_text::normalize::Normalizer;

fn bench_full_match(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_full_match");
    group.sample_size(10);
    for scale in [0.1, 0.25, 0.5] {
        let pair = case_study(scale);
        let pairs = (pair.source.len() * pair.target.len()) as u64;
        group.throughput(Throughput::Elements(pairs));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}x{}", pair.source.len(), pair.target.len())),
            &pair,
            |b, pair| {
                let engine = MatchEngine::new();
                b.iter(|| engine.run(&pair.source, &pair.target));
            },
        );
    }
    group.finish();
}

fn bench_context_build(c: &mut Criterion) {
    let pair = case_study(0.5);
    let engine = MatchEngine::new();
    c.bench_function("e1_context_build_689x392", |b| {
        b.iter(|| engine.build_context(&pair.source, &pair.target));
    });
}

fn bench_selection(c: &mut Criterion) {
    let pair = case_study(0.5);
    let engine = MatchEngine::new();
    let result = engine.run(&pair.source, &pair.target);
    c.bench_function("e1_one_to_one_selection", |b| {
        b.iter(|| {
            Selection::OneToOne {
                min: Confidence::new(0.3),
            }
            .apply(&result.matrix)
        });
    });
}

/// Cold vs. cached Prepare at the paper's 1378×784 scale.
///
/// * `cold_features`: full linguistic preprocessing of both schemata
///   (`PreparedSchema::build` — what every run paid before the cache).
/// * `cold_context`: preprocessing + joint TF-IDF corpus (the historical
///   context build).
/// * `cached_context`: context assembly against a warm feature cache — the
///   steady-state Prepare cost for repeated matching against a repository.
fn bench_prepare_cold_vs_cached(c: &mut Criterion) {
    let pair = case_study(1.0); // 1378×784
    let mut group = c.benchmark_group("pipeline_prepare_1378x784");
    group.sample_size(10);

    group.bench_function("cold_features", |b| {
        let normalizer = Normalizer::new();
        b.iter(|| {
            let ps = PreparedSchema::build(&pair.source, &normalizer);
            let pt = PreparedSchema::build(&pair.target, &normalizer);
            (ps.len(), pt.len())
        });
    });

    group.bench_function("cold_context", |b| {
        let normalizer = Normalizer::new();
        b.iter(|| MatchContext::build(&pair.source, &pair.target, &normalizer));
    });

    group.bench_function("cached_context", |b| {
        let engine = MatchEngine::new().with_normalizer(Normalizer::new());
        let _warm = engine.build_context(&pair.source, &pair.target);
        b.iter(|| engine.build_context(&pair.source, &pair.target));
    });

    group.finish();
}

criterion_group!(
    benches,
    bench_full_match,
    bench_context_build,
    bench_selection,
    bench_prepare_cold_vs_cached
);
criterion_main!(benches);

//! Criterion bench behind experiment E1: full automated match runtime as
//! schema size grows toward the paper's 1378×784.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use harmony_core::prelude::*;
use sm_bench::case_study;

fn bench_full_match(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_full_match");
    group.sample_size(10);
    for scale in [0.1, 0.25, 0.5] {
        let pair = case_study(scale);
        let pairs = (pair.source.len() * pair.target.len()) as u64;
        group.throughput(Throughput::Elements(pairs));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!(
                "{}x{}",
                pair.source.len(),
                pair.target.len()
            )),
            &pair,
            |b, pair| {
                let engine = MatchEngine::new();
                b.iter(|| engine.run(&pair.source, &pair.target));
            },
        );
    }
    group.finish();
}

fn bench_context_build(c: &mut Criterion) {
    let pair = case_study(0.5);
    let engine = MatchEngine::new();
    c.bench_function("e1_context_build_689x392", |b| {
        b.iter(|| engine.build_context(&pair.source, &pair.target));
    });
}

fn bench_selection(c: &mut Criterion) {
    let pair = case_study(0.5);
    let engine = MatchEngine::new();
    let result = engine.run(&pair.source, &pair.target);
    c.bench_function("e1_one_to_one_selection", |b| {
        b.iter(|| {
            Selection::OneToOne {
                min: Confidence::new(0.3),
            }
            .apply(&result.matrix)
        });
    });
}

criterion_group!(benches, bench_full_match, bench_context_build, bench_selection);
criterion_main!(benches);

//! Criterion bench behind experiment E4: cost of one sub-tree increment
//! (one concept against the whole opposing schema) — the unit of the
//! paper's human workflow, "typically between 10^4 and 10^5 matches".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use harmony_core::prelude::*;
use sm_bench::case_study;

fn bench_increment(c: &mut Criterion) {
    let pair = case_study(1.0);
    let engine = MatchEngine::new();
    let ctx = engine.build_context(&pair.source, &pair.target);
    let target_ids: Vec<_> = pair.target.ids().collect();

    let mut group = c.benchmark_group("e4_increment");
    group.sample_size(20);
    // Three concepts of different sizes.
    let mut anchors: Vec<_> = pair
        .source_anchors
        .iter()
        .map(|&(a, _)| (a, pair.source.subtree_size(a)))
        .collect();
    anchors.sort_by_key(|&(_, n)| n);
    let picks = [
        anchors[0],
        anchors[anchors.len() / 2],
        anchors[anchors.len() - 1],
    ];
    for (anchor, size) in picks {
        let src_ids = pair.source.subtree_ids(anchor);
        group.throughput(Throughput::Elements(
            (src_ids.len() * target_ids.len()) as u64,
        ));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{size}elems_x_{}", target_ids.len())),
            &src_ids,
            |b, src_ids| {
                b.iter(|| engine.run_restricted(&ctx, src_ids, &target_ids));
            },
        );
    }
    group.finish();
}

fn bench_subtree_filter_select(c: &mut Criterion) {
    let pair = case_study(1.0);
    let anchor = pair.source_anchors[0].0;
    c.bench_function("e4_subtree_select", |b| {
        b.iter(|| NodeFilter::subtree(anchor).select(&pair.source));
    });
    c.bench_function("e4_depth_select", |b| {
        b.iter(|| NodeFilter::at_depth(1).select(&pair.source));
    });
}

criterion_group!(benches, bench_increment, bench_subtree_filter_select);
criterion_main!(benches);

//! Block-stage kernel micro-benches: index build, per-row probe, and
//! CSR-vs-map posting lookup, at half the paper's 1378×784 scale. These
//! isolate the candidate-generation kernels so probe-level regressions are
//! visible without running the full `blocking_baseline` bin.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use harmony_core::index::{
    generate_candidates, reference, BlockingPolicy, ElementTokenIndex, ProbeScratch,
};
use harmony_core::prelude::*;
use sm_bench::case_study;

fn bench_index_build(c: &mut Criterion) {
    let pair = case_study(0.5);
    let engine = MatchEngine::new();
    let prepared = engine.prepare(&pair.source);
    let mut group = c.benchmark_group("block_index_build");
    group.throughput(Throughput::Elements(prepared.len() as u64));
    group.bench_function("csr", |b| {
        b.iter(|| ElementTokenIndex::build(&prepared));
    });
    group.bench_function("map_reference", |b| {
        b.iter(|| reference::ReferenceTokenIndex::build(&prepared));
    });
    group.finish();
}

fn bench_probe_rows(c: &mut Criterion) {
    let pair = case_study(0.5);
    let engine = MatchEngine::new();
    let ps = engine.prepare(&pair.source);
    let pt = engine.prepare(&pair.target);
    let index = ElementTokenIndex::build(&pt);
    let policy = BlockingPolicy::default();
    let mut scratch = ProbeScratch::new(pt.len());
    let mut group = c.benchmark_group("block_probe");
    group.throughput(Throughput::Elements(ps.len() as u64));
    // Every source row probed through the public per-row kernel, scratch
    // reused across rows exactly as the parallel lanes do.
    group.bench_function("rows_csr", |b| {
        b.iter(|| {
            let mut kept = 0usize;
            for idx in 0..ps.len() {
                kept += index
                    .probe_row(ps.block_features_of(idx), &policy, &mut scratch)
                    .len();
            }
            kept
        });
    });
    group.finish();
}

fn bench_posting_lookup(c: &mut Criterion) {
    let pair = case_study(0.5);
    let engine = MatchEngine::new();
    let ps = engine.prepare(&pair.source);
    let pt = engine.prepare(&pair.target);
    let csr = ElementTokenIndex::build(&pt);
    let mapped = reference::ReferenceTokenIndex::build(&pt);
    // The probe's lookup stream: every source element's features, in probe
    // order.
    let feats: Vec<_> = (0..ps.len())
        .flat_map(|idx| ps.block_features_of(idx).iter().copied())
        .collect();
    let mut group = c.benchmark_group("block_posting_lookup");
    group.throughput(Throughput::Elements(feats.len() as u64));
    group.bench_function("csr", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            let mut weight = 0.0f64;
            for &f in &feats {
                hits += csr.postings_by_id(f).len();
                weight += csr.weight_by_id(f);
            }
            (hits, weight)
        });
    });
    group.bench_function("map_reference", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            let mut weight = 0.0f64;
            for &f in &feats {
                hits += mapped.postings_by_id(f).len();
                weight += mapped.weight_by_id(f);
            }
            (hits, weight)
        });
    });
    group.finish();
}

fn bench_generate(c: &mut Criterion) {
    let pair = case_study(0.5);
    let engine = MatchEngine::new();
    let ps = engine.prepare(&pair.source);
    let pt = engine.prepare(&pair.target);
    let policy = BlockingPolicy::default();
    let mut group = c.benchmark_group("block_generate");
    group.sample_size(20);
    group.bench_function("csr", |b| {
        b.iter(|| generate_candidates(&pair.source, &pair.target, &ps, &pt, &policy));
    });
    group.bench_function("map_reference", |b| {
        b.iter(|| reference::generate_candidates(&pair.source, &pair.target, &ps, &pt, &policy));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_index_build,
    bench_probe_rows,
    bench_posting_lookup,
    bench_generate
);
criterion_main!(benches);

//! F9 — documentation vs. data instances as evidence (§3.2).
//!
//! "Unlike most schema matching tools, Harmony relies heavily on textual
//! documentation to identify candidate correspondences instead of data
//! instances because, at least in the government sector, schema
//! documentation is easier to obtain than data (which may not yet exist, or
//! may be sensitive)."
//!
//! This experiment makes that trade-off measurable: it equips the standard
//! case-study pair with (a) documentation only, (b) instance samples only,
//! (c) both, and (d) neither, and measures best-F1 of the appropriate voter
//! panel in each regime, including partial instance coverage (data "may not
//! yet exist" for many tables).

use harmony_core::prelude::*;
use harmony_core::voter::voters_with_instances;
use sm_bench::{f3, header, row, table_header};
use sm_synth::docgen::DocStyle;
use sm_synth::{generate_instances, GeneratorConfig, InstanceConfig, SchemaPair};

struct Regime {
    name: &'static str,
    doc: bool,
    instance_coverage: f64,
}

fn best_f1(pair: &SchemaPair, instance_coverage: f64) -> f64 {
    let engine = MatchEngine::new().with_voters(voters_with_instances());
    let icfg = InstanceConfig {
        seed: 11,
        rows_per_element: 24,
        coverage: instance_coverage,
    };
    let src = generate_instances(&pair.source, &pair.truth.source_semantics, &icfg);
    let tgt = generate_instances(&pair.target, &pair.truth.target_semantics, &icfg);
    let result = engine.run_with_instances(&pair.source, &pair.target, &src, &tgt);
    let mut best = 0.0f64;
    for i in 0..30 {
        let th = -0.1 + i as f64 * 0.03;
        let selected = Selection::OneToOne {
            min: Confidence::new(th),
        }
        .apply(&result.matrix);
        let predicted: Vec<_> = selected
            .all()
            .iter()
            .map(|c| (c.source, c.target))
            .collect();
        best = best.max(pair.truth.evaluate_pairs(predicted.iter()).f1);
    }
    best
}

fn main() {
    header(
        "F9",
        "evidence regimes: documentation vs data instances (§3.2's design argument)",
    );
    let regimes = [
        Regime {
            name: "doc only (Harmony)",
            doc: true,
            instance_coverage: 0.0,
        },
        Regime {
            name: "instances only",
            doc: false,
            instance_coverage: 0.9,
        },
        Regime {
            name: "instances 30%",
            doc: false,
            instance_coverage: 0.3,
        },
        Regime {
            name: "doc + instances",
            doc: true,
            instance_coverage: 0.9,
        },
        Regime {
            name: "neither",
            doc: false,
            instance_coverage: 0.0,
        },
    ];
    println!("standard naming noise (paper-style abbreviation + some synonyms):");
    table_header(&["evidence regime", "best F1"]);
    for r in &regimes {
        let mut cfg = GeneratorConfig::paper_case_study(42, 0.35);
        if !r.doc {
            cfg.source_doc = DocStyle::none();
            cfg.target_doc = DocStyle::none();
        }
        let pair = SchemaPair::generate(&cfg);
        row(&[r.name.to_string(), f3(best_f1(&pair, r.instance_coverage))]);
    }

    // Hostile naming: heavy synonym substitution and token dropping, which
    // no dictionary recovers — the regime where names stop carrying the
    // signal and secondary evidence must take over.
    println!("\nhostile naming noise (heavy synonyms/truncation — names diverge):");
    table_header(&["evidence regime", "best F1"]);
    for r in &regimes {
        let mut cfg = GeneratorConfig::paper_case_study(42, 0.35);
        let hostile = |mut s: sm_synth::NamingStyle| {
            s.synonym_prob = 0.6;
            s.drop_token_prob = 0.35;
            s.abbrev_prob = 0.7;
            s
        };
        cfg.source_style = hostile(cfg.source_style);
        cfg.target_style = hostile(cfg.target_style);
        if !r.doc {
            cfg.source_doc = DocStyle::none();
            cfg.target_doc = DocStyle::none();
        }
        let pair = SchemaPair::generate(&cfg);
        row(&[r.name.to_string(), f3(best_f1(&pair, r.instance_coverage))]);
    }
    println!(
        "\npaper-vs-measured: plentiful instance data is the single strongest \
         evidence source — exactly why conventional matchers lean on it. But \
         its advantage decays with availability (the 30%-coverage rows), and \
         the paper's whole point is that in government enterprises data \
         frequently 'may not yet exist, or may be sensitive' while \
         documentation ships with the schema. Harmony's documentation-first \
         design is a bet on *availability*, not per-token superiority; the \
         doc+instances row shows the two evidence sources compose when both \
         exist. (Our generated documentation also carries realistic shared \
         boilerplate, which caps doc-only gains — real data dictionaries \
         have the same property.)"
    );
}

//! Regenerate `BENCH_pipeline.json`: the staged-pipeline baseline at the
//! paper's 1378×784 scale (§3.3's "10.2 seconds" datum).
//!
//! Measures the cold vs. cached Prepare stage (the `PreparedSchema` feature
//! cache's payoff), the per-stage breakdown of full cached runs — dense and
//! token-blocked, single-threaded and multi-threaded — and the feature
//! cache's hit/miss/eviction counters over the whole workload, then writes
//! the numbers as JSON to the workspace root so regressions are diffable in
//! review. The blocked runs enable the score cascade with the floor at the
//! 0.30 operating threshold (`CASCADE_FLOOR`), and a cascade-off reference
//! at the same floor rides in the same interleaved rounds, so the JSON
//! reports the tier-1 skip rate and the Score-stage speedup side by side.
//!
//! Thread counts come from `harmony_core::engine::detect_threads` (the
//! `SM_THREADS` env var overrides; `available_parallelism` and
//! `/proc/cpuinfo` are the fallbacks). The multi-threaded run is labeled
//! with the *requested* engine width (min 2); the executor caps actual
//! lanes at its pool width — caller + pool-width−1 helpers — so on a host
//! with fewer cores than the request the run degrades to the serial path
//! instead of oversubscribing (requesting more workers is never slower
//! than requesting fewer; see `harmony_core::exec`). The block-stage
//! scaling section reports the blocked Block stage at 1, 2, and max
//! threads, median of N reps each.
//!
//! The bench also measures the observability recorder's own cost: the same
//! blocked cascade engine runs with recording enabled and runtime-disabled
//! in interleaved rounds, and the JSON reports the ratio (`obs_overhead`);
//! `ci.sh` gates it at ≤ 1.05.
//!
//! Run with: `cargo run --release -p sm-bench --bin pipeline_baseline`
//! Trace one instrumented run instead: `... --bin pipeline_baseline -- --trace`
//! (see `--help` for the artifact layout).

use harmony_core::context::MatchContext;
use harmony_core::index::BlockingPolicy;
use harmony_core::obs;
use harmony_core::prelude::*;
use harmony_core::prepare::PreparedSchema;
use sm_bench::{case_study, header};
use sm_text::normalize::Normalizer;
use std::time::Instant;

/// Score floor for the cascade runs: the 0.30 accept/propagation threshold
/// the experiments select at. Losslessness is relative to a full-panel
/// reference at the *same* floor (pinned byte-identical in
/// `tests/cascade_pin.rs`); the selections-equality gates in the n-way
/// bench keep running floor-off engines.
const CASCADE_FLOOR: f64 = 0.30;

fn median_secs(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

/// Slot visit order for one interleaved measurement round: forward on even
/// rounds, reversed on odd ones, so no slot is always the one running on a
/// freshly-idle (or freshly-warmed) core.
fn round_order(round: usize, slots: usize) -> Vec<usize> {
    if round % 2 == 0 {
        (0..slots).collect()
    } else {
        (0..slots).rev().collect()
    }
}

fn time<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .collect();
    median_secs(&mut samples)
}

/// Median full dense run (by total) with its stage breakdown, per engine.
/// Rounds interleave the engines (one run each per round) so slow drift —
/// CPU frequency wander, cache warmth — lands on every engine equally; a
/// sequential block per engine would bias whichever ran in a fast minute,
/// which is exactly the artifact an ST-vs-MT comparison must not carry.
fn timed_runs_interleaved(
    engines: &[&MatchEngine],
    pair: &sm_synth::SchemaPair,
    reps: usize,
) -> Vec<(f64, StageTimings)> {
    let mut samples: Vec<Vec<(f64, StageTimings)>> = vec![Vec::with_capacity(reps); engines.len()];
    for round in 0..reps {
        // Alternate the within-round order too: the slot that runs second
        // consistently sees a slightly warmer (slower) core.
        for slot in round_order(round, engines.len()) {
            let r = engines[slot].run(&pair.source, &pair.target);
            samples[slot].push((r.elapsed.as_secs_f64(), r.timings));
        }
    }
    samples
        .into_iter()
        .map(|mut runs| {
            runs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
            runs[runs.len() / 2]
        })
        .collect()
}

/// [`timed_runs_interleaved`] for blocked runs, also reporting the scored
/// candidate count (identical across engines — blocking is deterministic).
fn timed_blocked_runs_interleaved(
    engines: &[&MatchEngine],
    pair: &sm_synth::SchemaPair,
    policy: &BlockingPolicy,
    reps: usize,
) -> Vec<(f64, StageTimings, usize)> {
    let mut samples: Vec<Vec<(f64, StageTimings, usize)>> =
        vec![Vec::with_capacity(reps); engines.len()];
    for round in 0..reps {
        for slot in round_order(round, engines.len()) {
            let r = engines[slot].run_blocked(&pair.source, &pair.target, policy);
            samples[slot].push((r.elapsed.as_secs_f64(), r.timings, r.pairs_scored));
        }
    }
    samples
        .into_iter()
        .map(|mut runs| {
            runs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
            runs[runs.len() / 2]
        })
        .collect()
}

fn stage_json(label: &str, threads: usize, total: f64, stages: &StageTimings) -> String {
    format!(
        "\"{label}\": {{\n    \"threads\": {threads},\n    \"total\": {total:.6},\n    \
         \"stage_sum\": {stage_sum:.6},\n    \
         \"prepare\": {prepare:.6},\n    \"block\": {block:.6},\n    \"score\": {score:.6},\n    \
         \"score_tier1\": {tier1:.6},\n    \"score_tier2\": {tier2:.6},\n    \
         \"merge\": {merge:.6},\n    \"propagate\": {propagate:.6},\n    \
         \"pairs_pruned\": {pruned},\n    \"pairs_full\": {full}\n  }}",
        stage_sum = stages.total().as_secs_f64(),
        prepare = stages.prepare.as_secs_f64(),
        block = stages.block.as_secs_f64(),
        score = stages.score.as_secs_f64(),
        tier1 = stages.score_tier1.as_secs_f64(),
        tier2 = stages.score_tier2.as_secs_f64(),
        merge = stages.merge.as_secs_f64(),
        propagate = stages.propagate.as_secs_f64(),
        pruned = stages.pairs_pruned,
        full = stages.pairs_full,
    )
}

fn print_stages(label: &str, stages: &StageTimings) {
    println!(
        "  {label} stages: prepare {:.4}s  block {:.4}s  score {:.4}s  \
         (tier1 {:.4}s + tier2 {:.4}s)  merge {:.4}s  propagate {:.4}s",
        stages.prepare.as_secs_f64(),
        stages.block.as_secs_f64(),
        stages.score.as_secs_f64(),
        stages.score_tier1.as_secs_f64(),
        stages.score_tier2.as_secs_f64(),
        stages.merge.as_secs_f64(),
        stages.propagate.as_secs_f64(),
    );
}

/// `--trace` mode: one instrumented blocked cascade run at the paper scale,
/// plus the one-to-one selection at the operating threshold, exported as
/// chrome-trace + report JSON. A private ≥2-wide executor guarantees the
/// trace has per-lane worker rows even on a single-core host.
fn run_trace(req: &sm_bench::TraceRequest) {
    header(
        "pipeline_baseline --trace",
        "one instrumented blocked cascade run + selection at 1378×784",
    );
    let pair = case_study(1.0);
    let threads = detect_threads().max(2);
    let engine = MatchEngine::new()
        .with_feature_cache(std::sync::Arc::new(
            harmony_core::prepare::FeatureCache::new(Normalizer::new()),
        ))
        .with_threads(threads)
        .with_score_floor(Some(CASCADE_FLOOR))
        .with_executor(std::sync::Arc::new(Executor::new(threads)));
    obs::reset();
    obs::ObsConfig::default().apply();
    let result = engine.run_blocked(&pair.source, &pair.target, &BlockingPolicy::default());
    let selected = Selection::OneToOne {
        min: Confidence::new(CASCADE_FLOOR),
    }
    .apply(&result.matrix);
    println!(
        "blocked run ({threads} thr): {} pairs scored, {} selected, {:.4}s wall",
        result.pairs_scored,
        selected.len(),
        result.elapsed.as_secs_f64(),
    );
    sm_bench::write_trace(req);
}

fn main() {
    if let Some(req) = sm_bench::trace_request(
        "pipeline_baseline",
        "one blocked cascade match + selection at 1378×784",
    ) {
        run_trace(&req);
        return;
    }
    header(
        "pipeline_baseline",
        "cold vs cached Prepare and stage breakdown at 1378×784 (paper §3.3: 10.2 s fully automated)",
    );
    let pair = case_study(1.0);
    let rows = pair.source.len();
    let cols = pair.target.len();
    println!(
        "schema pair: {rows}×{cols} = {} candidate pairs\n",
        rows * cols
    );

    const REPS: usize = 5;
    let normalizer = Normalizer::new();

    // Cold per-schema features (what every layer re-paid before the cache).
    let cold_features = time(REPS, || {
        let ps = PreparedSchema::build(&pair.source, &normalizer);
        let pt = PreparedSchema::build(&pair.target, &normalizer);
        (ps.len(), pt.len())
    });

    // Cold full context (features + joint TF-IDF corpus).
    let cold_context = time(REPS, || {
        MatchContext::build(&pair.source, &pair.target, &normalizer)
    });

    // Cached context against a warm feature cache. The single- and multi-
    // threaded engines share it, so it is warmed exactly once.
    let cache = std::sync::Arc::new(harmony_core::prepare::FeatureCache::new(Normalizer::new()));
    let engine_st = MatchEngine::new()
        .with_feature_cache(std::sync::Arc::clone(&cache))
        .with_threads(1);
    let _warm = engine_st.build_context(&pair.source, &pair.target);
    let cached_context = time(REPS, || engine_st.build_context(&pair.source, &pair.target));

    // Full cached runs with stage breakdown: single-threaded and multi-
    // threaded. `detect_threads` honors SM_THREADS and cgroup-aware
    // parallelism; the floor of 2 keeps the multi-threaded configuration a
    // genuinely different code path (scoped workers + work-stealing queue)
    // even on a single-core host, and `threads_mt` records what actually ran.
    let threads_mt = detect_threads().max(2);
    let engine_mt = MatchEngine::new()
        .with_feature_cache(std::sync::Arc::clone(&cache))
        .with_threads(threads_mt);
    let dense = timed_runs_interleaved(&[&engine_st, &engine_mt], &pair, REPS);
    let ((st_total, st_stages), (mt_total, mt_stages)) = (dense[0], dense[1]);

    // Blocked runs at both thread counts: the sparse Score stage fans out
    // across the same work-stealing workers as the dense one. The blocked
    // engines run the score cascade with the floor at the 0.30 operating
    // threshold the experiments select at — cells the Harmony merge scores
    // below it are floored to the matrix's neutral 0.0 before propagation,
    // which tier 1 exploits losslessly (the matrix is byte-identical to
    // the same-floor full-panel reference; tests/cascade_pin.rs pins
    // this). A cascade-off reference engine rides along in the same
    // interleaved rounds so the cascade's Score-stage speedup is measured
    // under identical drift.
    let engine_bst = MatchEngine::new()
        .with_feature_cache(std::sync::Arc::clone(&cache))
        .with_threads(1)
        .with_score_floor(Some(CASCADE_FLOOR));
    let engine_bmt = MatchEngine::new()
        .with_feature_cache(std::sync::Arc::clone(&cache))
        .with_threads(threads_mt)
        .with_score_floor(Some(CASCADE_FLOOR));
    let engine_bref = MatchEngine::new()
        .with_feature_cache(std::sync::Arc::clone(&cache))
        .with_threads(1)
        .with_score_floor(Some(CASCADE_FLOOR))
        .with_cascade(false);
    let policy = BlockingPolicy::default();
    let blocked = timed_blocked_runs_interleaved(
        &[&engine_bst, &engine_bmt, &engine_bref],
        &pair,
        &policy,
        REPS,
    );
    let ((bst_total, bst_stages, pairs_scored), (bmt_total, bmt_stages, _)) =
        (blocked[0], blocked[1]);
    let (bref_total, bref_stages, _) = blocked[2];

    // Block-stage thread scaling at 1, 2, and max threads (median of REPS
    // each): the parallel candidate generation must never make 2 workers
    // slower than 1, and should scale where the host has the cores. Rounds
    // interleave the thread points so slow drift (CPU frequency wander)
    // lands on every point equally instead of biasing one.
    let mut scaling_threads: Vec<usize> = vec![1, 2, threads_mt];
    scaling_threads.dedup();
    let scaling_engines: Vec<MatchEngine> = scaling_threads
        .iter()
        .map(|&n| {
            MatchEngine::new()
                .with_feature_cache(std::sync::Arc::clone(&cache))
                .with_threads(n)
        })
        .collect();
    let mut block_samples: Vec<Vec<f64>> = vec![Vec::with_capacity(REPS); scaling_threads.len()];
    for round in 0..REPS {
        for point in round_order(round, scaling_engines.len()) {
            let r = scaling_engines[point].run_blocked(&pair.source, &pair.target, &policy);
            block_samples[point].push(r.timings.block.as_secs_f64());
        }
    }
    let block_scaling: Vec<(usize, f64)> = scaling_threads
        .iter()
        .zip(&mut block_samples)
        .map(|(&n, samples)| (n, median_secs(samples)))
        .collect();

    // Observability overhead: the same single-threaded blocked cascade
    // engine with the obs recorder enabled vs runtime-disabled, in
    // interleaved rounds so drift lands on both sides equally. ci.sh gates
    // the ratio at ≤ 1.05 (the recorder's ring writes are a handful of
    // relaxed stores per span; the compile-time `obs-off` feature removes
    // even those). More reps than the timing sections because the gate is
    // a ratio of two small numbers.
    const OBS_REPS: usize = 9;
    let mut obs_samples: Vec<Vec<f64>> = (0..2).map(|_| Vec::with_capacity(OBS_REPS)).collect();
    for round in 0..OBS_REPS {
        for slot in round_order(round, 2) {
            obs::set_enabled(slot == 0);
            let t0 = Instant::now();
            std::hint::black_box(engine_bst.run_blocked(&pair.source, &pair.target, &policy));
            obs_samples[slot].push(t0.elapsed().as_secs_f64());
        }
    }
    obs::set_enabled(true);
    let obs_on_secs = median_secs(&mut obs_samples[0]);
    let obs_off_secs = median_secs(&mut obs_samples[1]);
    let obs_ratio = obs_on_secs / obs_off_secs.max(1e-12);

    let speedup = cold_context / cached_context.max(1e-12);
    let stats = cache.stats();
    println!("cold features        {:>10.4} s", cold_features);
    println!("cold context         {:>10.4} s", cold_context);
    println!(
        "cached context       {:>10.4} s   ({speedup:.1}× vs cold)",
        cached_context
    );
    println!("dense run   (1 thr)  {:>10.4} s", st_total);
    println!("dense run   ({threads_mt} thr)  {:>10.4} s", mt_total);
    println!(
        "blocked run (1 thr)  {:>10.4} s   ({pairs_scored} pairs scored, {:.1}% of cross product)",
        bst_total,
        100.0 * pairs_scored as f64 / (rows * cols) as f64
    );
    println!("blocked run ({threads_mt} thr)  {:>10.4} s", bmt_total);
    println!("blocked run (1 thr, cascade off)  {:>10.4} s", bref_total);
    for (label, stages) in [
        ("dense 1-thread", &st_stages),
        ("dense mt", &mt_stages),
        ("blocked 1-thread", &bst_stages),
        ("blocked mt", &bmt_stages),
        ("blocked reference", &bref_stages),
    ] {
        print_stages(label, stages);
    }
    let skip_rate = bst_stages.pairs_pruned as f64
        / (bst_stages.pairs_pruned + bst_stages.pairs_full).max(1) as f64;
    let score_speedup = bref_stages.score.as_secs_f64() / bst_stages.score.as_secs_f64().max(1e-12);
    println!(
        "score cascade: {} of {} candidate pairs pruned by tier 1 ({:.1}%), \
         score stage {:.4}s vs {:.4}s reference ({score_speedup:.2}×)",
        bst_stages.pairs_pruned,
        pairs_scored,
        100.0 * skip_rate,
        bst_stages.score.as_secs_f64(),
        bref_stages.score.as_secs_f64(),
    );
    println!(
        "obs overhead: blocked run {obs_on_secs:.4}s instrumented vs {obs_off_secs:.4}s \
         disabled ({obs_ratio:.3}× , median of {OBS_REPS} interleaved)"
    );
    let memo = sm_text::intern::pair_memo_stats();
    println!(
        "edit-distance pair memo: {} misses / {} flushes (process-wide, cap {})",
        memo.misses,
        memo.flushes,
        sm_text::intern::PairMemo::CAPACITY
    );
    println!(
        "feature cache: {} hits / {} misses / {} evictions / {} resident",
        stats.hits, stats.misses, stats.evictions, stats.entries
    );
    println!("block-stage scaling (median of {REPS}):");
    for (n, secs) in &block_scaling {
        println!("  {n} thread(s): block {secs:.4}s");
    }

    // Hand-rolled JSON (the offline serde stand-in has no serializer).
    let json = format!(
        "{{\n  \"scale\": {{\"rows\": {rows}, \"cols\": {cols}, \"pairs\": {pairs}}},\n  \
         \"prepare_secs\": {{\n    \"cold_features\": {cold_features:.6},\n    \
         \"cold_context\": {cold_context:.6},\n    \
         \"cached_context\": {cached_context:.6},\n    \
         \"cached_speedup\": {speedup:.2}\n  }},\n  \
         {single},\n  {multi},\n  {bsingle},\n  {bmulti},\n  {bref},\n  \
         \"blocked_pairs_scored\": {pairs_scored},\n  \
         \"score_cascade\": {{\n    \"floor\": {CASCADE_FLOOR},\n    \
         \"pairs_pruned\": {pruned},\n    \"pairs_full\": {full},\n    \
         \"tier1_skip_rate\": {skip_rate:.6},\n    \
         \"cascade_score_secs\": {cascade_score:.6},\n    \
         \"reference_score_secs\": {reference_score:.6},\n    \
         \"score_speedup\": {score_speedup:.2}\n  }},\n  \
         \"obs_overhead\": {{\n    \"instrumented_secs\": {obs_on_secs:.6},\n    \
         \"disabled_secs\": {obs_off_secs:.6},\n    \"ratio\": {obs_ratio:.4}\n  }},\n  \
         \"edit_memo\": {{\"misses\": {memo_misses}, \"flushes\": {memo_flushes}, \
         \"capacity\": {memo_capacity}}},\n  \
         \"block_stage_scaling\": [\n{scaling}\n  ],\n  \
         \"feature_cache\": {{\"hits\": {hits}, \"misses\": {misses}, \
         \"evictions\": {evictions}, \"entries\": {entries}}},\n  \
         \"paper_reference_secs\": 10.2\n}}\n",
        bref = stage_json("blocked_run_reference_secs", 1, bref_total, &bref_stages),
        pruned = bst_stages.pairs_pruned,
        full = bst_stages.pairs_full,
        cascade_score = bst_stages.score.as_secs_f64(),
        reference_score = bref_stages.score.as_secs_f64(),
        memo_misses = memo.misses,
        memo_flushes = memo.flushes,
        memo_capacity = sm_text::intern::PairMemo::CAPACITY,
        pairs = rows * cols,
        scaling = block_scaling
            .iter()
            .map(|(n, secs)| format!("    {{\"threads\": {n}, \"block_stage_secs\": {secs:.6}}}"))
            .collect::<Vec<_>>()
            .join(",\n"),
        single = stage_json("full_run_secs", 1, st_total, &st_stages),
        multi = stage_json("full_run_mt_secs", threads_mt, mt_total, &mt_stages),
        bsingle = stage_json("blocked_run_secs", 1, bst_total, &bst_stages),
        bmulti = stage_json("blocked_run_mt_secs", threads_mt, bmt_total, &bmt_stages),
        hits = stats.hits,
        misses = stats.misses,
        evictions = stats.evictions,
        entries = stats.entries,
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    std::fs::write(out, &json).expect("write BENCH_pipeline.json");
    println!("\nwrote {out}");
}

//! F2 — summarization as a matching aid (Lesson #1, §4.2 / §5).
//!
//! The paper argues SUMMARIZE(S) "may guide subsequent matching steps" and
//! enables coarse-grained concept matching before "diving into the
//! lower-level details". This ablation compares three workflows at equal
//! reviewer accuracy:
//!
//! 1. **flat** — review all candidates above the threshold, no structure;
//! 2. **concept-at-a-time** — the paper's workflow (sub-tree increments);
//! 3. **concept-guided** — match concepts first, then only review element
//!    candidates *within* matched concept pairs (coarse-to-fine pruning).

use harmony_core::prelude::*;
use harmony_core::workflow::NoisyOracle;
use sm_bench::{case_study, f3, header, row, table_header};

fn main() {
    header(
        "F2",
        "ablation: flat vs concept-at-a-time vs concept-guided matching (Lesson #1)",
    );
    let pair = case_study(1.0);
    let engine = MatchEngine::new();
    let threshold = Confidence::new(0.30);
    let summary = auto_summarize(&pair.source, pair.source_anchors.len());
    let target_summary = auto_summarize(&pair.target, pair.target_anchors.len());

    table_header(&[
        "workflow",
        "shown",
        "validated",
        "precision",
        "recall",
        "F1",
    ]);

    // --- 1. Flat review -----------------------------------------------
    {
        let result = engine.run(&pair.source, &pair.target);
        let mut oracle = NoisyOracle::new(pair.truth.pairs().clone(), 0.05, 29);
        let mut validated = MatchSet::new();
        let mut shown = 0usize;
        for (s, t, c) in result.matrix.iter_above(threshold) {
            shown += 1;
            if harmony_core::workflow::Oracle::judge(&mut oracle, s, t, c) {
                validated.push(
                    Correspondence::candidate(s, t, c)
                        .validate("flat", MatchAnnotation::Equivalent),
                );
            }
        }
        validated.dedup_pairs();
        let eval = pair.truth.evaluate_validated(&validated);
        row(&[
            "flat".into(),
            shown.to_string(),
            validated.len().to_string(),
            f3(eval.precision),
            f3(eval.recall),
            f3(eval.f1),
        ]);
    }

    // --- 2. Concept-at-a-time (the paper's workflow) --------------------
    {
        let mut session = IncrementalSession::new(&engine, &pair.source, &pair.target, threshold);
        let mut oracle = NoisyOracle::new(pair.truth.pairs().clone(), 0.05, 29);
        session.concept_at_a_time(&summary, &mut oracle);
        let validated = session.validated();
        let eval = pair.truth.evaluate_validated(&validated);
        row(&[
            "concept".into(),
            session.total_inspected().to_string(),
            validated.len().to_string(),
            f3(eval.precision),
            f3(eval.recall),
            f3(eval.f1),
        ]);
    }

    // --- 3. Concept-guided coarse-to-fine -------------------------------
    {
        // Stage A: match the two concept summaries (coarse grain).
        let s_prime = summary.to_schema(sm_schema::SchemaId(100), "S_A'");
        let t_prime = target_summary.to_schema(sm_schema::SchemaId(101), "S_B'");
        let coarse = engine.run(&s_prime, &t_prime);
        let concept_pairs = Selection::OneToOne {
            min: Confidence::new(0.15),
        }
        .apply(&coarse.matrix);

        // Stage B: only element pairs within matched concept pairs reach the
        // reviewer.
        let ctx = engine.build_context(&pair.source, &pair.target);
        let mut oracle = NoisyOracle::new(pair.truth.pairs().clone(), 0.05, 29);
        let mut validated = MatchSet::new();
        let mut shown = 0usize;
        for cp in concept_pairs.all() {
            let src_members = &summary.concepts[cp.source.index()].members;
            let tgt_members = &target_summary.concepts[cp.target.index()].members;
            let result = engine.run_restricted(&ctx, src_members, tgt_members);
            for (s, t, c) in result.above(threshold) {
                shown += 1;
                if harmony_core::workflow::Oracle::judge(&mut oracle, s, t, c) {
                    validated.push(
                        Correspondence::candidate(s, t, c)
                            .validate("guided", MatchAnnotation::Equivalent),
                    );
                }
            }
        }
        validated.dedup_pairs();
        let eval = pair.truth.evaluate_validated(&validated);
        row(&[
            "guided".into(),
            shown.to_string(),
            validated.len().to_string(),
            f3(eval.precision),
            f3(eval.recall),
            f3(eval.f1),
        ]);
    }

    println!(
        "\npaper-vs-measured: summarization organizes the same review work into \
         concept-sized units and the coarse-to-fine variant cuts the number of \
         candidates a human must inspect, at a modest recall cost — the paper's \
         'one does not expect attributes from dissimilar concepts to match'."
    );
}

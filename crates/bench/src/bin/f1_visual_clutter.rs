//! F1 — "'line-drawing' visualizations of schema match break down rapidly as
//! schema size grows much larger than the user's screen" (§4.3).
//!
//! Using the deterministic screen model, this experiment measures visible
//! lines, off-screen-endpoint lines and crossings as schema size grows, and
//! then the collapse the paper's engineers obtained from the sub-tree
//! filter.

use harmony_core::prelude::*;
use sm_bench::{case_study, header, row, table_header, validate_all};
use sm_export::ScreenModel;

fn main() {
    header(
        "F1",
        "line-drawing clutter vs schema size; the sub-tree filter's rescue (§4.3)",
    );
    let model = ScreenModel {
        visible_rows: 40,
        source_scroll: 0,
        target_scroll: 0,
    };

    table_header(&[
        "scale",
        "|S_A|",
        "lines",
        "visible",
        "offscreen",
        "crossings",
        "clutter",
    ]);
    for scale in [0.05, 0.1, 0.25, 0.5, 1.0] {
        let pair = case_study(scale);
        let matches = validate_all(&sm_bench::auto_match(&pair, 0.35));
        let pairs: Vec<_> = matches.validated().map(|c| (c.source, c.target)).collect();
        // Scroll the target pane to the middle: a realistic working state
        // where endpoints straddle the viewport.
        let working = ScreenModel {
            target_scroll: pair.target.len() / 3,
            ..model
        };
        let stats = working.render(
            &pair.source,
            &pair.target,
            &pairs,
            &NodeFilter::All,
            &NodeFilter::All,
        );
        row(&[
            format!("{scale}"),
            pair.source.len().to_string(),
            stats.total_lines.to_string(),
            stats.fully_visible.to_string(),
            stats.offscreen_endpoint.to_string(),
            stats.crossings.to_string(),
            format!("{:.0}", stats.clutter_index()),
        ]);
    }

    // The sub-tree filter at full scale: each concept in isolation.
    println!("\nsub-tree filter at full scale (first 6 concepts):");
    let pair = case_study(1.0);
    let matches = validate_all(&sm_bench::auto_match(&pair, 0.35));
    let pairs: Vec<_> = matches.validated().map(|c| (c.source, c.target)).collect();
    let unfiltered = ScreenModel {
        target_scroll: pair.target.len() / 3,
        ..model
    }
    .render(
        &pair.source,
        &pair.target,
        &pairs,
        &NodeFilter::All,
        &NodeFilter::All,
    );
    println!(
        "unfiltered: {} lines, clutter index {:.0}",
        unfiltered.total_lines,
        unfiltered.clutter_index()
    );
    table_header(&[
        "concept",
        "lines",
        "visible",
        "offscreen",
        "crossings",
        "clutter",
    ]);
    for &(anchor, _) in pair.source_anchors.iter().take(6) {
        // The engineer scrolls the target pane to the matched region (the
        // paper: "keep entirely visible at least one side of the match, and
        // perhaps both sides"). Model that by centring the viewport on the
        // median matched target row.
        let subtree = NodeFilter::subtree(anchor);
        let in_subtree: Vec<usize> = pairs
            .iter()
            .filter(|(s, _)| subtree.passes(&pair.source, *s))
            .map(|(_, t)| t.index())
            .collect();
        let target_scroll = if in_subtree.is_empty() {
            0
        } else {
            let mut rows = in_subtree.clone();
            rows.sort_unstable();
            rows[rows.len() / 2].saturating_sub(model.visible_rows / 2)
        };
        let focused = ScreenModel {
            target_scroll,
            ..model
        };
        let stats = focused.render(
            &pair.source,
            &pair.target,
            &pairs,
            &NodeFilter::subtree(anchor),
            &NodeFilter::All,
        );
        row(&[
            pair.source.element(anchor).name.chars().take(14).collect(),
            stats.total_lines.to_string(),
            stats.fully_visible.to_string(),
            stats.offscreen_endpoint.to_string(),
            stats.crossings.to_string(),
            format!("{:.0}", stats.clutter_index()),
        ]);
    }
    println!(
        "\npaper-vs-measured: clutter grows with schema size and collapses to \
         near zero once one concept subtree is isolated — 'this precluded a \
         large mass of criss-crossing lines … from cluttering the display'."
    );
}

//! F7 — ablation of structural score propagation (a design choice of this
//! reproduction, called out in DESIGN.md).
//!
//! Enterprise schemata repeat generic leaf names (`identifier`, `name`,
//! `status`) in every table, so per-pair voters alone cannot tell which
//! `name` corresponds to which. The engine therefore blends every non-root
//! pair's score with its parents' score (`(1−α)·own + α·parents`), a
//! one-step analogue of similarity flooding. This experiment sweeps α and
//! reports best-F1 and the F1 at the fixed 0.35 operating threshold.

use harmony_core::prelude::*;
use sm_bench::{case_study, f3, header, row, table_header};

fn eval_alpha(alpha: f64) -> (f64, f64, f64) {
    let pair = case_study(0.35);
    let engine = MatchEngine::new().with_propagation(alpha);
    let result = engine.run(&pair.source, &pair.target);
    let f1_at = |th: f64| {
        let selected = Selection::OneToOne {
            min: Confidence::new(th),
        }
        .apply(&result.matrix);
        let predicted: Vec<_> = selected
            .all()
            .iter()
            .map(|c| (c.source, c.target))
            .collect();
        pair.truth.evaluate_pairs(predicted.iter()).f1
    };
    let mut best = (0.0, 0.0);
    for i in 0..30 {
        let th = -0.1 + i as f64 * 0.03;
        let f1 = f1_at(th);
        if f1 > best.0 {
            best = (f1, th);
        }
    }
    (best.0, best.1, f1_at(0.35))
}

fn main() {
    header(
        "F7",
        "ablation: structural propagation factor α (generic leaf-name disambiguation)",
    );
    table_header(&["alpha", "best F1", "at threshold", "F1 @0.35"]);
    for alpha in [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 0.9] {
        let (best, th, fixed) = eval_alpha(alpha);
        row(&[format!("{alpha}"), f3(best), f3(th), f3(fixed)]);
    }
    println!(
        "\nshape: α = 0 (pure per-pair voting) loses 20+ F1 points — the staple \
         attributes repeated in every table are unmatchable without container \
         context. On this workload quality keeps improving with α because the \
         planted concepts align cleanly; the library default stays at a \
         conservative 0.3 because real heterogeneous schemata (concepts split \
         across tables, cross-concept matches — which the paper's engineers \
         did observe) punish over-reliance on container agreement."
    );
}

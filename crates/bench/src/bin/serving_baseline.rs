//! Regenerate `BENCH_serving.json`: the admission-controlled serving layer
//! under concurrent mixed traffic.
//!
//! A closed-loop client mix — interactive point matches, repository
//! searches, and one background multi-pair batch — drives a single
//! [`AdmissionController`] at increasing concurrency. The bench reports
//! per-class throughput and latency percentiles, the loaded-vs-idle point
//! p99 ratio (`ci.sh` gates it at ≤ 3×: the lane budget must keep the
//! batch from starving interactive work), deterministic shed / reject /
//! timeout counts from a queue-flood phase, and peak RSS against the
//! governor's ceiling.
//!
//! Latency numbers are wall-clock on a shared host: absolute milliseconds
//! drift with CPU frequency and co-tenancy, which is why every gate in
//! `ci.sh` compares quantities measured *within this same run* (loaded vs
//! idle, RSS vs ceiling) and never against stored numbers from another
//! machine.
//!
//! Run with: `cargo run --release -p sm-bench --bin serving_baseline`

use harmony_core::prelude::*;
use harmony_core::serve::{
    self, AdmissionController, CancelReason, ClassPolicy, JobClass, JobToken, MemoryPolicy,
    ServeConfig, ServeError,
};
use sm_schema::Schema;
use sm_synth::{RepositoryConfig, SyntheticRepository};
use sm_text::normalize::Normalizer;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Interactive ops per point client per phase — enough for a stable p99
/// (the 99th of 150 is the 2nd-from-worst sample) without minutes of wall
/// clock.
const POINT_OPS: usize = 150;
/// Search ops per search client per phase.
const SEARCH_OPS: usize = 200;
/// Pairs in one background batch round.
const BATCH_PAIRS: usize = 12;

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_ms.len() as f64) * p).ceil() as usize;
    sorted_ms[rank.clamp(1, sorted_ms.len()) - 1]
}

#[derive(Default, Clone)]
struct ClassSample {
    latencies_ms: Vec<f64>,
    ops: u64,
    wall_secs: f64,
}

impl ClassSample {
    fn merge(&mut self, other: ClassSample) {
        self.latencies_ms.extend(other.latencies_ms);
        self.ops += other.ops;
        self.wall_secs = self.wall_secs.max(other.wall_secs);
    }

    fn json(&self) -> String {
        let mut sorted = self.latencies_ms.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        format!(
            "{{\"ops\": {}, \"throughput_ops_s\": {:.2}, \"p50_ms\": {:.4}, \"p99_ms\": {:.4}}}",
            self.ops,
            if self.wall_secs > 0.0 {
                self.ops as f64 / self.wall_secs
            } else {
                0.0
            },
            percentile(&sorted, 0.50),
            percentile(&sorted, 0.99),
        )
    }

    fn p99(&self) -> f64 {
        let mut sorted = self.latencies_ms.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        percentile(&sorted, 0.99)
    }
}

fn population(seed: u64) -> Vec<Schema> {
    SyntheticRepository::generate(&RepositoryConfig {
        seed,
        domains: 2,
        schemas_per_domain: 8,
        concepts_per_domain: 14,
        concept_coverage: 0.6,
        attrs_per_concept: (3, 7),
        ..Default::default()
    })
    .schemas
}

fn engine(exec: &Arc<Executor>, cache: &Arc<FeatureCache>, threads: usize) -> MatchEngine {
    MatchEngine::new()
        .with_normalizer(Normalizer::new())
        .with_feature_cache(Arc::clone(cache))
        .with_executor(Arc::clone(exec))
        .with_threads(threads)
}

struct Harness {
    exec: Arc<Executor>,
    cache: Arc<FeatureCache>,
    ctl: Arc<AdmissionController>,
    schemas: Arc<Vec<Schema>>,
    search: Arc<sm_enterprise::SchemaSearch>,
    threads: usize,
}

/// One point-match client: a closed loop of `POINT_OPS` submissions.
fn point_client(h: &Harness, seed: usize) -> ClassSample {
    let n = h.schemas.len();
    let mut sample = ClassSample::default();
    let t0 = Instant::now();
    for op in 0..POINT_OPS {
        let i = (seed + op) % n;
        let j = (seed + op + 1 + op % (n - 1)) % n;
        let (i, j) = if i == j { (i, (j + 1) % n) } else { (i, j) };
        let t = Instant::now();
        h.ctl
            .submit(JobClass::PointMatch, 5, |grant| {
                let e = grant.bind(engine(&h.exec, &h.cache, h.threads));
                std::hint::black_box(e.run_blocked(
                    &h.schemas[i],
                    &h.schemas[j],
                    &BlockingPolicy::default(),
                ))
            })
            .expect("point job admitted");
        sample.latencies_ms.push(t.elapsed().as_secs_f64() * 1e3);
        sample.ops += 1;
        // Interactive think time: a point client is a user-facing request
        // stream, not a saturating loop — the latency question is "how
        // long does one request take under background load", which a
        // closed spin would drown in client-vs-client scheduler noise.
        std::thread::sleep(Duration::from_millis(1));
    }
    sample.wall_secs = t0.elapsed().as_secs_f64();
    sample
}

/// One search client: repository queries against the shared index.
fn search_client(h: &Harness, seed: usize) -> ClassSample {
    let n = h.schemas.len();
    let mut sample = ClassSample::default();
    let t0 = Instant::now();
    for op in 0..SEARCH_OPS {
        let q = (seed + op) % n;
        let t = Instant::now();
        h.ctl
            .submit(JobClass::Search, 5, |grant| {
                std::hint::black_box(
                    h.search
                        .query_cancellable(&h.schemas[q], 10, Some(grant.token()))
                        .expect("search not cancelled"),
                )
            })
            .expect("search job admitted");
        sample.latencies_ms.push(t.elapsed().as_secs_f64() * 1e3);
        sample.ops += 1;
        std::thread::sleep(Duration::from_micros(500));
    }
    sample.wall_secs = t0.elapsed().as_secs_f64();
    sample
}

/// The background batch client: repeated `BATCH_PAIRS`-way rounds until
/// the interactive clients finish. Under memory pressure the grant flags
/// the degraded path and the round drops score matrices.
fn batch_client(h: &Harness, stop: &AtomicBool) -> (ClassSample, u64) {
    let n = h.schemas.len();
    let refs: Vec<&Schema> = h.schemas.iter().collect();
    let requests: Vec<(usize, usize)> = (0..BATCH_PAIRS).map(|k| (k % n, (k + 3) % n)).collect();
    let selection = Selection::OneToOne {
        min: Confidence::new(0.30),
    };
    let mut sample = ClassSample::default();
    let mut degraded_rounds = 0u64;
    let t0 = Instant::now();
    while !stop.load(Ordering::Acquire) {
        let t = Instant::now();
        let was_degraded = h
            .ctl
            .submit(JobClass::Batch, 1, |grant| {
                let e = grant.bind(engine(&h.exec, &h.cache, h.threads));
                let plan = e.batch().plan(&refs, requests.iter().copied());
                if grant.degraded() {
                    std::hint::black_box(plan.run_select_only(&selection));
                } else {
                    std::hint::black_box(plan.run());
                }
                grant.degraded()
            })
            .expect("batch job admitted");
        sample.latencies_ms.push(t.elapsed().as_secs_f64() * 1e3);
        sample.ops += 1;
        degraded_rounds += u64::from(was_degraded);
    }
    sample.wall_secs = t0.elapsed().as_secs_f64();
    (sample, degraded_rounds)
}

/// Run one load level: `points` point clients + `searches` search clients,
/// with (optionally) the background batch grinding underneath.
fn load_phase(
    h: &Arc<Harness>,
    points: usize,
    searches: usize,
    with_batch: bool,
) -> (ClassSample, ClassSample, ClassSample, u64) {
    let stop = Arc::new(AtomicBool::new(false));
    let batch_handle = with_batch.then(|| {
        let h = Arc::clone(h);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || batch_client(&h, &stop))
    });
    let point_handles: Vec<_> = (0..points)
        .map(|c| {
            let h = Arc::clone(h);
            std::thread::spawn(move || point_client(&h, c * 7))
        })
        .collect();
    let search_handles: Vec<_> = (0..searches)
        .map(|c| {
            let h = Arc::clone(h);
            std::thread::spawn(move || search_client(&h, c * 11))
        })
        .collect();

    let mut point_sample = ClassSample::default();
    for p in point_handles {
        point_sample.merge(p.join().expect("point client panicked"));
    }
    let mut search_sample = ClassSample::default();
    for s in search_handles {
        search_sample.merge(s.join().expect("search client panicked"));
    }
    stop.store(true, Ordering::Release);
    let (batch_sample, degraded) = match batch_handle {
        Some(b) => b.join().expect("batch client panicked"),
        None => (ClassSample::default(), 0),
    };
    (point_sample, search_sample, batch_sample, degraded)
}

/// Deterministic admission-failure phase on a deliberately tiny
/// controller: one running batch blocks the lane, the queue holds one
/// waiter, and the flood forces every failure mode the serving layer
/// distinguishes — reject (full queue, no lower-priority victim), shed
/// (higher-priority arrival), and deadline timeout.
fn failure_phase(h: &Harness) -> (u64, u64, u64, u64) {
    let mut config = ServeConfig::for_pool(h.threads);
    *config.policy_mut(JobClass::Batch) = ClassPolicy {
        max_concurrent: 1,
        queue_capacity: 1,
        lane_fraction: 0.25,
        deadline: None,
        pacing: None,
    };
    let ctl = Arc::new(AdmissionController::new(
        Arc::clone(&h.exec),
        Arc::clone(&h.cache),
        config,
    ));

    let rejected = Arc::new(AtomicU64::new(0));
    let shed = Arc::new(AtomicU64::new(0));
    let timeouts = Arc::new(AtomicU64::new(0));
    let cancelled = Arc::new(AtomicU64::new(0));

    // Occupy the single Batch slot for the whole phase.
    let hold = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));
    let holder = {
        let ctl = Arc::clone(&ctl);
        let hold = Arc::clone(&hold);
        let release = Arc::clone(&release);
        std::thread::spawn(move || {
            ctl.submit(JobClass::Batch, 1, |_grant| {
                hold.store(true, Ordering::Release);
                while !release.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
            })
            .expect("holder admitted");
        })
    };
    while !hold.load(Ordering::Acquire) {
        std::thread::yield_now();
    }

    // Low-priority waiter fills the queue with a deadline it cannot meet:
    // it is either shed by the high-priority arrival below or times out.
    let waiter = {
        let ctl = Arc::clone(&ctl);
        let rejected = Arc::clone(&rejected);
        let shed = Arc::clone(&shed);
        let timeouts = Arc::clone(&timeouts);
        let cancelled = Arc::clone(&cancelled);
        std::thread::spawn(move || {
            let token = JobToken::deadline_in(Duration::from_millis(200));
            match ctl.submit_with_token(JobClass::Batch, 1, token, |_g| ()) {
                Err(ServeError::Cancelled { reason, .. }) => match reason {
                    CancelReason::Shed => shed.fetch_add(1, Ordering::Relaxed),
                    CancelReason::Deadline => timeouts.fetch_add(1, Ordering::Relaxed),
                    CancelReason::Cancelled => cancelled.fetch_add(1, Ordering::Relaxed),
                },
                Err(ServeError::Overloaded { .. }) => rejected.fetch_add(1, Ordering::Relaxed),
                Ok(()) => panic!("waiter ran while the slot was held"),
            };
        })
    };
    std::thread::sleep(Duration::from_millis(20));

    // Equal-priority arrival against a full queue: rejected outright.
    match ctl.submit_with_token(
        JobClass::Batch,
        1,
        JobToken::deadline_in(Duration::from_millis(1)),
        |_g| (),
    ) {
        Err(ServeError::Overloaded { .. }) => rejected.fetch_add(1, Ordering::Relaxed),
        Err(ServeError::Cancelled { .. }) => timeouts.fetch_add(1, Ordering::Relaxed),
        Ok(()) => panic!("equal-priority job ran on a held slot"),
    };

    // Higher-priority arrival: sheds the queued low-priority waiter, then
    // itself times out waiting on the held slot.
    match ctl.submit_with_token(
        JobClass::Batch,
        9,
        JobToken::deadline_in(Duration::from_millis(30)),
        |_g| (),
    ) {
        Err(ServeError::Cancelled {
            reason: CancelReason::Deadline,
            ..
        }) => timeouts.fetch_add(1, Ordering::Relaxed),
        other => panic!("high-priority job: unexpected outcome {other:?}"),
    };

    // A zero-deadline job on an *idle* class trips at its first checkpoint.
    match ctl.submit_with_token(
        JobClass::PointMatch,
        5,
        JobToken::deadline_in(Duration::ZERO),
        |grant| grant.token().checkpoint(),
    ) {
        Err(ServeError::Cancelled {
            reason: CancelReason::Deadline,
            ..
        }) => timeouts.fetch_add(1, Ordering::Relaxed),
        other => panic!("zero-deadline job: unexpected outcome {other:?}"),
    };

    waiter.join().expect("waiter panicked");
    release.store(true, Ordering::Release);
    holder.join().expect("holder panicked");

    (
        rejected.load(Ordering::Relaxed),
        shed.load(Ordering::Relaxed),
        timeouts.load(Ordering::Relaxed),
        cancelled.load(Ordering::Relaxed),
    )
}

fn main() {
    sm_bench::header(
        "serving_baseline",
        "admission-controlled serving under concurrent mixed traffic",
    );
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(2, 8);

    let schemas = Arc::new(population(4242));
    let exec = Arc::new(Executor::new(threads));
    let cache = Arc::new(FeatureCache::with_limits(
        Normalizer::new(),
        256,
        Some(64 << 20),
    ));

    // Ceiling: generous headroom over the warm-up RSS. The gate is "the
    // serving workload does not grow the process past the ceiling", i.e.
    // no unbounded RSS growth — not an absolute footprint claim.
    let base_rss = serve::current_rss_bytes().unwrap_or(256 << 20);
    let ceiling = base_rss + base_rss / 2 + (512 << 20);
    let mut config = ServeConfig::for_pool(threads);
    config.memory = Some(MemoryPolicy {
        ceiling_bytes: ceiling,
        cache_budget_bytes: 32 << 20,
        poll_interval: Duration::from_millis(50),
    });
    // Duty-cycle the background classes: lane budgets isolate interactive
    // work on wide pools, but a closed-loop batch on a narrow (down to
    // one-core) host competes for the same CPU time slice — the idle gap
    // after each round is what keeps point p99 near its uncontended value.
    config.policy_mut(JobClass::Batch).pacing = Some(Duration::from_millis(10));
    config.policy_mut(JobClass::Coi).pacing = Some(Duration::from_millis(10));
    let ctl = Arc::new(AdmissionController::new(
        Arc::clone(&exec),
        Arc::clone(&cache),
        config,
    ));

    // Repository + search index over the same population.
    let mut repo = sm_enterprise::MetadataRepository::new();
    for s in schemas.iter() {
        repo.register_schema(s.clone());
    }
    let search = Arc::new(sm_enterprise::SchemaSearch::build(&repo));

    let h = Arc::new(Harness {
        exec,
        cache,
        ctl,
        schemas,
        search,
        threads,
    });

    // RSS sampler: the peak must come from *during* the load phases, not
    // just the process high-water mark at exit.
    let sampling = Arc::new(AtomicBool::new(true));
    let sampled_peak = Arc::new(AtomicU64::new(0));
    let sampler = {
        let sampling = Arc::clone(&sampling);
        let sampled_peak = Arc::clone(&sampled_peak);
        std::thread::spawn(move || {
            while sampling.load(Ordering::Acquire) {
                if let Some(rss) = serve::current_rss_bytes() {
                    sampled_peak.fetch_max(rss, Ordering::Relaxed);
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        })
    };

    // Warm-up: populate the cache so idle numbers measure serving, not
    // first-touch preparation.
    let (_, _, _, _) = load_phase(&h, 1, 1, false);

    println!("  idle phase: 1 point client, no background load");
    let (idle_point, _, _, _) = load_phase(&h, 1, 0, false);

    println!("  loaded phase: 4 clients (2 point + 1 search + 1 batch)");
    let (p4, s4, b4, d4) = load_phase(&h, 2, 1, true);

    println!("  loaded phase: 8 clients (5 point + 2 search + 1 batch)");
    let (p8, s8, b8, d8) = load_phase(&h, 5, 2, true);

    println!("  failure phase: queue flood on a 1-slot controller");
    let (rejected, shed, timeouts, cancelled) = failure_phase(&h);

    sampling.store(false, Ordering::Release);
    sampler.join().expect("sampler panicked");
    let peak_rss = serve::peak_rss_bytes()
        .unwrap_or(0)
        .max(sampled_peak.load(Ordering::Relaxed));

    let idle_p99 = idle_point.p99();
    let loaded_p99 = p4.p99();
    let ratio = if idle_p99 > 0.0 {
        loaded_p99 / idle_p99
    } else {
        0.0
    };
    println!(
        "  point p99: idle {idle_p99:.3} ms, loaded(4) {loaded_p99:.3} ms ({ratio:.2}x); \
         rejected {rejected}, shed {shed}, timeouts {timeouts}; peak RSS {} MiB / ceiling {} MiB",
        peak_rss >> 20,
        ceiling >> 20,
    );

    let json = format!(
        "{{\n  \"bench\": \"serving\",\n  \"threads\": {threads},\n  \"population\": {pop},\n  \
         \"idle\": {{\"point\": {idle}}},\n  \
         \"loaded\": [\n    {{\"concurrency\": 4, \"point\": {p4}, \"search\": {s4}, \"batch\": {b4}, \"degraded_rounds\": {d4}}},\n    \
         {{\"concurrency\": 8, \"point\": {p8}, \"search\": {s8}, \"batch\": {b8}, \"degraded_rounds\": {d8}}}\n  ],\n  \
         \"loaded_over_idle_point_p99\": {ratio:.4},\n  \
         \"admission\": {{\"rejected\": {rejected}, \"shed\": {shed}, \"timeouts\": {timeouts}, \"cancelled\": {cancelled}}},\n  \
         \"memory\": {{\"ceiling_bytes\": {ceiling}, \"peak_rss_bytes\": {peak_rss}, \"cache_resident_bytes\": {resident}}},\n  \
         \"caveats\": \"wall-clock latencies on a shared host; gates compare within-run quantities only\"\n}}\n",
        pop = h.schemas.len(),
        idle = idle_point.json(),
        p4 = p4.json(),
        s4 = s4.json(),
        b4 = b4.json(),
        p8 = p8.json(),
        s8 = s8.json(),
        b8 = b8.json(),
        resident = h.cache.stats().resident_bytes,
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json");
    std::fs::write(out, &json).expect("write BENCH_serving.json");
    println!("  wrote {out}");
}

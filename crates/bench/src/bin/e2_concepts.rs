//! E2 — concept identification and the spreadsheet accounting (§3.3–3.4).
//!
//! Paper numbers: engineers identified 140 concept elements in S_A and 51 in
//! S_B; 24 concept-level matches were recorded; the delivered sheet 1
//! enumerated "the 191 concepts with their 24 concept-level matches
//! (167 rows)" — i.e. rows = concepts − matches.

use harmony_core::prelude::*;
use harmony_core::workflow::NoisyOracle;
use schema_match_suite::consolidation_study;
use sm_bench::{case_study, header, row, table_header};

fn main() {
    header(
        "E2",
        "concepts, concept-level matches, and outer-join sheet rows \
         (paper: 140 + 51 concepts, 24 matches, 167 rows)",
    );
    let pair = case_study(1.0);
    let engine = MatchEngine::new();
    let mut reviewer = NoisyOracle::new(pair.truth.pairs().clone(), 0.05, 11).named("engineer");
    let outcome = consolidation_study(
        &engine,
        &pair.source,
        &pair.target,
        pair.source_anchors.len(),
        Confidence::new(0.30),
        &mut reviewer,
    );

    let (concepts, matches, rows) = outcome.workbook.concept_accounting();
    table_header(&["quantity", "paper", "measured"]);
    row(&[
        "S_A concepts".into(),
        "140".into(),
        outcome.source_summary.len().to_string(),
    ]);
    row(&[
        "S_B concepts".into(),
        "51".into(),
        outcome.target_summary.len().to_string(),
    ]);
    row(&["total concepts".into(), "191".into(), concepts.to_string()]);
    row(&["concept matches".into(), "24".into(), matches.to_string()]);
    row(&["sheet-1 rows".into(), "167".into(), rows.to_string()]);
    row(&[
        "sheet-2 rows".into(),
        "~2000".into(),
        outcome.workbook.element_sheet.len().to_string(),
    ]);

    // The invariant behind the paper's arithmetic.
    assert_eq!(concepts - matches, rows, "outer-join row accounting");
    println!(
        "\ninvariant holds: concepts ({concepts}) − concept-level matches ({matches}) \
         = sheet-1 rows ({rows}); the paper's 191 − 24 = 167."
    );

    // Row-type breakdown of sheet 2 (the paper's three row types).
    use sm_export::RowKind;
    let count = |k: RowKind| {
        outcome
            .workbook
            .element_sheet
            .iter()
            .filter(|r| r.kind == k)
            .count()
    };
    println!(
        "sheet-2 row types: matched {}, source-only {}, target-only {}",
        count(RowKind::Matched),
        count(RowKind::SourceOnly),
        count(RowKind::TargetOnly)
    );
}

//! F4 — schema search: "use one's target schema as the query term" (§2).
//!
//! Every schema of a generated registry queries the index; a hit is relevant
//! iff it came from the same latent domain. Reports mean reciprocal rank and
//! precision@k across registry sizes.

use sm_bench::{f3, header, row, table_header};
use sm_enterprise::{MetadataRepository, SchemaSearch};
use sm_schema::SchemaId;
use sm_synth::{RepositoryConfig, SyntheticRepository};
use std::collections::HashSet;
use std::time::Instant;

fn main() {
    header(
        "F4",
        "query-by-schema search over a registry (§2): MRR and precision@k",
    );
    table_header(&[
        "schemas", "domains", "MRR", "P@1", "P@3", "P@5", "index-ms", "query-ms",
    ]);
    for (domains, per_domain) in [(3usize, 5usize), (5, 6), (8, 8), (10, 10)] {
        let population = SyntheticRepository::generate(&RepositoryConfig {
            seed: 41 + domains as u64,
            domains,
            schemas_per_domain: per_domain,
            concepts_per_domain: 16,
            concept_coverage: 0.5,
            attrs_per_concept: (4, 8),
            ..Default::default()
        });
        let mut repo = MetadataRepository::new();
        for s in &population.schemas {
            repo.register_schema(s.clone());
        }
        let t0 = Instant::now();
        let search = SchemaSearch::build(&repo);
        let index_ms = t0.elapsed().as_secs_f64() * 1e3;

        let mut mrr_sum = 0.0;
        let mut p = [0.0f64; 3]; // P@1, P@3, P@5
        let t1 = Instant::now();
        for (i, schema) in population.schemas.iter().enumerate() {
            let relevant: HashSet<SchemaId> = population
                .schemas
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i && population.domain_of[*j] == population.domain_of[i])
                .map(|(_, s)| s.id)
                .collect();
            mrr_sum += search.mrr(schema, &relevant);
            for (slot, k) in [(0usize, 1usize), (1, 3), (2, 5)] {
                p[slot] += search.precision_at_k(schema, &relevant, k);
            }
        }
        let n = population.len() as f64;
        let query_ms = t1.elapsed().as_secs_f64() * 1e3 / n;
        row(&[
            population.len().to_string(),
            domains.to_string(),
            f3(mrr_sum / n),
            f3(p[0] / n),
            f3(p[1] / n),
            f3(p[2] / n),
            format!("{index_ms:.1}"),
            format!("{query_ms:.2}"),
        ]);
    }
    println!(
        "\npaper-vs-measured: using a schema as the query term ranks its \
         community-mates first (MRR near 1), at millisecond query cost — the \
         'rank the available schemata' capability §2 calls for."
    );
}

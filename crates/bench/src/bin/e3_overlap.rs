//! E3 — "only 34% of S_B matched S_A and 66% of S_B (or 517 elements) did
//! not" (§3.4).
//!
//! The workload plants a 34% overlap; the experiment measures how well the
//! matcher's partition recovers it, fully automatically across thresholds
//! and with an oracle-reviewed workflow, plus precision/recall against the
//! planted truth (which the original engagement could not measure).

use harmony_core::prelude::*;
use harmony_core::workflow::NoisyOracle;
use schema_match_suite::consolidation_study;
use sm_bench::{auto_match, case_study, f3, header, row, table_header, validate_all};

fn main() {
    header(
        "E3",
        "recovering the 34%/66% overlap split of S_B (paper: 267 matched, 517 not)",
    );
    let pair = case_study(1.0);
    println!(
        "planted: {:.1}% of S_B overlaps ({} of {} elements)\n",
        pair.actual_target_overlap() * 100.0,
        pair.truth.matched_targets().len(),
        pair.target.len()
    );

    table_header(&[
        "threshold",
        "est-overlap%",
        "unmatched-B",
        "precision",
        "recall",
        "F1",
    ]);
    for th in [0.15, 0.25, 0.35, 0.45, 0.55] {
        let candidates = auto_match(&pair, th);
        let validated = validate_all(&candidates);
        let partition = BinaryPartition::compute(&pair.source, &pair.target, &validated);
        let eval = pair.truth.evaluate_validated(&validated);
        let (_, only_b, _) = partition.cardinalities();
        row(&[
            f3(th),
            format!("{:.1}", partition.target_matched_fraction() * 100.0),
            only_b.to_string(),
            f3(eval.precision),
            f3(eval.recall),
            f3(eval.f1),
        ]);
    }

    // The oracle-reviewed workflow (the paper's actual process).
    let engine = MatchEngine::new();
    let mut reviewer = NoisyOracle::new(pair.truth.pairs().clone(), 0.05, 13).named("engineer");
    let outcome = consolidation_study(
        &engine,
        &pair.source,
        &pair.target,
        pair.source_anchors.len(),
        Confidence::new(0.30),
        &mut reviewer,
    );
    let (_, only_b, shared_b) = outcome.partition.cardinalities();
    println!(
        "\nreviewed workflow: {:.1}% of S_B matched ({} elements), {} did not \
         — paper reported 34% (267) matched, 517 not.",
        outcome.partition.target_matched_fraction() * 100.0,
        shared_b,
        only_b
    );
    let eval = pair.truth.evaluate_validated(&outcome.matches);
    println!(
        "reviewed-workflow quality: precision {:.3}, recall {:.3}, F1 {:.3}",
        eval.precision, eval.recall, eval.f1
    );
    println!(
        "subsumption advice at the 50% bar: {:?} (the paper concluded \
         subsuming Sys(S_B) 'would be a challenging undertaking')",
        outcome.partition.subsumption_advice(0.5)
    );
}

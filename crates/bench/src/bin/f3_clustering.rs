//! F3 — schema clustering for CIOs and COI proposal (§2, §5).
//!
//! "The ability to identify clusters of related schemata is vital …" — this
//! experiment populates a registry from k latent domains and measures how
//! well overlap-distance clustering recovers them (purity / adjusted Rand
//! index), across k and across linkage strategies, plus the automatic COI
//! proposals.

use sm_bench::{f3, header, row, table_header};
use sm_enterprise::{
    agglomerative, cluster::Cut, cluster::DistanceMatrix, propose_cois, ClusterEval, Linkage,
    MetadataRepository,
};
use sm_schema::SchemaId;
use sm_synth::{RepositoryConfig, SyntheticRepository};
use std::collections::HashMap;

fn main() {
    header(
        "F3",
        "clustering a schema registry back into its latent communities (§2, §5)",
    );

    table_header(&["domains", "schemas", "linkage", "purity", "ARI"]);
    for domains in [2usize, 4, 6, 8] {
        let population = SyntheticRepository::generate(&RepositoryConfig {
            seed: 31 + domains as u64,
            domains,
            schemas_per_domain: 6,
            concepts_per_domain: 18,
            concept_coverage: 0.5,
            attrs_per_concept: (4, 9),
            ..Default::default()
        });
        let refs: Vec<&sm_schema::Schema> = population.schemas.iter().collect();
        let dm = DistanceMatrix::from_schemas(&refs);
        let truth: HashMap<SchemaId, usize> = population
            .schemas
            .iter()
            .zip(&population.domain_of)
            .map(|(s, &d)| (s.id, d))
            .collect();
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let clustering = agglomerative(&dm, linkage, Cut::K(domains));
            let eval = ClusterEval::evaluate(&clustering, &truth);
            row(&[
                domains.to_string(),
                population.len().to_string(),
                format!("{linkage:?}"),
                f3(eval.purity),
                f3(eval.ari),
            ]);
        }
    }

    // COI proposal quality on the 4-domain population.
    println!("\nautomatic COI proposals (4 hidden communities):");
    let population = SyntheticRepository::generate(&RepositoryConfig {
        seed: 35,
        domains: 4,
        schemas_per_domain: 6,
        concepts_per_domain: 18,
        concept_coverage: 0.5,
        attrs_per_concept: (4, 9),
        ..Default::default()
    });
    let mut repo = MetadataRepository::new();
    for s in &population.schemas {
        repo.register_schema(s.clone());
    }
    let proposals = propose_cois(&repo, 0.72, 0.05);
    table_header(&["proposal", "members", "cohesion", "pure?"]);
    for (i, p) in proposals.iter().enumerate() {
        let mut domains: Vec<usize> = p
            .members
            .iter()
            .map(|id| population.domain_of[id.0 as usize])
            .collect();
        domains.sort_unstable();
        domains.dedup();
        row(&[
            format!("COI-{i}"),
            p.members.len().to_string(),
            f3(p.cohesion),
            (domains.len() == 1).to_string(),
        ]);
    }
    println!(
        "\npaper-vs-measured: overlap-distance clustering recovers the hidden \
         communities with high purity, supporting the paper's claim that it \
         can reveal 'the most promising candidates for integration'."
    );
}

//! E4 — "typically between 10^4 and 10^5 matches were considered in each
//! increment" (§3.3).
//!
//! The paper's engineers matched one concept subtree at a time against the
//! entire opposing schema. This experiment runs that workflow at full scale
//! and reports the distribution of per-increment candidate counts (the
//! paper's 10^4–10^5 band) and what the sub-tree filter buys in reviewer
//! load versus a flat, unfiltered review.

use harmony_core::prelude::*;
use harmony_core::workflow::NoisyOracle;
use sm_bench::{case_study, header, row, table_header};

fn main() {
    header(
        "E4",
        "per-increment candidate counts in the concept-at-a-time workflow \
         (paper: 10^4–10^5 per increment)",
    );
    let pair = case_study(1.0);
    let engine = MatchEngine::new();
    let summary = auto_summarize(&pair.source, pair.source_anchors.len());
    let mut session =
        IncrementalSession::new(&engine, &pair.source, &pair.target, Confidence::new(0.30));
    let mut oracle = NoisyOracle::new(pair.truth.pairs().clone(), 0.05, 17);
    let reports = session.concept_at_a_time(&summary, &mut oracle);

    // Distribution of per-increment pair counts.
    let counts: Vec<usize> = reports.iter().map(|r| r.pairs_considered).collect();
    let min = counts.iter().min().copied().unwrap_or(0);
    let max = counts.iter().max().copied().unwrap_or(0);
    let mean = counts.iter().sum::<usize>() as f64 / counts.len().max(1) as f64;
    let in_band = counts
        .iter()
        .filter(|&&c| (10_000..=100_000).contains(&c))
        .count();
    table_header(&["increments", "min", "mean", "max", "in 10^4..10^5"]);
    row(&[
        reports.len().to_string(),
        min.to_string(),
        format!("{mean:.0}"),
        max.to_string(),
        format!("{}/{}", in_band, reports.len()),
    ]);

    println!("\nlargest increments:");
    let mut sorted = reports.clone();
    sorted.sort_by_key(|r| std::cmp::Reverse(r.pairs_considered));
    table_header(&["concept", "src-elems", "pairs", "shown", "accepted"]);
    for r in sorted.iter().take(8) {
        row(&[
            r.label.chars().take(14).collect(),
            r.source_elements.to_string(),
            r.pairs_considered.to_string(),
            r.shown_to_reviewer.to_string(),
            r.accepted.to_string(),
        ]);
    }

    // Effort comparison: incremental vs flat review at the same threshold.
    let flat = engine.run(&pair.source, &pair.target);
    let flat_shown = flat.matrix.count_above(Confidence::new(0.30));
    println!(
        "\nreviewer load: incremental workflow shows {} candidates across {} \
         increments; a flat unfiltered review at the same threshold shows {}.",
        session.total_inspected(),
        reports.len(),
        flat_shown
    );
    println!(
        "total pairs scored: incremental {} vs flat {} (the machine cost is \
         the same order; the *human* work is organized into reviewable units \
         — the paper's point).",
        session.total_pairs_considered(),
        flat.pairs_considered
    );
}

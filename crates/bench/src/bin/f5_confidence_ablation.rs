//! F5 — the Harmony novelty claim (§3.2): evidence-aware confidence plus
//! commitment-weighted merging.
//!
//! "Harmony is novel in that it considers both the standard evidence ratio …
//! as well as the total amount of available evidence … This approach allows
//! the vote merger to combine confidence scores into a single match score
//! based on how confident each match voter is."
//!
//! The ablation compares the Harmony merger against conventional combiners
//! (average, max, fixed-weight linear) under three documentation regimes —
//! the evidence-variance dimension the design targets. Quality is best-F1
//! over a threshold sweep per configuration (so no combiner is penalized by
//! a fixed operating point).

use harmony_core::prelude::*;
use sm_bench::{f3, header, row, table_header};
use sm_synth::docgen::DocStyle;
use sm_synth::{GeneratorConfig, SchemaPair};

fn best_f1(pair: &SchemaPair, merger: MergeStrategy) -> (f64, f64) {
    let engine = MatchEngine::new().with_merger(merger);
    let result = engine.run(&pair.source, &pair.target);
    let mut best = (0.0f64, 0.0f64); // (F1, threshold)
    for i in 0..30 {
        let th = -0.2 + i as f64 * 0.035;
        let selected = Selection::OneToOne {
            min: Confidence::new(th),
        }
        .apply(&result.matrix);
        let predicted: Vec<_> = selected
            .all()
            .iter()
            .map(|c| (c.source, c.target))
            .collect();
        let eval = pair.truth.evaluate_pairs(predicted.iter());
        if eval.f1 > best.0 {
            best = (eval.f1, th);
        }
    }
    best
}

fn f1_at(pair: &SchemaPair, merger: MergeStrategy, th: f64) -> f64 {
    let engine = MatchEngine::new().with_merger(merger);
    let result = engine.run(&pair.source, &pair.target);
    let selected = Selection::OneToOne {
        min: Confidence::new(th),
    }
    .apply(&result.matrix);
    let predicted: Vec<_> = selected
        .all()
        .iter()
        .map(|c| (c.source, c.target))
        .collect();
    pair.truth.evaluate_pairs(predicted.iter()).f1
}

fn main() {
    header(
        "F5",
        "ablation of the evidence-aware merger vs conventional combiners (§3.2)",
    );
    let regimes: [(&str, DocStyle, DocStyle); 3] = [
        ("rich/rich", DocStyle::rich(), DocStyle::rich()),
        ("rich/sparse", DocStyle::rich(), DocStyle::sparse()),
        ("none/none", DocStyle::none(), DocStyle::none()),
    ];
    table_header(&["doc regime", "merger", "best F1", "at threshold"]);
    for (name, src_doc, tgt_doc) in regimes {
        let mut cfg = GeneratorConfig::paper_case_study(42, 0.35);
        cfg.source_doc = src_doc;
        cfg.target_doc = tgt_doc;
        let pair = SchemaPair::generate(&cfg);
        for (mname, merger) in [
            ("harmony", MergeStrategy::HarmonyWeighted),
            ("average", MergeStrategy::Average),
            ("max", MergeStrategy::Max),
            ("linear", MergeStrategy::Linear(vec![1.0; 9])),
        ] {
            let (f1, th) = best_f1(&pair, merger);
            row(&[name.to_string(), mname.to_string(), f3(f1), f3(th)]);
        }
        println!();
    }
    // The operational view: the paper's confidence filter runs at a *fixed*
    // threshold. A merger whose score scale drifts with the evidence regime
    // forces per-problem re-tuning; the evidence-aware merger should hold
    // its calibration.
    println!("fixed operating threshold 0.35 (the suite's default confidence filter):");
    table_header(&["doc regime", "harmony", "average", "max", "linear"]);
    for (name, src_doc, tgt_doc) in [
        ("rich/rich", DocStyle::rich(), DocStyle::rich()),
        ("rich/sparse", DocStyle::rich(), DocStyle::sparse()),
        ("none/none", DocStyle::none(), DocStyle::none()),
    ] {
        let mut cfg = GeneratorConfig::paper_case_study(42, 0.35);
        cfg.source_doc = src_doc;
        cfg.target_doc = tgt_doc;
        let pair = SchemaPair::generate(&cfg);
        row(&[
            name.to_string(),
            f3(f1_at(&pair, MergeStrategy::HarmonyWeighted, 0.35)),
            f3(f1_at(&pair, MergeStrategy::Average, 0.35)),
            f3(f1_at(&pair, MergeStrategy::Max, 0.35)),
            f3(f1_at(&pair, MergeStrategy::Linear(vec![1.0; 9]), 0.35)),
        ]);
    }
    println!(
        "\npaper-vs-measured: on peak F1 the evidence-aware merger ties the best \
         conventional combiners and clearly beats MAX; its decisive advantage is \
         *calibration stability* — its optimal threshold barely moves across \
         documentation regimes, so one fixed confidence filter (the paper's UI \
         model) stays near-optimal, while the diluting combiners need \
         per-problem re-tuning."
    );
}

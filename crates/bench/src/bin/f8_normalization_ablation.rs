//! F8 — ablation of the linguistic preprocessing pipeline (§3.2: "linguistic
//! preprocessing (e.g., tokenization and stemming) of element names and any
//! associated documentation").
//!
//! Each row disables one stage of the normalizer and reports the matcher's
//! best F1 on the standard case-study workload, isolating how much each
//! stage contributes (abbreviation expansion matters most in enterprise
//! naming; stemming bridges singular/plural; noise/numeric stripping clears
//! `TBL_`/`_156` debris).

use harmony_core::prelude::*;
use sm_bench::{case_study, f3, header, row, table_header};
use sm_text::normalize::{NormalizeOptions, Normalizer};

fn best_f1(normalizer: Normalizer) -> f64 {
    let pair = case_study(0.35);
    let engine = MatchEngine::new().with_normalizer(normalizer);
    let result = engine.run(&pair.source, &pair.target);
    let mut best = 0.0f64;
    for i in 0..30 {
        let th = -0.1 + i as f64 * 0.03;
        let selected = Selection::OneToOne {
            min: Confidence::new(th),
        }
        .apply(&result.matrix);
        let predicted: Vec<_> = selected
            .all()
            .iter()
            .map(|c| (c.source, c.target))
            .collect();
        best = best.max(pair.truth.evaluate_pairs(predicted.iter()).f1);
    }
    best
}

fn main() {
    header(
        "F8",
        "ablation: linguistic preprocessing stages (tokenize → expand → stem …)",
    );
    let full = NormalizeOptions::default();
    let configs: Vec<(&str, NormalizeOptions)> = vec![
        ("full pipeline", full),
        (
            "no abbreviation exp.",
            NormalizeOptions {
                expand_abbrevs: false,
                ..full
            },
        ),
        (
            "no stemming",
            NormalizeOptions {
                stem: false,
                ..full
            },
        ),
        (
            "no numeric strip",
            NormalizeOptions {
                drop_numeric: false,
                ..full
            },
        ),
        (
            "no stopword strip",
            NormalizeOptions {
                strip_stopwords: false,
                ..full
            },
        ),
        ("raw tokens only", NormalizeOptions::raw()),
    ];
    table_header(&["configuration", "best F1"]);
    for (name, options) in configs {
        let f1 = best_f1(Normalizer::with_options(options));
        row(&[name.to_string(), f3(f1)]);
    }
    println!(
        "\nshape: abbreviation expansion is the single most valuable stage on \
         enterprise-style names (QTY/DT/ORG…); the raw-token baseline shows \
         the combined value of the whole §3.2 preprocessing layer."
    );
}

//! E1 — "the fully automated match executed in 10.2 seconds" (§3.3).
//!
//! The paper's S_A×S_B problem is 1378×784 ≈ 1.08·10^6 candidate pairs. This
//! experiment times the fully automated `MATCH(S1, S2)` across a size sweep
//! up to full scale, and reports pairs/second so the shape (roughly
//! quadratic in schema size, full problem in single-digit seconds on a
//! laptop-class machine) can be compared with the paper's 10.2 s datum.

use harmony_core::prelude::*;
use sm_bench::{case_study, f1, f3, header, row, table_header};
use std::time::Instant;

fn main() {
    header(
        "E1",
        "fully automated 1378×784 match in seconds (paper: 10.2 s, ~10^6 pairs)",
    );
    table_header(&["scale", "|S_A|", "|S_B|", "pairs", "seconds", "Mpairs/s"]);
    for scale in [0.1, 0.25, 0.5, 0.75, 1.0] {
        let pair = case_study(scale);
        let engine = MatchEngine::new();
        let t0 = Instant::now();
        let result = engine.run(&pair.source, &pair.target);
        let secs = t0.elapsed().as_secs_f64();
        row(&[
            format!("{scale}"),
            pair.source.len().to_string(),
            pair.target.len().to_string(),
            result.pairs_considered.to_string(),
            f3(secs),
            f3(result.pairs_considered as f64 / secs / 1e6),
        ]);
    }

    // Thread-scaling at full size. On a single-core host the extra threads
    // can only add overhead; the table still documents the engine's
    // parallel path.
    println!(
        "\nthread scaling (host has {} core(s)):",
        harmony_core::engine::detect_threads()
    );
    table_header(&["threads", "seconds", "speedup"]);
    let pair = case_study(1.0);
    let mut base = None;
    for threads in [1usize, 2, 4, 8] {
        let engine = MatchEngine::new().with_threads(threads);
        let t0 = Instant::now();
        let _ = engine.run(&pair.source, &pair.target);
        let secs = t0.elapsed().as_secs_f64();
        let b = *base.get_or_insert(secs);
        row(&[threads.to_string(), f3(secs), f1(b / secs)]);
    }
    println!(
        "\npaper-vs-measured: the full 10^6-pair match completes in seconds on \
         commodity hardware, matching the order of the paper's 10.2 s."
    );
}

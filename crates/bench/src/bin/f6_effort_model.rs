//! F6 — project-planning effort estimation (§2; calibration datum §3.3).
//!
//! The paper's engagement took "three days of effort, by two human
//! integration engineers" (≈ 6 person-days). The planning use case needs
//! that number *predicted before the match runs*. This experiment compares
//! (a) the effort measured by simulating the reviewed workflow against (b)
//! the a-priori prediction from schema sizes alone, across scales.

use harmony_core::prelude::*;
use harmony_core::workflow::NoisyOracle;
use schema_match_suite::consolidation_study;
use sm_bench::{case_study, f1, header, row, table_header};

fn main() {
    header(
        "F6",
        "predicted vs simulated matching effort (paper: 3 days × 2 engineers)",
    );
    let model = EffortModel::default();
    table_header(&[
        "scale",
        "|S_A|x|S_B|",
        "shown",
        "validated",
        "sim p-days",
        "pred p-days",
        "cal-days(2)",
    ]);
    for scale in [0.25, 0.5, 1.0] {
        let pair = case_study(scale);
        let engine = MatchEngine::new();
        let mut reviewer = NoisyOracle::new(pair.truth.pairs().clone(), 0.05, 47).named("engineer");
        let outcome = consolidation_study(
            &engine,
            &pair.source,
            &pair.target,
            pair.source_anchors.len(),
            Confidence::new(0.30),
            &mut reviewer,
        );
        let validated = outcome.matches.validated().count();
        let simulated = model.estimate(&Workload {
            inspections: outcome.inspected,
            validations: validated,
            concepts: outcome.source_summary.len() + outcome.target_summary.len(),
            increments: outcome.source_summary.len(),
        });
        // A-priori prediction from sizes only (survival rate and overlap are
        // planning assumptions, not measurements).
        let predicted_workload = model.predict_workload(
            pair.source.len(),
            pair.target.len(),
            outcome.source_summary.len() + outcome.target_summary.len(),
            7e-4,
            0.34,
        );
        let predicted = model.estimate(&predicted_workload);
        row(&[
            format!("{scale}"),
            format!("{}x{}", pair.source.len(), pair.target.len()),
            outcome.inspected.to_string(),
            validated.to_string(),
            f1(simulated.person_days),
            f1(predicted.person_days),
            format!("{:.0}", simulated.calendar_days(2)),
        ]);
    }
    println!(
        "\npaper-vs-measured: at full scale the simulated workflow lands in the \
         single-digit person-day regime, matching the paper's ≈6 person-days; \
         the a-priori prediction is the §2 'how much time and money' answer a \
         planner could produce before committing resources."
    );
}

//! Regenerate `BENCH_blocking.json`: dense vs blocked matching at the
//! paper's 1378×784 scale, and repository search latency at registry scale.
//!
//! Part A times the dense `MatchEngine::run` against the blocked
//! `MatchEngine::run_blocked` (default [`BlockingPolicy`]) at equal thread
//! count and reports stage timings, the scored-pair fraction, and recall of
//! the blocked run against the dense run's above-threshold pairs and the
//! workload's planted ground truth.
//!
//! Part B registers synthetic repositories of growing size (up to the
//! paper's "thousands of schemata" registry scale) and compares the
//! historical linear scan (per-query IDF table + per-schema signature
//! intersection) against retrieval over the repository token index, showing
//! sub-linear latency growth in repository size plus p50/p99 tails.
//!
//! Part C measures incremental index maintenance at the 10⁴ tier: delta
//! insert/remove refresh vs a structure-only full rebuild, shard
//! compaction, and warm-start load vs cold re-preparation. It *executes
//! first* (see the comment in `main`): cold/warm start model a restarted
//! process, so they must run against a pristine heap, not the allocator
//! state Parts A/B leave behind.
//!
//! Run with: `cargo run --release -p sm-bench --bin blocking_baseline`

use harmony_core::index::BlockingPolicy;
use harmony_core::prelude::*;
use sm_bench::{case_study, header};
use sm_enterprise::{MetadataRepository, SchemaSearch};
use sm_schema::{Schema, SchemaId};
use sm_synth::{RepositoryConfig, SyntheticRepository};
use sm_text::normalize::Normalizer;
use std::collections::{HashMap, HashSet};
use std::time::Instant;

/// The operating threshold used across experiments.
const THRESHOLD: f64 = 0.30;

/// The historical linear scan: rebuild the IDF weight table per query and
/// intersect the query signature with *every* registered schema. Kept here
/// as the measured baseline the token index replaces.
struct LinearScan {
    signatures: Vec<(SchemaId, HashSet<String>)>,
    schema_freq: HashMap<String, usize>,
}

impl LinearScan {
    fn build(repo: &MetadataRepository) -> Self {
        let mut signatures = Vec::new();
        let mut schema_freq: HashMap<String, usize> = HashMap::new();
        for p in repo.prepare_all() {
            let sig: HashSet<String> = p.signature().iter().map(|t| t.to_string()).collect();
            for t in &sig {
                *schema_freq.entry(t.clone()).or_insert(0) += 1;
            }
            signatures.push((p.schema_id, sig));
        }
        LinearScan {
            signatures,
            schema_freq,
        }
    }

    fn query(
        &self,
        query_sig: &HashSet<String>,
        query_id: SchemaId,
        limit: usize,
    ) -> Vec<SchemaId> {
        let n = self.signatures.len().max(1) as f64;
        // Per-query weight table over the whole repository vocabulary —
        // the work SchemaSearch used to redo on every call.
        let weights: HashMap<&str, f64> = self
            .schema_freq
            .iter()
            .map(|(t, &df)| (t.as_str(), ((n + 1.0) / (df as f64 + 1.0)).ln() + 1.0))
            .collect();
        let weight = |t: &str| weights.get(t).copied().unwrap_or((n + 1.0).ln() + 1.0);
        let sum = |sig: &HashSet<String>| -> f64 {
            let mut ts: Vec<&str> = sig.iter().map(String::as_str).collect();
            ts.sort_unstable();
            ts.into_iter().map(weight).sum()
        };
        let q_weight = sum(query_sig);
        let mut hits: Vec<(SchemaId, f64)> = self
            .signatures
            .iter()
            .filter(|(id, _)| *id != query_id)
            .filter_map(|(id, sig)| {
                let mut shared: Vec<&str> =
                    query_sig.intersection(sig).map(String::as_str).collect();
                if shared.is_empty() {
                    return None;
                }
                shared.sort_unstable();
                let shared_weight: f64 = shared.into_iter().map(weight).sum();
                let total = sum(sig);
                Some((*id, shared_weight / (q_weight + total - shared_weight)))
            })
            .collect();
        hits.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        hits.truncate(limit);
        hits.into_iter().map(|(id, _)| id).collect()
    }
}

struct SearchPoint {
    schemas: usize,
    build_secs: f64,
    /// `None` at registry scale: the historical scan is quadratic-ish in
    /// repository size and exists only as a small-tier reference.
    linear_ms: Option<f64>,
    indexed_ms: f64,
    indexed_p50_ms: f64,
    indexed_p99_ms: f64,
}

fn population(size: usize) -> SyntheticRepository {
    assert!(size % 8 == 0);
    SyntheticRepository::generate(&RepositoryConfig {
        seed: 1234 + size as u64,
        domains: size / 8,
        schemas_per_domain: 8,
        concepts_per_domain: 20,
        concept_coverage: 0.5,
        attrs_per_concept: (4, 9),
        ..Default::default()
    })
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

fn repo_search_point(size: usize) -> SearchPoint {
    let population = population(size);
    let mut repo = MetadataRepository::new();
    for s in &population.schemas {
        repo.register_schema(s.clone());
    }

    let t0 = Instant::now();
    let _index = repo.token_index();
    let build_secs = t0.elapsed().as_secs_f64();

    let queries: Vec<&Schema> = population.schemas.iter().step_by(8).collect();
    let search = SchemaSearch::build(&repo);

    // The linear reference (and its agreement check) only at small tiers —
    // every query visits every schema, so at 10⁴ it is the scenario the
    // index exists to avoid.
    let linear_ms = (size <= 512).then(|| {
        let linear = LinearScan::build(&repo);
        let query_sigs: Vec<(SchemaId, HashSet<String>)> = queries
            .iter()
            .map(|q| {
                (
                    q.id,
                    harmony_core::prepare::FeatureCache::global()
                        .prepare(q)
                        .signature()
                        .iter()
                        .map(|t| t.to_string())
                        .collect(),
                )
            })
            .collect();

        // Agreement check (outside the timed loops): identical rankings.
        for ((id, sig), q) in query_sigs.iter().zip(&queries) {
            let lin: Vec<SchemaId> = linear.query(sig, *id, 5);
            let idx: Vec<SchemaId> = search
                .query(q, 5)
                .into_iter()
                .map(|h| h.schema_id)
                .collect();
            assert_eq!(lin, idx, "index retrieval diverged from the linear scan");
        }

        let t0 = Instant::now();
        for (id, sig) in &query_sigs {
            std::hint::black_box(linear.query(sig, *id, 10));
        }
        t0.elapsed().as_secs_f64() * 1e3 / queries.len() as f64
    });

    // Per-query latencies for the tail percentiles the satellite dashboards
    // track (mean alone hides slow outlier queries).
    let mut per_query_ms: Vec<f64> = Vec::with_capacity(queries.len());
    let t0 = Instant::now();
    for q in &queries {
        let q0 = Instant::now();
        std::hint::black_box(search.query(q, 10));
        per_query_ms.push(q0.elapsed().as_secs_f64() * 1e3);
    }
    let indexed_ms = t0.elapsed().as_secs_f64() * 1e3 / queries.len() as f64;
    per_query_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite"));

    SearchPoint {
        schemas: size,
        build_secs,
        linear_ms,
        indexed_ms,
        indexed_p50_ms: percentile(&per_query_ms, 0.50),
        indexed_p99_ms: percentile(&per_query_ms, 0.99),
    }
}

/// Incremental-maintenance + warm-start timings at registry scale (10⁴
/// schemata): the delta write path, compaction, and persistence against
/// their full-rebuild / cold-start equivalents — all same-run ratios, so
/// host drift cancels in the ci.sh gates.
struct IncrementalPoint {
    schemas: usize,
    cold_start_secs: f64,
    full_rebuild_secs: f64,
    insert_refresh_secs: f64,
    remove_refresh_secs: f64,
    compact_secs: f64,
    save_secs: f64,
    warm_start_secs: f64,
}

fn repo_incremental_point(size: usize) -> IncrementalPoint {
    use sm_schema::{DataType, ElementKind, SchemaFormat};

    let population = population(size);
    let mut repo = MetadataRepository::new();
    for s in &population.schemas {
        repo.register_schema(s.clone());
    }

    // Cold start: linguistic preparation of the whole registry plus the
    // sharded build (what a restarted process without an image pays).
    let t0 = Instant::now();
    let index = repo.token_index();
    let cold_start_secs = t0.elapsed().as_secs_f64();

    // Structure-only full rebuild over already-prepared schemata — the
    // strictest honest baseline for the incremental write path (a rebuild
    // that also re-prepared would flatter the delta path).
    let prepared: Vec<_> = index
        .live_slots()
        .into_iter()
        .map(|s| std::sync::Arc::clone(index.prepared(s).expect("live")))
        .collect();
    let exec = harmony_core::exec::Executor::global();
    let t0 = Instant::now();
    let rebuilt = sm_enterprise::ShardedRepositoryIndex::build_parallel(
        &prepared,
        exec,
        exec.threads(),
        repo.shard_config(),
    );
    let full_rebuild_secs = t0.elapsed().as_secs_f64();
    std::hint::black_box(rebuilt.len());
    drop(rebuilt);
    drop(prepared);
    drop(index);

    // Insert: one new schema, then the incremental refresh (prepare one
    // schema + delta append + snapshot publish — never a rebuild).
    let mut extra = Schema::new(
        SchemaId(size as u32 + 1),
        "bench_orders_extra",
        SchemaFormat::Relational,
    );
    let root = extra.add_root("PurchaseOrderLine", ElementKind::Table, DataType::None);
    for col in ["order_id", "line_no", "sku", "quantity", "unit_price"] {
        extra
            .add_child(root, col, ElementKind::Column, DataType::text())
            .expect("root exists");
    }
    repo.register_schema(extra);
    let t0 = Instant::now();
    let after_insert = repo.token_index();
    let insert_refresh_secs = t0.elapsed().as_secs_f64();
    assert_eq!(after_insert.len(), size + 1);
    drop(after_insert);

    // Remove: tombstone + df bookkeeping, again via refresh.
    repo.remove_schema(population.schemas[3].id);
    let t0 = Instant::now();
    let after_remove = repo.token_index();
    let remove_refresh_secs = t0.elapsed().as_secs_f64();
    assert_eq!(after_remove.len(), size);

    // Compaction: fold every shard's delta/tombstones into fresh base CSRs.
    let mut compactable = after_remove.begin_update();
    let t0 = Instant::now();
    compactable.compact_all();
    let compact_secs = t0.elapsed().as_secs_f64();
    assert_eq!(compactable.pending_ops(), 0);
    drop(compactable);
    drop(after_remove);

    // Warm start: persist the prepared registry, then load it into a fresh
    // repository registered with the same schemata.
    let image = std::env::temp_dir().join(format!("sm_bench_warm_{}.bin", std::process::id()));
    let t0 = Instant::now();
    repo.save_registry(&image).expect("save warm-start image");
    let save_secs = t0.elapsed().as_secs_f64();
    let mut warm_repo = MetadataRepository::new();
    for s in repo.schemas() {
        warm_repo.register_schema(s.clone());
    }
    let t0 = Instant::now();
    let reused = warm_repo.warm_start(&image).expect("warm start");
    let warm_start_secs = t0.elapsed().as_secs_f64();
    std::fs::remove_file(&image).ok();
    assert_eq!(
        reused,
        warm_repo.schema_count(),
        "every preparation must be reused"
    );

    IncrementalPoint {
        schemas: size,
        cold_start_secs,
        full_rebuild_secs,
        insert_refresh_secs,
        remove_refresh_secs,
        compact_secs,
        save_secs,
        warm_start_secs,
    }
}

/// One point of the block-stage thread-scaling curve.
struct ScalePoint {
    threads: usize,
    block_secs: f64,
    total_secs: f64,
}

fn main() {
    header(
        "blocking_baseline",
        "dense vs token-blocked matching at 1378×784 + sub-linear repository search",
    );

    // -------- Part C: incremental maintenance + warm start at 10⁴. --------
    // Runs FIRST, in a pristine process: the warm-start claim is about a
    // *restarted* service, so cold start must pay true first-touch costs
    // and the image load must not run in whatever allocator state hours of
    // unrelated matching left behind. (Measured: running this section after
    // Parts A/B inflates the load's millions of small allocations ~5×
    // purely from free-list fragmentation, while leaving cold start — whose
    // transient allocations recycle LIFO — almost untouched, turning a
    // genuine 5× warm-start win into an apparent regression.) The gate
    // ratios below stay same-run either way.
    println!("repository incremental maintenance (10⁴ tier):");
    let inc = repo_incremental_point(10240);
    let insert_over_rebuild = inc.insert_refresh_secs / inc.full_rebuild_secs.max(1e-12);
    let warm_over_cold = inc.warm_start_secs / inc.cold_start_secs.max(1e-12);
    println!(
        "  cold start (prepare + build) {:>8.3}s   structure-only rebuild {:>8.4}s",
        inc.cold_start_secs, inc.full_rebuild_secs
    );
    println!(
        "  insert refresh {:>8.5}s ({:.1}% of rebuild)   remove refresh {:>8.5}s   compact {:>8.5}s",
        inc.insert_refresh_secs,
        100.0 * insert_over_rebuild,
        inc.remove_refresh_secs,
        inc.compact_secs
    );
    println!(
        "  save {:>8.4}s   warm start {:>8.4}s ({:.1}% of cold start)",
        inc.save_secs,
        inc.warm_start_secs,
        100.0 * warm_over_cold
    );

    // -------- Part A: dense vs blocked at paper scale, equal threads. -----
    println!();
    let pair = case_study(1.0);
    let rows = pair.source.len();
    let cols = pair.target.len();
    let threads = 1usize;
    let engine = MatchEngine::new()
        .with_normalizer(Normalizer::new())
        .with_threads(threads);
    let policy = BlockingPolicy::default();

    const REPS: usize = 5;
    let mut dense_runs: Vec<MatchResult> = (0..REPS)
        .map(|_| engine.run(&pair.source, &pair.target))
        .collect();
    dense_runs.sort_by_key(|r| r.elapsed);
    let dense = &dense_runs[REPS / 2];

    let mut blocked_runs: Vec<BlockedMatchResult> = (0..REPS)
        .map(|_| engine.run_blocked(&pair.source, &pair.target, &policy))
        .collect();
    blocked_runs.sort_by_key(|r| r.elapsed);
    let blocked = &blocked_runs[REPS / 2];

    // Block-stage thread-scaling curve: 1, 2, and max threads (median of
    // REPS each, keyed by the block stage itself so probe noise in other
    // stages cannot reorder the curve). Engines share the global executor;
    // lanes are capped at pool width − 1 helpers + the caller, so a host
    // with fewer cores than the requested thread count degrades to the
    // serial path instead of oversubscribing (see `harmony_core::exec`).
    let mut thread_points: Vec<usize> = vec![1, 2, detect_threads().max(2)];
    thread_points.dedup();
    // One pre-warmed engine per thread point; rounds interleave the points
    // (1, 2, …, max, then again) so slow drift — CPU frequency wander,
    // cache warmth — lands on every point equally instead of biasing
    // whichever point happened to run in a fast minute. Medians are taken
    // per point across rounds, keyed by the block stage itself.
    let engines: Vec<MatchEngine> = thread_points
        .iter()
        .map(|&n| {
            let engine = MatchEngine::new()
                .with_normalizer(Normalizer::new())
                .with_threads(n);
            // Warm the engine's private feature cache outside the timings.
            let _ = engine.prepare(&pair.source);
            let _ = engine.prepare(&pair.target);
            engine
        })
        .collect();
    let mut samples: Vec<Vec<(std::time::Duration, std::time::Duration)>> =
        vec![Vec::with_capacity(REPS); thread_points.len()];
    for round in 0..REPS {
        // Forward on even rounds, reversed on odd: no point always runs on
        // the freshly-idle (or freshly-warmed) core.
        let order: Vec<usize> = if round % 2 == 0 {
            (0..engines.len()).collect()
        } else {
            (0..engines.len()).rev().collect()
        };
        for point in order {
            let run = engines[point].run_blocked(&pair.source, &pair.target, &policy);
            samples[point].push((run.timings.block, run.elapsed));
        }
    }
    let scaling: Vec<ScalePoint> = thread_points
        .iter()
        .zip(&mut samples)
        .map(|(&n, samples)| {
            samples.sort_by_key(|&(block, _)| block);
            let (block, total) = samples[samples.len() / 2];
            ScalePoint {
                threads: n,
                block_secs: block.as_secs_f64(),
                total_secs: total.as_secs_f64(),
            }
        })
        .collect();

    let dense_secs = dense.elapsed.as_secs_f64();
    let blocked_secs = blocked.elapsed.as_secs_f64();
    let th = Confidence::new(THRESHOLD);

    // Recall of dense above-threshold pairs.
    let dense_above: Vec<(sm_schema::ElementId, sm_schema::ElementId)> = dense
        .matrix
        .iter_above(th)
        .map(|(s, t, _)| (s, t))
        .collect();
    let cand_kept = dense_above
        .iter()
        .filter(|(s, t)| blocked.candidates.contains(s.index(), t.index()))
        .count();
    let score_kept = dense_above
        .iter()
        .filter(|&&(s, t)| blocked.matrix.get(s, t).value() >= th.value())
        .count();
    let candidate_recall = cand_kept as f64 / dense_above.len().max(1) as f64;
    let score_recall = score_kept as f64 / dense_above.len().max(1) as f64;

    // Planted ground-truth recall of the above-threshold sets.
    let truth_total = pair.truth.len().max(1);
    let truth_dense = pair
        .truth
        .pairs()
        .iter()
        .filter(|&&(s, t)| dense.matrix.get(s, t).value() >= th.value())
        .count();
    let truth_blocked = pair
        .truth
        .pairs()
        .iter()
        .filter(|&&(s, t)| blocked.matrix.get(s, t).value() >= th.value())
        .count();

    println!("match scale {rows}×{cols}, {threads} thread(s), threshold {THRESHOLD}");
    println!(
        "dense    {dense_secs:>8.3} s   ({} pairs)",
        dense.pairs_considered
    );
    println!(
        "blocked  {blocked_secs:>8.3} s   ({} pairs scored, {:.1}% of cross product, block stage {:.3}s)",
        blocked.pairs_scored,
        100.0 * blocked.pairs_scored as f64 / blocked.pairs_considered as f64,
        blocked.timings.block.as_secs_f64(),
    );
    println!(
        "speedup  {:>8.1}×   candidate recall {candidate_recall:.4}, score recall {score_recall:.4} over {} dense above-threshold pairs",
        dense_secs / blocked_secs.max(1e-12),
        dense_above.len(),
    );
    println!(
        "ground truth @{THRESHOLD}: dense {truth_dense}/{truth_total}, blocked {truth_blocked}/{truth_total}"
    );
    println!("block-stage thread scaling (median of {REPS}):");
    for p in &scaling {
        println!(
            "  {} thread(s): block {:.4}s  blocked total {:.4}s",
            p.threads, p.block_secs, p.total_secs
        );
    }

    // -------- Part B: repository search latency scaling. ------------------
    println!("\nrepository search (linear scan vs token index):");
    let points: Vec<SearchPoint> = [128usize, 256, 512, 2048, 10240]
        .into_iter()
        .map(repo_search_point)
        .collect();
    for p in &points {
        let linear = p
            .linear_ms
            .map(|ms| format!("{ms:>8.3} ms/query"))
            .unwrap_or_else(|| "   (skipped)   ".to_string());
        println!(
            "  {:>5} schemata: build {:>7.4}s  linear {linear}  indexed {:>8.4} ms/query  p50 {:>7.4}  p99 {:>7.4}",
            p.schemas, p.build_secs, p.indexed_ms, p.indexed_p50_ms, p.indexed_p99_ms
        );
    }
    let size_ratio = points[points.len() - 1].schemas as f64 / points[0].schemas as f64;
    let latency_ratio = points[points.len() - 1].indexed_ms / points[0].indexed_ms.max(1e-12);
    println!(
        "  scaling: repository ×{size_ratio:.1} → indexed query latency ×{latency_ratio:.2} (sub-linear: {})",
        latency_ratio < size_ratio
    );

    // Hand-rolled JSON (the offline serde stand-in has no serializer).
    let search_json: Vec<String> = points
        .iter()
        .map(|p| {
            let linear = p
                .linear_ms
                .map(|ms| format!("{ms:.4}"))
                .unwrap_or_else(|| "null".to_string());
            format!(
                "    {{\"schemas\": {}, \"index_build_secs\": {:.6}, \
                 \"linear_ms_per_query\": {linear}, \"indexed_ms_per_query\": {:.4}, \
                 \"indexed_p50_ms\": {:.4}, \"indexed_p99_ms\": {:.4}}}",
                p.schemas, p.build_secs, p.indexed_ms, p.indexed_p50_ms, p.indexed_p99_ms
            )
        })
        .collect();
    let incremental_json = format!(
        "{{\n    \"schemas\": {}, \"cold_start_secs\": {:.6}, \
         \"full_rebuild_secs\": {:.6},\n    \"insert_refresh_secs\": {:.6}, \
         \"remove_refresh_secs\": {:.6}, \"compact_secs\": {:.6},\n    \
         \"save_secs\": {:.6}, \"warm_start_secs\": {:.6},\n    \
         \"insert_over_rebuild\": {insert_over_rebuild:.6}, \
         \"warm_over_cold\": {warm_over_cold:.6}\n  }}",
        inc.schemas,
        inc.cold_start_secs,
        inc.full_rebuild_secs,
        inc.insert_refresh_secs,
        inc.remove_refresh_secs,
        inc.compact_secs,
        inc.save_secs,
        inc.warm_start_secs,
    );
    let scaling_json: Vec<String> = scaling
        .iter()
        .map(|p| {
            format!(
                "    {{\"threads\": {}, \"block_stage_secs\": {:.6}, \
                 \"blocked_total_secs\": {:.6}}}",
                p.threads, p.block_secs, p.total_secs
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"scale\": {{\"rows\": {rows}, \"cols\": {cols}, \"pairs\": {pairs}}},\n  \
         \"threads\": {threads},\n  \"threshold\": {THRESHOLD},\n  \"reps\": {REPS},\n  \
         \"dense_secs\": {dense_secs:.6},\n  \"blocked_secs\": {blocked_secs:.6},\n  \
         \"blocked_over_dense\": {ratio:.4},\n  \
         \"block_stage_secs\": {block:.6},\n  \
         \"block_scaling\": [\n{scaling}\n  ],\n  \
         \"pairs_scored\": {scored},\n  \"candidate_fraction\": {fraction:.6},\n  \
         \"dense_above_threshold\": {above},\n  \
         \"candidate_recall\": {candidate_recall:.6},\n  \
         \"score_recall\": {score_recall:.6},\n  \
         \"ground_truth\": {{\"planted\": {truth_total}, \"dense_found\": {truth_dense}, \
         \"blocked_found\": {truth_blocked}}},\n  \
         \"repo_search\": [\n{search}\n  ],\n  \
         \"repo_incremental\": {incremental_json},\n  \
         \"repo_scaling\": {{\"size_ratio\": {size_ratio:.2}, \
         \"indexed_latency_ratio\": {latency_ratio:.4}, \
         \"sublinear\": {sublinear}}}\n}}\n",
        pairs = rows * cols,
        ratio = blocked_secs / dense_secs.max(1e-12),
        block = scaling[0].block_secs,
        scaling = scaling_json.join(",\n"),
        scored = blocked.pairs_scored,
        fraction = blocked.pairs_scored as f64 / blocked.pairs_considered.max(1) as f64,
        above = dense_above.len(),
        search = search_json.join(",\n"),
        sublinear = latency_ratio < size_ratio,
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_blocking.json");
    std::fs::write(out, &json).expect("write BENCH_blocking.json");
    println!("\nwrote {out}");
}

//! Regenerate `BENCH_blocking.json`: dense vs blocked matching at the
//! paper's 1378×784 scale, and repository search latency at registry scale.
//!
//! Part A times the dense `MatchEngine::run` against the blocked
//! `MatchEngine::run_blocked` (default [`BlockingPolicy`]) at equal thread
//! count and reports stage timings, the scored-pair fraction, and recall of
//! the blocked run against the dense run's above-threshold pairs and the
//! workload's planted ground truth.
//!
//! Part B registers synthetic repositories of growing size and compares the
//! historical linear scan (per-query IDF table + per-schema signature
//! intersection) against retrieval over the repository token index, showing
//! sub-linear latency growth in repository size.
//!
//! Run with: `cargo run --release -p sm-bench --bin blocking_baseline`

use harmony_core::index::BlockingPolicy;
use harmony_core::prelude::*;
use sm_bench::{case_study, header};
use sm_enterprise::{MetadataRepository, SchemaSearch};
use sm_schema::{Schema, SchemaId};
use sm_synth::{RepositoryConfig, SyntheticRepository};
use sm_text::normalize::Normalizer;
use std::collections::{HashMap, HashSet};
use std::time::Instant;

/// The operating threshold used across experiments.
const THRESHOLD: f64 = 0.30;

/// The historical linear scan: rebuild the IDF weight table per query and
/// intersect the query signature with *every* registered schema. Kept here
/// as the measured baseline the token index replaces.
struct LinearScan {
    signatures: Vec<(SchemaId, HashSet<String>)>,
    schema_freq: HashMap<String, usize>,
}

impl LinearScan {
    fn build(repo: &MetadataRepository) -> Self {
        let mut signatures = Vec::new();
        let mut schema_freq: HashMap<String, usize> = HashMap::new();
        for p in repo.prepare_all() {
            let sig = p.signature().clone();
            for t in &sig {
                *schema_freq.entry(t.clone()).or_insert(0) += 1;
            }
            signatures.push((p.schema_id, sig));
        }
        LinearScan {
            signatures,
            schema_freq,
        }
    }

    fn query(
        &self,
        query_sig: &HashSet<String>,
        query_id: SchemaId,
        limit: usize,
    ) -> Vec<SchemaId> {
        let n = self.signatures.len().max(1) as f64;
        // Per-query weight table over the whole repository vocabulary —
        // the work SchemaSearch used to redo on every call.
        let weights: HashMap<&str, f64> = self
            .schema_freq
            .iter()
            .map(|(t, &df)| (t.as_str(), ((n + 1.0) / (df as f64 + 1.0)).ln() + 1.0))
            .collect();
        let weight = |t: &str| weights.get(t).copied().unwrap_or((n + 1.0).ln() + 1.0);
        let sum = |sig: &HashSet<String>| -> f64 {
            let mut ts: Vec<&str> = sig.iter().map(String::as_str).collect();
            ts.sort_unstable();
            ts.into_iter().map(weight).sum()
        };
        let q_weight = sum(query_sig);
        let mut hits: Vec<(SchemaId, f64)> = self
            .signatures
            .iter()
            .filter(|(id, _)| *id != query_id)
            .filter_map(|(id, sig)| {
                let mut shared: Vec<&str> =
                    query_sig.intersection(sig).map(String::as_str).collect();
                if shared.is_empty() {
                    return None;
                }
                shared.sort_unstable();
                let shared_weight: f64 = shared.into_iter().map(weight).sum();
                let total = sum(sig);
                Some((*id, shared_weight / (q_weight + total - shared_weight)))
            })
            .collect();
        hits.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        hits.truncate(limit);
        hits.into_iter().map(|(id, _)| id).collect()
    }
}

struct SearchPoint {
    schemas: usize,
    build_secs: f64,
    linear_ms: f64,
    indexed_ms: f64,
}

fn repo_search_point(size: usize) -> SearchPoint {
    assert!(size % 8 == 0);
    let population = SyntheticRepository::generate(&RepositoryConfig {
        seed: 1234 + size as u64,
        domains: size / 8,
        schemas_per_domain: 8,
        concepts_per_domain: 20,
        concept_coverage: 0.5,
        attrs_per_concept: (4, 9),
    });
    let mut repo = MetadataRepository::new();
    for s in &population.schemas {
        repo.register_schema(s.clone());
    }

    let t0 = Instant::now();
    let _index = repo.token_index();
    let build_secs = t0.elapsed().as_secs_f64();

    let queries: Vec<&Schema> = population.schemas.iter().step_by(8).collect();
    let search = SchemaSearch::build(&repo);
    let linear = LinearScan::build(&repo);
    let query_sigs: Vec<(SchemaId, HashSet<String>)> = queries
        .iter()
        .map(|q| {
            (
                q.id,
                harmony_core::prepare::FeatureCache::global()
                    .prepare(q)
                    .signature()
                    .clone(),
            )
        })
        .collect();

    // Agreement check (outside the timed loops): identical rankings.
    for ((id, sig), q) in query_sigs.iter().zip(&queries) {
        let lin: Vec<SchemaId> = linear.query(sig, *id, 5);
        let idx: Vec<SchemaId> = search
            .query(q, 5)
            .into_iter()
            .map(|h| h.schema_id)
            .collect();
        assert_eq!(lin, idx, "index retrieval diverged from the linear scan");
    }

    let t0 = Instant::now();
    for (id, sig) in &query_sigs {
        std::hint::black_box(linear.query(sig, *id, 10));
    }
    let linear_ms = t0.elapsed().as_secs_f64() * 1e3 / queries.len() as f64;

    let t0 = Instant::now();
    for q in &queries {
        std::hint::black_box(search.query(q, 10));
    }
    let indexed_ms = t0.elapsed().as_secs_f64() * 1e3 / queries.len() as f64;

    SearchPoint {
        schemas: size,
        build_secs,
        linear_ms,
        indexed_ms,
    }
}

/// One point of the block-stage thread-scaling curve.
struct ScalePoint {
    threads: usize,
    block_secs: f64,
    total_secs: f64,
}

fn main() {
    header(
        "blocking_baseline",
        "dense vs token-blocked matching at 1378×784 + sub-linear repository search",
    );

    // -------- Part A: dense vs blocked at paper scale, equal threads. -----
    let pair = case_study(1.0);
    let rows = pair.source.len();
    let cols = pair.target.len();
    let threads = 1usize;
    let engine = MatchEngine::new()
        .with_normalizer(Normalizer::new())
        .with_threads(threads);
    let policy = BlockingPolicy::default();

    const REPS: usize = 5;
    let mut dense_runs: Vec<MatchResult> = (0..REPS)
        .map(|_| engine.run(&pair.source, &pair.target))
        .collect();
    dense_runs.sort_by_key(|r| r.elapsed);
    let dense = &dense_runs[REPS / 2];

    let mut blocked_runs: Vec<BlockedMatchResult> = (0..REPS)
        .map(|_| engine.run_blocked(&pair.source, &pair.target, &policy))
        .collect();
    blocked_runs.sort_by_key(|r| r.elapsed);
    let blocked = &blocked_runs[REPS / 2];

    // Block-stage thread-scaling curve: 1, 2, and max threads (median of
    // REPS each, keyed by the block stage itself so probe noise in other
    // stages cannot reorder the curve). Engines share the global executor;
    // lanes are capped at pool width − 1 helpers + the caller, so a host
    // with fewer cores than the requested thread count degrades to the
    // serial path instead of oversubscribing (see `harmony_core::exec`).
    let mut thread_points: Vec<usize> = vec![1, 2, detect_threads().max(2)];
    thread_points.dedup();
    // One pre-warmed engine per thread point; rounds interleave the points
    // (1, 2, …, max, then again) so slow drift — CPU frequency wander,
    // cache warmth — lands on every point equally instead of biasing
    // whichever point happened to run in a fast minute. Medians are taken
    // per point across rounds, keyed by the block stage itself.
    let engines: Vec<MatchEngine> = thread_points
        .iter()
        .map(|&n| {
            let engine = MatchEngine::new()
                .with_normalizer(Normalizer::new())
                .with_threads(n);
            // Warm the engine's private feature cache outside the timings.
            let _ = engine.prepare(&pair.source);
            let _ = engine.prepare(&pair.target);
            engine
        })
        .collect();
    let mut samples: Vec<Vec<(std::time::Duration, std::time::Duration)>> =
        vec![Vec::with_capacity(REPS); thread_points.len()];
    for round in 0..REPS {
        // Forward on even rounds, reversed on odd: no point always runs on
        // the freshly-idle (or freshly-warmed) core.
        let order: Vec<usize> = if round % 2 == 0 {
            (0..engines.len()).collect()
        } else {
            (0..engines.len()).rev().collect()
        };
        for point in order {
            let run = engines[point].run_blocked(&pair.source, &pair.target, &policy);
            samples[point].push((run.timings.block, run.elapsed));
        }
    }
    let scaling: Vec<ScalePoint> = thread_points
        .iter()
        .zip(&mut samples)
        .map(|(&n, samples)| {
            samples.sort_by_key(|&(block, _)| block);
            let (block, total) = samples[samples.len() / 2];
            ScalePoint {
                threads: n,
                block_secs: block.as_secs_f64(),
                total_secs: total.as_secs_f64(),
            }
        })
        .collect();

    let dense_secs = dense.elapsed.as_secs_f64();
    let blocked_secs = blocked.elapsed.as_secs_f64();
    let th = Confidence::new(THRESHOLD);

    // Recall of dense above-threshold pairs.
    let dense_above: Vec<(sm_schema::ElementId, sm_schema::ElementId)> = dense
        .matrix
        .iter_above(th)
        .map(|(s, t, _)| (s, t))
        .collect();
    let cand_kept = dense_above
        .iter()
        .filter(|(s, t)| blocked.candidates.contains(s.index(), t.index()))
        .count();
    let score_kept = dense_above
        .iter()
        .filter(|&&(s, t)| blocked.matrix.get(s, t).value() >= th.value())
        .count();
    let candidate_recall = cand_kept as f64 / dense_above.len().max(1) as f64;
    let score_recall = score_kept as f64 / dense_above.len().max(1) as f64;

    // Planted ground-truth recall of the above-threshold sets.
    let truth_total = pair.truth.len().max(1);
    let truth_dense = pair
        .truth
        .pairs()
        .iter()
        .filter(|&&(s, t)| dense.matrix.get(s, t).value() >= th.value())
        .count();
    let truth_blocked = pair
        .truth
        .pairs()
        .iter()
        .filter(|&&(s, t)| blocked.matrix.get(s, t).value() >= th.value())
        .count();

    println!("match scale {rows}×{cols}, {threads} thread(s), threshold {THRESHOLD}");
    println!(
        "dense    {dense_secs:>8.3} s   ({} pairs)",
        dense.pairs_considered
    );
    println!(
        "blocked  {blocked_secs:>8.3} s   ({} pairs scored, {:.1}% of cross product, block stage {:.3}s)",
        blocked.pairs_scored,
        100.0 * blocked.pairs_scored as f64 / blocked.pairs_considered as f64,
        blocked.timings.block.as_secs_f64(),
    );
    println!(
        "speedup  {:>8.1}×   candidate recall {candidate_recall:.4}, score recall {score_recall:.4} over {} dense above-threshold pairs",
        dense_secs / blocked_secs.max(1e-12),
        dense_above.len(),
    );
    println!(
        "ground truth @{THRESHOLD}: dense {truth_dense}/{truth_total}, blocked {truth_blocked}/{truth_total}"
    );
    println!("block-stage thread scaling (median of {REPS}):");
    for p in &scaling {
        println!(
            "  {} thread(s): block {:.4}s  blocked total {:.4}s",
            p.threads, p.block_secs, p.total_secs
        );
    }

    // -------- Part B: repository search latency scaling. ------------------
    println!("\nrepository search (linear scan vs token index):");
    let points: Vec<SearchPoint> = [128usize, 256, 512]
        .into_iter()
        .map(repo_search_point)
        .collect();
    for p in &points {
        println!(
            "  {:>4} schemata: build {:>7.4}s  linear {:>8.3} ms/query  indexed {:>8.3} ms/query",
            p.schemas, p.build_secs, p.linear_ms, p.indexed_ms
        );
    }
    let size_ratio = points[points.len() - 1].schemas as f64 / points[0].schemas as f64;
    let latency_ratio = points[points.len() - 1].indexed_ms / points[0].indexed_ms.max(1e-12);
    println!(
        "  scaling: repository ×{size_ratio:.1} → indexed query latency ×{latency_ratio:.2} (sub-linear: {})",
        latency_ratio < size_ratio
    );

    // Hand-rolled JSON (the offline serde stand-in has no serializer).
    let search_json: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"schemas\": {}, \"index_build_secs\": {:.6}, \
                 \"linear_ms_per_query\": {:.4}, \"indexed_ms_per_query\": {:.4}}}",
                p.schemas, p.build_secs, p.linear_ms, p.indexed_ms
            )
        })
        .collect();
    let scaling_json: Vec<String> = scaling
        .iter()
        .map(|p| {
            format!(
                "    {{\"threads\": {}, \"block_stage_secs\": {:.6}, \
                 \"blocked_total_secs\": {:.6}}}",
                p.threads, p.block_secs, p.total_secs
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"scale\": {{\"rows\": {rows}, \"cols\": {cols}, \"pairs\": {pairs}}},\n  \
         \"threads\": {threads},\n  \"threshold\": {THRESHOLD},\n  \"reps\": {REPS},\n  \
         \"dense_secs\": {dense_secs:.6},\n  \"blocked_secs\": {blocked_secs:.6},\n  \
         \"blocked_over_dense\": {ratio:.4},\n  \
         \"block_stage_secs\": {block:.6},\n  \
         \"block_scaling\": [\n{scaling}\n  ],\n  \
         \"pairs_scored\": {scored},\n  \"candidate_fraction\": {fraction:.6},\n  \
         \"dense_above_threshold\": {above},\n  \
         \"candidate_recall\": {candidate_recall:.6},\n  \
         \"score_recall\": {score_recall:.6},\n  \
         \"ground_truth\": {{\"planted\": {truth_total}, \"dense_found\": {truth_dense}, \
         \"blocked_found\": {truth_blocked}}},\n  \
         \"repo_search\": [\n{search}\n  ],\n  \
         \"repo_scaling\": {{\"size_ratio\": {size_ratio:.2}, \
         \"indexed_latency_ratio\": {latency_ratio:.4}, \
         \"sublinear\": {sublinear}}}\n}}\n",
        pairs = rows * cols,
        ratio = blocked_secs / dense_secs.max(1e-12),
        block = scaling[0].block_secs,
        scaling = scaling_json.join(",\n"),
        scored = blocked.pairs_scored,
        fraction = blocked.pairs_scored as f64 / blocked.pairs_considered.max(1) as f64,
        above = dense_above.len(),
        search = search_json.join(",\n"),
        sublinear = latency_ratio < size_ratio,
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_blocking.json");
    std::fs::write(out, &json).expect("write BENCH_blocking.json");
    println!("\nwrote {out}");
}

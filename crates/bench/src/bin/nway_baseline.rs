//! Regenerate `BENCH_nway.json`: sequential-dense vs batch-blocked N-way
//! pairwise population, at the paper's 5-schema vocabulary arity and at a
//! 12-schema consolidation arity.
//!
//! The sequential-dense side reproduces the pre-batch `populate_pairwise`
//! loop verbatim: one dense `run_select` per unordered pair, each run
//! spawning its own Score/Merge workers and paying the full cross product.
//! The batch-blocked side is the production path: one `BatchPlanner` plan
//! (every schema prepared and token-indexed once), candidates from the
//! shared index under the default blocking policy, and all pairs executed
//! concurrently on the persistent executor. Both sides select one-to-one
//! correspondences at the same threshold; the bench asserts the *selected
//! pair sets are identical* (the blocking-recall property at work), so the
//! wall-clock ratio is measured at equal recall by construction.
//!
//! `ci.sh` gates on the 12-schema ratio: batch-blocked must finish in at
//! most 50% of the sequential-dense wall clock.
//!
//! The equal-selections gate deliberately runs with the score cascade's
//! floor *off* (matching the historical dense loop exactly). A third,
//! reporting-only configuration per arity runs the batch with the cascade
//! enabled at the 0.30 floor and records its tier-1 skip rate and
//! tier-split Score timings in the JSON; its losslessness relative to a
//! same-floor full panel is pinned separately in `tests/cascade_pin.rs`.
//!
//! Run with: `cargo run --release -p sm-bench --bin nway_baseline`

use harmony_core::prelude::*;
use sm_bench::header;
use sm_schema::Schema;
use sm_synth::{RepositoryConfig, SyntheticRepository};
use sm_text::normalize::Normalizer;
use std::time::Instant;

/// The operating threshold used across experiments.
const THRESHOLD: f64 = 0.35;
/// Operating threshold of the N=100 planning tier. Higher than the small
/// arities' 0.35: at registry scale the acceptance bar is "worth an
/// engineer's review", and the scoped clustered corpus is built so that
/// cross-domain pairs never clear it (which is what makes overlap pruning
/// lossless there).
const N100_THRESHOLD: f64 = 0.6;
/// Overlap-bound cut of the N=100 `OverlapThreshold` plan. Tuned on the
/// scoped clustered corpus (seed 2031): cross-domain pairs share only
/// generic staple tokens (`identifier`, `name`, …, IDF ≈ 1 each at df ≈ N)
/// while same-domain pairs share concept names and concept-scoped
/// attributes at far higher IDF mass. The bench reports achieved recall
/// against the exhaustive reference, and ci.sh gates it at exactly 1.0 —
/// the cut is validated on every regeneration, not trusted.
const N100_MIN_WEIGHT: f64 = 45.0;
/// Score floor for the reporting-only cascade configuration (the same
/// 0.30 operating floor `pipeline_baseline` benches the cascade at).
const CASCADE_FLOOR: f64 = 0.30;
const REPS: usize = 3;

/// One unordered pair's selected correspondences, as comparable tuples.
type SelectedPairs = Vec<(u32, u32)>;

fn selected_tuples(set: &MatchSet) -> SelectedPairs {
    let mut pairs: SelectedPairs = set.all().iter().map(|c| (c.source.0, c.target.0)).collect();
    pairs.sort_unstable();
    pairs
}

/// The pre-batch behavior, verbatim: a sequential loop of dense
/// `run_select` calls over every unordered pair.
fn sequential_dense(
    engine: &MatchEngine,
    schemas: &[&Schema],
    selection: &Selection,
) -> (f64, Vec<SelectedPairs>) {
    let t0 = Instant::now();
    let mut selections = Vec::new();
    for i in 0..schemas.len() {
        for j in (i + 1)..schemas.len() {
            let (_, selected) = engine
                .pipeline()
                .run_select(schemas[i], schemas[j], selection);
            selections.push(selected_tuples(&selected));
        }
    }
    (t0.elapsed().as_secs_f64(), selections)
}

struct BatchMeasurement {
    total_secs: f64,
    plan_secs: f64,
    pairs_scored: usize,
    cross_product: usize,
    selections: Vec<SelectedPairs>,
}

/// The production path: one plan, one shared index, all pairs concurrent,
/// selection-only execution (matrices drop inside the jobs).
fn batch_blocked(
    engine: &MatchEngine,
    schemas: &[&Schema],
    selection: &Selection,
) -> BatchMeasurement {
    let t0 = Instant::now();
    let batch = engine.batch().plan_all_pairs(schemas);
    let result = batch.run_select_only(selection);
    let total_secs = t0.elapsed().as_secs_f64();
    BatchMeasurement {
        total_secs,
        plan_secs: batch.plan_time().as_secs_f64(),
        pairs_scored: result.pairs_scored(),
        cross_product: result.pairs_considered(),
        selections: result
            .pairs
            .iter()
            .map(|p| selected_tuples(&p.selected))
            .collect(),
    }
}

/// Reporting-only numbers from the cascade-enabled batch configuration.
struct CascadeReport {
    score_secs: f64,
    tier1_secs: f64,
    tier2_secs: f64,
    pairs_pruned: u64,
    pairs_full: u64,
    /// Whether the floored cascade run selected the very same pairs the
    /// floor-off dense loop did (informational — flooring below the
    /// selection threshold can in principle shift propagation blends; see
    /// DESIGN.md "Why floored N-way selections may diverge").
    selections_match_unfloored: bool,
    /// How many of the unordered pairs diverged from the floor-off dense
    /// loop. Zero when `selections_match_unfloored` — otherwise a measure
    /// of how borderline the divergence is.
    diverging_pairs: usize,
}

/// Median-by-score cascade batch run; selections compared against the
/// dense loop's for the informational flag.
fn cascade_blocked(
    engine: &MatchEngine,
    schemas: &[&Schema],
    selection: &Selection,
    dense_selections: &[SelectedPairs],
) -> CascadeReport {
    let mut runs: Vec<_> = (0..REPS)
        .map(|_| {
            engine
                .batch()
                .plan_all_pairs(schemas)
                .run_select_only(selection)
        })
        .collect();
    runs.sort_by(|a, b| {
        a.timings
            .score
            .partial_cmp(&b.timings.score)
            .expect("total order")
    });
    let run = runs.swap_remove(REPS / 2);
    let selections: Vec<SelectedPairs> = run
        .pairs
        .iter()
        .map(|p| selected_tuples(&p.selected))
        .collect();
    let diverging_pairs = selections
        .iter()
        .zip(dense_selections)
        .filter(|(a, b)| a != b)
        .count();
    CascadeReport {
        score_secs: run.timings.score.as_secs_f64(),
        tier1_secs: run.timings.score_tier1.as_secs_f64(),
        tier2_secs: run.timings.score_tier2.as_secs_f64(),
        pairs_pruned: run.timings.pairs_pruned,
        pairs_full: run.timings.pairs_full,
        selections_match_unfloored: selections == dense_selections,
        diverging_pairs,
    }
}

struct ArityPoint {
    label: &'static str,
    schemas: usize,
    pairs: usize,
    elements: usize,
    cross_product: usize,
    pairs_scored: usize,
    dense_secs: f64,
    batch_secs: f64,
    plan_secs: f64,
    equal_selections: bool,
    cascade: CascadeReport,
}

fn measure(
    label: &'static str,
    n: usize,
    seed: u64,
    engine: &MatchEngine,
    cascade_engine: &MatchEngine,
) -> ArityPoint {
    let population = SyntheticRepository::generate(&RepositoryConfig {
        seed,
        domains: 1,
        schemas_per_domain: n,
        concepts_per_domain: 48,
        concept_coverage: 0.7,
        attrs_per_concept: (5, 9),
        ..Default::default()
    });
    let schemas: Vec<&Schema> = population.schemas.iter().collect();
    let elements: usize = schemas.iter().map(|s| s.len()).sum();
    let selection = Selection::OneToOne {
        min: Confidence::new(THRESHOLD),
    };

    // Warm the feature cache once so both sides measure execution, not
    // first-touch preparation (both amortize it identically in steady
    // state; the batch additionally amortizes the index builds, which stay
    // in the measurement as part of its Plan stage).
    for s in &schemas {
        let _ = engine.prepare(s);
    }

    let mut dense_runs: Vec<(f64, Vec<SelectedPairs>)> = (0..REPS)
        .map(|_| sequential_dense(engine, &schemas, &selection))
        .collect();
    dense_runs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
    let (dense_secs, dense_selections) = dense_runs.swap_remove(REPS / 2);

    let mut batch_runs: Vec<BatchMeasurement> = (0..REPS)
        .map(|_| batch_blocked(engine, &schemas, &selection))
        .collect();
    batch_runs.sort_by(|a, b| a.total_secs.partial_cmp(&b.total_secs).expect("finite"));
    let batch = batch_runs.swap_remove(REPS / 2);

    // Reporting-only: the cascade engine re-prepares inside its own plan
    // (its cache is distinct), but the Score-stage timings and tier
    // counters it emits are unaffected by that.
    let cascade = cascade_blocked(cascade_engine, &schemas, &selection, &dense_selections);

    let equal_selections = dense_selections == batch.selections;
    ArityPoint {
        label,
        schemas: n,
        pairs: n * (n - 1) / 2,
        elements,
        cross_product: batch.cross_product,
        pairs_scored: batch.pairs_scored,
        dense_secs,
        batch_secs: batch.total_secs,
        plan_secs: batch.plan_secs,
        equal_selections,
        cascade,
    }
}

fn point_json(p: &ArityPoint) -> String {
    format!(
        "\"{label}\": {{\n    \"schemas\": {schemas},\n    \"pairs\": {pairs},\n    \
         \"elements\": {elements},\n    \"cross_product\": {cross},\n    \
         \"pairs_scored\": {scored},\n    \"scored_fraction\": {fraction:.6},\n    \
         \"sequential_dense_secs\": {dense:.6},\n    \"batch_blocked_secs\": {batch:.6},\n    \
         \"batch_plan_secs\": {plan:.6},\n    \"ratio\": {ratio:.6},\n    \
         \"equal_selections\": {equal},\n    \
         \"cascade\": {{\n      \"floor\": {CASCADE_FLOOR},\n      \
         \"score_secs\": {cscore:.6},\n      \"score_tier1_secs\": {ct1:.6},\n      \
         \"score_tier2_secs\": {ct2:.6},\n      \"pairs_pruned\": {cpruned},\n      \
         \"pairs_full\": {cfull},\n      \"tier1_skip_rate\": {cskip:.6},\n      \
         \"selections_match_unfloored\": {cmatch},\n      \
         \"diverging_pairs\": {cdiverge}\n    }}\n  }}",
        label = p.label,
        schemas = p.schemas,
        pairs = p.pairs,
        elements = p.elements,
        cross = p.cross_product,
        scored = p.pairs_scored,
        fraction = p.pairs_scored as f64 / p.cross_product.max(1) as f64,
        dense = p.dense_secs,
        batch = p.batch_secs,
        plan = p.plan_secs,
        ratio = p.batch_secs / p.dense_secs.max(1e-12),
        equal = p.equal_selections,
        cscore = p.cascade.score_secs,
        ct1 = p.cascade.tier1_secs,
        ct2 = p.cascade.tier2_secs,
        cpruned = p.cascade.pairs_pruned,
        cfull = p.cascade.pairs_full,
        cskip = p.cascade.pairs_pruned as f64
            / (p.cascade.pairs_pruned + p.cascade.pairs_full).max(1) as f64,
        cmatch = p.cascade.selections_match_unfloored,
        cdiverge = p.cascade.diverging_pairs,
    )
}

/// The N=100 planning tier.
struct N100Point {
    schemas: usize,
    pairs: usize,
    elements: usize,
    planned_pairs: usize,
    pruned_pairs: usize,
    planned_fraction: f64,
    exhaustive_secs: f64,
    pruned_secs: f64,
    ratio_vs_exhaustive: f64,
    exhaustive_selected: usize,
    recall: f64,
    plan_estimate_secs: f64,
    plan_schedule_secs: f64,
    addone_secs: f64,
    full_replan_secs: f64,
    addone_over_replan: f64,
}

/// The scoped clustered registry corpus: 10 latent domains × 10 schemata.
/// `scoped_attributes` prefixes every attribute with its concept's head
/// token and drops generated prose, so cross-domain pairs share only the
/// ubiquitous staple vocabulary — the regime where plan-stage overlap
/// pruning can be lossless at an enterprise acceptance threshold.
fn n100_corpus() -> SyntheticRepository {
    SyntheticRepository::generate(&RepositoryConfig {
        seed: 2031,
        domains: 10,
        schemas_per_domain: 10,
        concepts_per_domain: 12,
        concept_coverage: 0.65,
        attrs_per_concept: (3, 6),
        scoped_attributes: true,
    })
}

/// Non-empty selections of a batch run, keyed by schema-slot pair.
fn keyed_selections(
    result: &harmony_core::batch::BatchSelectResult,
) -> std::collections::HashMap<(usize, usize), SelectedPairs> {
    result
        .pairs
        .iter()
        .map(|p| ((p.left, p.right), selected_tuples(&p.selected)))
        .filter(|(_, sel)| !sel.is_empty())
        .collect()
}

/// Exhaustive-plan vs `OverlapThreshold`-plan batch population at N=100,
/// interleaved in the same run (the PR 5/6 drift convention), plus the
/// incremental add-one consolidation against a full replan.
fn measure_n100(engine: &MatchEngine) -> N100Point {
    let population = n100_corpus();
    let schemas: Vec<&Schema> = population.schemas.iter().collect();
    let n = schemas.len();
    let elements: usize = schemas.iter().map(|s| s.len()).sum();
    let selection = Selection::OneToOne {
        min: Confidence::new(N100_THRESHOLD),
    };
    let policy = PlanPolicy::OverlapThreshold {
        min_weight: N100_MIN_WEIGHT,
    };
    for s in &schemas {
        let _ = engine.prepare(s);
    }

    // Interleaved reps: each round runs the exhaustive plan and the pruned
    // plan back to back, so the wall-clock ratio is immune to host drift.
    let mut ex_secs = Vec::with_capacity(REPS);
    let mut pr_secs = Vec::with_capacity(REPS);
    let mut ex_map = std::collections::HashMap::new();
    let mut pr_map = std::collections::HashMap::new();
    let mut planned_pairs = 0usize;
    let mut pruned_pairs = 0usize;
    let mut plan_estimate_secs = 0.0f64;
    let mut plan_schedule_secs = 0.0f64;
    for rep in 0..REPS {
        let t = Instant::now();
        let ex = engine
            .batch()
            .plan_all_pairs(&schemas)
            .run_select_only(&selection);
        ex_secs.push(t.elapsed().as_secs_f64());

        let t = Instant::now();
        let batch = engine
            .batch()
            .with_plan_policy(policy)
            .plan_all_pairs(&schemas);
        let breakdown = batch.plan_breakdown();
        let planned = batch.requests().len();
        let pruned = batch.pruned().len();
        let pr = batch.run_select_only(&selection);
        pr_secs.push(t.elapsed().as_secs_f64());

        if rep == 0 {
            // Selections and the plan are deterministic across reps; only
            // wall clocks vary.
            ex_map = keyed_selections(&ex);
            pr_map = keyed_selections(&pr);
            planned_pairs = planned;
            pruned_pairs = pruned;
            plan_estimate_secs = breakdown.estimate.as_secs_f64();
            plan_schedule_secs = breakdown.schedule.as_secs_f64();
        }
    }
    ex_secs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    pr_secs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let exhaustive_secs = ex_secs[REPS / 2];
    let pruned_secs = pr_secs[REPS / 2];

    // Selection recall of the pruned plan against the exhaustive reference:
    // every exhaustively selected correspondence must reappear.
    let exhaustive_selected: usize = ex_map.values().map(Vec::len).sum();
    let found: usize = ex_map
        .iter()
        .map(|(k, sel)| match pr_map.get(k) {
            Some(kept) => sel.iter().filter(|t| kept.contains(t)).count(),
            None => 0,
        })
        .sum();
    let recall = if exhaustive_selected == 0 {
        1.0
    } else {
        found as f64 / exhaustive_selected as f64
    };

    // Incremental add-one vs a full replan, both under the same pruned
    // policy, interleaved like the batch sides above.
    let blocking = BlockingPolicy::default();
    let threshold = Confidence::new(N100_THRESHOLD);
    let mut replan_secs = Vec::with_capacity(REPS);
    let mut addone_secs = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let mut full = NWayMatch::new(schemas.clone());
        let t = Instant::now();
        let _ = full.populate_planned(engine, &blocking, policy, threshold, "bench");
        replan_secs.push(t.elapsed().as_secs_f64());

        let mut standing = NWayMatch::new(schemas[..n - 1].to_vec());
        let _ = standing.populate_planned(engine, &blocking, policy, threshold, "bench");
        let t = Instant::now();
        standing.add_schema(schemas[n - 1]);
        let _ = standing.populate_incremental(engine, "bench");
        addone_secs.push(t.elapsed().as_secs_f64());
    }
    replan_secs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    addone_secs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let full_replan_secs = replan_secs[REPS / 2];
    let addone = addone_secs[REPS / 2];

    let pairs = n * (n - 1) / 2;
    N100Point {
        schemas: n,
        pairs,
        elements,
        planned_pairs,
        pruned_pairs,
        planned_fraction: planned_pairs as f64 / pairs.max(1) as f64,
        exhaustive_secs,
        pruned_secs,
        ratio_vs_exhaustive: pruned_secs / exhaustive_secs.max(1e-12),
        exhaustive_selected,
        recall,
        plan_estimate_secs,
        plan_schedule_secs,
        addone_secs: addone,
        full_replan_secs,
        addone_over_replan: addone / full_replan_secs.max(1e-12),
    }
}

fn n100_json(p: &N100Point) -> String {
    format!(
        "\"n100\": {{\n    \"schemas\": {schemas},\n    \"pairs\": {pairs},\n    \
         \"elements\": {elements},\n    \"threshold\": {N100_THRESHOLD},\n    \
         \"min_weight\": {N100_MIN_WEIGHT},\n    \
         \"planned_pairs\": {planned},\n    \"pruned_pairs\": {pruned},\n    \
         \"planned_fraction\": {fraction:.6},\n    \
         \"exhaustive_secs\": {ex:.6},\n    \"pruned_secs\": {pr:.6},\n    \
         \"ratio_vs_exhaustive\": {ratio:.6},\n    \
         \"exhaustive_selected\": {selected},\n    \"recall\": {recall:.6},\n    \
         \"plan_estimate_secs\": {pest:.6},\n    \"plan_schedule_secs\": {psch:.6},\n    \
         \"addone_secs\": {addone:.6},\n    \"full_replan_secs\": {replan:.6},\n    \
         \"addone_over_replan\": {aratio:.6}\n  }}",
        schemas = p.schemas,
        pairs = p.pairs,
        elements = p.elements,
        planned = p.planned_pairs,
        pruned = p.pruned_pairs,
        fraction = p.planned_fraction,
        ex = p.exhaustive_secs,
        pr = p.pruned_secs,
        ratio = p.ratio_vs_exhaustive,
        selected = p.exhaustive_selected,
        recall = p.recall,
        pest = p.plan_estimate_secs,
        psch = p.plan_schedule_secs,
        addone = p.addone_secs,
        replan = p.full_replan_secs,
        aratio = p.addone_over_replan,
    )
}

/// `--trace` mode: one instrumented cascade batch population at the
/// 5-schema arity (all 10 unordered pairs on a private ≥2-wide executor),
/// exported as chrome-trace + report JSON — the per-pair-job view that
/// complements `pipeline_baseline --trace`'s per-stage view.
fn run_trace(req: &sm_bench::TraceRequest) {
    header(
        "nway_baseline --trace",
        "one instrumented 5-schema batch-blocked population",
    );
    let population = SyntheticRepository::generate(&RepositoryConfig {
        seed: 2010,
        domains: 1,
        schemas_per_domain: 5,
        concepts_per_domain: 48,
        concept_coverage: 0.7,
        attrs_per_concept: (5, 9),
        ..Default::default()
    });
    let schemas: Vec<&Schema> = population.schemas.iter().collect();
    let threads = detect_threads().max(2);
    let engine = MatchEngine::new()
        .with_normalizer(Normalizer::new())
        .with_threads(threads)
        .with_score_floor(Some(CASCADE_FLOOR))
        .with_executor(std::sync::Arc::new(Executor::new(threads)));
    let selection = Selection::OneToOne {
        min: Confidence::new(THRESHOLD),
    };
    harmony_core::obs::reset();
    harmony_core::obs::ObsConfig::default().apply();
    let result = engine
        .batch()
        .plan_all_pairs(&schemas)
        .run_select_only(&selection);
    println!(
        "batch ({threads} thr): {} pair jobs, {} candidate pairs scored",
        result.pairs.len(),
        result.pairs_scored(),
    );
    sm_bench::write_trace(req);
}

fn main() {
    if let Some(req) = sm_bench::trace_request(
        "nway_baseline",
        "one 5-schema batch-blocked population, all pairs concurrent",
    ) {
        run_trace(&req);
        return;
    }
    header(
        "nway_baseline",
        "sequential-dense vs batch-blocked pairwise population at 5-schema and 12-schema arity",
    );
    let threads = detect_threads();
    let engine = MatchEngine::new()
        .with_normalizer(Normalizer::new())
        .with_threads(threads);
    let cascade_engine = MatchEngine::new()
        .with_normalizer(Normalizer::new())
        .with_threads(threads)
        .with_score_floor(Some(CASCADE_FLOOR));
    println!(
        "threads: {threads}, threshold: {THRESHOLD}, reps: {REPS} (median), \
         cascade floor (reporting run): {CASCADE_FLOOR}\n"
    );

    let points = [
        measure("five_schema", 5, 2010, &engine, &cascade_engine),
        measure("twelve_schema", 12, 2021, &engine, &cascade_engine),
    ];
    for p in &points {
        println!(
            "{:<14} {} schemata / {} pairs / {} elements: dense {:>8.3}s  batch {:>8.3}s \
             (plan {:.3}s)  ratio {:.3}  scored {:.1}%  equal selections: {}",
            p.label,
            p.schemas,
            p.pairs,
            p.elements,
            p.dense_secs,
            p.batch_secs,
            p.plan_secs,
            p.batch_secs / p.dense_secs.max(1e-12),
            100.0 * p.pairs_scored as f64 / p.cross_product.max(1) as f64,
            p.equal_selections,
        );
        println!(
            "{:<14} cascade (floor {CASCADE_FLOOR}): score {:.4}s (tier1 {:.4}s + tier2 {:.4}s), \
             {} of {} pairs pruned ({:.1}%), selections match unfloored: {}",
            "",
            p.cascade.score_secs,
            p.cascade.tier1_secs,
            p.cascade.tier2_secs,
            p.cascade.pairs_pruned,
            p.cascade.pairs_pruned + p.cascade.pairs_full,
            100.0 * p.cascade.pairs_pruned as f64
                / (p.cascade.pairs_pruned + p.cascade.pairs_full).max(1) as f64,
            p.cascade.selections_match_unfloored,
        );
        assert!(
            p.equal_selections,
            "{}: batch-blocked selections diverged from the dense loop",
            p.label
        );
    }

    let n100 = measure_n100(&engine);
    println!(
        "{:<14} {} schemata / {} pairs: exhaustive {:>8.3}s  pruned {:>8.3}s  \
         ratio {:.3}  planned {}/{} ({:.1}%)  recall {:.4} over {} selected",
        "n100",
        n100.schemas,
        n100.pairs,
        n100.exhaustive_secs,
        n100.pruned_secs,
        n100.ratio_vs_exhaustive,
        n100.planned_pairs,
        n100.pairs,
        100.0 * n100.planned_fraction,
        n100.recall,
        n100.exhaustive_selected,
    );
    println!(
        "{:<14} plan split: estimate {:.4}s schedule {:.4}s; incremental add-one {:.3}s \
         vs full replan {:.3}s (ratio {:.3})",
        "",
        n100.plan_estimate_secs,
        n100.plan_schedule_secs,
        n100.addone_secs,
        n100.full_replan_secs,
        n100.addone_over_replan,
    );

    // Hand-rolled JSON (the offline serde stand-in has no serializer).
    let json = format!(
        "{{\n  \"threads\": {threads},\n  \"threshold\": {THRESHOLD},\n  \"reps\": {REPS},\n  \
         {five},\n  {twelve},\n  {n100_block}\n}}\n",
        five = point_json(&points[0]),
        twelve = point_json(&points[1]),
        n100_block = n100_json(&n100),
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_nway.json");
    std::fs::write(out, &json).expect("write BENCH_nway.json");
    println!("\nwrote {out}");
}

//! Regenerate `BENCH_nway.json`: sequential-dense vs batch-blocked N-way
//! pairwise population, at the paper's 5-schema vocabulary arity and at a
//! 12-schema consolidation arity.
//!
//! The sequential-dense side reproduces the pre-batch `populate_pairwise`
//! loop verbatim: one dense `run_select` per unordered pair, each run
//! spawning its own Score/Merge workers and paying the full cross product.
//! The batch-blocked side is the production path: one `BatchPlanner` plan
//! (every schema prepared and token-indexed once), candidates from the
//! shared index under the default blocking policy, and all pairs executed
//! concurrently on the persistent executor. Both sides select one-to-one
//! correspondences at the same threshold; the bench asserts the *selected
//! pair sets are identical* (the blocking-recall property at work), so the
//! wall-clock ratio is measured at equal recall by construction.
//!
//! `ci.sh` gates on the 12-schema ratio: batch-blocked must finish in at
//! most 50% of the sequential-dense wall clock.
//!
//! Run with: `cargo run --release -p sm-bench --bin nway_baseline`

use harmony_core::prelude::*;
use sm_bench::header;
use sm_schema::Schema;
use sm_synth::{RepositoryConfig, SyntheticRepository};
use sm_text::normalize::Normalizer;
use std::time::Instant;

/// The operating threshold used across experiments.
const THRESHOLD: f64 = 0.35;
const REPS: usize = 3;

/// One unordered pair's selected correspondences, as comparable tuples.
type SelectedPairs = Vec<(u32, u32)>;

fn selected_tuples(set: &MatchSet) -> SelectedPairs {
    let mut pairs: SelectedPairs = set.all().iter().map(|c| (c.source.0, c.target.0)).collect();
    pairs.sort_unstable();
    pairs
}

/// The pre-batch behavior, verbatim: a sequential loop of dense
/// `run_select` calls over every unordered pair.
fn sequential_dense(
    engine: &MatchEngine,
    schemas: &[&Schema],
    selection: &Selection,
) -> (f64, Vec<SelectedPairs>) {
    let t0 = Instant::now();
    let mut selections = Vec::new();
    for i in 0..schemas.len() {
        for j in (i + 1)..schemas.len() {
            let (_, selected) = engine
                .pipeline()
                .run_select(schemas[i], schemas[j], selection);
            selections.push(selected_tuples(&selected));
        }
    }
    (t0.elapsed().as_secs_f64(), selections)
}

struct BatchMeasurement {
    total_secs: f64,
    plan_secs: f64,
    pairs_scored: usize,
    cross_product: usize,
    selections: Vec<SelectedPairs>,
}

/// The production path: one plan, one shared index, all pairs concurrent,
/// selection-only execution (matrices drop inside the jobs).
fn batch_blocked(
    engine: &MatchEngine,
    schemas: &[&Schema],
    selection: &Selection,
) -> BatchMeasurement {
    let t0 = Instant::now();
    let batch = engine.batch().plan_all_pairs(schemas);
    let result = batch.run_select_only(selection);
    let total_secs = t0.elapsed().as_secs_f64();
    BatchMeasurement {
        total_secs,
        plan_secs: batch.plan_time().as_secs_f64(),
        pairs_scored: result.pairs_scored(),
        cross_product: result.pairs_considered(),
        selections: result
            .pairs
            .iter()
            .map(|p| selected_tuples(&p.selected))
            .collect(),
    }
}

struct ArityPoint {
    label: &'static str,
    schemas: usize,
    pairs: usize,
    elements: usize,
    cross_product: usize,
    pairs_scored: usize,
    dense_secs: f64,
    batch_secs: f64,
    plan_secs: f64,
    equal_selections: bool,
}

fn measure(label: &'static str, n: usize, seed: u64, engine: &MatchEngine) -> ArityPoint {
    let population = SyntheticRepository::generate(&RepositoryConfig {
        seed,
        domains: 1,
        schemas_per_domain: n,
        concepts_per_domain: 48,
        concept_coverage: 0.7,
        attrs_per_concept: (5, 9),
    });
    let schemas: Vec<&Schema> = population.schemas.iter().collect();
    let elements: usize = schemas.iter().map(|s| s.len()).sum();
    let selection = Selection::OneToOne {
        min: Confidence::new(THRESHOLD),
    };

    // Warm the feature cache once so both sides measure execution, not
    // first-touch preparation (both amortize it identically in steady
    // state; the batch additionally amortizes the index builds, which stay
    // in the measurement as part of its Plan stage).
    for s in &schemas {
        let _ = engine.prepare(s);
    }

    let mut dense_runs: Vec<(f64, Vec<SelectedPairs>)> = (0..REPS)
        .map(|_| sequential_dense(engine, &schemas, &selection))
        .collect();
    dense_runs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
    let (dense_secs, dense_selections) = dense_runs.swap_remove(REPS / 2);

    let mut batch_runs: Vec<BatchMeasurement> = (0..REPS)
        .map(|_| batch_blocked(engine, &schemas, &selection))
        .collect();
    batch_runs.sort_by(|a, b| a.total_secs.partial_cmp(&b.total_secs).expect("finite"));
    let batch = batch_runs.swap_remove(REPS / 2);

    let equal_selections = dense_selections == batch.selections;
    ArityPoint {
        label,
        schemas: n,
        pairs: n * (n - 1) / 2,
        elements,
        cross_product: batch.cross_product,
        pairs_scored: batch.pairs_scored,
        dense_secs,
        batch_secs: batch.total_secs,
        plan_secs: batch.plan_secs,
        equal_selections,
    }
}

fn point_json(p: &ArityPoint) -> String {
    format!(
        "\"{label}\": {{\n    \"schemas\": {schemas},\n    \"pairs\": {pairs},\n    \
         \"elements\": {elements},\n    \"cross_product\": {cross},\n    \
         \"pairs_scored\": {scored},\n    \"scored_fraction\": {fraction:.6},\n    \
         \"sequential_dense_secs\": {dense:.6},\n    \"batch_blocked_secs\": {batch:.6},\n    \
         \"batch_plan_secs\": {plan:.6},\n    \"ratio\": {ratio:.6},\n    \
         \"equal_selections\": {equal}\n  }}",
        label = p.label,
        schemas = p.schemas,
        pairs = p.pairs,
        elements = p.elements,
        cross = p.cross_product,
        scored = p.pairs_scored,
        fraction = p.pairs_scored as f64 / p.cross_product.max(1) as f64,
        dense = p.dense_secs,
        batch = p.batch_secs,
        plan = p.plan_secs,
        ratio = p.batch_secs / p.dense_secs.max(1e-12),
        equal = p.equal_selections,
    )
}

fn main() {
    header(
        "nway_baseline",
        "sequential-dense vs batch-blocked pairwise population at 5-schema and 12-schema arity",
    );
    let threads = detect_threads();
    let engine = MatchEngine::new()
        .with_normalizer(Normalizer::new())
        .with_threads(threads);
    println!("threads: {threads}, threshold: {THRESHOLD}, reps: {REPS} (median)\n");

    let points = [
        measure("five_schema", 5, 2010, &engine),
        measure("twelve_schema", 12, 2021, &engine),
    ];
    for p in &points {
        println!(
            "{:<14} {} schemata / {} pairs / {} elements: dense {:>8.3}s  batch {:>8.3}s \
             (plan {:.3}s)  ratio {:.3}  scored {:.1}%  equal selections: {}",
            p.label,
            p.schemas,
            p.pairs,
            p.elements,
            p.dense_secs,
            p.batch_secs,
            p.plan_secs,
            p.batch_secs / p.dense_secs.max(1e-12),
            100.0 * p.pairs_scored as f64 / p.cross_product.max(1) as f64,
            p.equal_selections,
        );
        assert!(
            p.equal_selections,
            "{}: batch-blocked selections diverged from the dense loop",
            p.label
        );
    }

    // Hand-rolled JSON (the offline serde stand-in has no serializer).
    let json = format!(
        "{{\n  \"threads\": {threads},\n  \"threshold\": {THRESHOLD},\n  \"reps\": {REPS},\n  \
         {five},\n  {twelve}\n}}\n",
        five = point_json(&points[0]),
        twelve = point_json(&points[1]),
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_nway.json");
    std::fs::write(out, &json).expect("write BENCH_nway.json");
    println!("\nwrote {out}");
}

//! E5 — N-way matching and the 2^N − 1 partition (§3.4, §4.5).
//!
//! "Given N schemata there are 2^N−1 such sets partitioning their N-way
//! match"; the customer's expansion asked for the comprehensive vocabulary
//! of five schemata {S_A, S_C, S_D, S_E, S_F} (31 cells). This experiment
//! builds the vocabulary for N = 2..6 from one domain pool, checks the cell
//! arithmetic, and reports the per-cell term counts for the 5-schema case.

use harmony_core::prelude::*;
use sm_bench::{f3, header, row, table_header};
use sm_schema::Schema;
use sm_synth::{RepositoryConfig, SyntheticRepository};
use std::time::Instant;

fn pairwise_vocabulary(schemas: &[&Schema], threshold: f64) -> Vocabulary {
    let engine = MatchEngine::new();
    let mut nway = NWayMatch::new(schemas.to_vec());
    // One prepared-feature build per schema, N·(N−1)/2 pairwise matches.
    nway.populate_pairwise(&engine, Confidence::new(threshold), "engine");
    nway.vocabulary()
}

fn main() {
    header(
        "E5",
        "comprehensive vocabulary over N schemata; 2^N−1 partition cells \
         (paper: 31 cells for the 5-schema expansion)",
    );
    let population = SyntheticRepository::generate(&RepositoryConfig {
        seed: 23,
        domains: 1,
        schemas_per_domain: 6,
        concepts_per_domain: 30,
        concept_coverage: 0.55,
        attrs_per_concept: (5, 9),
        ..Default::default()
    });

    table_header(&[
        "N",
        "elements",
        "pair-matches",
        "terms",
        "cells-used",
        "2^N-1",
        "secs",
    ]);
    for n in 2..=6usize {
        let schemas: Vec<&Schema> = population.schemas.iter().take(n).collect();
        let elements: usize = schemas.iter().map(|s| s.len()).sum();
        let t0 = Instant::now();
        let vocab = pairwise_vocabulary(&schemas, 0.35);
        let secs = t0.elapsed().as_secs_f64();
        let cells = vocab.cell_sizes();
        // Sanity: every observed signature is one of the 2^N−1 subsets.
        assert!(cells.keys().all(|&m| m > 0 && m < (1u32 << n)));
        // Sanity: terms partition all elements exactly once.
        let member_total: usize = vocab.terms.iter().map(|t| t.members.len()).sum();
        assert_eq!(member_total, elements);
        row(&[
            n.to_string(),
            elements.to_string(),
            format!("{}", n * (n - 1) / 2),
            vocab.len().to_string(),
            cells.len().to_string(),
            ((1usize << n) - 1).to_string(),
            f3(secs),
        ]);
    }

    // The 5-schema case in detail (the paper's expansion).
    println!("\n5-schema comprehensive vocabulary (cells by subset size):");
    let schemas: Vec<&Schema> = population.schemas.iter().take(5).collect();
    let vocab = pairwise_vocabulary(&schemas, 0.35);
    let sizes = vocab.cell_sizes();
    table_header(&["|subset|", "cells", "terms"]);
    for k in 1..=5u32 {
        let cells: Vec<(&u32, &usize)> =
            sizes.iter().filter(|(m, _)| m.count_ones() == k).collect();
        let terms: usize = cells.iter().map(|(_, &n)| n).sum();
        row(&[k.to_string(), cells.len().to_string(), terms.to_string()]);
    }
    let all = vocab.cell((1 << 5) - 1);
    println!(
        "\nterms shared by all five schemata: {} (the seed of the community vocabulary)",
        all.len()
    );
}

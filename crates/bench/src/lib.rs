//! Shared helpers for the experiment harness.
//!
//! Every binary in `src/bin/` regenerates one experiment of EXPERIMENTS.md
//! (which maps them to the paper's reported statistics). The helpers here
//! keep their output format uniform: a titled, aligned table plus
//! paper-vs-measured annotations.

use harmony_core::obs;
use harmony_core::prelude::*;
use sm_synth::{GeneratorConfig, SchemaPair};

/// Print an experiment header.
pub fn header(id: &str, claim: &str) {
    println!("==============================================================");
    println!("{id}: {claim}");
    println!("==============================================================");
}

/// Print one aligned table row.
pub fn row(cells: &[String]) {
    let line = cells
        .iter()
        .map(|c| format!("{c:>14}"))
        .collect::<Vec<_>>()
        .join(" ");
    println!("{line}");
}

/// Print a table header row followed by a rule.
pub fn table_header(cols: &[&str]) {
    row(&cols.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    println!("{}", "-".repeat(15 * cols.len()));
}

/// Format a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Format a float with 1 decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// The standard case-study pair at a given scale (seed fixed so every
/// experiment sees the same world).
pub fn case_study(scale: f64) -> SchemaPair {
    SchemaPair::generate(&GeneratorConfig::paper_case_study(42, scale))
}

/// Run the automatic matcher and select one-to-one candidates at the
/// default operating threshold used across experiments.
pub fn auto_match(pair: &SchemaPair, threshold: f64) -> MatchSet {
    let engine = MatchEngine::new();
    let result = engine.run(&pair.source, &pair.target);
    Selection::OneToOne {
        min: Confidence::new(threshold),
    }
    .apply(&result.matrix)
}

/// A parsed `--trace` request: where a bench binary's instrumented run
/// should write its chrome-trace JSON and the aggregate report beside it.
pub struct TraceRequest {
    /// Chrome `trace_event` JSON (open in `chrome://tracing` or Perfetto).
    pub trace_path: String,
    /// Aggregate [`harmony_core::obs::TraceReport`] JSON: per-kind
    /// percentiles, lane utilization, and every registered counter.
    pub report_path: String,
}

/// Derive the trace/report output paths from argv. Pure so it is testable:
/// `--trace` with no following path (or a following flag) falls back to
/// `target/<stem>.trace.json`; the report lands beside the trace with the
/// `.trace.json` suffix swapped for `.report.json`.
pub fn trace_paths(args: &[String], stem: &str) -> Option<(String, String)> {
    let pos = args.iter().position(|a| a == "--trace")?;
    let trace_path = args
        .get(pos + 1)
        .filter(|a| !a.starts_with('-'))
        .cloned()
        .unwrap_or_else(|| format!("target/{stem}.trace.json"));
    let stripped = trace_path
        .strip_suffix(".trace.json")
        .or_else(|| trace_path.strip_suffix(".json"))
        .unwrap_or(&trace_path);
    Some((trace_path.clone(), format!("{stripped}.report.json")))
}

/// Parse `--trace [PATH]` (and `--help`) from a bench binary's command
/// line. Returns `Some` when the binary should skip the full benchmark and
/// instead record one instrumented run; `--help`/`-h` prints README-style
/// usage for the flag and exits.
pub fn trace_request(stem: &str, traced_run: &str) -> Option<TraceRequest> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "Usage: {stem} [--trace [PATH]]\n\
             \n\
             Without flags: run the full benchmark and regenerate its\n\
             checked-in BENCH_*.json at the workspace root.\n\
             \n\
             --trace [PATH]\n\
             \x20   Skip the benchmark and record one instrumented run\n\
             \x20   ({traced_run}) through the harmony_core::obs recorder,\n\
             \x20   then write two JSON artifacts:\n\
             \x20     PATH                   chrome-trace (trace_event) JSON;\n\
             \x20                            load it in chrome://tracing or\n\
             \x20                            https://ui.perfetto.dev to see\n\
             \x20                            per-stage spans on per-lane rows\n\
             \x20     PATH with .trace.json  aggregate TraceReport JSON:\n\
             \x20     -> .report.json        per-kind p50/p95/p99 latencies,\n\
             \x20                            lane busy-time, all counters\n\
             \x20   PATH defaults to target/{stem}.trace.json (untracked).\n\
             \n\
             Tracing costs <5% on instrumented runs (ci.sh gates this); the\n\
             obs-off cargo feature of harmony-core compiles it out entirely."
        );
        std::process::exit(0);
    }
    let (trace_path, report_path) = trace_paths(&args, stem)?;
    Some(TraceRequest {
        trace_path,
        report_path,
    })
}

/// Collect everything recorded since the last `obs::reset()` and write the
/// two trace artifacts of a [`TraceRequest`], printing a one-line digest of
/// what the trace holds and where to open it.
pub fn write_trace(req: &TraceRequest) {
    let events = obs::collect();
    let report = obs::TraceReport::from_events(&events);
    for path in [&req.trace_path, &req.report_path] {
        if let Some(dir) = std::path::Path::new(path).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).expect("create trace output dir");
            }
        }
    }
    std::fs::write(&req.trace_path, obs::chrome_trace_from_events(&events))
        .expect("write chrome trace JSON");
    std::fs::write(&req.report_path, report.to_json()).expect("write trace report JSON");
    let busy_ns: u64 = report.lanes.iter().map(|l| l.busy_ns).sum();
    println!(
        "trace: {} events over {:.3} ms across {} lane(s) ({:.3} ms busy)",
        events.len(),
        report.wall_ns as f64 / 1e6,
        report.lanes.len(),
        busy_ns as f64 / 1e6,
    );
    println!(
        "wrote {} (open in chrome://tracing or ui.perfetto.dev)",
        req.trace_path
    );
    println!("wrote {}", req.report_path);
}

/// Validate every correspondence of a set (for partition accounting of
/// fully automatic runs).
pub fn validate_all(set: &MatchSet) -> MatchSet {
    let mut out = MatchSet::new();
    for c in set.all() {
        out.push(c.clone().validate("engine", MatchAnnotation::Equivalent));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_study_is_reproducible() {
        let a = case_study(0.05);
        let b = case_study(0.05);
        assert_eq!(a.source.len(), b.source.len());
        assert_eq!(a.truth.len(), b.truth.len());
    }

    #[test]
    fn auto_match_returns_candidates() {
        let pair = case_study(0.05);
        let m = auto_match(&pair, 0.3);
        assert!(!m.is_empty());
        let v = validate_all(&m);
        assert_eq!(v.len(), m.len());
        assert!(v.validated().count() == v.len());
    }

    #[test]
    fn trace_path_derivation() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(trace_paths(&args(&["--foo"]), "x"), None);
        assert_eq!(
            trace_paths(&args(&["--trace"]), "pipeline_baseline"),
            Some((
                "target/pipeline_baseline.trace.json".into(),
                "target/pipeline_baseline.report.json".into()
            ))
        );
        assert_eq!(
            trace_paths(&args(&["--trace", "/tmp/t.trace.json"]), "x"),
            Some(("/tmp/t.trace.json".into(), "/tmp/t.report.json".into()))
        );
        assert_eq!(
            trace_paths(&args(&["--trace", "out.json"]), "x"),
            Some(("out.json".into(), "out.report.json".into()))
        );
        assert_eq!(
            trace_paths(&args(&["--trace", "plain"]), "x"),
            Some(("plain".into(), "plain.report.json".into()))
        );
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(0.5), "0.500");
        assert_eq!(f1(2.25), "2.2");
    }
}

//! Shared helpers for the experiment harness.
//!
//! Every binary in `src/bin/` regenerates one experiment of EXPERIMENTS.md
//! (which maps them to the paper's reported statistics). The helpers here
//! keep their output format uniform: a titled, aligned table plus
//! paper-vs-measured annotations.

use harmony_core::prelude::*;
use sm_synth::{GeneratorConfig, SchemaPair};

/// Print an experiment header.
pub fn header(id: &str, claim: &str) {
    println!("==============================================================");
    println!("{id}: {claim}");
    println!("==============================================================");
}

/// Print one aligned table row.
pub fn row(cells: &[String]) {
    let line = cells
        .iter()
        .map(|c| format!("{c:>14}"))
        .collect::<Vec<_>>()
        .join(" ");
    println!("{line}");
}

/// Print a table header row followed by a rule.
pub fn table_header(cols: &[&str]) {
    row(&cols.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    println!("{}", "-".repeat(15 * cols.len()));
}

/// Format a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Format a float with 1 decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// The standard case-study pair at a given scale (seed fixed so every
/// experiment sees the same world).
pub fn case_study(scale: f64) -> SchemaPair {
    SchemaPair::generate(&GeneratorConfig::paper_case_study(42, scale))
}

/// Run the automatic matcher and select one-to-one candidates at the
/// default operating threshold used across experiments.
pub fn auto_match(pair: &SchemaPair, threshold: f64) -> MatchSet {
    let engine = MatchEngine::new();
    let result = engine.run(&pair.source, &pair.target);
    Selection::OneToOne {
        min: Confidence::new(threshold),
    }
    .apply(&result.matrix)
}

/// Validate every correspondence of a set (for partition accounting of
/// fully automatic runs).
pub fn validate_all(set: &MatchSet) -> MatchSet {
    let mut out = MatchSet::new();
    for c in set.all() {
        out.push(c.clone().validate("engine", MatchAnnotation::Equivalent));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_study_is_reproducible() {
        let a = case_study(0.05);
        let b = case_study(0.05);
        assert_eq!(a.source.len(), b.source.len());
        assert_eq!(a.truth.len(), b.truth.len());
    }

    #[test]
    fn auto_match_returns_candidates() {
        let pair = case_study(0.05);
        let m = auto_match(&pair, 0.3);
        assert!(!m.is_empty());
        let v = validate_all(&m);
        assert_eq!(v.len(), m.len());
        assert!(v.validated().count() == v.len());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(0.5), "0.500");
        assert_eq!(f1(2.25), "2.2");
    }
}

//! Element documentation.
//!
//! The paper is explicit that Harmony "relies heavily on textual documentation
//! to identify candidate correspondences instead of data instances because …
//! schema documentation is easier to obtain than data" (§3.2). Documentation
//! is therefore a structured, first-class artifact rather than a bare string.

use serde::{Deserialize, Serialize};

/// Provenance of a piece of documentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DocSource {
    /// Comment embedded in the schema definition (DDL comment, xs:annotation).
    Embedded,
    /// External data dictionary or registry entry.
    DataDictionary,
    /// Added by an integration engineer during a matching effort.
    Engineer,
    /// Generated (e.g. by the synthetic workload generator).
    Generated,
}

/// Textual documentation attached to a schema element.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Documentation {
    /// Free-text description of the element's meaning.
    pub description: String,
    /// Where the description came from.
    pub source: DocSource,
}

impl Documentation {
    /// Documentation embedded in the schema definition itself.
    pub fn embedded(description: impl Into<String>) -> Self {
        Documentation {
            description: description.into(),
            source: DocSource::Embedded,
        }
    }

    /// Documentation from an external data dictionary.
    pub fn dictionary(description: impl Into<String>) -> Self {
        Documentation {
            description: description.into(),
            source: DocSource::DataDictionary,
        }
    }

    /// Documentation produced by a generator.
    pub fn generated(description: impl Into<String>) -> Self {
        Documentation {
            description: description.into(),
            source: DocSource::Generated,
        }
    }

    /// True when the description carries no usable text.
    pub fn is_empty(&self) -> bool {
        self.description.trim().is_empty()
    }

    /// Number of whitespace-separated tokens — the raw "amount of evidence"
    /// this documentation contributes to a documentation voter.
    pub fn token_count(&self) -> usize {
        self.description.split_whitespace().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_source() {
        assert_eq!(Documentation::embedded("x").source, DocSource::Embedded);
        assert_eq!(
            Documentation::dictionary("x").source,
            DocSource::DataDictionary
        );
        assert_eq!(Documentation::generated("x").source, DocSource::Generated);
    }

    #[test]
    fn emptiness_ignores_whitespace() {
        assert!(Documentation::embedded("   \t ").is_empty());
        assert!(!Documentation::embedded("a date").is_empty());
    }

    #[test]
    fn token_count_counts_words() {
        let d = Documentation::embedded("the date the event began");
        assert_eq!(d.token_count(), 5);
        assert_eq!(Documentation::embedded("").token_count(), 0);
    }
}

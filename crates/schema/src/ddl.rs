//! Mini-DDL parser.
//!
//! Parses the subset of SQL DDL that schema-matching consumes: `CREATE TABLE`
//! / `CREATE VIEW` statements with column definitions, `PRIMARY KEY`,
//! `NOT NULL`, `REFERENCES table(column)` and `-- comments`. A `--` comment on
//! the line *before* a table or column definition (or trailing on the same
//! line) becomes that element's documentation — this mirrors how enterprise
//! DDL dumps carry their data-dictionary text.
//!
//! ```
//! use sm_schema::ddl::parse_ddl;
//! use sm_schema::SchemaId;
//!
//! let s = parse_ddl(SchemaId(1), "S_A", r#"
//! -- individuals tracked by the system
//! CREATE TABLE Person (
//!     person_id INT PRIMARY KEY,
//!     last_name VARCHAR(40) NOT NULL, -- family name
//!     unit_id INT REFERENCES Unit(unit_id)
//! );
//! CREATE TABLE Unit ( unit_id INT PRIMARY KEY );
//! "#).unwrap();
//! assert_eq!(s.len(), 6);
//! ```

use crate::datatype::parse_sql_type;
use crate::error::SchemaError;
use crate::relational::{ColumnSpec, RelationalSchemaBuilder, TableSpec};
use crate::schema::{Schema, SchemaId};

/// Parse mini-DDL text into a relational [`Schema`].
///
/// `COMMENT ON TABLE t IS '...'` and `COMMENT ON COLUMN t.c IS '...'`
/// statements (the other place enterprise dumps keep their dictionary text)
/// are applied after all tables are built.
pub fn parse_ddl(id: SchemaId, name: &str, input: &str) -> Result<Schema, SchemaError> {
    let mut builder = RelationalSchemaBuilder::new(id, name);
    let mut pending_comment: Option<String> = None;
    let mut comments: Vec<(usize, String)> = Vec::new();
    let mut lines = NumberedLines::new(input);

    while let Some((line_no, raw)) = lines.next_line() {
        let line = strip_trailing_comment(raw).0.trim().to_string();
        let comment = strip_trailing_comment(raw).1;

        if line.is_empty() {
            if let Some(c) = comment {
                // A standalone comment documents whatever comes next.
                pending_comment = Some(match pending_comment.take() {
                    Some(prev) => format!("{prev} {c}"),
                    None => c,
                });
            } else {
                pending_comment = None;
            }
            continue;
        }

        let upper = line.to_ascii_uppercase();
        if upper.starts_with("CREATE TABLE") || upper.starts_with("CREATE VIEW") {
            let is_view = upper.starts_with("CREATE VIEW");
            let header_doc = pending_comment.take().or(comment);
            let table = parse_create(&mut lines, line_no, &line, is_view, header_doc)?;
            builder = builder.table(table);
        } else if upper.starts_with("COMMENT ON") {
            comments.push((line_no, line.clone()));
            continue;
        } else {
            return Err(SchemaError::Parse {
                line: line_no,
                message: format!("expected CREATE TABLE/VIEW, found {line:?}"),
            });
        }
    }
    let mut schema = builder.build()?;
    for (line_no, stmt) in comments {
        apply_comment_on(&mut schema, line_no, &stmt)?;
    }
    Ok(schema)
}

/// Apply one `COMMENT ON TABLE|COLUMN target IS 'text';` statement.
fn apply_comment_on(schema: &mut Schema, line: usize, stmt: &str) -> Result<(), SchemaError> {
    let err = |message: String| SchemaError::Parse { line, message };
    let upper = stmt.to_ascii_uppercase();
    let is_col = upper.starts_with("COMMENT ON COLUMN");
    let is_tab = upper.starts_with("COMMENT ON TABLE");
    if !is_col && !is_tab {
        return Err(err(format!("unsupported COMMENT statement {stmt:?}")));
    }
    let is_pos = upper
        .find(" IS ")
        .ok_or_else(|| err("missing IS clause".into()))?;
    let target = stmt[if is_col {
        "COMMENT ON COLUMN".len()
    } else {
        "COMMENT ON TABLE".len()
    }..is_pos]
        .trim();
    let text_part = stmt[is_pos + 4..].trim().trim_end_matches(';').trim();
    let text = text_part
        .strip_prefix('\'')
        .and_then(|t| t.strip_suffix('\''))
        .ok_or_else(|| {
            err(format!(
                "comment text must be single-quoted, got {text_part:?}"
            ))
        })?
        .replace("''", "'");

    let id = if is_col {
        let (table, column) = target.split_once('.').ok_or_else(|| {
            err(format!(
                "COLUMN target must be table.column, got {target:?}"
            ))
        })?;
        let tid = schema
            .find_by_name(table.trim())
            .ok_or_else(|| err(format!("unknown table {table:?}")))?;
        schema
            .element(tid)
            .children
            .iter()
            .copied()
            .find(|&c| schema.element(c).name.eq_ignore_ascii_case(column.trim()))
            .ok_or_else(|| err(format!("unknown column {target:?}")))?
    } else {
        schema
            .find_by_name(target)
            .ok_or_else(|| err(format!("unknown table {target:?}")))?
    };
    // COMMENT ON supplements (or overrides) inline docs, matching the usual
    // load order of enterprise dumps.
    schema.set_doc(id, crate::doc::Documentation::dictionary(text))?;
    Ok(())
}

/// Line source that tracks 1-based line numbers.
struct NumberedLines<'a> {
    iter: std::iter::Enumerate<std::str::Lines<'a>>,
}

impl<'a> NumberedLines<'a> {
    fn new(input: &'a str) -> Self {
        NumberedLines {
            iter: input.lines().enumerate(),
        }
    }

    fn next_line(&mut self) -> Option<(usize, &'a str)> {
        self.iter.next().map(|(i, l)| (i + 1, l))
    }
}

/// Split a line into (code, comment) at the first `--`.
fn strip_trailing_comment(line: &str) -> (&str, Option<String>) {
    match line.find("--") {
        Some(i) => {
            let c = line[i + 2..].trim();
            (
                &line[..i],
                if c.is_empty() {
                    None
                } else {
                    Some(c.to_string())
                },
            )
        }
        None => (line, None),
    }
}

/// Parse one CREATE statement. `first_line` has already had its comment
/// stripped. Column definitions may continue over subsequent lines until the
/// closing `);`.
fn parse_create(
    lines: &mut NumberedLines<'_>,
    start_line: usize,
    first_line: &str,
    is_view: bool,
    header_doc: Option<String>,
) -> Result<TableSpec, SchemaError> {
    // Accumulate the whole statement body (between parens) plus per-line
    // comments, so `col TYPE, -- doc` attaches doc to `col`.
    let after_kw = first_line
        .split_whitespace()
        .skip(2) // CREATE TABLE
        .collect::<Vec<_>>()
        .join(" ");
    let (tname_part, mut rest) = match after_kw.find('(') {
        Some(i) => (after_kw[..i].to_string(), after_kw[i + 1..].to_string()),
        None => (after_kw.clone(), String::new()),
    };
    let table_name = tname_part.trim().trim_end_matches(';').trim().to_string();
    if table_name.is_empty() {
        return Err(SchemaError::Parse {
            line: start_line,
            message: "missing table name".into(),
        });
    }
    let mut table = TableSpec {
        name: table_name,
        is_view,
        columns: Vec::new(),
        doc: header_doc,
    };

    // Column text segments paired with their trailing comment.
    let mut segments: Vec<(String, Option<String>, usize)> = Vec::new();
    let mut done = statement_closed(&rest);
    if done {
        rest = rest
            .trim_end()
            .trim_end_matches(';')
            .trim_end()
            .trim_end_matches(')')
            .to_string();
    }
    if !rest.trim().is_empty() {
        push_segments(&mut segments, &rest, None, start_line);
    }
    let mut pending_comment: Option<String> = None;
    while !done {
        let (line_no, raw) = lines.next_line().ok_or(SchemaError::Parse {
            line: start_line,
            message: "unterminated CREATE statement".into(),
        })?;
        let (code, comment) = strip_trailing_comment(raw);
        let mut code = code.trim().to_string();
        if code.is_empty() {
            if let Some(c) = comment {
                pending_comment = Some(match pending_comment.take() {
                    Some(prev) => format!("{prev} {c}"),
                    None => c,
                });
            }
            continue;
        }
        if statement_closed(&code) {
            done = true;
            code = code
                .trim_end()
                .trim_end_matches(';')
                .trim_end()
                .trim_end_matches(')')
                .to_string();
        }
        if !code.trim().is_empty() {
            let doc = match (pending_comment.take(), comment) {
                (Some(a), Some(b)) => Some(format!("{a} {b}")),
                (a, b) => a.or(b),
            };
            push_segments(&mut segments, &code, doc, line_no);
        }
    }

    for (seg, doc, line_no) in segments {
        if let Some(col) = parse_column(&seg, doc, line_no)? {
            table.columns.push(col);
        }
    }
    Ok(table)
}

/// Does this line close the statement (ends with `);` or `)` or `;`)?
fn statement_closed(code: &str) -> bool {
    let t = code.trim_end();
    t.ends_with(");") || t.ends_with(')') && !t.contains('(') || t.ends_with(';')
}

/// Split a code fragment on top-level commas (not inside parentheses) and
/// append the pieces. The trailing comment attaches to the *last* piece on
/// the line, matching `a INT, b INT -- doc for b`.
fn push_segments(
    out: &mut Vec<(String, Option<String>, usize)>,
    code: &str,
    doc: Option<String>,
    line_no: usize,
) {
    let mut depth = 0usize;
    let mut cur = String::new();
    let mut pieces: Vec<String> = Vec::new();
    for ch in code.chars() {
        match ch {
            '(' => {
                depth += 1;
                cur.push(ch);
            }
            ')' => {
                depth = depth.saturating_sub(1);
                cur.push(ch);
            }
            ',' if depth == 0 => {
                pieces.push(std::mem::take(&mut cur));
            }
            _ => cur.push(ch),
        }
    }
    if !cur.trim().is_empty() {
        pieces.push(cur);
    }
    let n = pieces.len();
    for (i, p) in pieces.into_iter().enumerate() {
        let d = if i + 1 == n { doc.clone() } else { None };
        out.push((p, d, line_no));
    }
}

/// Parse one column definition segment. Returns `Ok(None)` for table-level
/// constraints (`PRIMARY KEY (...)`, `FOREIGN KEY ...`, `CONSTRAINT ...`)
/// which do not introduce elements.
fn parse_column(
    seg: &str,
    doc: Option<String>,
    line_no: usize,
) -> Result<Option<ColumnSpec>, SchemaError> {
    let seg = seg.trim();
    if seg.is_empty() {
        return Ok(None);
    }
    let upper = seg.to_ascii_uppercase();
    if upper.starts_with("PRIMARY KEY")
        || upper.starts_with("FOREIGN KEY")
        || upper.starts_with("CONSTRAINT")
        || upper.starts_with("UNIQUE")
        || upper.starts_with("CHECK")
        || upper.starts_with("INDEX")
        || upper.starts_with("KEY ")
    {
        return Ok(None);
    }
    let mut tokens = seg.split_whitespace();
    let name = tokens.next().ok_or(SchemaError::Parse {
        line: line_no,
        message: "empty column definition".into(),
    })?;
    // The type may contain parens with spaces: re-join remaining and take up
    // to the first constraint keyword.
    let rest: Vec<&str> = tokens.collect();
    if rest.is_empty() {
        return Err(SchemaError::Parse {
            line: line_no,
            message: format!("column {name} missing type"),
        });
    }
    let rest_joined = rest.join(" ");
    let upper_rest = rest_joined.to_ascii_uppercase();
    let type_end = ["PRIMARY", "NOT", "NULL", "REFERENCES", "DEFAULT", "UNIQUE"]
        .iter()
        .filter_map(|kw| find_word(&upper_rest, kw))
        .min()
        .unwrap_or(rest_joined.len());
    let type_str = rest_joined[..type_end].trim();
    let mut col = ColumnSpec::new(name, parse_sql_type(type_str));
    col.doc = doc;
    if find_word(&upper_rest, "PRIMARY").is_some() {
        col = col.primary();
    }
    if find_word(&upper_rest, "NOT").is_some() {
        col = col.not_null();
    }
    if let Some(i) = find_word(&upper_rest, "REFERENCES") {
        let after = rest_joined[i + "REFERENCES".len()..].trim();
        let target = after.split_whitespace().next().unwrap_or("");
        if let Some(p) = target.find('(') {
            let t = &target[..p];
            let c = target[p + 1..].trim_end_matches(')');
            if t.is_empty() || c.is_empty() {
                return Err(SchemaError::Parse {
                    line: line_no,
                    message: format!("malformed REFERENCES clause {after:?}"),
                });
            }
            col = col.referencing(t, c);
        } else if !target.is_empty() {
            // REFERENCES Table — reference the table's like-named key.
            col = col.referencing(target, name);
        }
    }
    Ok(Some(col))
}

/// Find a whole-word occurrence of `word` (already uppercased input).
fn find_word(haystack: &str, word: &str) -> Option<usize> {
    let mut start = 0;
    while let Some(rel) = haystack[start..].find(word) {
        let i = start + rel;
        let before_ok = i == 0
            || !haystack.as_bytes()[i - 1].is_ascii_alphanumeric()
                && haystack.as_bytes()[i - 1] != b'_';
        let end = i + word.len();
        let after_ok = end >= haystack.len()
            || !haystack.as_bytes()[end].is_ascii_alphanumeric()
                && haystack.as_bytes()[end] != b'_';
        if before_ok && after_ok {
            return Some(i);
        }
        start = i + word.len();
    }
    None
}

/// Render a relational schema back to mini-DDL (used by exporters and tests).
pub fn to_ddl(schema: &Schema) -> String {
    use crate::element::ElementKind;
    let mut out = String::with_capacity(schema.len() * 32);
    for &root in schema.roots() {
        let t = schema.element(root);
        if let Some(d) = &t.doc {
            out.push_str(&format!("-- {}\n", d.description));
        }
        let kw = if t.kind == ElementKind::View {
            "CREATE VIEW"
        } else {
            "CREATE TABLE"
        };
        out.push_str(&format!("{kw} {} (\n", t.name));
        let n = t.children.len();
        for (i, &cid) in t.children.iter().enumerate() {
            let c = schema.element(cid);
            let comma = if i + 1 < n { "," } else { "" };
            let doc = c
                .doc
                .as_ref()
                .map(|d| format!(" -- {}", d.description))
                .unwrap_or_default();
            out.push_str(&format!("    {} {}{comma}{doc}\n", c.name, c.datatype));
        }
        out.push_str(");\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::DataType;

    const SAMPLE: &str = r#"
-- individuals tracked by the system
CREATE TABLE Person (
    person_id INT PRIMARY KEY,
    last_name VARCHAR(40) NOT NULL, -- family name
    birth_date DATE,
    unit_id INT REFERENCES Unit(unit_id)
);

CREATE TABLE Unit (
    unit_id INT PRIMARY KEY,
    -- official designation of the unit
    unit_name VARCHAR(80)
);

CREATE VIEW All_Event_Vitals (
    event_id INT,
    DATE_BEGIN_156 DATETIME
);
"#;

    #[test]
    fn parses_tables_columns_and_docs() {
        let s = parse_ddl(SchemaId(1), "S_A", SAMPLE).unwrap();
        assert_eq!(s.at_depth(1).len(), 3);
        assert_eq!(s.len(), 3 + 4 + 2 + 2);
        let person = s.find_by_name("Person").unwrap();
        assert_eq!(
            s.element(person).doc_text(),
            "individuals tracked by the system"
        );
        let ln = s.find_by_name("last_name").unwrap();
        assert_eq!(s.element(ln).doc_text(), "family name");
        assert_eq!(s.element(ln).datatype, DataType::varchar(40));
        let un = s.find_by_name("unit_name").unwrap();
        assert_eq!(s.element(un).doc_text(), "official designation of the unit");
        s.validate().unwrap();
    }

    #[test]
    fn view_kind_preserved() {
        let s = parse_ddl(SchemaId(1), "x", SAMPLE).unwrap();
        let v = s.find_by_name("All_Event_Vitals").unwrap();
        assert_eq!(s.element(v).kind, crate::element::ElementKind::View);
    }

    #[test]
    fn references_parsed() {
        let s = parse_ddl(SchemaId(1), "x", SAMPLE).unwrap();
        // Structure survives; FK metadata was validated during build.
        assert!(s.find_by_name("unit_id").is_some());
    }

    #[test]
    fn table_level_constraints_skipped() {
        let ddl = r#"
CREATE TABLE T (
    a INT,
    b INT,
    PRIMARY KEY (a, b),
    CONSTRAINT fk_b FOREIGN KEY (b) REFERENCES U(x)
);
"#;
        let s = parse_ddl(SchemaId(1), "x", ddl).unwrap();
        let t = s.find_by_name("T").unwrap();
        assert_eq!(s.element(t).children.len(), 2);
    }

    #[test]
    fn single_line_table() {
        let s = parse_ddl(SchemaId(1), "x", "CREATE TABLE T ( a INT, b DATE );").unwrap();
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn garbage_rejected_with_line_number() {
        let err = parse_ddl(SchemaId(1), "x", "DROP TABLE T;").unwrap_err();
        match err {
            SchemaError::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unterminated_statement_rejected() {
        let err = parse_ddl(SchemaId(1), "x", "CREATE TABLE T (\n a INT,").unwrap_err();
        assert!(matches!(err, SchemaError::Parse { .. }));
    }

    #[test]
    fn column_missing_type_rejected() {
        let err = parse_ddl(SchemaId(1), "x", "CREATE TABLE T (\n a\n);").unwrap_err();
        assert!(matches!(err, SchemaError::Parse { .. }));
    }

    #[test]
    fn round_trip_through_to_ddl() {
        let s = parse_ddl(SchemaId(1), "S_A", SAMPLE).unwrap();
        let ddl = to_ddl(&s);
        let s2 = parse_ddl(SchemaId(1), "S_A", &ddl).unwrap();
        assert_eq!(s.len(), s2.len());
        let names: Vec<_> = s.preorder().map(|e| e.name.clone()).collect();
        let names2: Vec<_> = s2.preorder().map(|e| e.name.clone()).collect();
        assert_eq!(names, names2);
        // Documentation survives the round trip.
        let ln2 = s2.find_by_name("last_name").unwrap();
        assert_eq!(s2.element(ln2).doc_text(), "family name");
    }

    #[test]
    fn comment_accumulation_across_blank_comment_lines() {
        let ddl = r#"
-- line one
-- line two
CREATE TABLE T ( a INT );
"#;
        let s = parse_ddl(SchemaId(1), "x", ddl).unwrap();
        let t = s.find_by_name("T").unwrap();
        assert_eq!(s.element(t).doc_text(), "line one line two");
    }

    #[test]
    fn comment_on_statements_attach_dictionary_docs() {
        let ddl = r#"
CREATE TABLE T ( a INT, b DATE );
COMMENT ON TABLE T IS 'the main table';
COMMENT ON COLUMN T.a IS 'alpha''s value';
"#;
        let s = parse_ddl(SchemaId(1), "x", ddl).unwrap();
        let t = s.find_by_name("T").unwrap();
        assert_eq!(s.element(t).doc_text(), "the main table");
        assert_eq!(
            s.element(t).doc.as_ref().unwrap().source,
            crate::doc::DocSource::DataDictionary
        );
        let a = s.find_by_name("a").unwrap();
        assert_eq!(s.element(a).doc_text(), "alpha's value");
    }

    #[test]
    fn comment_on_unknown_targets_rejected() {
        let base = "CREATE TABLE T ( a INT );\n";
        for bad in [
            "COMMENT ON TABLE Nope IS 'x';",
            "COMMENT ON COLUMN T.nope IS 'x';",
            "COMMENT ON COLUMN noDot IS 'x';",
            "COMMENT ON TABLE T IS unquoted;",
            "COMMENT ON SEQUENCE s IS 'x';",
        ] {
            let ddl = format!("{base}{bad}");
            assert!(
                parse_ddl(SchemaId(1), "x", &ddl).is_err(),
                "should reject: {bad}"
            );
        }
    }

    #[test]
    fn references_without_column_uses_own_name() {
        let ddl = "CREATE TABLE U ( u_id INT );\nCREATE TABLE T ( u_id INT REFERENCES U );";
        // References U(u_id) implicitly; builds fine because U.u_id exists.
        let s = parse_ddl(SchemaId(1), "x", ddl).unwrap();
        assert_eq!(s.len(), 4);
    }
}

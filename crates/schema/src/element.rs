//! Schema elements: the nodes of a schema tree.

use crate::datatype::DataType;
use crate::doc::Documentation;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of an element within its [`crate::Schema`]'s arena.
///
/// Ids are dense (`0..schema.len()`) and stable for the lifetime of the
/// schema, which lets the match engine store scores in flat matrices indexed
/// by `(source id, target id)` — essential for the paper's 1378×784 ≈ 10^6
/// pair workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ElementId(pub u32);

impl ElementId {
    /// The arena index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ElementId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// What kind of schema construct an element represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ElementKind {
    /// Relational table (depth 1 in the paper's model).
    Table,
    /// Relational view.
    View,
    /// Relational column (depth 2).
    Column,
    /// XML complex type.
    ComplexType,
    /// XML element declaration.
    XmlElement,
    /// XML attribute.
    Attribute,
    /// Grouping node with no format-specific meaning.
    Group,
    /// A concept node in a schema summary (see `harmony-core::summarize`).
    Concept,
}

impl ElementKind {
    /// True for nodes that normally carry a value type (leaves).
    pub fn is_leaf_like(self) -> bool {
        matches!(
            self,
            ElementKind::Column | ElementKind::Attribute | ElementKind::XmlElement
        )
    }

    /// True for nodes that normally contain other nodes.
    pub fn is_container_like(self) -> bool {
        matches!(
            self,
            ElementKind::Table
                | ElementKind::View
                | ElementKind::ComplexType
                | ElementKind::Group
                | ElementKind::Concept
        )
    }

    /// Rough cross-format equivalence used by structural voters: a `Table`
    /// plays the same role as a `ComplexType`, a `Column` the same role as an
    /// `Attribute` or leaf `XmlElement`.
    pub fn role_compatible(self, other: ElementKind) -> bool {
        self.is_container_like() == other.is_container_like()
    }
}

impl fmt::Display for ElementKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ElementKind::Table => "table",
            ElementKind::View => "view",
            ElementKind::Column => "column",
            ElementKind::ComplexType => "complexType",
            ElementKind::XmlElement => "element",
            ElementKind::Attribute => "attribute",
            ElementKind::Group => "group",
            ElementKind::Concept => "concept",
        };
        f.write_str(s)
    }
}

/// A node of a schema tree.
///
/// Elements are created through [`crate::Schema`]'s builder methods; the
/// fields are public for read access but structural invariants (parent/child
/// consistency, depth correctness) are maintained by the schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Element {
    /// This element's id in the owning schema's arena.
    pub id: ElementId,
    /// Name as it appears in the schema definition (e.g. `DATE_BEGIN_156`).
    pub name: String,
    /// The construct this node represents.
    pub kind: ElementKind,
    /// Normalized value type ([`DataType::None`] for containers).
    pub datatype: DataType,
    /// Attached documentation, if any.
    pub doc: Option<Documentation>,
    /// Parent element, `None` for roots.
    pub parent: Option<ElementId>,
    /// Children in definition order.
    pub children: Vec<ElementId>,
    /// Depth in the tree: roots (tables, top-level types) have depth 1,
    /// matching the paper's depth-filter convention ("relations appear at a
    /// depth of one and attributes at a depth of two").
    pub depth: u16,
}

impl Element {
    /// True when the element has no children.
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    /// Documentation text, or `""` when absent.
    pub fn doc_text(&self) -> &str {
        self.doc
            .as_ref()
            .map(|d| d.description.as_str())
            .unwrap_or("")
    }

    /// Whether any non-empty documentation is attached.
    pub fn has_doc(&self) -> bool {
        self.doc.as_ref().is_some_and(|d| !d.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(kind: ElementKind) -> Element {
        Element {
            id: ElementId(0),
            name: "X".into(),
            kind,
            datatype: DataType::Unknown,
            doc: None,
            parent: None,
            children: vec![],
            depth: 1,
        }
    }

    #[test]
    fn leaf_and_container_kinds_are_disjoint() {
        for k in [
            ElementKind::Table,
            ElementKind::View,
            ElementKind::Column,
            ElementKind::ComplexType,
            ElementKind::XmlElement,
            ElementKind::Attribute,
            ElementKind::Group,
            ElementKind::Concept,
        ] {
            // XmlElement is deliberately both: it can nest or carry a value.
            if k == ElementKind::XmlElement {
                assert!(k.is_leaf_like() && !k.is_container_like());
            } else {
                assert!(k.is_leaf_like() != k.is_container_like(), "{k}");
            }
        }
    }

    #[test]
    fn role_compatibility_crosses_formats() {
        assert!(ElementKind::Table.role_compatible(ElementKind::ComplexType));
        assert!(ElementKind::Column.role_compatible(ElementKind::Attribute));
        assert!(ElementKind::Column.role_compatible(ElementKind::XmlElement));
        assert!(!ElementKind::Table.role_compatible(ElementKind::Column));
    }

    #[test]
    fn doc_text_defaults_to_empty() {
        let mut e = sample(ElementKind::Column);
        assert_eq!(e.doc_text(), "");
        assert!(!e.has_doc());
        e.doc = Some(Documentation::embedded("the begin date"));
        assert_eq!(e.doc_text(), "the begin date");
        assert!(e.has_doc());
    }

    #[test]
    fn element_id_display_and_index() {
        assert_eq!(ElementId(17).to_string(), "e17");
        assert_eq!(ElementId(17).index(), 17);
    }
}

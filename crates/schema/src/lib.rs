//! # sm-schema — schema model substrate
//!
//! This crate provides the schema representation consumed by the Harmony-style
//! match engine in `harmony-core`. It reproduces the modelling assumptions of
//! *The Role of Schema Matching in Large Enterprises* (CIDR 2009):
//!
//! * Schemata are **trees of named elements**. In a relational schema, tables
//!   appear at depth 1 and columns at depth 2 (the paper's depth-filter
//!   example). In an XML schema, complex types nest arbitrarily deep.
//! * Every element may carry **textual documentation**; the paper's Harmony
//!   matcher "relies heavily on textual documentation … instead of data
//!   instances" (§3.2), so documentation is a first-class field here.
//! * Schemata are identified artifacts: a large enterprise manages *thousands*
//!   of them in a metadata registry (§2), so [`SchemaId`] and element paths
//!   are stable and serializable.
//!
//! The crate contains:
//!
//! * [`element`] / [`schema`] — the arena-based generic element tree.
//! * [`datatype`] — a compact data-type lattice with a compatibility measure.
//! * [`relational`] and [`xml`] — typed builders for the two schema formats
//!   the paper's case study involves (S_A was relational, S_B was XML).
//! * [`ddl`] and [`xsd`] — parsers for textual serializations of those two
//!   formats, so schemata can be loaded from files.
//! * [`stats`] — schema statistics used for summarization and search.
//! * [`path`] — slash-separated stable element paths.

#![warn(missing_docs)]

pub mod datatype;
pub mod ddl;
pub mod doc;
pub mod element;
pub mod error;
pub mod instances;
pub mod path;
pub mod relational;
pub mod schema;
pub mod stats;
pub mod xml;
pub mod xsd;

pub use datatype::DataType;
pub use doc::Documentation;
pub use element::{Element, ElementId, ElementKind};
pub use error::SchemaError;
pub use instances::{InstanceData, InstanceProfile};
pub use path::SchemaPath;
pub use relational::{ColumnSpec, RelationalSchemaBuilder, TableSpec};
pub use schema::{Schema, SchemaFormat, SchemaId};
pub use stats::SchemaStats;
pub use xml::{XmlNodeSpec, XmlSchemaBuilder};

//! Data instances attached to schema elements.
//!
//! The paper (§3.2) contrasts Harmony's documentation-driven matching with
//! conventional *instance-based* matchers, noting that in the government
//! sector "schema documentation is easier to obtain than data (which may not
//! yet exist, or may be sensitive)". To make that trade-off measurable, this
//! module stores sampled column/element values alongside a schema — when
//! they are available at all.

use crate::element::ElementId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Sampled instance values for (some) elements of one schema.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct InstanceData {
    values: HashMap<ElementId, Vec<String>>,
}

impl InstanceData {
    /// No instance data (the paper's common case).
    pub fn empty() -> Self {
        InstanceData::default()
    }

    /// Attach a sample of values to an element (replaces any previous
    /// sample).
    pub fn set(&mut self, element: ElementId, values: Vec<String>) {
        self.values.insert(element, values);
    }

    /// The sample for an element, if any.
    pub fn get(&self, element: ElementId) -> Option<&[String]> {
        self.values.get(&element).map(Vec::as_slice)
    }

    /// Number of elements carrying samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no element has instance data.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total number of sampled values across all elements.
    pub fn total_values(&self) -> usize {
        self.values.values().map(Vec::len).sum()
    }
}

/// Cheap distributional features of one element's value sample, precomputed
/// once so per-pair comparisons are O(feature count).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceProfile {
    /// Number of sampled values.
    pub count: usize,
    /// Distinct values / count (1.0 = key-like, small = code-like).
    pub distinct_ratio: f64,
    /// Mean value length in characters.
    pub mean_len: f64,
    /// Fraction of characters that are ASCII digits.
    pub digit_frac: f64,
    /// Fraction of characters that are ASCII letters.
    pub alpha_frac: f64,
    /// Fraction of values parsing as numbers.
    pub numeric_frac: f64,
    /// Up to 64 distinct lowercase values (for overlap estimation).
    pub value_sample: Vec<String>,
}

impl InstanceProfile {
    /// Profile a value sample. Returns `None` for an empty sample.
    pub fn from_values(values: &[String]) -> Option<Self> {
        if values.is_empty() {
            return None;
        }
        let mut distinct: std::collections::HashSet<String> =
            std::collections::HashSet::with_capacity(values.len().min(256));
        let mut chars = 0usize;
        let mut digits = 0usize;
        let mut alphas = 0usize;
        let mut numeric = 0usize;
        let mut len_sum = 0usize;
        for v in values {
            len_sum += v.chars().count();
            for c in v.chars() {
                chars += 1;
                if c.is_ascii_digit() {
                    digits += 1;
                } else if c.is_ascii_alphabetic() {
                    alphas += 1;
                }
            }
            if v.trim().parse::<f64>().is_ok() {
                numeric += 1;
            }
            if distinct.len() < 4096 {
                distinct.insert(v.to_lowercase());
            }
        }
        let mut value_sample: Vec<String> = distinct.iter().cloned().collect();
        value_sample.sort();
        value_sample.truncate(64);
        let n = values.len() as f64;
        let chars = chars.max(1) as f64;
        Some(InstanceProfile {
            count: values.len(),
            distinct_ratio: distinct.len() as f64 / n,
            mean_len: len_sum as f64 / n,
            digit_frac: digits as f64 / chars,
            alpha_frac: alphas as f64 / chars,
            numeric_frac: numeric as f64 / n,
            value_sample,
        })
    }

    /// Distributional similarity of two profiles in `[0, 1]`: a blend of
    /// feature closeness (length, character classes, distinctness) and
    /// direct value overlap (Jaccard over the retained samples).
    pub fn similarity(&self, other: &InstanceProfile) -> f64 {
        let closeness = |a: f64, b: f64, scale: f64| 1.0 - ((a - b).abs() / scale).min(1.0);
        let len_sim = closeness(self.mean_len, other.mean_len, 20.0);
        let digit_sim = closeness(self.digit_frac, other.digit_frac, 1.0);
        let alpha_sim = closeness(self.alpha_frac, other.alpha_frac, 1.0);
        let numeric_sim = closeness(self.numeric_frac, other.numeric_frac, 1.0);
        let distinct_sim = closeness(self.distinct_ratio, other.distinct_ratio, 1.0);
        let feature_sim = 0.2 * len_sim
            + 0.25 * digit_sim
            + 0.2 * alpha_sim
            + 0.2 * numeric_sim
            + 0.15 * distinct_sim;

        let a: std::collections::HashSet<&str> =
            self.value_sample.iter().map(String::as_str).collect();
        let b: std::collections::HashSet<&str> =
            other.value_sample.iter().map(String::as_str).collect();
        let inter = a.intersection(&b).count();
        let union = a.len() + b.len() - inter;
        let overlap = if union == 0 {
            0.0
        } else {
            inter as f64 / union as f64
        };
        // Shared actual values are strong evidence; distributional agreement
        // alone is weak (many unrelated columns are "short codes").
        (0.55 * feature_sim + 0.45 * overlap.sqrt()).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn empty_sample_has_no_profile() {
        assert!(InstanceProfile::from_values(&[]).is_none());
    }

    #[test]
    fn profile_features() {
        let p = InstanceProfile::from_values(&vals(&["12", "34", "12"])).unwrap();
        assert_eq!(p.count, 3);
        assert!((p.distinct_ratio - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(p.mean_len, 2.0);
        assert_eq!(p.digit_frac, 1.0);
        assert_eq!(p.alpha_frac, 0.0);
        assert_eq!(p.numeric_frac, 1.0);
        assert_eq!(p.value_sample, vals(&["12", "34"]));
    }

    #[test]
    fn same_distribution_scores_high() {
        let a = InstanceProfile::from_values(&vals(&["2024-01-02", "2023-11-30"])).unwrap();
        let b = InstanceProfile::from_values(&vals(&["2022-05-06", "2024-09-09"])).unwrap();
        let dates = a.similarity(&b);
        let names = InstanceProfile::from_values(&vals(&["Smith", "Jones", "Garcia"])).unwrap();
        let cross = a.similarity(&names);
        assert!(dates > cross, "dates {dates} vs cross {cross}");
        assert!((0.0..=1.0).contains(&dates));
    }

    #[test]
    fn shared_values_boost_similarity() {
        let a = InstanceProfile::from_values(&vals(&["alpha", "bravo", "charlie"])).unwrap();
        let b = InstanceProfile::from_values(&vals(&["alpha", "bravo", "delta"])).unwrap();
        let c = InstanceProfile::from_values(&vals(&["xx", "yy", "zz"])).unwrap();
        assert!(a.similarity(&b) > a.similarity(&c));
    }

    #[test]
    fn similarity_symmetric_and_reflexive() {
        let a = InstanceProfile::from_values(&vals(&["1", "2", "3"])).unwrap();
        let b = InstanceProfile::from_values(&vals(&["alpha", "beta"])).unwrap();
        assert!((a.similarity(&b) - b.similarity(&a)).abs() < 1e-12);
        assert!(a.similarity(&a) > 0.95);
    }

    #[test]
    fn instance_data_container() {
        let mut d = InstanceData::empty();
        assert!(d.is_empty());
        d.set(ElementId(3), vals(&["x", "y"]));
        assert_eq!(d.len(), 1);
        assert_eq!(d.total_values(), 2);
        assert_eq!(d.get(ElementId(3)).unwrap().len(), 2);
        assert!(d.get(ElementId(4)).is_none());
        d.set(ElementId(3), vals(&["z"]));
        assert_eq!(d.total_values(), 1, "replacement semantics");
    }

    #[test]
    fn case_insensitive_value_sample() {
        let p = InstanceProfile::from_values(&vals(&["ABC", "abc"])).unwrap();
        assert_eq!(p.value_sample.len(), 1);
    }
}

//! The arena-based schema tree.

use crate::datatype::DataType;
use crate::doc::Documentation;
use crate::element::{Element, ElementId, ElementKind};
use crate::error::SchemaError;
use crate::path::SchemaPath;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Stable identifier of a schema within a registry or matching effort.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SchemaId(pub u32);

impl fmt::Display for SchemaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// The serialization format a schema originated from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchemaFormat {
    /// Relational DDL (the paper's S_A, 1378 elements).
    Relational,
    /// XML Schema (the paper's S_B, 784 elements).
    Xml,
    /// Format-agnostic (summaries, mediated schemata, vocabularies).
    Generic,
}

impl fmt::Display for SchemaFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SchemaFormat::Relational => "relational",
            SchemaFormat::Xml => "xml",
            SchemaFormat::Generic => "generic",
        };
        f.write_str(s)
    }
}

/// A schema: a named forest of [`Element`]s held in a dense arena.
///
/// # Model
///
/// * Elements are stored in insertion order; [`ElementId`]s are dense indices
///   into that arena. This makes per-pair score matrices flat arrays.
/// * Roots have depth 1; each child is one deeper. The paper's depth filter
///   ("relations appear at a depth of one and attributes at a depth of two")
///   maps directly onto [`Element::depth`].
/// * An element *count* in the paper's sense (S_A "contains 1378 elements")
///   is simply [`Schema::len`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Schema {
    /// Registry identifier.
    pub id: SchemaId,
    /// Human-readable schema name (e.g. `"S_A"`).
    pub name: String,
    /// Originating format.
    pub format: SchemaFormat,
    elements: Vec<Element>,
    roots: Vec<ElementId>,
}

impl Schema {
    /// Create an empty schema.
    pub fn new(id: SchemaId, name: impl Into<String>, format: SchemaFormat) -> Self {
        Schema {
            id,
            name: name.into(),
            format,
            elements: Vec::new(),
            roots: Vec::new(),
        }
    }

    /// Number of elements (the paper's "schema size").
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// True when the schema has no elements.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Root elements in insertion order.
    pub fn roots(&self) -> &[ElementId] {
        &self.roots
    }

    /// Add a root element (depth 1). Returns its id.
    pub fn add_root(
        &mut self,
        name: impl Into<String>,
        kind: ElementKind,
        datatype: DataType,
    ) -> ElementId {
        let id = ElementId(self.elements.len() as u32);
        self.elements.push(Element {
            id,
            name: name.into(),
            kind,
            datatype,
            doc: None,
            parent: None,
            children: Vec::new(),
            depth: 1,
        });
        self.roots.push(id);
        id
    }

    /// Add a child of `parent`. Returns the new element's id, or an error if
    /// `parent` is not an element of this schema.
    pub fn add_child(
        &mut self,
        parent: ElementId,
        name: impl Into<String>,
        kind: ElementKind,
        datatype: DataType,
    ) -> Result<ElementId, SchemaError> {
        let parent_depth = self
            .elements
            .get(parent.index())
            .map(|e| e.depth)
            .ok_or(SchemaError::UnknownElement(parent.index()))?;
        let id = ElementId(self.elements.len() as u32);
        self.elements.push(Element {
            id,
            name: name.into(),
            kind,
            datatype,
            doc: None,
            parent: Some(parent),
            children: Vec::new(),
            depth: parent_depth + 1,
        });
        self.elements[parent.index()].children.push(id);
        Ok(id)
    }

    /// Attach documentation to an element.
    pub fn set_doc(&mut self, id: ElementId, doc: Documentation) -> Result<(), SchemaError> {
        self.elements
            .get_mut(id.index())
            .ok_or(SchemaError::UnknownElement(id.index()))?
            .doc = Some(doc);
        Ok(())
    }

    /// Borrow an element.
    pub fn element(&self, id: ElementId) -> &Element {
        &self.elements[id.index()]
    }

    /// Borrow an element, returning `None` for foreign ids.
    pub fn get(&self, id: ElementId) -> Option<&Element> {
        self.elements.get(id.index())
    }

    /// All elements in arena (insertion) order.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Ids of all elements, `0..len`.
    pub fn ids(&self) -> impl Iterator<Item = ElementId> + '_ {
        (0..self.elements.len() as u32).map(ElementId)
    }

    /// Pre-order depth-first traversal over the whole forest.
    pub fn preorder(&self) -> Preorder<'_> {
        let mut stack: Vec<ElementId> = self.roots.iter().rev().copied().collect();
        stack.reserve(16);
        Preorder {
            schema: self,
            stack,
        }
    }

    /// Pre-order traversal of the subtree rooted at `root` (inclusive).
    pub fn subtree(&self, root: ElementId) -> Preorder<'_> {
        Preorder {
            schema: self,
            stack: vec![root],
        }
    }

    /// Ids of the subtree rooted at `root`, in pre-order.
    pub fn subtree_ids(&self, root: ElementId) -> Vec<ElementId> {
        self.subtree(root).map(|e| e.id).collect()
    }

    /// Number of elements in the subtree rooted at `root` (inclusive).
    pub fn subtree_size(&self, root: ElementId) -> usize {
        self.subtree(root).count()
    }

    /// The root of the subtree containing `id` (i.e. its depth-1 ancestor).
    pub fn root_of(&self, id: ElementId) -> ElementId {
        let mut cur = id;
        while let Some(p) = self.elements[cur.index()].parent {
            cur = p;
        }
        cur
    }

    /// Chain of ancestors from `id`'s parent up to (and including) its root.
    pub fn ancestors(&self, id: ElementId) -> Vec<ElementId> {
        let mut out = Vec::new();
        let mut cur = self.elements[id.index()].parent;
        while let Some(p) = cur {
            out.push(p);
            cur = self.elements[p.index()].parent;
        }
        out
    }

    /// True when `ancestor` lies on the path from `id` to its root, or is
    /// `id` itself.
    pub fn is_in_subtree(&self, id: ElementId, ancestor: ElementId) -> bool {
        let mut cur = Some(id);
        while let Some(c) = cur {
            if c == ancestor {
                return true;
            }
            cur = self.elements[c.index()].parent;
        }
        false
    }

    /// Slash-separated path from root to `id`.
    pub fn path(&self, id: ElementId) -> SchemaPath {
        let mut names: Vec<&str> = vec![self.elements[id.index()].name.as_str()];
        let mut cur = self.elements[id.index()].parent;
        while let Some(p) = cur {
            names.push(self.elements[p.index()].name.as_str());
            cur = self.elements[p.index()].parent;
        }
        names.reverse();
        SchemaPath::from_segments(&names)
    }

    /// Find the first element with the given name (case-insensitive).
    pub fn find_by_name(&self, name: &str) -> Option<ElementId> {
        self.elements
            .iter()
            .find(|e| e.name.eq_ignore_ascii_case(name))
            .map(|e| e.id)
    }

    /// Find an element by its full path.
    pub fn find_by_path(&self, path: &SchemaPath) -> Option<ElementId> {
        let segs = path.segments();
        if segs.is_empty() {
            return None;
        }
        let mut candidates: Vec<ElementId> = self
            .roots
            .iter()
            .copied()
            .filter(|&r| self.elements[r.index()].name == segs[0])
            .collect();
        for seg in &segs[1..] {
            let mut next = Vec::new();
            for c in candidates {
                for &ch in &self.elements[c.index()].children {
                    if self.elements[ch.index()].name == *seg {
                        next.push(ch);
                    }
                }
            }
            candidates = next;
            if candidates.is_empty() {
                return None;
            }
        }
        candidates.first().copied()
    }

    /// Build a name → ids multimap (lowercased names) for fast joins.
    pub fn name_index(&self) -> HashMap<String, Vec<ElementId>> {
        let mut map: HashMap<String, Vec<ElementId>> = HashMap::with_capacity(self.len());
        for e in &self.elements {
            map.entry(e.name.to_ascii_lowercase())
                .or_default()
                .push(e.id);
        }
        map
    }

    /// Maximum depth of any element (0 for an empty schema).
    pub fn max_depth(&self) -> u16 {
        self.elements.iter().map(|e| e.depth).max().unwrap_or(0)
    }

    /// Ids of all elements at exactly the given depth.
    pub fn at_depth(&self, depth: u16) -> Vec<ElementId> {
        self.elements
            .iter()
            .filter(|e| e.depth == depth)
            .map(|e| e.id)
            .collect()
    }

    /// Fraction of elements carrying non-empty documentation, in `[0,1]`.
    pub fn doc_coverage(&self) -> f64 {
        if self.elements.is_empty() {
            return 0.0;
        }
        let documented = self.elements.iter().filter(|e| e.has_doc()).count();
        documented as f64 / self.elements.len() as f64
    }

    /// Validate structural invariants; used by tests and after parsing.
    ///
    /// Checks: parent/child mutual consistency, depth correctness, all roots
    /// have no parent, every non-root is reachable from a root.
    pub fn validate(&self) -> Result<(), SchemaError> {
        for e in &self.elements {
            match e.parent {
                None => {
                    if e.depth != 1 {
                        return Err(SchemaError::InvalidStructure(format!(
                            "root {} has depth {}",
                            e.name, e.depth
                        )));
                    }
                    if !self.roots.contains(&e.id) {
                        return Err(SchemaError::InvalidStructure(format!(
                            "parentless element {} not registered as root",
                            e.name
                        )));
                    }
                }
                Some(p) => {
                    let pe = self
                        .elements
                        .get(p.index())
                        .ok_or(SchemaError::UnknownElement(p.index()))?;
                    if pe.depth + 1 != e.depth {
                        return Err(SchemaError::InvalidStructure(format!(
                            "element {} depth {} but parent depth {}",
                            e.name, e.depth, pe.depth
                        )));
                    }
                    if !pe.children.contains(&e.id) {
                        return Err(SchemaError::InvalidStructure(format!(
                            "parent of {} does not list it as child",
                            e.name
                        )));
                    }
                }
            }
            for &c in &e.children {
                let ce = self
                    .elements
                    .get(c.index())
                    .ok_or(SchemaError::UnknownElement(c.index()))?;
                if ce.parent != Some(e.id) {
                    return Err(SchemaError::InvalidStructure(format!(
                        "child {} of {} has wrong parent",
                        ce.name, e.name
                    )));
                }
            }
        }
        let reachable: usize = self.roots.iter().map(|&r| self.subtree_size(r)).sum();
        if reachable != self.elements.len() {
            return Err(SchemaError::InvalidStructure(format!(
                "{} elements but only {} reachable from roots",
                self.elements.len(),
                reachable
            )));
        }
        Ok(())
    }
}

/// Pre-order DFS iterator over a schema (or subtree). See [`Schema::preorder`].
pub struct Preorder<'a> {
    schema: &'a Schema,
    stack: Vec<ElementId>,
}

impl<'a> Iterator for Preorder<'a> {
    type Item = &'a Element;

    fn next(&mut self) -> Option<Self::Item> {
        let id = self.stack.pop()?;
        let e = &self.schema.elements[id.index()];
        // Push children reversed so the leftmost child pops first.
        self.stack.extend(e.children.iter().rev());
        Some(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two tables with columns — the shape of a miniature S_A.
    fn tiny_relational() -> Schema {
        let mut s = Schema::new(SchemaId(0), "S_A", SchemaFormat::Relational);
        let person = s.add_root("Person", ElementKind::Table, DataType::None);
        s.add_child(person, "person_id", ElementKind::Column, DataType::Integer)
            .unwrap();
        s.add_child(
            person,
            "last_name",
            ElementKind::Column,
            DataType::varchar(40),
        )
        .unwrap();
        let vehicle = s.add_root("Vehicle", ElementKind::Table, DataType::None);
        s.add_child(vehicle, "vin", ElementKind::Column, DataType::varchar(17))
            .unwrap();
        s
    }

    #[test]
    fn counts_and_depths_follow_paper_convention() {
        let s = tiny_relational();
        assert_eq!(s.len(), 5);
        assert_eq!(s.max_depth(), 2);
        assert_eq!(s.at_depth(1).len(), 2, "tables at depth 1");
        assert_eq!(s.at_depth(2).len(), 3, "columns at depth 2");
        s.validate().unwrap();
    }

    #[test]
    fn preorder_visits_parent_before_children_left_to_right() {
        let s = tiny_relational();
        let names: Vec<&str> = s.preorder().map(|e| e.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["Person", "person_id", "last_name", "Vehicle", "vin"]
        );
    }

    #[test]
    fn subtree_iterates_only_descendants() {
        let s = tiny_relational();
        let person = s.find_by_name("Person").unwrap();
        let names: Vec<&str> = s.subtree(person).map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["Person", "person_id", "last_name"]);
        assert_eq!(s.subtree_size(person), 3);
    }

    #[test]
    fn root_of_and_ancestors() {
        let s = tiny_relational();
        let vin = s.find_by_name("vin").unwrap();
        let vehicle = s.find_by_name("Vehicle").unwrap();
        assert_eq!(s.root_of(vin), vehicle);
        assert_eq!(s.root_of(vehicle), vehicle);
        assert_eq!(s.ancestors(vin), vec![vehicle]);
        assert!(s.ancestors(vehicle).is_empty());
    }

    #[test]
    fn subtree_membership() {
        let s = tiny_relational();
        let vin = s.find_by_name("vin").unwrap();
        let vehicle = s.find_by_name("Vehicle").unwrap();
        let person = s.find_by_name("Person").unwrap();
        assert!(s.is_in_subtree(vin, vehicle));
        assert!(s.is_in_subtree(vehicle, vehicle));
        assert!(!s.is_in_subtree(vin, person));
    }

    #[test]
    fn paths_round_trip() {
        let s = tiny_relational();
        let vin = s.find_by_name("vin").unwrap();
        let p = s.path(vin);
        assert_eq!(p.to_string(), "Vehicle/vin");
        assert_eq!(s.find_by_path(&p), Some(vin));
        assert_eq!(s.find_by_path(&SchemaPath::parse("Vehicle/nope")), None);
    }

    #[test]
    fn name_lookup_is_case_insensitive() {
        let s = tiny_relational();
        assert!(s.find_by_name("PERSON").is_some());
        assert!(s.find_by_name("missing").is_none());
    }

    #[test]
    fn name_index_groups_duplicates() {
        let mut s = tiny_relational();
        let v = s.find_by_name("Vehicle").unwrap();
        s.add_child(v, "last_name", ElementKind::Column, DataType::text())
            .unwrap();
        let idx = s.name_index();
        assert_eq!(idx["last_name"].len(), 2);
    }

    #[test]
    fn doc_coverage_fraction() {
        let mut s = tiny_relational();
        assert_eq!(s.doc_coverage(), 0.0);
        let vin = s.find_by_name("vin").unwrap();
        s.set_doc(
            vin,
            Documentation::embedded("vehicle identification number"),
        )
        .unwrap();
        assert!((s.doc_coverage() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn add_child_rejects_foreign_parent() {
        let mut s = tiny_relational();
        let err = s
            .add_child(ElementId(999), "x", ElementKind::Column, DataType::text())
            .unwrap_err();
        assert_eq!(err, SchemaError::UnknownElement(999));
    }

    #[test]
    fn empty_schema_is_valid() {
        let s = Schema::new(SchemaId(9), "empty", SchemaFormat::Generic);
        assert!(s.is_empty());
        assert_eq!(s.max_depth(), 0);
        s.validate().unwrap();
        assert_eq!(s.doc_coverage(), 0.0);
    }

    #[test]
    fn serde_round_trip() {
        let s = tiny_relational();
        let json = serde_json_like(&s);
        assert!(json.contains("Vehicle"));
    }

    /// We don't depend on serde_json; smoke-test Serialize via the debug
    /// representation of the serde data model using `serde::Serialize` bound.
    fn serde_json_like<T: serde::Serialize + std::fmt::Debug>(v: &T) -> String {
        format!("{v:?}")
    }
}

//! Typed builder for XML schemata.
//!
//! The paper's S_B "is an XML Schema, contains 784 elements". In the element
//! model a top-level complex type is a depth-1 root; nested elements and
//! attributes descend from it. Cardinality (`minOccurs`/`maxOccurs`) is kept
//! because structural voters use repeatability as evidence.

use crate::datatype::DataType;
use crate::doc::Documentation;
use crate::element::{ElementId, ElementKind};
use crate::error::SchemaError;
use crate::schema::{Schema, SchemaFormat, SchemaId};
use serde::{Deserialize, Serialize};

/// Occurrence constraint of an XML node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Occurs {
    /// Minimum occurrences.
    pub min: u32,
    /// Maximum occurrences; `None` = unbounded.
    pub max: Option<u32>,
}

impl Occurs {
    /// Exactly one (the XSD default).
    pub const ONE: Occurs = Occurs {
        min: 1,
        max: Some(1),
    };
    /// Zero or one.
    pub const OPTIONAL: Occurs = Occurs {
        min: 0,
        max: Some(1),
    };
    /// Zero or more.
    pub const MANY: Occurs = Occurs { min: 0, max: None };

    /// True when more than one occurrence is allowed.
    pub fn repeats(self) -> bool {
        self.max.is_none_or(|m| m > 1)
    }
}

impl Default for Occurs {
    fn default() -> Self {
        Occurs::ONE
    }
}

/// Specification of one node in an XML schema tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct XmlNodeSpec {
    /// Node name.
    pub name: String,
    /// Element vs attribute vs nested complex type.
    pub kind: XmlNodeKind,
    /// Value type for simple content.
    pub datatype: DataType,
    /// Occurrence constraint (ignored for attributes).
    pub occurs: Occurs,
    /// Optional documentation (xs:annotation/xs:documentation).
    pub doc: Option<String>,
    /// Nested children.
    pub children: Vec<XmlNodeSpec>,
}

/// Kinds of XML schema nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum XmlNodeKind {
    /// An element declaration (may nest or carry simple content).
    Element,
    /// An attribute declaration.
    Attribute,
    /// A named complex type (containers only).
    ComplexType,
}

impl XmlNodeSpec {
    /// A simple-content element.
    pub fn element(name: impl Into<String>, datatype: DataType) -> Self {
        XmlNodeSpec {
            name: name.into(),
            kind: XmlNodeKind::Element,
            datatype,
            occurs: Occurs::ONE,
            doc: None,
            children: Vec::new(),
        }
    }

    /// An attribute.
    pub fn attribute(name: impl Into<String>, datatype: DataType) -> Self {
        XmlNodeSpec {
            name: name.into(),
            kind: XmlNodeKind::Attribute,
            datatype,
            occurs: Occurs::OPTIONAL,
            doc: None,
            children: Vec::new(),
        }
    }

    /// A container element / complex type.
    pub fn complex(name: impl Into<String>) -> Self {
        XmlNodeSpec {
            name: name.into(),
            kind: XmlNodeKind::ComplexType,
            datatype: DataType::None,
            occurs: Occurs::ONE,
            doc: None,
            children: Vec::new(),
        }
    }

    /// Append a child node.
    pub fn child(mut self, c: XmlNodeSpec) -> Self {
        self.children.push(c);
        self
    }

    /// Set the occurrence constraint.
    pub fn occurs(mut self, occurs: Occurs) -> Self {
        self.occurs = occurs;
        self
    }

    /// Attach documentation.
    pub fn documented(mut self, doc: impl Into<String>) -> Self {
        self.doc = Some(doc.into());
        self
    }

    /// Total node count of this spec (itself plus descendants).
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(XmlNodeSpec::size).sum::<usize>()
    }
}

/// Builder assembling an XML [`Schema`] from root [`XmlNodeSpec`]s.
#[derive(Debug)]
pub struct XmlSchemaBuilder {
    id: SchemaId,
    name: String,
    roots: Vec<XmlNodeSpec>,
}

impl XmlSchemaBuilder {
    /// Start a new XML schema.
    pub fn new(id: SchemaId, name: impl Into<String>) -> Self {
        XmlSchemaBuilder {
            id,
            name: name.into(),
            roots: Vec::new(),
        }
    }

    /// Append a top-level node (complex type or global element).
    pub fn root(mut self, spec: XmlNodeSpec) -> Self {
        self.roots.push(spec);
        self
    }

    /// Append many top-level nodes.
    pub fn roots(mut self, specs: impl IntoIterator<Item = XmlNodeSpec>) -> Self {
        self.roots.extend(specs);
        self
    }

    /// Build the schema.
    pub fn build(self) -> Result<Schema, SchemaError> {
        let mut schema = Schema::new(self.id, self.name, SchemaFormat::Xml);
        for spec in &self.roots {
            Self::check_names(spec)?;
        }
        for spec in self.roots {
            let kind = element_kind(&spec);
            let id = schema.add_root(&spec.name, kind, spec.datatype);
            if let Some(doc) = &spec.doc {
                schema.set_doc(id, Documentation::embedded(doc))?;
            }
            Self::add_children(&mut schema, id, &spec.children)?;
        }
        debug_assert!(schema.validate().is_ok());
        Ok(schema)
    }

    fn check_names(spec: &XmlNodeSpec) -> Result<(), SchemaError> {
        if spec.name.trim().is_empty() {
            return Err(SchemaError::InvalidName(spec.name.clone()));
        }
        spec.children.iter().try_for_each(Self::check_names)
    }

    fn add_children(
        schema: &mut Schema,
        parent: ElementId,
        children: &[XmlNodeSpec],
    ) -> Result<(), SchemaError> {
        for c in children {
            let id = schema.add_child(parent, &c.name, element_kind(c), c.datatype)?;
            if let Some(doc) = &c.doc {
                schema.set_doc(id, Documentation::embedded(doc))?;
            }
            Self::add_children(schema, id, &c.children)?;
        }
        Ok(())
    }
}

fn element_kind(spec: &XmlNodeSpec) -> ElementKind {
    match spec.kind {
        XmlNodeKind::Attribute => ElementKind::Attribute,
        XmlNodeKind::ComplexType => ElementKind::ComplexType,
        XmlNodeKind::Element => {
            if spec.children.is_empty() {
                ElementKind::XmlElement
            } else {
                // Elements with children behave as containers structurally.
                ElementKind::XmlElement
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vehicle_type() -> XmlNodeSpec {
        XmlNodeSpec::complex("VehicleType")
            .documented("a ground vehicle")
            .child(XmlNodeSpec::attribute("id", DataType::text()))
            .child(XmlNodeSpec::element("Vin", DataType::varchar(17)))
            .child(
                XmlNodeSpec::complex("Wheel")
                    .occurs(Occurs::MANY)
                    .child(XmlNodeSpec::element("Size", DataType::Integer)),
            )
    }

    #[test]
    fn builds_nested_tree_with_depths() {
        let s = XmlSchemaBuilder::new(SchemaId(2), "S_B")
            .root(vehicle_type())
            .build()
            .unwrap();
        assert_eq!(s.len(), 5);
        assert_eq!(s.format, SchemaFormat::Xml);
        assert_eq!(s.max_depth(), 3);
        let size = s.find_by_name("Size").unwrap();
        assert_eq!(s.element(size).depth, 3);
        assert_eq!(s.path(size).to_string(), "VehicleType/Wheel/Size");
        s.validate().unwrap();
    }

    #[test]
    fn spec_size_counts_descendants() {
        assert_eq!(vehicle_type().size(), 5);
        assert_eq!(XmlNodeSpec::element("x", DataType::text()).size(), 1);
    }

    #[test]
    fn occurs_semantics() {
        assert!(!Occurs::ONE.repeats());
        assert!(!Occurs::OPTIONAL.repeats());
        assert!(Occurs::MANY.repeats());
        assert!(Occurs {
            min: 1,
            max: Some(8)
        }
        .repeats());
        assert_eq!(Occurs::default(), Occurs::ONE);
    }

    #[test]
    fn attribute_and_kind_mapping() {
        let s = XmlSchemaBuilder::new(SchemaId(2), "x")
            .root(vehicle_type())
            .build()
            .unwrap();
        let id = s.find_by_name("id").unwrap();
        assert_eq!(s.element(id).kind, ElementKind::Attribute);
        let vt = s.find_by_name("VehicleType").unwrap();
        assert_eq!(s.element(vt).kind, ElementKind::ComplexType);
        let vin = s.find_by_name("Vin").unwrap();
        assert_eq!(s.element(vin).kind, ElementKind::XmlElement);
    }

    #[test]
    fn empty_nested_name_rejected() {
        let bad = XmlNodeSpec::complex("A").child(XmlNodeSpec::element(" ", DataType::text()));
        assert!(XmlSchemaBuilder::new(SchemaId(2), "x")
            .root(bad)
            .build()
            .is_err());
    }

    #[test]
    fn multiple_roots_supported() {
        let s = XmlSchemaBuilder::new(SchemaId(2), "x")
            .root(XmlNodeSpec::complex("A"))
            .root(XmlNodeSpec::complex("B"))
            .build()
            .unwrap();
        assert_eq!(s.roots().len(), 2);
    }
}

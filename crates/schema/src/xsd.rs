//! Mini-XSD parser.
//!
//! Parses the subset of XML Schema that matters to a matcher: `xs:element`,
//! `xs:complexType`, `xs:sequence`/`xs:all`/`xs:choice`, `xs:attribute`, and
//! `xs:annotation`/`xs:documentation` (which becomes element documentation).
//! A hand-rolled XML pull tokenizer keeps the crate dependency-free.
//!
//! ```
//! use sm_schema::xsd::parse_xsd;
//! use sm_schema::SchemaId;
//!
//! let s = parse_xsd(SchemaId(2), "S_B", r#"
//! <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
//!   <xs:element name="Vehicle">
//!     <xs:annotation><xs:documentation>a ground vehicle</xs:documentation></xs:annotation>
//!     <xs:complexType>
//!       <xs:sequence>
//!         <xs:element name="Vin" type="xs:string"/>
//!       </xs:sequence>
//!       <xs:attribute name="id" type="xs:string"/>
//!     </xs:complexType>
//!   </xs:element>
//! </xs:schema>
//! "#).unwrap();
//! assert_eq!(s.len(), 3);
//! ```

use crate::datatype::{parse_xsd_type, DataType};
use crate::error::SchemaError;
use crate::schema::{Schema, SchemaId};
use crate::xml::{Occurs, XmlNodeSpec, XmlSchemaBuilder};

/// Parse mini-XSD text into an XML [`Schema`].
pub fn parse_xsd(id: SchemaId, name: &str, input: &str) -> Result<Schema, SchemaError> {
    let tokens = tokenize(input)?;
    let mut parser = XsdParser { tokens, pos: 0 };
    let roots = parser.parse_schema()?;
    XmlSchemaBuilder::new(id, name).roots(roots).build()
}

// ---------------------------------------------------------------------------
// XML pull tokenizer
// ---------------------------------------------------------------------------

/// One XML token.
#[derive(Debug, Clone, PartialEq)]
enum Token {
    /// `<name attr="v" ...>`; `self_closing` for `<.../>`.
    Open {
        name: String,
        attrs: Vec<(String, String)>,
        self_closing: bool,
        line: usize,
    },
    /// `</name>`.
    Close { name: String, line: usize },
    /// Character data between tags (whitespace-trimmed, entities decoded).
    Text { value: String },
}

/// Tokenize an XML document. Comments and processing instructions are
/// skipped; CDATA is not supported (XSD files do not need it).
fn tokenize(input: &str) -> Result<Vec<Token>, SchemaError> {
    let bytes = input.as_bytes();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut out = Vec::new();
    let mut text = String::new();

    let err = |line: usize, message: String| SchemaError::Parse { line, message };

    while i < bytes.len() {
        if bytes[i] == b'<' {
            let t = text.trim();
            if !t.is_empty() {
                out.push(Token::Text {
                    value: decode_entities(t),
                });
            }
            text.clear();

            if input[i..].starts_with("<!--") {
                match input[i..].find("-->") {
                    Some(end) => {
                        line += input[i..i + end].matches('\n').count();
                        i += end + 3;
                    }
                    None => return Err(err(line, "unterminated comment".into())),
                }
                continue;
            }
            if input[i..].starts_with("<?") {
                match input[i..].find("?>") {
                    Some(end) => {
                        i += end + 2;
                    }
                    None => return Err(err(line, "unterminated processing instruction".into())),
                }
                continue;
            }
            let close = input[i..]
                .find('>')
                .ok_or_else(|| err(line, "unterminated tag".into()))?;
            let tag = &input[i + 1..i + close];
            line += tag.matches('\n').count();
            i += close + 1;

            if let Some(name) = tag.strip_prefix('/') {
                out.push(Token::Close {
                    name: name.trim().to_string(),
                    line,
                });
            } else {
                let self_closing = tag.ends_with('/');
                let body = tag.trim_end_matches('/');
                let (name, attrs) = parse_tag_body(body, line)?;
                out.push(Token::Open {
                    name,
                    attrs,
                    self_closing,
                    line,
                });
            }
        } else {
            if bytes[i] == b'\n' {
                line += 1;
            }
            // Safe: we iterate byte-wise but only push whole chars.
            let ch_len = utf8_len(bytes[i]);
            text.push_str(&input[i..i + ch_len]);
            i += ch_len;
        }
    }
    Ok(out)
}

fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Parse `name attr="v" attr2='w'` into the tag name and attribute list.
fn parse_tag_body(body: &str, line: usize) -> Result<(String, Vec<(String, String)>), SchemaError> {
    let body = body.trim();
    let name_end = body.find(|c: char| c.is_whitespace()).unwrap_or(body.len());
    let name = body[..name_end].to_string();
    if name.is_empty() {
        return Err(SchemaError::Parse {
            line,
            message: "empty tag name".into(),
        });
    }
    let mut attrs = Vec::new();
    let mut rest = body[name_end..].trim();
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or(SchemaError::Parse {
            line,
            message: format!("attribute without value near {rest:?}"),
        })?;
        let key = rest[..eq].trim().to_string();
        let after = rest[eq + 1..].trim_start();
        let quote = after.chars().next().ok_or(SchemaError::Parse {
            line,
            message: "attribute missing value".into(),
        })?;
        if quote != '"' && quote != '\'' {
            return Err(SchemaError::Parse {
                line,
                message: format!("unquoted attribute value near {after:?}"),
            });
        }
        let end = after[1..].find(quote).ok_or(SchemaError::Parse {
            line,
            message: "unterminated attribute value".into(),
        })?;
        attrs.push((key, decode_entities(&after[1..1 + end])));
        rest = after[end + 2..].trim_start();
    }
    Ok((name, attrs))
}

fn decode_entities(s: &str) -> String {
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&apos;", "'")
        .replace("&amp;", "&")
}

// ---------------------------------------------------------------------------
// XSD interpretation
// ---------------------------------------------------------------------------

struct XsdParser {
    tokens: Vec<Token>,
    pos: usize,
}

impl XsdParser {
    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Consume tokens until the matching close of an already-consumed open
    /// tag with the given local name.
    fn skip_to_close(&mut self, local: &str) -> Result<(), SchemaError> {
        let mut depth = 1usize;
        while let Some(t) = self.next() {
            match t {
                Token::Open {
                    name, self_closing, ..
                } => {
                    if !self_closing && local_name(&name) == local {
                        depth += 1;
                    }
                }
                Token::Close { name, .. } => {
                    if local_name(&name) == local {
                        depth -= 1;
                        if depth == 0 {
                            return Ok(());
                        }
                    }
                }
                Token::Text { .. } => {}
            }
        }
        Err(SchemaError::Parse {
            line: 0,
            message: format!("unterminated <{local}>"),
        })
    }

    /// Top level: expect `<xs:schema>` containing global elements and types.
    fn parse_schema(&mut self) -> Result<Vec<XmlNodeSpec>, SchemaError> {
        // Find the xs:schema open tag.
        loop {
            match self.next() {
                Some(Token::Open {
                    name, self_closing, ..
                }) if local_name(&name) == "schema" => {
                    if self_closing {
                        return Ok(Vec::new());
                    }
                    break;
                }
                Some(Token::Text { .. }) => continue,
                Some(other) => {
                    let line = token_line(&other);
                    return Err(SchemaError::Parse {
                        line,
                        message: "expected <xs:schema> root".into(),
                    });
                }
                None => {
                    return Err(SchemaError::Parse {
                        line: 0,
                        message: "empty document".into(),
                    })
                }
            }
        }
        let mut roots = Vec::new();
        loop {
            match self.next() {
                Some(Token::Open {
                    name,
                    attrs,
                    self_closing,
                    line,
                }) => match local_name(&name) {
                    "element" => {
                        roots.push(self.parse_element(&attrs, self_closing, line)?);
                    }
                    "complexType" => {
                        roots.push(self.parse_named_complex_type(&attrs, self_closing, line)?);
                    }
                    other => {
                        if !self_closing {
                            self.skip_to_close(other)?;
                        }
                    }
                },
                Some(Token::Close { name, .. }) if local_name(&name) == "schema" => break,
                Some(_) => continue,
                None => {
                    return Err(SchemaError::Parse {
                        line: 0,
                        message: "unterminated <xs:schema>".into(),
                    })
                }
            }
        }
        Ok(roots)
    }

    /// Parse an `xs:element` whose open tag has been consumed.
    fn parse_element(
        &mut self,
        attrs: &[(String, String)],
        self_closing: bool,
        line: usize,
    ) -> Result<XmlNodeSpec, SchemaError> {
        let name =
            attr(attrs, "name")
                .or_else(|| attr(attrs, "ref"))
                .ok_or(SchemaError::Parse {
                    line,
                    message: "xs:element missing name".into(),
                })?;
        let dtype = attr(attrs, "type")
            .map(|t| parse_xsd_type(&t))
            .unwrap_or(DataType::Unknown);
        let occurs = parse_occurs(attrs);
        let mut spec = XmlNodeSpec::element(name, dtype).occurs(occurs);

        if self_closing {
            return Ok(spec);
        }
        // Children: annotation (doc), inline complexType.
        loop {
            match self.next() {
                Some(Token::Open {
                    name,
                    attrs: cattrs,
                    self_closing: sc,
                    line: cl,
                }) => match local_name(&name) {
                    "annotation" => {
                        if !sc {
                            if let Some(doc) = self.parse_annotation()? {
                                spec = spec.documented(doc);
                            }
                        }
                    }
                    "complexType" => {
                        if !sc {
                            let (children, doc) = self.parse_complex_body()?;
                            for c in children {
                                spec = spec.child(c);
                            }
                            if let (None, Some(d)) = (&spec.doc, doc) {
                                spec = spec.documented(d);
                            }
                            if spec.datatype == DataType::Unknown && !spec.children.is_empty() {
                                spec.datatype = DataType::None;
                            }
                        }
                    }
                    "simpleType" => {
                        if !sc {
                            self.skip_to_close("simpleType")?;
                        }
                    }
                    other => {
                        if !sc {
                            self.skip_to_close(other)?;
                        }
                        let _ = (cattrs, cl);
                    }
                },
                Some(Token::Close { name, .. }) if local_name(&name) == "element" => break,
                Some(_) => continue,
                None => {
                    return Err(SchemaError::Parse {
                        line,
                        message: "unterminated xs:element".into(),
                    })
                }
            }
        }
        Ok(spec)
    }

    /// Parse a named top-level `xs:complexType` (open tag consumed).
    fn parse_named_complex_type(
        &mut self,
        attrs: &[(String, String)],
        self_closing: bool,
        line: usize,
    ) -> Result<XmlNodeSpec, SchemaError> {
        let name = attr(attrs, "name").ok_or(SchemaError::Parse {
            line,
            message: "top-level xs:complexType missing name".into(),
        })?;
        let mut spec = XmlNodeSpec::complex(name);
        if !self_closing {
            let (children, doc) = self.parse_complex_body()?;
            for c in children {
                spec = spec.child(c);
            }
            if let Some(d) = doc {
                spec = spec.documented(d);
            }
        }
        Ok(spec)
    }

    /// Parse the body of a complexType (open tag consumed) up to its close.
    /// Returns (children, documentation).
    fn parse_complex_body(&mut self) -> Result<(Vec<XmlNodeSpec>, Option<String>), SchemaError> {
        let mut children = Vec::new();
        let mut doc = None;
        loop {
            match self.next() {
                Some(Token::Open {
                    name,
                    attrs,
                    self_closing,
                    line,
                }) => match local_name(&name) {
                    "sequence" | "all" | "choice" => {
                        // Transparent containers; recurse inline.
                        if self_closing {
                            continue;
                        }
                    }
                    "element" => {
                        children.push(self.parse_element(&attrs, self_closing, line)?);
                    }
                    "attribute" => {
                        let aname = attr(&attrs, "name").ok_or(SchemaError::Parse {
                            line,
                            message: "xs:attribute missing name".into(),
                        })?;
                        let dtype = attr(&attrs, "type")
                            .map(|t| parse_xsd_type(&t))
                            .unwrap_or(DataType::Unknown);
                        let mut a = XmlNodeSpec::attribute(aname, dtype);
                        if !self_closing {
                            // Attributes may carry annotations too.
                            if let Some(d) = self.parse_until_close_collect_doc("attribute")? {
                                a = a.documented(d);
                            }
                        }
                        children.push(a);
                    }
                    "annotation" => {
                        if !self_closing {
                            doc = self.parse_annotation()?.or(doc);
                        }
                    }
                    other => {
                        if !self_closing {
                            self.skip_to_close(other)?;
                        }
                    }
                },
                Some(Token::Close { name, .. }) => match local_name(&name) {
                    "complexType" => break,
                    "sequence" | "all" | "choice" => continue,
                    other => {
                        return Err(SchemaError::Parse {
                            line: 0,
                            message: format!("unexpected </{other}> inside complexType"),
                        })
                    }
                },
                Some(Token::Text { .. }) => continue,
                None => {
                    return Err(SchemaError::Parse {
                        line: 0,
                        message: "unterminated xs:complexType".into(),
                    })
                }
            }
        }
        Ok((children, doc))
    }

    /// Parse `<xs:annotation>` (open consumed): return the concatenated text
    /// of all nested `<xs:documentation>` blocks.
    fn parse_annotation(&mut self) -> Result<Option<String>, SchemaError> {
        let mut docs: Vec<String> = Vec::new();
        let mut in_doc = false;
        loop {
            match self.next() {
                Some(Token::Open {
                    name, self_closing, ..
                }) => {
                    if local_name(&name) == "documentation" && !self_closing {
                        in_doc = true;
                    }
                }
                Some(Token::Text { value }) => {
                    if in_doc {
                        docs.push(value);
                    }
                }
                Some(Token::Close { name, .. }) => match local_name(&name) {
                    "documentation" => in_doc = false,
                    "annotation" => break,
                    _ => {}
                },
                None => {
                    return Err(SchemaError::Parse {
                        line: 0,
                        message: "unterminated xs:annotation".into(),
                    })
                }
            }
        }
        if docs.is_empty() {
            Ok(None)
        } else {
            Ok(Some(docs.join(" ")))
        }
    }

    /// Skip to the close of `local`, collecting any annotation doc text.
    fn parse_until_close_collect_doc(
        &mut self,
        local: &str,
    ) -> Result<Option<String>, SchemaError> {
        let mut doc = None;
        loop {
            match self.next() {
                Some(Token::Open {
                    name, self_closing, ..
                }) => {
                    if local_name(&name) == "annotation" && !self_closing {
                        doc = self.parse_annotation()?.or(doc);
                    } else if !self_closing {
                        self.skip_to_close(local_name(&name))?;
                    }
                }
                Some(Token::Close { name, .. }) if local_name(&name) == local => break,
                Some(_) => continue,
                None => {
                    return Err(SchemaError::Parse {
                        line: 0,
                        message: format!("unterminated <{local}>"),
                    })
                }
            }
        }
        Ok(doc)
    }
}

fn local_name(qname: &str) -> &str {
    qname.rsplit(':').next().unwrap_or(qname)
}

fn attr(attrs: &[(String, String)], key: &str) -> Option<String> {
    attrs
        .iter()
        .find(|(k, _)| k == key || local_name(k) == key)
        .map(|(_, v)| v.clone())
}

fn parse_occurs(attrs: &[(String, String)]) -> Occurs {
    let min = attr(attrs, "minOccurs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let max = match attr(attrs, "maxOccurs") {
        Some(v) if v == "unbounded" => None,
        Some(v) => v.parse().ok().or(Some(1)),
        None => Some(1),
    };
    Occurs { min, max }
}

fn token_line(t: &Token) -> usize {
    match t {
        Token::Open { line, .. } | Token::Close { line, .. } => *line,
        Token::Text { .. } => 0,
    }
}

/// Render an XML schema back to mini-XSD (used by exporters and tests).
pub fn to_xsd(schema: &Schema) -> String {
    use crate::element::{ElementId, ElementKind};
    fn render(schema: &Schema, id: ElementId, indent: usize, out: &mut String) {
        let e = schema.element(id);
        let pad = "  ".repeat(indent);
        match e.kind {
            ElementKind::Attribute => {
                out.push_str(&format!(
                    "{pad}<xs:attribute name=\"{}\" type=\"{}\"/>\n",
                    e.name,
                    xsd_type_name(e.datatype)
                ));
            }
            ElementKind::ComplexType | ElementKind::Group => {
                out.push_str(&format!("{pad}<xs:complexType name=\"{}\">\n", e.name));
                if let Some(d) = &e.doc {
                    out.push_str(&format!(
                        "{pad}  <xs:annotation><xs:documentation>{}</xs:documentation></xs:annotation>\n",
                        d.description
                    ));
                }
                out.push_str(&format!("{pad}  <xs:sequence>\n"));
                for &c in &e.children {
                    render(schema, c, indent + 2, out);
                }
                out.push_str(&format!("{pad}  </xs:sequence>\n"));
                out.push_str(&format!("{pad}</xs:complexType>\n"));
            }
            _ => {
                if e.children.is_empty() {
                    out.push_str(&format!(
                        "{pad}<xs:element name=\"{}\" type=\"{}\"",
                        e.name,
                        xsd_type_name(e.datatype)
                    ));
                    if let Some(d) = &e.doc {
                        out.push_str(&format!(
                            ">\n{pad}  <xs:annotation><xs:documentation>{}</xs:documentation></xs:annotation>\n{pad}</xs:element>\n",
                            d.description
                        ));
                    } else {
                        out.push_str("/>\n");
                    }
                } else {
                    out.push_str(&format!("{pad}<xs:element name=\"{}\">\n", e.name));
                    if let Some(d) = &e.doc {
                        out.push_str(&format!(
                            "{pad}  <xs:annotation><xs:documentation>{}</xs:documentation></xs:annotation>\n",
                            d.description
                        ));
                    }
                    out.push_str(&format!("{pad}  <xs:complexType><xs:sequence>\n"));
                    for &c in &e.children {
                        render(schema, c, indent + 2, out);
                    }
                    out.push_str(&format!("{pad}  </xs:sequence></xs:complexType>\n"));
                    out.push_str(&format!("{pad}</xs:element>\n"));
                }
            }
        }
    }

    let mut out = String::from("<xs:schema xmlns:xs=\"http://www.w3.org/2001/XMLSchema\">\n");
    for &r in schema.roots() {
        render(schema, r, 1, &mut out);
    }
    out.push_str("</xs:schema>\n");
    out
}

fn xsd_type_name(t: DataType) -> &'static str {
    match t {
        DataType::Integer => "xs:integer",
        DataType::Decimal { .. } => "xs:decimal",
        DataType::Float => "xs:double",
        DataType::Date => "xs:date",
        DataType::DateTime => "xs:dateTime",
        DataType::Time => "xs:time",
        DataType::Bool => "xs:boolean",
        DataType::Binary => "xs:base64Binary",
        DataType::Text { .. } | DataType::Enum { .. } => "xs:string",
        DataType::None | DataType::Unknown => "xs:anyType",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::ElementKind;

    const SAMPLE: &str = r#"<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <!-- legacy tracked-entity schema -->
  <xs:element name="TrackedItem">
    <xs:annotation><xs:documentation>an item tracked by the legacy system</xs:documentation></xs:annotation>
    <xs:complexType>
      <xs:sequence>
        <xs:element name="DATETIME_FIRST_INFO" type="xs:dateTime"/>
        <xs:element name="Location" minOccurs="0" maxOccurs="unbounded">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="Lat" type="xs:decimal"/>
              <xs:element name="Lon" type="xs:decimal"/>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
      </xs:sequence>
      <xs:attribute name="id" type="xs:ID"/>
    </xs:complexType>
  </xs:element>
  <xs:complexType name="UnitType">
    <xs:sequence>
      <xs:element name="UnitName" type="xs:string"/>
    </xs:sequence>
  </xs:complexType>
</xs:schema>
"#;

    #[test]
    fn parses_elements_types_attrs_docs() {
        let s = parse_xsd(SchemaId(2), "S_B", SAMPLE).unwrap();
        // TrackedItem, DATETIME_FIRST_INFO, Location, Lat, Lon, id, UnitType, UnitName
        assert_eq!(s.len(), 8);
        let ti = s.find_by_name("TrackedItem").unwrap();
        assert_eq!(
            s.element(ti).doc_text(),
            "an item tracked by the legacy system"
        );
        let id = s.find_by_name("id").unwrap();
        assert_eq!(s.element(id).kind, ElementKind::Attribute);
        let lat = s.find_by_name("Lat").unwrap();
        assert_eq!(s.element(lat).depth, 3);
        assert_eq!(s.path(lat).to_string(), "TrackedItem/Location/Lat");
        s.validate().unwrap();
    }

    #[test]
    fn datetime_type_mapped() {
        let s = parse_xsd(SchemaId(2), "S_B", SAMPLE).unwrap();
        let d = s.find_by_name("DATETIME_FIRST_INFO").unwrap();
        assert_eq!(s.element(d).datatype, DataType::DateTime);
    }

    #[test]
    fn named_complex_type_is_root() {
        let s = parse_xsd(SchemaId(2), "S_B", SAMPLE).unwrap();
        let ut = s.find_by_name("UnitType").unwrap();
        assert_eq!(s.element(ut).depth, 1);
        assert_eq!(s.element(ut).kind, ElementKind::ComplexType);
    }

    #[test]
    fn comments_and_pi_skipped() {
        let s = parse_xsd(
            SchemaId(2),
            "x",
            "<?xml version=\"1.0\"?><!-- c --><xs:schema><!-- d --></xs:schema>",
        )
        .unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn entities_decoded_in_docs() {
        let xsd = r#"<xs:schema><xs:element name="A" type="xs:string">
            <xs:annotation><xs:documentation>a &amp; b &lt;c&gt;</xs:documentation></xs:annotation>
        </xs:element></xs:schema>"#;
        let s = parse_xsd(SchemaId(2), "x", xsd).unwrap();
        let a = s.find_by_name("A").unwrap();
        assert_eq!(s.element(a).doc_text(), "a & b <c>");
    }

    #[test]
    fn malformed_input_rejected() {
        assert!(parse_xsd(SchemaId(2), "x", "<xs:schema>").is_err());
        assert!(parse_xsd(SchemaId(2), "x", "<notschema/>").is_err());
        assert!(parse_xsd(SchemaId(2), "x", "").is_err());
        assert!(parse_xsd(SchemaId(2), "x", "<xs:schema><xs:element/></xs:schema>").is_err());
    }

    #[test]
    fn unbounded_occurs_parsed() {
        let s = parse_xsd(SchemaId(2), "S_B", SAMPLE).unwrap();
        // Occurs is consumed at build time; presence of the repeated subtree
        // suffices here (Location has two children).
        let loc = s.find_by_name("Location").unwrap();
        assert_eq!(s.element(loc).children.len(), 2);
    }

    #[test]
    fn round_trip_through_to_xsd() {
        let s = parse_xsd(SchemaId(2), "S_B", SAMPLE).unwrap();
        let xsd = to_xsd(&s);
        let s2 = parse_xsd(SchemaId(2), "S_B", &xsd).unwrap();
        assert_eq!(s.len(), s2.len());
        let names: Vec<_> = s.preorder().map(|e| e.name.clone()).collect();
        let names2: Vec<_> = s2.preorder().map(|e| e.name.clone()).collect();
        assert_eq!(names, names2);
        let ti2 = s2.find_by_name("TrackedItem").unwrap();
        assert_eq!(
            s2.element(ti2).doc_text(),
            "an item tracked by the legacy system"
        );
    }

    #[test]
    fn attribute_annotation_collected() {
        let xsd = r#"<xs:schema><xs:complexType name="T">
          <xs:attribute name="a" type="xs:string">
            <xs:annotation><xs:documentation>attr doc</xs:documentation></xs:annotation>
          </xs:attribute>
        </xs:complexType></xs:schema>"#;
        let s = parse_xsd(SchemaId(2), "x", xsd).unwrap();
        let a = s.find_by_name("a").unwrap();
        assert_eq!(s.element(a).doc_text(), "attr doc");
    }
}

//! Slash-separated stable element paths.
//!
//! Paths identify elements across serialization boundaries (spreadsheets,
//! repositories, provenance records) where arena ids would be meaningless.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A `/`-separated path of element names from a root to an element, e.g.
/// `All_Event_Vitals/DATE_BEGIN_156`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SchemaPath {
    segments: Vec<String>,
}

impl SchemaPath {
    /// Build from borrowed segments.
    pub fn from_segments<S: AsRef<str>>(segments: &[S]) -> Self {
        SchemaPath {
            segments: segments.iter().map(|s| s.as_ref().to_string()).collect(),
        }
    }

    /// Parse a `/`-separated string. Empty segments are dropped, so
    /// `"/A//B/"` parses as `A/B`.
    pub fn parse(s: &str) -> Self {
        SchemaPath {
            segments: s
                .split('/')
                .filter(|seg| !seg.is_empty())
                .map(str::to_string)
                .collect(),
        }
    }

    /// Borrow the path's segments.
    pub fn segments(&self) -> &[String] {
        &self.segments
    }

    /// Number of segments; equals the element's depth.
    pub fn depth(&self) -> usize {
        self.segments.len()
    }

    /// Last segment: the element's own name. `None` for the empty path.
    pub fn leaf(&self) -> Option<&str> {
        self.segments.last().map(String::as_str)
    }

    /// First segment: the root (table / top-level type) name.
    pub fn root(&self) -> Option<&str> {
        self.segments.first().map(String::as_str)
    }

    /// Path of this element's parent (empty path for roots).
    pub fn parent(&self) -> SchemaPath {
        let n = self.segments.len().saturating_sub(1);
        SchemaPath {
            segments: self.segments[..n].to_vec(),
        }
    }

    /// Extend with one more segment.
    pub fn child(&self, name: impl Into<String>) -> SchemaPath {
        let mut segments = self.segments.clone();
        segments.push(name.into());
        SchemaPath { segments }
    }

    /// True when `self` is a prefix of `other` (or equal to it).
    pub fn is_prefix_of(&self, other: &SchemaPath) -> bool {
        other.segments.len() >= self.segments.len()
            && other.segments[..self.segments.len()] == self.segments[..]
    }

    /// True for the zero-segment path.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }
}

impl fmt::Display for SchemaPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.segments.join("/"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        let p = SchemaPath::parse("Vehicle/Wheel/size");
        assert_eq!(p.to_string(), "Vehicle/Wheel/size");
        assert_eq!(p.depth(), 3);
        assert_eq!(p.leaf(), Some("size"));
        assert_eq!(p.root(), Some("Vehicle"));
    }

    #[test]
    fn parse_drops_empty_segments() {
        assert_eq!(SchemaPath::parse("/A//B/"), SchemaPath::parse("A/B"));
        assert!(SchemaPath::parse("").is_empty());
        assert_eq!(SchemaPath::parse("").leaf(), None);
    }

    #[test]
    fn parent_and_child_are_inverse() {
        let p = SchemaPath::parse("A/B");
        assert_eq!(p.child("C").parent(), p);
        assert!(SchemaPath::parse("A").parent().is_empty());
        assert!(SchemaPath::parse("").parent().is_empty());
    }

    #[test]
    fn prefix_semantics() {
        let a = SchemaPath::parse("A/B");
        let ab = SchemaPath::parse("A/B/C");
        assert!(a.is_prefix_of(&ab));
        assert!(a.is_prefix_of(&a));
        assert!(!ab.is_prefix_of(&a));
        assert!(
            SchemaPath::parse("").is_prefix_of(&a),
            "empty path prefixes all"
        );
        assert!(!SchemaPath::parse("A/X").is_prefix_of(&ab));
    }

    #[test]
    fn ordering_is_lexicographic_by_segment() {
        let mut v = [
            SchemaPath::parse("B"),
            SchemaPath::parse("A/Z"),
            SchemaPath::parse("A"),
        ];
        v.sort();
        assert_eq!(
            v.iter().map(|p| p.to_string()).collect::<Vec<_>>(),
            vec!["A", "A/Z", "B"]
        );
    }
}

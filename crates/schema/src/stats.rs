//! Schema statistics.
//!
//! Summaries of a schema's shape used by the automatic summarizer (element
//! importance), schema search (size features), and the experiment harness
//! (the paper reports sizes like "1378 elements" and depth structure).

use crate::element::ElementKind;
use crate::schema::Schema;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Aggregate statistics of one schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchemaStats {
    /// Total number of elements.
    pub element_count: usize,
    /// Number of depth-1 roots (tables / top-level types).
    pub root_count: usize,
    /// Number of leaves.
    pub leaf_count: usize,
    /// Maximum depth.
    pub max_depth: u16,
    /// Elements per depth level (depth → count).
    pub depth_histogram: BTreeMap<u16, usize>,
    /// Elements per kind.
    pub kind_histogram: BTreeMap<String, usize>,
    /// Mean number of children over container (non-leaf) nodes.
    pub mean_fanout: f64,
    /// Largest subtree size over roots.
    pub max_subtree: usize,
    /// Fraction of elements with non-empty documentation.
    pub doc_coverage: f64,
    /// Mean element-name length in characters.
    pub mean_name_len: f64,
}

impl SchemaStats {
    /// Compute statistics for `schema`.
    pub fn compute(schema: &Schema) -> Self {
        let mut depth_histogram: BTreeMap<u16, usize> = BTreeMap::new();
        let mut kind_histogram: BTreeMap<String, usize> = BTreeMap::new();
        let mut leaf_count = 0usize;
        let mut fanout_sum = 0usize;
        let mut container_count = 0usize;
        let mut name_len_sum = 0usize;

        for e in schema.elements() {
            *depth_histogram.entry(e.depth).or_insert(0) += 1;
            *kind_histogram.entry(e.kind.to_string()).or_insert(0) += 1;
            if e.is_leaf() {
                leaf_count += 1;
            } else {
                fanout_sum += e.children.len();
                container_count += 1;
            }
            name_len_sum += e.name.chars().count();
        }

        let max_subtree = schema
            .roots()
            .iter()
            .map(|&r| schema.subtree_size(r))
            .max()
            .unwrap_or(0);

        let n = schema.len();
        SchemaStats {
            element_count: n,
            root_count: schema.roots().len(),
            leaf_count,
            max_depth: schema.max_depth(),
            depth_histogram,
            kind_histogram,
            mean_fanout: if container_count == 0 {
                0.0
            } else {
                fanout_sum as f64 / container_count as f64
            },
            max_subtree,
            doc_coverage: schema.doc_coverage(),
            mean_name_len: if n == 0 {
                0.0
            } else {
                name_len_sum as f64 / n as f64
            },
        }
    }

    /// Count of elements of a given kind.
    pub fn kind_count(&self, kind: ElementKind) -> usize {
        self.kind_histogram
            .get(&kind.to_string())
            .copied()
            .unwrap_or(0)
    }

    /// A compact fixed-length numeric feature vector used by schema search
    /// and clustering as a cheap pre-filter (log-scaled sizes, shape ratios).
    pub fn feature_vector(&self) -> [f64; 6] {
        let n = self.element_count.max(1) as f64;
        [
            (self.element_count as f64 + 1.0).ln(),
            (self.root_count as f64 + 1.0).ln(),
            self.leaf_count as f64 / n,
            f64::from(self.max_depth),
            self.mean_fanout,
            self.doc_coverage,
        ]
    }
}

/// Euclidean distance between two stats feature vectors.
pub fn feature_distance(a: &SchemaStats, b: &SchemaStats) -> f64 {
    let fa = a.feature_vector();
    let fb = b.feature_vector();
    fa.iter()
        .zip(fb.iter())
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::DataType;
    use crate::doc::Documentation;
    use crate::schema::{SchemaFormat, SchemaId};

    fn sample() -> Schema {
        let mut s = Schema::new(SchemaId(1), "x", SchemaFormat::Relational);
        let t = s.add_root("Person", ElementKind::Table, DataType::None);
        for name in ["a", "bb", "ccc"] {
            s.add_child(t, name, ElementKind::Column, DataType::Integer)
                .unwrap();
        }
        let u = s.add_root("Unit", ElementKind::Table, DataType::None);
        let c = s
            .add_child(u, "name", ElementKind::Column, DataType::text())
            .unwrap();
        s.set_doc(c, Documentation::embedded("unit name")).unwrap();
        s
    }

    #[test]
    fn counts_are_correct() {
        let st = SchemaStats::compute(&sample());
        assert_eq!(st.element_count, 6);
        assert_eq!(st.root_count, 2);
        assert_eq!(st.leaf_count, 4);
        assert_eq!(st.max_depth, 2);
        assert_eq!(st.depth_histogram[&1], 2);
        assert_eq!(st.depth_histogram[&2], 4);
        assert_eq!(st.kind_count(ElementKind::Table), 2);
        assert_eq!(st.kind_count(ElementKind::Column), 4);
        assert_eq!(st.kind_count(ElementKind::Attribute), 0);
        assert_eq!(st.max_subtree, 4);
    }

    #[test]
    fn fanout_and_name_length() {
        let st = SchemaStats::compute(&sample());
        assert!((st.mean_fanout - 2.0).abs() < 1e-12, "mean of 3 and 1");
        // person(6)+a(1)+bb(2)+ccc(3)+unit(4)+name(4) = 20 / 6
        assert!((st.mean_name_len - 20.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn doc_coverage_propagates() {
        let st = SchemaStats::compute(&sample());
        assert!((st.doc_coverage - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_schema_stats_are_zero() {
        let s = Schema::new(SchemaId(1), "e", SchemaFormat::Generic);
        let st = SchemaStats::compute(&s);
        assert_eq!(st.element_count, 0);
        assert_eq!(st.mean_fanout, 0.0);
        assert_eq!(st.mean_name_len, 0.0);
        assert_eq!(st.max_subtree, 0);
    }

    #[test]
    fn identical_schemata_have_zero_feature_distance() {
        let a = SchemaStats::compute(&sample());
        let b = SchemaStats::compute(&sample());
        assert_eq!(feature_distance(&a, &b), 0.0);
    }

    #[test]
    fn feature_distance_grows_with_size_difference() {
        let small = SchemaStats::compute(&sample());
        let mut big_schema = sample();
        for i in 0..50 {
            let t = big_schema.add_root(format!("T{i}"), ElementKind::Table, DataType::None);
            for j in 0..10 {
                big_schema
                    .add_child(t, format!("c{j}"), ElementKind::Column, DataType::Integer)
                    .unwrap();
            }
        }
        let big = SchemaStats::compute(&big_schema);
        assert!(feature_distance(&small, &big) > 1.0);
    }
}

//! A compact data-type lattice with a pairwise compatibility measure.
//!
//! The Harmony-style type voter (in `harmony-core`) needs to answer "how
//! plausible is it that a column of type X corresponds to an element of type
//! Y?". Relational and XML schemata use different type vocabularies, so both
//! are normalized into this lattice first.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Normalized data type of a schema element.
///
/// The variants cover the types that actually occur in enterprise data models
/// (the paper's S_A/S_B carried dates, identifiers, free text, quantities and
/// codes). Structural nodes (tables, complex types) use [`DataType::None`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum DataType {
    /// Structural element without a value type (table, complex type, group).
    None,
    /// Type could not be determined.
    #[default]
    Unknown,
    /// Boolean flag.
    Bool,
    /// Integer of any width.
    Integer,
    /// Fixed-point decimal with precision and scale.
    Decimal {
        /// Total number of digits.
        precision: u8,
        /// Digits after the decimal point.
        scale: u8,
    },
    /// Floating-point number.
    Float,
    /// Character data with an optional maximum length.
    Text {
        /// Maximum length in characters; `None` for unbounded.
        max_len: Option<u32>,
    },
    /// Calendar date.
    Date,
    /// Date and time of day.
    DateTime,
    /// Time of day.
    Time,
    /// Opaque binary payload.
    Binary,
    /// Enumerated code list of the given cardinality.
    Enum {
        /// Number of values in the code list (0 when unknown).
        variants: u16,
    },
}

impl DataType {
    /// Unbounded text.
    pub const fn text() -> Self {
        DataType::Text { max_len: None }
    }

    /// Bounded text of at most `n` characters.
    pub const fn varchar(n: u32) -> Self {
        DataType::Text { max_len: Some(n) }
    }

    /// True for types representing numeric quantities.
    pub fn is_numeric(self) -> bool {
        matches!(
            self,
            DataType::Integer | DataType::Decimal { .. } | DataType::Float
        )
    }

    /// True for types representing temporal values.
    pub fn is_temporal(self) -> bool {
        matches!(self, DataType::Date | DataType::DateTime | DataType::Time)
    }

    /// True for textual types.
    pub fn is_textual(self) -> bool {
        matches!(self, DataType::Text { .. } | DataType::Enum { .. })
    }

    /// Coarse family used by the compatibility measure.
    pub fn family(self) -> TypeFamily {
        match self {
            DataType::None => TypeFamily::Structural,
            DataType::Unknown => TypeFamily::Unknown,
            DataType::Bool => TypeFamily::Boolean,
            d if d.is_numeric() => TypeFamily::Numeric,
            d if d.is_temporal() => TypeFamily::Temporal,
            d if d.is_textual() => TypeFamily::Textual,
            DataType::Binary => TypeFamily::Binary,
            _ => TypeFamily::Unknown,
        }
    }

    /// Compatibility of two types in `[0, 1]`.
    ///
    /// `1.0` means identical, values around `0.8` mean same family with
    /// different parameters, `0.3` means plausibly coercible families (e.g.
    /// text often stores codes/numbers in legacy systems), `0.0` means a
    /// correspondence is implausible on type evidence alone. When either side
    /// is [`DataType::Unknown`] there is *no* evidence, and the measure
    /// returns `0.5` (neutral) so voters can recognise the absence of signal.
    pub fn compatibility(self, other: DataType) -> f64 {
        use TypeFamily::*;
        if self == other {
            return 1.0;
        }
        let (a, b) = (self.family(), other.family());
        if a == Unknown || b == Unknown {
            return 0.5;
        }
        if a == b {
            return match (self, other) {
                // Same family, different parameters (e.g. VARCHAR(20) vs
                // VARCHAR(50), DECIMAL(8,2) vs DECIMAL(10,2)).
                (DataType::Text { .. }, DataType::Text { .. }) => 0.9,
                (DataType::Decimal { .. }, DataType::Decimal { .. }) => 0.9,
                (DataType::Enum { .. }, DataType::Enum { .. }) => 0.85,
                _ => 0.8,
            };
        }
        match (a, b) {
            // Legacy systems routinely store numbers, dates and codes in text.
            (Textual, Numeric) | (Numeric, Textual) => 0.3,
            (Textual, Temporal) | (Temporal, Textual) => 0.3,
            (Textual, Boolean) | (Boolean, Textual) => 0.25,
            (Numeric, Boolean) | (Boolean, Numeric) => 0.2,
            (Numeric, Temporal) | (Temporal, Numeric) => 0.15,
            (Structural, Structural) => 1.0,
            (Structural, _) | (_, Structural) => 0.0,
            (Binary, _) | (_, Binary) => 0.05,
            _ => 0.1,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::None => write!(f, "-"),
            DataType::Unknown => write!(f, "unknown"),
            DataType::Bool => write!(f, "bool"),
            DataType::Integer => write!(f, "int"),
            DataType::Decimal { precision, scale } => {
                write!(f, "decimal({precision},{scale})")
            }
            DataType::Float => write!(f, "float"),
            DataType::Text { max_len: Some(n) } => write!(f, "varchar({n})"),
            DataType::Text { max_len: None } => write!(f, "text"),
            DataType::Date => write!(f, "date"),
            DataType::DateTime => write!(f, "datetime"),
            DataType::Time => write!(f, "time"),
            DataType::Binary => write!(f, "binary"),
            DataType::Enum { variants } => write!(f, "enum({variants})"),
        }
    }
}

/// Coarse grouping of data types used by [`DataType::compatibility`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TypeFamily {
    /// Tables, complex types and other value-less nodes.
    Structural,
    /// No type information available.
    Unknown,
    /// Boolean flags.
    Boolean,
    /// Integers, decimals, floats.
    Numeric,
    /// Dates, datetimes, times.
    Temporal,
    /// Character data and enumerated code lists.
    Textual,
    /// Opaque binary.
    Binary,
}

/// Parse a SQL-ish type name (`VARCHAR(30)`, `DECIMAL(10,2)`, `INT`, …) into a
/// [`DataType`]. Unknown names map to [`DataType::Unknown`] rather than
/// failing: enterprise DDL dumps contain vendor-specific types the matcher
/// should tolerate.
pub fn parse_sql_type(raw: &str) -> DataType {
    let t = raw.trim().to_ascii_uppercase();
    let (name, args) = match t.find('(') {
        Some(i) => {
            let name = &t[..i];
            let inner = t[i + 1..].trim_end_matches(')');
            let args: Vec<u32> = inner
                .split(',')
                .filter_map(|p| p.trim().parse::<u32>().ok())
                .collect();
            (name.trim().to_string(), args)
        }
        None => (t.clone(), Vec::new()),
    };
    match name.as_str() {
        "INT" | "INTEGER" | "BIGINT" | "SMALLINT" | "TINYINT" | "SERIAL" => DataType::Integer,
        "DECIMAL" | "NUMERIC" | "NUMBER" | "MONEY" => DataType::Decimal {
            precision: args.first().copied().unwrap_or(18).min(255) as u8,
            scale: args.get(1).copied().unwrap_or(0).min(255) as u8,
        },
        "FLOAT" | "REAL" | "DOUBLE" => DataType::Float,
        "CHAR" | "VARCHAR" | "NVARCHAR" | "NCHAR" | "CHARACTER" => DataType::Text {
            max_len: args.first().copied(),
        },
        "TEXT" | "CLOB" | "STRING" => DataType::text(),
        "DATE" => DataType::Date,
        "DATETIME" | "TIMESTAMP" => DataType::DateTime,
        "TIME" => DataType::Time,
        "BOOL" | "BOOLEAN" | "BIT" => DataType::Bool,
        "BLOB" | "BINARY" | "VARBINARY" | "BYTEA" => DataType::Binary,
        "ENUM" => DataType::Enum {
            variants: args.first().copied().unwrap_or(0).min(u16::MAX as u32) as u16,
        },
        _ => DataType::Unknown,
    }
}

/// Parse an XSD built-in type name (`xs:string`, `xs:dateTime`, …).
pub fn parse_xsd_type(raw: &str) -> DataType {
    let t = raw.trim();
    let local = t.rsplit(':').next().unwrap_or(t).to_ascii_lowercase();
    match local.as_str() {
        "string" | "normalizedstring" | "token" | "anyuri" | "id" | "idref" | "name" | "ncname"
        | "qname" => DataType::text(),
        "int" | "integer" | "long" | "short" | "byte" | "unsignedint" | "unsignedlong"
        | "unsignedshort" | "unsignedbyte" | "positiveinteger" | "nonnegativeinteger"
        | "negativeinteger" | "nonpositiveinteger" => DataType::Integer,
        "decimal" => DataType::Decimal {
            precision: 18,
            scale: 6,
        },
        "float" | "double" => DataType::Float,
        "date" => DataType::Date,
        "datetime" => DataType::DateTime,
        "time" => DataType::Time,
        "boolean" => DataType::Bool,
        "base64binary" | "hexbinary" => DataType::Binary,
        "" => DataType::Unknown,
        _ => DataType::Unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_types_are_fully_compatible() {
        assert_eq!(DataType::Integer.compatibility(DataType::Integer), 1.0);
        assert_eq!(
            DataType::varchar(20).compatibility(DataType::varchar(20)),
            1.0
        );
    }

    #[test]
    fn same_family_different_params_is_high() {
        let c = DataType::varchar(20).compatibility(DataType::varchar(50));
        assert!(c > 0.8 && c < 1.0);
        let d = DataType::Decimal {
            precision: 8,
            scale: 2,
        }
        .compatibility(DataType::Decimal {
            precision: 10,
            scale: 2,
        });
        assert!(d > 0.8 && d < 1.0);
    }

    #[test]
    fn unknown_is_neutral() {
        assert_eq!(DataType::Unknown.compatibility(DataType::Integer), 0.5);
        assert_eq!(DataType::Date.compatibility(DataType::Unknown), 0.5);
    }

    #[test]
    fn structural_vs_leaf_is_implausible() {
        assert_eq!(DataType::None.compatibility(DataType::Integer), 0.0);
        assert_eq!(DataType::None.compatibility(DataType::None), 1.0);
    }

    #[test]
    fn compatibility_is_symmetric() {
        let types = [
            DataType::None,
            DataType::Unknown,
            DataType::Bool,
            DataType::Integer,
            DataType::Float,
            DataType::text(),
            DataType::varchar(10),
            DataType::Date,
            DataType::DateTime,
            DataType::Binary,
            DataType::Enum { variants: 4 },
        ];
        for &a in &types {
            for &b in &types {
                assert_eq!(a.compatibility(b), b.compatibility(a), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn compatibility_is_bounded() {
        let types = [
            DataType::None,
            DataType::Unknown,
            DataType::Bool,
            DataType::Integer,
            DataType::Float,
            DataType::text(),
            DataType::Date,
            DataType::Binary,
        ];
        for &a in &types {
            for &b in &types {
                let c = a.compatibility(b);
                assert!((0.0..=1.0).contains(&c));
            }
        }
    }

    #[test]
    fn parse_sql_types() {
        assert_eq!(parse_sql_type("INT"), DataType::Integer);
        assert_eq!(parse_sql_type("varchar(30)"), DataType::varchar(30));
        assert_eq!(
            parse_sql_type("DECIMAL(10,2)"),
            DataType::Decimal {
                precision: 10,
                scale: 2
            }
        );
        assert_eq!(parse_sql_type("TIMESTAMP"), DataType::DateTime);
        assert_eq!(parse_sql_type("WEIRDVENDORTYPE"), DataType::Unknown);
        assert_eq!(parse_sql_type("text"), DataType::text());
    }

    #[test]
    fn parse_xsd_types() {
        assert_eq!(parse_xsd_type("xs:string"), DataType::text());
        assert_eq!(parse_xsd_type("xsd:dateTime"), DataType::DateTime);
        assert_eq!(parse_xsd_type("xs:positiveInteger"), DataType::Integer);
        assert_eq!(parse_xsd_type("tns:VehicleType"), DataType::Unknown);
    }

    #[test]
    fn families_partition_sensibly() {
        assert!(DataType::Integer.is_numeric());
        assert!(DataType::Date.is_temporal());
        assert!(DataType::text().is_textual());
        assert_eq!(DataType::Bool.family(), TypeFamily::Boolean);
        assert_eq!(DataType::None.family(), TypeFamily::Structural);
    }

    #[test]
    fn display_round_trips_through_sql_parser_for_core_types() {
        for t in [
            DataType::Integer,
            DataType::Float,
            DataType::Date,
            DataType::DateTime,
            DataType::Time,
            DataType::varchar(12),
            DataType::text(),
            DataType::Binary,
        ] {
            assert_eq!(parse_sql_type(&t.to_string()), t, "{t}");
        }
    }
}

//! Typed builder for relational schemata.
//!
//! The paper's S_A is "relational, contains 1378 elements" — in the element
//! model that is tables (depth 1) plus columns (depth 2), with primary- and
//! foreign-key metadata available to structural voters.

use crate::datatype::DataType;
use crate::doc::Documentation;
use crate::element::ElementKind;
use crate::error::SchemaError;
use crate::schema::{Schema, SchemaFormat, SchemaId};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Specification of one column.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ColumnSpec {
    /// Column name.
    pub name: String,
    /// Column value type.
    pub datatype: DataType,
    /// Whether the column is part of the table's primary key.
    pub primary_key: bool,
    /// Whether the column accepts NULL.
    pub nullable: bool,
    /// `Some((table, column))` when the column references another table.
    pub references: Option<(String, String)>,
    /// Optional documentation text.
    pub doc: Option<String>,
}

impl ColumnSpec {
    /// A plain nullable column with no keys or documentation.
    pub fn new(name: impl Into<String>, datatype: DataType) -> Self {
        ColumnSpec {
            name: name.into(),
            datatype,
            primary_key: false,
            nullable: true,
            references: None,
            doc: None,
        }
    }

    /// Mark as primary key (implies NOT NULL).
    pub fn primary(mut self) -> Self {
        self.primary_key = true;
        self.nullable = false;
        self
    }

    /// Mark as NOT NULL.
    pub fn not_null(mut self) -> Self {
        self.nullable = false;
        self
    }

    /// Add a foreign-key reference.
    pub fn referencing(mut self, table: impl Into<String>, column: impl Into<String>) -> Self {
        self.references = Some((table.into(), column.into()));
        self
    }

    /// Attach documentation.
    pub fn documented(mut self, doc: impl Into<String>) -> Self {
        self.doc = Some(doc.into());
        self
    }
}

/// Specification of one table (or view).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableSpec {
    /// Table name.
    pub name: String,
    /// True for views; affects [`ElementKind`] only.
    pub is_view: bool,
    /// Column definitions, in order.
    pub columns: Vec<ColumnSpec>,
    /// Optional documentation text.
    pub doc: Option<String>,
}

impl TableSpec {
    /// An empty table.
    pub fn new(name: impl Into<String>) -> Self {
        TableSpec {
            name: name.into(),
            is_view: false,
            columns: Vec::new(),
            doc: None,
        }
    }

    /// Append a column.
    pub fn column(mut self, col: ColumnSpec) -> Self {
        self.columns.push(col);
        self
    }

    /// Attach documentation.
    pub fn documented(mut self, doc: impl Into<String>) -> Self {
        self.doc = Some(doc.into());
        self
    }

    /// Mark as a view.
    pub fn view(mut self) -> Self {
        self.is_view = true;
        self
    }
}

/// Builder assembling a relational [`Schema`] from [`TableSpec`]s.
///
/// Rejects duplicate table names and duplicate column names within a table —
/// real DDL would not load otherwise, and silent duplicates would corrupt
/// match statistics.
#[derive(Debug)]
pub struct RelationalSchemaBuilder {
    id: SchemaId,
    name: String,
    tables: Vec<TableSpec>,
}

impl RelationalSchemaBuilder {
    /// Start a new relational schema.
    pub fn new(id: SchemaId, name: impl Into<String>) -> Self {
        RelationalSchemaBuilder {
            id,
            name: name.into(),
            tables: Vec::new(),
        }
    }

    /// Append a table.
    pub fn table(mut self, spec: TableSpec) -> Self {
        self.tables.push(spec);
        self
    }

    /// Append many tables.
    pub fn tables(mut self, specs: impl IntoIterator<Item = TableSpec>) -> Self {
        self.tables.extend(specs);
        self
    }

    /// Number of tables queued so far.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Build the schema, validating name uniqueness and FK targets.
    ///
    /// Foreign keys referencing unknown tables are tolerated (legacy dumps
    /// frequently reference dropped tables) but FK references to unknown
    /// *columns of known tables* are errors.
    pub fn build(self) -> Result<Schema, SchemaError> {
        let mut schema = Schema::new(self.id, self.name, SchemaFormat::Relational);
        let mut table_names: HashSet<String> = HashSet::with_capacity(self.tables.len());
        for t in &self.tables {
            if t.name.trim().is_empty() {
                return Err(SchemaError::InvalidName(t.name.clone()));
            }
            if !table_names.insert(t.name.to_ascii_lowercase()) {
                return Err(SchemaError::Duplicate(t.name.clone()));
            }
        }
        // FK validation against declared tables/columns.
        for t in &self.tables {
            for c in &t.columns {
                if let Some((rt, rc)) = &c.references {
                    if let Some(target) =
                        self.tables.iter().find(|x| x.name.eq_ignore_ascii_case(rt))
                    {
                        if !target
                            .columns
                            .iter()
                            .any(|x| x.name.eq_ignore_ascii_case(rc))
                        {
                            return Err(SchemaError::InvalidStructure(format!(
                                "foreign key {}.{} references missing column {}.{}",
                                t.name, c.name, rt, rc
                            )));
                        }
                    }
                }
            }
        }
        for t in self.tables {
            let kind = if t.is_view {
                ElementKind::View
            } else {
                ElementKind::Table
            };
            let tid = schema.add_root(&t.name, kind, DataType::None);
            if let Some(doc) = &t.doc {
                schema.set_doc(tid, Documentation::embedded(doc))?;
            }
            let mut col_names: HashSet<String> = HashSet::with_capacity(t.columns.len());
            for c in t.columns {
                if c.name.trim().is_empty() {
                    return Err(SchemaError::InvalidName(c.name));
                }
                if !col_names.insert(c.name.to_ascii_lowercase()) {
                    return Err(SchemaError::Duplicate(format!("{}.{}", t.name, c.name)));
                }
                let cid = schema.add_child(tid, &c.name, ElementKind::Column, c.datatype)?;
                if let Some(doc) = &c.doc {
                    schema.set_doc(cid, Documentation::embedded(doc))?;
                }
            }
        }
        debug_assert!(schema.validate().is_ok());
        Ok(schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn person_vehicle() -> RelationalSchemaBuilder {
        RelationalSchemaBuilder::new(SchemaId(1), "S_A")
            .table(
                TableSpec::new("Person")
                    .documented("individuals tracked by the system")
                    .column(ColumnSpec::new("person_id", DataType::Integer).primary())
                    .column(
                        ColumnSpec::new("last_name", DataType::varchar(40))
                            .not_null()
                            .documented("family name"),
                    ),
            )
            .table(
                TableSpec::new("Vehicle")
                    .column(ColumnSpec::new("vin", DataType::varchar(17)).primary())
                    .column(
                        ColumnSpec::new("owner_id", DataType::Integer)
                            .referencing("Person", "person_id"),
                    ),
            )
    }

    #[test]
    fn builds_tables_and_columns() {
        let s = person_vehicle().build().unwrap();
        assert_eq!(s.len(), 6);
        assert_eq!(s.at_depth(1).len(), 2);
        assert_eq!(s.at_depth(2).len(), 4);
        assert_eq!(s.format, SchemaFormat::Relational);
        let person = s.find_by_name("Person").unwrap();
        assert!(s.element(person).has_doc());
        s.validate().unwrap();
    }

    #[test]
    fn duplicate_table_rejected() {
        let err = RelationalSchemaBuilder::new(SchemaId(1), "x")
            .table(TableSpec::new("T"))
            .table(TableSpec::new("t"))
            .build()
            .unwrap_err();
        assert_eq!(err, SchemaError::Duplicate("t".into()));
    }

    #[test]
    fn duplicate_column_rejected() {
        let err = RelationalSchemaBuilder::new(SchemaId(1), "x")
            .table(
                TableSpec::new("T")
                    .column(ColumnSpec::new("a", DataType::Integer))
                    .column(ColumnSpec::new("A", DataType::Integer)),
            )
            .build()
            .unwrap_err();
        assert!(matches!(err, SchemaError::Duplicate(_)));
    }

    #[test]
    fn fk_to_missing_column_rejected_but_missing_table_tolerated() {
        // Missing table: tolerated.
        RelationalSchemaBuilder::new(SchemaId(1), "x")
            .table(
                TableSpec::new("T")
                    .column(ColumnSpec::new("r", DataType::Integer).referencing("Ghost", "id")),
            )
            .build()
            .unwrap();
        // Known table, missing column: error.
        let err = RelationalSchemaBuilder::new(SchemaId(1), "x")
            .table(TableSpec::new("U").column(ColumnSpec::new("id", DataType::Integer)))
            .table(
                TableSpec::new("T")
                    .column(ColumnSpec::new("r", DataType::Integer).referencing("U", "nope")),
            )
            .build()
            .unwrap_err();
        assert!(matches!(err, SchemaError::InvalidStructure(_)));
    }

    #[test]
    fn empty_names_rejected() {
        assert!(RelationalSchemaBuilder::new(SchemaId(1), "x")
            .table(TableSpec::new("  "))
            .build()
            .is_err());
        assert!(RelationalSchemaBuilder::new(SchemaId(1), "x")
            .table(TableSpec::new("T").column(ColumnSpec::new("", DataType::Integer)))
            .build()
            .is_err());
    }

    #[test]
    fn views_get_view_kind() {
        let s = RelationalSchemaBuilder::new(SchemaId(1), "x")
            .table(TableSpec::new("All_Event_Vitals").view())
            .build()
            .unwrap();
        let v = s.find_by_name("All_Event_Vitals").unwrap();
        assert_eq!(s.element(v).kind, ElementKind::View);
    }

    #[test]
    fn primary_implies_not_null() {
        let c = ColumnSpec::new("id", DataType::Integer).primary();
        assert!(c.primary_key && !c.nullable);
    }
}

//! Error type shared by schema construction and parsing.

use std::fmt;

/// Errors produced while building or parsing schemata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// An element id did not refer to an element of this schema.
    UnknownElement(usize),
    /// An element name was empty or otherwise invalid.
    InvalidName(String),
    /// A parent/child edge would create a cycle or cross schemata.
    InvalidStructure(String),
    /// A duplicate definition was encountered (e.g. two tables with one name).
    Duplicate(String),
    /// A textual schema serialization could not be parsed.
    Parse {
        /// 1-based line number of the offending input line.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::UnknownElement(id) => write!(f, "unknown element id {id}"),
            SchemaError::InvalidName(name) => write!(f, "invalid element name {name:?}"),
            SchemaError::InvalidStructure(msg) => write!(f, "invalid schema structure: {msg}"),
            SchemaError::Duplicate(name) => write!(f, "duplicate definition of {name:?}"),
            SchemaError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for SchemaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_salient_detail() {
        let e = SchemaError::Parse {
            line: 7,
            message: "expected ')'".into(),
        };
        let s = e.to_string();
        assert!(s.contains("line 7"));
        assert!(s.contains("expected ')'"));
        assert!(SchemaError::Duplicate("T".into())
            .to_string()
            .contains("\"T\""));
        assert!(SchemaError::UnknownElement(3).to_string().contains('3'));
    }

    #[test]
    fn error_trait_object_compatible() {
        let e: Box<dyn std::error::Error> = Box::new(SchemaError::InvalidName(String::new()));
        assert!(!e.to_string().is_empty());
    }
}

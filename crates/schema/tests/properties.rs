//! Property-based tests of schema-model invariants.

use proptest::prelude::*;
use sm_schema::ddl::{parse_ddl, to_ddl};
use sm_schema::xsd::{parse_xsd, to_xsd};
use sm_schema::{DataType, ElementKind, Schema, SchemaFormat, SchemaId, SchemaStats};

/// Strategy: a random two-level relational schema (tables with columns).
fn relational_schema() -> impl Strategy<Value = Schema> {
    prop::collection::vec(
        (
            "[A-Za-z][A-Za-z0-9]{0,8}",
            prop::collection::vec("[A-Za-z][A-Za-z0-9_]{0,8}", 1..6),
        ),
        1..6,
    )
    .prop_map(|tables| {
        let mut s = Schema::new(SchemaId(1), "S", SchemaFormat::Relational);
        for (ti, (tname, cols)) in tables.into_iter().enumerate() {
            // Make names unique by suffixing the index: the builder-level
            // uniqueness rules are tested separately; here we exercise the
            // tree invariants.
            let t = s.add_root(format!("{tname}_{ti}"), ElementKind::Table, DataType::None);
            for (ci, c) in cols.into_iter().enumerate() {
                s.add_child(
                    t,
                    format!("{c}_{ci}"),
                    ElementKind::Column,
                    DataType::Integer,
                )
                .unwrap();
            }
        }
        s
    })
}

proptest! {
    /// Construction through the public API always yields a valid tree whose
    /// statistics are internally consistent.
    #[test]
    fn built_schemas_validate_and_stats_agree(s in relational_schema()) {
        s.validate().unwrap();
        let stats = SchemaStats::compute(&s);
        prop_assert_eq!(stats.element_count, s.len());
        prop_assert_eq!(stats.root_count, s.roots().len());
        let depth_total: usize = stats.depth_histogram.values().sum();
        prop_assert_eq!(depth_total, s.len());
        prop_assert_eq!(stats.max_depth, s.max_depth());
        // Preorder covers every element exactly once.
        let visited: std::collections::HashSet<_> = s.preorder().map(|e| e.id).collect();
        prop_assert_eq!(visited.len(), s.len());
    }

    /// Every element's path resolves back to that element (paths are unique
    /// here because generated names are suffix-disambiguated).
    #[test]
    fn paths_resolve(s in relational_schema()) {
        for id in s.ids() {
            let p = s.path(id);
            prop_assert_eq!(s.find_by_path(&p), Some(id), "path {}", p);
            prop_assert_eq!(p.depth() as u16, s.element(id).depth);
        }
    }

    /// Subtree sizes tile the schema: root subtrees sum to the whole.
    #[test]
    fn subtrees_tile(s in relational_schema()) {
        let total: usize = s.roots().iter().map(|&r| s.subtree_size(r)).sum();
        prop_assert_eq!(total, s.len());
        for &r in s.roots() {
            for id in s.subtree_ids(r) {
                prop_assert_eq!(s.root_of(id), r);
            }
        }
    }

    /// DDL rendering round-trips structure and names.
    #[test]
    fn ddl_round_trip(s in relational_schema()) {
        let ddl = to_ddl(&s);
        let back = parse_ddl(SchemaId(1), "S", &ddl).unwrap();
        prop_assert_eq!(back.len(), s.len());
        let names: Vec<String> = s.preorder().map(|e| e.name.clone()).collect();
        let names2: Vec<String> = back.preorder().map(|e| e.name.clone()).collect();
        prop_assert_eq!(names, names2);
    }
}

/// Strategy: a random XML tree up to depth 3.
fn xml_schema() -> impl Strategy<Value = Schema> {
    prop::collection::vec(
        (
            "[A-Za-z][A-Za-z0-9]{0,8}",
            prop::collection::vec("[A-Za-z][A-Za-z0-9]{0,8}", 0..4),
        ),
        1..5,
    )
    .prop_map(|types| {
        let mut s = Schema::new(SchemaId(2), "X", SchemaFormat::Xml);
        for (ti, (tname, children)) in types.into_iter().enumerate() {
            let t = s.add_root(
                format!("{tname}{ti}"),
                ElementKind::ComplexType,
                DataType::None,
            );
            for (ci, c) in children.into_iter().enumerate() {
                s.add_child(
                    t,
                    format!("{c}{ci}"),
                    ElementKind::XmlElement,
                    DataType::text(),
                )
                .unwrap();
            }
        }
        s
    })
}

proptest! {
    /// XSD rendering round-trips structure and names.
    #[test]
    fn xsd_round_trip(s in xml_schema()) {
        let xsd = to_xsd(&s);
        let back = parse_xsd(SchemaId(2), "X", &xsd).unwrap();
        prop_assert_eq!(back.len(), s.len());
        let names: Vec<String> = s.preorder().map(|e| e.name.clone()).collect();
        let names2: Vec<String> = back.preorder().map(|e| e.name.clone()).collect();
        prop_assert_eq!(names, names2);
        back.validate().unwrap();
    }
}

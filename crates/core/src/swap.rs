//! Lock-free snapshot publication — the reader side of the sharded
//! repository index.
//!
//! The repository's query operators (`SchemaSearch::query`,
//! `query_fragments`, `cluster::DistanceMatrix`, COI vocabulary) are pure
//! readers of an immutable index snapshot; writers publish a *new* snapshot
//! rather than mutating the old one. A `Mutex<Option<Arc<T>>>` would make
//! every reader serialize on the writer's lock — under heavy query traffic
//! that lock is exactly the bottleneck the paper's repository scenario
//! cannot afford. [`SnapCell`] gives readers a wait-free-in-practice path:
//! a read is two atomic operations and an `Arc` clone, never a lock, and
//! never blocks behind a publish.
//!
//! ## Scheme
//!
//! Two value slots plus an `active` selector. Readers pin the active slot
//! with a per-slot reader count, re-check the selector (the increment-then-
//! recheck closes the race against a concurrent flip), clone the `Arc`, and
//! unpin. Writers are serialized by a mutex (publishes are rare); a publish
//! writes the *inactive* slot — after waiting for stragglers still pinned to
//! it from two flips ago to drain — and then flips `active`. The writer
//! never touches the slot current readers are pinned to, so readers never
//! observe a torn or half-dropped value.
//!
//! All atomics use `SeqCst`: publishes are orders of magnitude rarer than
//! queries, and the reader's two `SeqCst` ops cost nothing measurable next
//! to the posting-list walk that follows. The safety argument relies on the
//! total order: if a reader's re-check observes `active == i`, its preceding
//! increment of `readers[i]` is ordered before any later flip-away and
//! writer drain-check of slot `i`, so the writer waits for it.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Selector value meaning "nothing published yet".
const EMPTY: usize = usize::MAX;

/// One publication slot: a reader pin count and the value it guards.
struct Slot<T> {
    readers: AtomicUsize,
    value: UnsafeCell<Option<Arc<T>>>,
}

impl<T> Slot<T> {
    fn new() -> Self {
        Slot {
            readers: AtomicUsize::new(0),
            value: UnsafeCell::new(None),
        }
    }
}

/// A lock-free snapshot cell: readers [`SnapCell::read`] the current
/// snapshot without ever taking a lock; writers [`SnapCell::publish`] a new
/// snapshot without ever blocking readers.
pub struct SnapCell<T> {
    slots: [Slot<T>; 2],
    /// Index of the slot readers should pin (`EMPTY` before first publish).
    active: AtomicUsize,
    /// Serializes publishers (reads never touch it).
    writer: Mutex<()>,
}

// SAFETY: the value cells are only written by the publisher, which holds the
// writer mutex and has observed the slot's reader count at zero *after*
// redirecting `active` away from it (see `publish`); readers only
// dereference a cell while their pin is registered and the re-check proved
// `active` still names it. So all accesses to one cell are either
// reader/reader (shared, immutable) or ordered writer-then-reader.
unsafe impl<T: Send + Sync> Send for SnapCell<T> {}
unsafe impl<T: Send + Sync> Sync for SnapCell<T> {}

impl<T> SnapCell<T> {
    /// An empty cell; [`Self::read`] yields `None` until the first publish.
    pub fn new() -> Self {
        SnapCell {
            slots: [Slot::new(), Slot::new()],
            active: AtomicUsize::new(EMPTY),
            writer: Mutex::new(()),
        }
    }

    /// A cell holding an initial snapshot.
    pub fn with_value(value: Arc<T>) -> Self {
        let cell = Self::new();
        cell.publish(value);
        cell
    }

    /// The current snapshot, or `None` before the first publish. Never
    /// blocks: two atomic ops and an `Arc` clone on the hot path, a retry
    /// only when a publish flips the selector mid-read.
    pub fn read(&self) -> Option<Arc<T>> {
        loop {
            let i = self.active.load(Ordering::SeqCst);
            if i == EMPTY {
                return None;
            }
            let slot = &self.slots[i];
            // Pin first, then re-check: if the selector still names this
            // slot, the publisher's drain-wait is ordered after our pin and
            // cannot start overwriting until we unpin.
            slot.readers.fetch_add(1, Ordering::SeqCst);
            if self.active.load(Ordering::SeqCst) == i {
                // SAFETY: pinned + re-checked (see module docs); the
                // publisher cannot write this slot until `readers` drops
                // to zero.
                let value = unsafe { (*slot.value.get()).clone() };
                slot.readers.fetch_sub(1, Ordering::SeqCst);
                return value;
            }
            // Lost the race against a flip; unpin and retry on the new
            // active slot.
            slot.readers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Publish a new snapshot. Serialized against other publishers; never
    /// blocks readers (it waits only for readers still pinned to the slot
    /// being *overwritten*, which stopped being readable one flip ago).
    pub fn publish(&self, value: Arc<T>) {
        let _guard = self.writer.lock().expect("snap cell writer poisoned");
        let current = self.active.load(Ordering::SeqCst);
        let next = if current == EMPTY { 0 } else { 1 - current };
        let slot = &self.slots[next];
        // Drain stragglers still pinned to the slot we are about to
        // overwrite. New readers pin `current`, so this terminates as soon
        // as the (short) in-flight reads finish.
        let mut spins = 0u32;
        while slot.readers.load(Ordering::SeqCst) != 0 {
            spins += 1;
            if spins % 64 == 0 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        // SAFETY: `active` does not name this slot and its reader count was
        // observed at zero after that redirection, so no reader can be
        // dereferencing it (writer mutex excludes other writers).
        unsafe {
            *slot.value.get() = Some(value);
        }
        self.active.store(next, Ordering::SeqCst);
    }

    /// True when nothing has been published yet.
    pub fn is_empty(&self) -> bool {
        self.active.load(Ordering::SeqCst) == EMPTY
    }
}

impl<T> Default for SnapCell<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for SnapCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapCell")
            .field("published", &!self.is_empty())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn empty_reads_none_then_publish_reads_value() {
        let cell: SnapCell<u32> = SnapCell::new();
        assert!(cell.read().is_none());
        assert!(cell.is_empty());
        cell.publish(Arc::new(7));
        assert_eq!(*cell.read().unwrap(), 7);
        cell.publish(Arc::new(8));
        assert_eq!(*cell.read().unwrap(), 8);
        cell.publish(Arc::new(9));
        assert_eq!(*cell.read().unwrap(), 9);
    }

    #[test]
    fn with_value_starts_published() {
        let cell = SnapCell::with_value(Arc::new("snap".to_string()));
        assert_eq!(cell.read().unwrap().as_str(), "snap");
    }

    #[test]
    fn old_snapshots_stay_alive_while_held() {
        let cell = SnapCell::with_value(Arc::new(vec![1, 2, 3]));
        let old = cell.read().unwrap();
        cell.publish(Arc::new(vec![4]));
        cell.publish(Arc::new(vec![5]));
        // The pre-publish clone is untouched by later publishes.
        assert_eq!(*old, vec![1, 2, 3]);
        assert_eq!(*cell.read().unwrap(), vec![5]);
    }

    /// Readers hammer the cell while a writer republishes; every read must
    /// observe a fully-formed snapshot (internally consistent pair).
    #[test]
    fn concurrent_reads_never_tear() {
        let cell: Arc<SnapCell<(u64, u64)>> = Arc::new(SnapCell::with_value(Arc::new((0, !0))));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut reads = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let snap = cell.read().expect("published");
                        assert_eq!(snap.0, !snap.1, "torn snapshot observed");
                        reads += 1;
                    }
                    // One post-stop read so every reader validates at least
                    // one snapshot even if the writer outran its scheduling
                    // (single-core runners park spawned threads until the
                    // publish loop yields).
                    let snap = cell.read().expect("published");
                    assert_eq!(snap.0, !snap.1, "torn snapshot observed");
                    reads + 1
                })
            })
            .collect();
        for v in 1..2000u64 {
            cell.publish(Arc::new((v, !v)));
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            assert!(r.join().expect("reader panicked") > 0);
        }
        let last = cell.read().unwrap();
        assert_eq!(last.0, 1999);
    }
}

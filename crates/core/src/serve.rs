//! Admission-controlled serving layer over the shared [`Executor`].
//!
//! Every workload so far ran one job at a time; production traffic is many
//! simultaneous match/search/COI jobs contending for one pool and one
//! [`FeatureCache`]. Absorbing that load unshaped lets a single 100-schema
//! batch starve every point query and grow RSS without bound. This module
//! shapes offered load instead:
//!
//! * **bounded admission** — each [`JobClass`] has a run cap and a bounded
//!   wait queue; a full queue either sheds its lowest-priority waiter (when
//!   a strictly higher-priority job arrives) or rejects the newcomer with
//!   [`ServeError::Overloaded`];
//! * **lane budgets** — each class draws helper lanes from its own
//!   [`LaneBudget`] sized as a fraction of the pool, so a 12-way batch can
//!   never occupy more than its share of workers while point queries run
//!   (see [`Executor::run_lanes_budgeted`]; the caller's lane 0 is always
//!   unbudgeted, so starvation degrades to inline execution, never a hang);
//! * **deadlines + cancellation** — every job carries a [`JobToken`];
//!   pipeline Block/Score/Merge chunk loops and batch pair jobs call
//!   [`JobToken::checkpoint`] at chunk boundaries, which unwinds with a
//!   [`CancelUnwind`] payload. The executor's lane machinery already drains
//!   helper lanes on unwind and the `FeatureCache` build-slot guard already
//!   marks in-flight builds failed, so a cancelled job leaves no partial
//!   state behind; the admission wrapper catches the payload and returns
//!   [`ServeError::Cancelled`];
//! * **memory governor** — a process-RSS watermark ([`MemoryGovernor`])
//!   that, under pressure, evicts the feature cache down to a byte budget,
//!   flags batches onto the matrix-dropping `run_select_only` path
//!   ([`JobGrant::degraded`]), and defers shard compaction
//!   ([`memory_pressure`], consulted by `sm_enterprise`) until pressure
//!   clears.
//!
//! The degradation ladder, in order of increasing pressure: full service →
//! lane-budget contention (slower, still parallel) → queueing → shedding /
//! `Overloaded` rejection → memory degradation (matrix dropping + cache
//! eviction + compaction deferral). Deadlines cut across every rung.

use crate::exec::{Executor, LaneBudget};
use crate::obs;
use crate::prepare::FeatureCache;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex, Once};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Job classes
// ---------------------------------------------------------------------------

/// The four serving-traffic classes, each with its own queue and budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum JobClass {
    /// One pairwise match (interactive; latency-sensitive).
    PointMatch = 0,
    /// One repository search query (interactive; latency-sensitive).
    Search = 1,
    /// A multi-pair batch (throughput work; the classic starvation source).
    Batch = 2,
    /// Cross-organization / COI agreement analysis (background analytics).
    Coi = 3,
}

/// All classes, in slot order.
pub const JOB_CLASSES: [JobClass; 4] = [
    JobClass::PointMatch,
    JobClass::Search,
    JobClass::Batch,
    JobClass::Coi,
];

impl JobClass {
    /// Slot index into per-class tables.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable dotted name (bench output, trace payload legend).
    pub fn name(self) -> &'static str {
        match self {
            JobClass::PointMatch => "point",
            JobClass::Search => "search",
            JobClass::Batch => "batch",
            JobClass::Coi => "coi",
        }
    }
}

// ---------------------------------------------------------------------------
// Cancellation tokens
// ---------------------------------------------------------------------------

/// Why a job stopped before completing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// [`JobToken::cancel`] was called.
    Cancelled,
    /// The job's deadline passed (queued or mid-run).
    Deadline,
    /// The admission queue shed this job for higher-priority work.
    Shed,
}

impl CancelReason {
    fn code(self) -> u8 {
        match self {
            CancelReason::Cancelled => 1,
            CancelReason::Deadline => 2,
            CancelReason::Shed => 3,
        }
    }

    fn from_code(code: u8) -> Option<CancelReason> {
        match code {
            1 => Some(CancelReason::Cancelled),
            2 => Some(CancelReason::Deadline),
            3 => Some(CancelReason::Shed),
            _ => None,
        }
    }
}

struct TokenInner {
    /// 0 = live, else a [`CancelReason::code`]. First trip wins.
    state: AtomicU8,
    deadline: Option<Instant>,
    /// Background-class courtesy: checkpoints also yield the OS scheduler
    /// slot, so interactive threads preempt at chunk boundaries instead of
    /// waiting out a kernel timeslice. Set by the admission controller for
    /// paced classes.
    yield_hint: AtomicBool,
}

/// Cooperative cancellation + deadline handle threaded through a job.
///
/// Parallel stages call [`Self::checkpoint`] at chunk boundaries (after
/// releasing any claim-queue lock); a tripped token unwinds the calling
/// lane with a [`CancelUnwind`] payload. The executor waits out or drains
/// every sibling lane before propagating, so the unwind is clean: no
/// poisoned pool, no partial cache entries (the cache's build guard marks
/// in-flight builds failed on unwind), no torn published snapshots
/// (publication is a single post-completion step the unwind never reaches).
#[derive(Clone)]
pub struct JobToken {
    inner: Arc<TokenInner>,
}

impl JobToken {
    /// A live token with no deadline.
    pub fn new() -> JobToken {
        JobToken {
            inner: Arc::new(TokenInner {
                state: AtomicU8::new(0),
                deadline: None,
                yield_hint: AtomicBool::new(false),
            }),
        }
    }

    /// A token that trips with [`CancelReason::Deadline`] once `budget`
    /// has elapsed.
    pub fn deadline_in(budget: Duration) -> JobToken {
        JobToken {
            inner: Arc::new(TokenInner {
                state: AtomicU8::new(0),
                deadline: Some(Instant::now() + budget),
                yield_hint: AtomicBool::new(false),
            }),
        }
    }

    /// Mark this token's job as a background citizen: every checkpoint
    /// additionally yields the scheduler slot (see `TokenInner`).
    pub fn set_yield_hint(&self) {
        self.inner.yield_hint.store(true, Ordering::Relaxed);
    }

    /// Request cancellation. Idempotent; the first trip (from any source)
    /// wins.
    pub fn cancel(&self) {
        self.trip(CancelReason::Cancelled);
    }

    fn trip(&self, reason: CancelReason) {
        let _ = self.inner.state.compare_exchange(
            0,
            reason.code(),
            Ordering::AcqRel,
            Ordering::Relaxed,
        );
    }

    /// The trip reason, if any — checking the deadline (and latching it)
    /// as a side effect.
    pub fn state(&self) -> Option<CancelReason> {
        let code = self.inner.state.load(Ordering::Acquire);
        if let Some(reason) = CancelReason::from_code(code) {
            return Some(reason);
        }
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                self.trip(CancelReason::Deadline);
                return CancelReason::from_code(self.inner.state.load(Ordering::Acquire));
            }
        }
        None
    }

    /// Time left until the deadline (`None` = no deadline; zero = past it).
    pub fn remaining(&self) -> Option<Duration> {
        self.inner
            .deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Unwind the current lane with [`CancelUnwind`] if the token has
    /// tripped. Call this only at chunk boundaries with no locks held.
    pub fn checkpoint(&self) {
        if let Some(reason) = self.state() {
            install_cancel_hook();
            std::panic::panic_any(CancelUnwind(reason));
        }
        if self.inner.yield_hint.load(Ordering::Relaxed) {
            std::thread::yield_now();
        }
    }
}

impl Default for JobToken {
    fn default() -> Self {
        JobToken::new()
    }
}

impl std::fmt::Debug for JobToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobToken")
            .field("state", &self.state())
            .finish()
    }
}

/// Panic payload of a cooperative cancellation unwind. The admission
/// wrapper downcasts it back to a [`ServeError::Cancelled`]; any other
/// payload is a real bug and is re-propagated.
pub struct CancelUnwind(pub CancelReason);

/// Install (once) a panic hook that suppresses the default report for
/// [`CancelUnwind`] payloads — cancellation is control flow here, not a
/// fault — while delegating everything else to the previously-installed
/// hook.
pub fn install_cancel_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<CancelUnwind>().is_none() {
                previous(info);
            }
        }));
    });
}

// ---------------------------------------------------------------------------
// Errors and configuration
// ---------------------------------------------------------------------------

/// Why the serving layer did not return a job result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// The class queue was full and no lower-priority waiter could be shed.
    Overloaded {
        /// The rejected job's class.
        class: JobClass,
    },
    /// The job was cancelled, timed out, or shed (queued or mid-run).
    Cancelled {
        /// The stopped job's class.
        class: JobClass,
        /// What tripped it.
        reason: CancelReason,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { class } => {
                write!(f, "{} queue full: job rejected", class.name())
            }
            ServeError::Cancelled { class, reason } => {
                write!(f, "{} job stopped: {:?}", class.name(), reason)
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Admission policy of one job class.
#[derive(Debug, Clone, Copy)]
pub struct ClassPolicy {
    /// Jobs of this class allowed to run concurrently (min 1).
    pub max_concurrent: usize,
    /// Bounded wait-queue length beyond the running set.
    pub queue_capacity: usize,
    /// Fraction of the pool's helper lanes this class may hold at once
    /// (clamped to `[0, 1]`; the budget is `round(fraction × (pool − 1))`).
    pub lane_fraction: f64,
    /// Default deadline stamped on this class's tokens (`None` = none).
    pub deadline: Option<Duration>,
    /// Minimum idle gap after a job of this class finishes before the next
    /// one may start — duty-cycling for background classes. Lane budgets
    /// bound *how many* helpers a class holds, which isolates interactive
    /// work on multi-core pools; on narrow pools (down to one core) a
    /// background class competes for the same CPU time regardless, and
    /// pacing is what bounds its duty cycle. `None` = unpaced.
    pub pacing: Option<Duration>,
}

/// Memory-ceiling policy of the [`MemoryGovernor`].
#[derive(Debug, Clone, Copy)]
pub struct MemoryPolicy {
    /// RSS watermark in bytes; readings above it raise [`memory_pressure`].
    pub ceiling_bytes: u64,
    /// Feature-cache byte budget enforced (by eviction) under pressure.
    pub cache_budget_bytes: usize,
    /// Minimum interval between RSS reads (polling is caller-driven).
    pub poll_interval: Duration,
}

/// Full serving-layer configuration: one [`ClassPolicy`] per class plus an
/// optional memory ceiling.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Per-class policies, indexed by [`JobClass::index`].
    pub classes: [ClassPolicy; 4],
    /// Memory-ceiling governor policy (`None` = no governor).
    pub memory: Option<MemoryPolicy>,
}

impl ServeConfig {
    /// Defaults for a pool of `threads` workers: interactive classes
    /// (point, search) may saturate the pool and queue deep; throughput
    /// classes (batch, COI) run one at a time, queue shallow, and hold at
    /// most half the helper lanes — the "a 12-way batch must not starve
    /// point queries" shape.
    pub fn for_pool(threads: usize) -> ServeConfig {
        let interactive = ClassPolicy {
            max_concurrent: threads.max(2),
            queue_capacity: 64,
            lane_fraction: 1.0,
            deadline: None,
            pacing: None,
        };
        let background = ClassPolicy {
            max_concurrent: 1,
            queue_capacity: 4,
            lane_fraction: 0.5,
            deadline: None,
            pacing: None,
        };
        ServeConfig {
            classes: [interactive, interactive, background, background],
            memory: None,
        }
    }

    /// The policy of `class`.
    pub fn policy(&self, class: JobClass) -> &ClassPolicy {
        &self.classes[class.index()]
    }

    /// Mutable access for call-site tweaks.
    pub fn policy_mut(&mut self, class: JobClass) -> &mut ClassPolicy {
        &mut self.classes[class.index()]
    }
}

// ---------------------------------------------------------------------------
// Memory governor
// ---------------------------------------------------------------------------

/// Process-global memory-pressure flag. Raised/cleared by the
/// [`MemoryGovernor`]; consulted by batch execution (matrix dropping),
/// cache admission, and `sm_enterprise` shard compaction.
static PRESSURE: AtomicBool = AtomicBool::new(false);

/// True while the memory governor holds the process over its RSS ceiling.
pub fn memory_pressure() -> bool {
    PRESSURE.load(Ordering::Relaxed)
}

/// Force the pressure flag (governor internal; exposed for tests of the
/// degradation paths — always pair a set with a clearing reset).
pub fn set_memory_pressure(on: bool) {
    PRESSURE.store(on, Ordering::Relaxed);
}

/// Current resident set of this process in bytes (`VmRSS`), if the
/// platform exposes `/proc/self/status`.
pub fn current_rss_bytes() -> Option<u64> {
    proc_status_kb("VmRSS:").map(|kb| kb * 1024)
}

/// Peak resident set of this process in bytes (`VmHWM`), if available.
pub fn peak_rss_bytes() -> Option<u64> {
    proc_status_kb("VmHWM:").map(|kb| kb * 1024)
}

fn proc_status_kb(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with(field))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// RSS-watermark governor: polled at job boundaries (and by the bench's
/// sampler), it raises [`memory_pressure`] when resident set crosses the
/// ceiling, evicts the feature cache down to its byte budget, and clears
/// the flag — with hysteresis — once the process drops an eighth below the
/// ceiling again.
pub struct MemoryGovernor {
    policy: MemoryPolicy,
    cache: Arc<FeatureCache>,
    last_poll: Mutex<Option<Instant>>,
}

impl MemoryGovernor {
    /// A governor enforcing `policy` against `cache`.
    pub fn new(policy: MemoryPolicy, cache: Arc<FeatureCache>) -> MemoryGovernor {
        MemoryGovernor {
            policy,
            cache,
            last_poll: Mutex::new(None),
        }
    }

    /// Rate-limited pressure check; cheap enough to call on every job
    /// submission. Returns the pressure state after the check.
    pub fn poll(&self) -> bool {
        {
            let mut last = self.last_poll.lock().expect("governor poisoned");
            let now = Instant::now();
            match *last {
                Some(at) if now.duration_since(at) < self.policy.poll_interval => {
                    return memory_pressure();
                }
                _ => *last = Some(now),
            }
        }
        let Some(rss) = current_rss_bytes() else {
            return memory_pressure();
        };
        obs::gauge_max(obs::Counter::ServeRssPeak, rss);
        if rss > self.policy.ceiling_bytes {
            set_memory_pressure(true);
            self.cache.evict_to_bytes(self.policy.cache_budget_bytes);
        } else if rss < self.policy.ceiling_bytes - self.policy.ceiling_bytes / 8 {
            set_memory_pressure(false);
        }
        memory_pressure()
    }

    /// The configured policy.
    pub fn policy(&self) -> &MemoryPolicy {
        &self.policy
    }
}

// ---------------------------------------------------------------------------
// Admission controller
// ---------------------------------------------------------------------------

/// What an admitted job is allowed to use: its token, its class's lane
/// budget, and whether it should take the degraded (memory-bounded) path.
pub struct JobGrant {
    class: JobClass,
    token: JobToken,
    budget: Arc<LaneBudget>,
    degraded: bool,
}

impl JobGrant {
    /// The job's cancellation/deadline token.
    pub fn token(&self) -> &JobToken {
        &self.token
    }

    /// The class's shared helper-lane budget.
    pub fn budget(&self) -> &Arc<LaneBudget> {
        &self.budget
    }

    /// True when the memory governor asks this job to prefer the
    /// matrix-dropping path (`MatchBatch::run_select_only`).
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// The granted class.
    pub fn class(&self) -> JobClass {
        self.class
    }

    /// Bind this grant onto an engine: its runs honor the token at every
    /// chunk boundary and draw helper lanes from the class budget.
    pub fn bind(&self, engine: crate::engine::MatchEngine) -> crate::engine::MatchEngine {
        engine
            .with_job_token(self.token.clone())
            .with_lane_budget(Arc::clone(&self.budget))
    }
}

/// Outcome slot a queued waiter blocks on.
#[derive(Clone, Copy, PartialEq, Eq)]
enum WaitOutcome {
    Waiting,
    Admitted,
    Shed,
}

struct WaitCell {
    state: Mutex<WaitOutcome>,
    ready: Condvar,
}

struct Waiter {
    seq: u64,
    priority: u8,
    token: JobToken,
    cell: Arc<WaitCell>,
}

struct ClassQueue {
    running: usize,
    waiters: Vec<Waiter>,
    /// Earliest instant the next job of a paced class may start (set on
    /// job completion; `None` for unpaced classes or an idle-long-enough
    /// queue).
    next_start: Option<Instant>,
}

/// The serving layer's front door: bounded per-class admission over one
/// executor. See the module docs for the full semantics.
pub struct AdmissionController {
    exec: Arc<Executor>,
    config: ServeConfig,
    queues: [Mutex<ClassQueue>; 4],
    budgets: [Arc<LaneBudget>; 4],
    governor: Option<MemoryGovernor>,
    seq: AtomicU64,
}

impl AdmissionController {
    /// A controller over `exec` with `config`; the governor (if configured)
    /// enforces its cache budget against `cache`.
    pub fn new(exec: Arc<Executor>, cache: Arc<FeatureCache>, config: ServeConfig) -> Self {
        install_cancel_hook();
        let pool_helpers = exec.threads().saturating_sub(1);
        let budgets = std::array::from_fn(|i| {
            let fraction = config.classes[i].lane_fraction.clamp(0.0, 1.0);
            let lanes = (fraction * pool_helpers as f64).round() as usize;
            Arc::new(LaneBudget::new(lanes.min(pool_helpers)))
        });
        let governor = config
            .memory
            .map(|policy| MemoryGovernor::new(policy, Arc::clone(&cache)));
        AdmissionController {
            exec,
            config,
            queues: std::array::from_fn(|_| {
                Mutex::new(ClassQueue {
                    running: 0,
                    waiters: Vec::new(),
                    next_start: None,
                })
            }),
            budgets,
            governor,
            seq: AtomicU64::new(0),
        }
    }

    /// The executor jobs run on.
    pub fn executor(&self) -> &Arc<Executor> {
        &self.exec
    }

    /// The configuration this controller enforces.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The shared lane budget of `class` (for binding engines manually).
    pub fn budget(&self, class: JobClass) -> &Arc<LaneBudget> {
        &self.budgets[class.index()]
    }

    /// Submit a job with the class's default deadline. `priority` orders
    /// both promotion (higher first) and shedding (a full queue sheds its
    /// lowest-priority waiter only for a strictly higher-priority arrival).
    ///
    /// The job closure runs **on the calling thread** once admitted — the
    /// controller shapes concurrency, it does not own worker threads; the
    /// executor's caller-participating lanes stay exactly as they were.
    pub fn submit<T, F>(&self, class: JobClass, priority: u8, job: F) -> Result<T, ServeError>
    where
        F: FnOnce(&JobGrant) -> T,
    {
        let token = match self.config.policy(class).deadline {
            Some(budget) => JobToken::deadline_in(budget),
            None => JobToken::new(),
        };
        self.submit_with_token(class, priority, token, job)
    }

    /// [`Self::submit`] with a caller-provided token (external deadlines,
    /// caller-held cancellation handles).
    pub fn submit_with_token<T, F>(
        &self,
        class: JobClass,
        priority: u8,
        token: JobToken,
        job: F,
    ) -> Result<T, ServeError>
    where
        F: FnOnce(&JobGrant) -> T,
    {
        let degraded = match &self.governor {
            Some(governor) => governor.poll(),
            None => memory_pressure(),
        };
        if self.config.policy(class).pacing.is_some() {
            token.set_yield_hint();
        }
        let queue_start = obs::now_ns();
        self.admit(class, priority, &token)?;
        obs::record_span(
            obs::SpanKind::ServeQueueWait,
            class.index() as u64,
            queue_start,
            obs::now_ns().saturating_sub(queue_start),
        );
        obs::add(obs::Counter::ServeAdmitted, 1);
        if degraded {
            obs::add(obs::Counter::ServeDegraded, 1);
        }
        let grant = JobGrant {
            class,
            token: token.clone(),
            budget: Arc::clone(&self.budgets[class.index()]),
            degraded,
        };
        let (outcome, _) = obs::timed(obs::SpanKind::ServeJob, class.index() as u64, || {
            catch_unwind(AssertUnwindSafe(|| job(&grant)))
        });
        self.finish(class);
        match outcome {
            Ok(value) => Ok(value),
            Err(payload) => match payload.downcast::<CancelUnwind>() {
                Ok(cancel) => {
                    let reason = cancel.0;
                    match reason {
                        CancelReason::Deadline => obs::add(obs::Counter::ServeTimeouts, 1),
                        _ => obs::add(obs::Counter::ServeCancelled, 1),
                    }
                    Err(ServeError::Cancelled { class, reason })
                }
                Err(other) => std::panic::resume_unwind(other),
            },
        }
    }

    /// Block until admitted, shed, or timed out. On `Ok(())` the caller
    /// holds one `running` slot of `class` and must pair it with
    /// [`Self::finish`].
    fn admit(&self, class: JobClass, priority: u8, token: &JobToken) -> Result<(), ServeError> {
        let policy = self.config.policy(class);
        let queue = &self.queues[class.index()];
        let cell;
        let seq;
        {
            let mut q = queue.lock().expect("serve queue poisoned");
            if q.running < policy.max_concurrent.max(1) {
                q.running += 1;
                drop(q);
                return self.pace(class, token);
            }
            if q.waiters.len() >= policy.queue_capacity {
                // Shed the lowest-priority waiter — youngest among ties,
                // least sunk queueing time — but only for strictly
                // higher-priority work; equal priority waits its turn or
                // bounces.
                let victim = q
                    .waiters
                    .iter()
                    .enumerate()
                    .filter(|(_, w)| w.priority < priority)
                    .min_by_key(|(_, w)| (w.priority, std::cmp::Reverse(w.seq)))
                    .map(|(at, _)| at);
                let Some(at) = victim else {
                    obs::add(obs::Counter::ServeRejected, 1);
                    return Err(ServeError::Overloaded { class });
                };
                let shed = q.waiters.remove(at);
                shed.token.trip(CancelReason::Shed);
                *shed.cell.state.lock().expect("wait cell poisoned") = WaitOutcome::Shed;
                shed.cell.ready.notify_all();
                obs::add(obs::Counter::ServeShed, 1);
            }
            seq = self.seq.fetch_add(1, Ordering::Relaxed);
            cell = Arc::new(WaitCell {
                state: Mutex::new(WaitOutcome::Waiting),
                ready: Condvar::new(),
            });
            q.waiters.push(Waiter {
                seq,
                priority,
                token: token.clone(),
                cell: Arc::clone(&cell),
            });
            obs::gauge_max(obs::Counter::ServeQueueDepthMax, q.waiters.len() as u64);
        }

        // Wait for promotion, shedding, or our deadline. Lock order: the
        // cell guard is always dropped before touching the class queue
        // (promoters hold queue-then-cell).
        loop {
            // `true` = deadline expired while waiting; `false` = admitted
            // (the pace gate runs outside the cell lock — cell before
            // queue would invert the promoters' lock order).
            let timed_out = {
                let mut state = cell.state.lock().expect("wait cell poisoned");
                loop {
                    match *state {
                        WaitOutcome::Admitted => break false,
                        WaitOutcome::Shed => {
                            return Err(ServeError::Cancelled {
                                class,
                                reason: CancelReason::Shed,
                            })
                        }
                        WaitOutcome::Waiting => {}
                    }
                    match token.remaining() {
                        Some(rem) if rem.is_zero() => break true,
                        Some(rem) => {
                            let (next, result) = cell
                                .ready
                                .wait_timeout(state, rem)
                                .expect("wait cell poisoned");
                            state = next;
                            if result.timed_out() && *state == WaitOutcome::Waiting {
                                break true;
                            }
                        }
                        None => {
                            state = cell.ready.wait(state).expect("wait cell poisoned");
                        }
                    }
                }
            };
            if !timed_out {
                return self.pace(class, token);
            }
            // Deadline hit while queued: remove ourselves. A concurrent
            // promotion/shed may have raced us out of the queue already —
            // re-read the cell and honor whichever happened.
            let mut q = queue.lock().expect("serve queue poisoned");
            if let Some(at) = q.waiters.iter().position(|w| w.seq == seq) {
                q.waiters.remove(at);
                drop(q);
                token.trip(CancelReason::Deadline);
                obs::add(obs::Counter::ServeTimeouts, 1);
                return Err(ServeError::Cancelled {
                    class,
                    reason: CancelReason::Deadline,
                });
            }
            drop(q);
            // Raced: loop back and read the (now decided) outcome.
        }
    }

    /// Hold a freshly-granted slot of a paced class until its idle gap has
    /// elapsed. The slot is already claimed, so capacity stays reserved;
    /// a deadline that cannot survive the wait releases the slot and
    /// reports a timeout instead of burning the gap for nothing.
    fn pace(&self, class: JobClass, token: &JobToken) -> Result<(), ServeError> {
        if self.config.policy(class).pacing.is_none() {
            return Ok(());
        }
        let start_at = self.queues[class.index()]
            .lock()
            .expect("serve queue poisoned")
            .next_start;
        let Some(start_at) = start_at else {
            return Ok(());
        };
        loop {
            if let Some(reason) = token.state() {
                self.finish(class);
                match reason {
                    CancelReason::Deadline => obs::add(obs::Counter::ServeTimeouts, 1),
                    _ => obs::add(obs::Counter::ServeCancelled, 1),
                }
                return Err(ServeError::Cancelled { class, reason });
            }
            let now = Instant::now();
            if now >= start_at {
                return Ok(());
            }
            let mut wait = start_at - now;
            if let Some(rem) = token.remaining() {
                // The deadline lands inside the gap: sleep only to the
                // deadline, then the state check above reports it.
                wait = wait.min(rem);
            }
            std::thread::sleep(wait.min(Duration::from_millis(2)));
        }
    }

    /// Release one `running` slot of `class` and promote waiters — highest
    /// priority first, FIFO within a priority — while capacity remains.
    fn finish(&self, class: JobClass) {
        let policy = self.config.policy(class);
        let mut q = self.queues[class.index()]
            .lock()
            .expect("serve queue poisoned");
        q.running = q.running.saturating_sub(1);
        if let Some(gap) = policy.pacing {
            q.next_start = Some(Instant::now() + gap);
        }
        while q.running < policy.max_concurrent.max(1) {
            let best = q
                .waiters
                .iter()
                .enumerate()
                .max_by_key(|(_, w)| (w.priority, std::cmp::Reverse(w.seq)))
                .map(|(at, _)| at);
            let Some(at) = best else { break };
            let waiter = q.waiters.remove(at);
            q.running += 1;
            *waiter.cell.state.lock().expect("wait cell poisoned") = WaitOutcome::Admitted;
            waiter.cell.ready.notify_all();
        }
    }
}

impl std::fmt::Debug for AdmissionController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionController")
            .field("threads", &self.exec.threads())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;

    fn controller(threads: usize, config: ServeConfig) -> AdmissionController {
        AdmissionController::new(
            Arc::new(Executor::new(threads)),
            Arc::new(FeatureCache::new(sm_text::normalize::Normalizer::new())),
            config,
        )
    }

    #[test]
    fn uncontended_jobs_run_inline_and_return() {
        let ctl = controller(2, ServeConfig::for_pool(2));
        let out = ctl.submit(JobClass::PointMatch, 1, |grant| {
            assert!(!grant.degraded());
            grant.token().checkpoint(); // live token: no-op
            21 * 2
        });
        assert_eq!(out.unwrap(), 42);
    }

    #[test]
    fn full_queue_rejects_equal_priority_and_sheds_lower() {
        let mut config = ServeConfig::for_pool(2);
        *config.policy_mut(JobClass::Batch) = ClassPolicy {
            max_concurrent: 1,
            queue_capacity: 1,
            lane_fraction: 0.5,
            deadline: None,
            pacing: None,
        };
        let ctl = Arc::new(controller(2, config));
        let occupied = Arc::new(Barrier::new(2));
        let release = Arc::new(Barrier::new(2));

        let runner = {
            let ctl = Arc::clone(&ctl);
            let occupied = Arc::clone(&occupied);
            let release = Arc::clone(&release);
            std::thread::spawn(move || {
                ctl.submit(JobClass::Batch, 1, |_| {
                    occupied.wait();
                    release.wait();
                })
                .unwrap();
            })
        };
        occupied.wait(); // the running slot is held

        // Fill the queue with a low-priority waiter.
        let waiter = {
            let ctl = Arc::clone(&ctl);
            std::thread::spawn(move || ctl.submit(JobClass::Batch, 0, |_| "low"))
        };
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let queued = ctl.queues[JobClass::Batch.index()]
                .lock()
                .unwrap()
                .waiters
                .len();
            if queued == 1 {
                break;
            }
            assert!(Instant::now() < deadline, "waiter never queued");
            std::thread::yield_now();
        }

        // Equal priority at a full queue: rejected, queue untouched.
        let bounced = ctl.submit(JobClass::Batch, 0, |_| "equal");
        assert_eq!(
            bounced.unwrap_err(),
            ServeError::Overloaded {
                class: JobClass::Batch
            }
        );

        // Strictly higher priority: the low waiter is shed to make room.
        let vip = {
            let ctl = Arc::clone(&ctl);
            std::thread::spawn(move || ctl.submit(JobClass::Batch, 5, |_| "vip"))
        };
        assert_eq!(
            waiter.join().unwrap().unwrap_err(),
            ServeError::Cancelled {
                class: JobClass::Batch,
                reason: CancelReason::Shed,
            }
        );
        release.wait(); // let the occupant finish; the vip promotes
        assert_eq!(vip.join().unwrap().unwrap(), "vip");
        runner.join().unwrap();
    }

    #[test]
    fn queued_deadline_times_out_without_running() {
        let mut config = ServeConfig::for_pool(2);
        config.policy_mut(JobClass::Search).max_concurrent = 1;
        config.policy_mut(JobClass::Search).deadline = Some(Duration::from_millis(30));
        let ctl = Arc::new(controller(2, config));
        let occupied = Arc::new(Barrier::new(2));
        let release = Arc::new(Barrier::new(2));
        let runner = {
            let ctl = Arc::clone(&ctl);
            let occupied = Arc::clone(&occupied);
            let release = Arc::clone(&release);
            std::thread::spawn(move || {
                ctl.submit(JobClass::Search, 1, |_| {
                    occupied.wait();
                    release.wait();
                })
                .unwrap();
            })
        };
        occupied.wait();
        let ran = AtomicUsize::new(0);
        let out = ctl.submit(JobClass::Search, 1, |_| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(
            out.unwrap_err(),
            ServeError::Cancelled {
                class: JobClass::Search,
                reason: CancelReason::Deadline,
            }
        );
        assert_eq!(ran.load(Ordering::Relaxed), 0, "timed-out job never ran");
        release.wait();
        runner.join().unwrap();
    }

    #[test]
    fn paced_class_enforces_idle_gap_between_jobs() {
        let gap = Duration::from_millis(40);
        let mut config = ServeConfig::for_pool(2);
        config.policy_mut(JobClass::Batch).pacing = Some(gap);
        let ctl = controller(2, config);

        ctl.submit(JobClass::Batch, 1, |_| ()).unwrap();
        let first_end = Instant::now();
        let mut second_start = first_end;
        ctl.submit(JobClass::Batch, 1, |_| {
            second_start = Instant::now();
        })
        .unwrap();
        assert!(
            second_start.duration_since(first_end) >= gap - Duration::from_millis(2),
            "paced job started {:?} after the previous finish (gap {gap:?})",
            second_start.duration_since(first_end)
        );

        // A deadline that cannot survive the gap times out without running,
        // and releases the slot for later paced work.
        ctl.submit(JobClass::Batch, 1, |_| ()).unwrap();
        let ran = AtomicUsize::new(0);
        let out = ctl.submit_with_token(
            JobClass::Batch,
            1,
            JobToken::deadline_in(Duration::from_millis(1)),
            |_| {
                ran.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(
            out.unwrap_err(),
            ServeError::Cancelled {
                class: JobClass::Batch,
                reason: CancelReason::Deadline,
            }
        );
        assert_eq!(ran.load(Ordering::Relaxed), 0);
        ctl.submit(JobClass::Batch, 1, |_| ()).unwrap();

        // Unpaced classes are untouched by a sibling's pacing.
        let t0 = Instant::now();
        ctl.submit(JobClass::PointMatch, 1, |_| ()).unwrap();
        assert!(t0.elapsed() < gap, "unpaced class waited a pacing gap");
    }

    #[test]
    fn mid_run_cancellation_maps_to_cancelled_error() {
        let ctl = controller(2, ServeConfig::for_pool(2));
        let out: Result<(), _> = ctl.submit(JobClass::PointMatch, 1, |grant| {
            grant.token().cancel();
            grant.token().checkpoint();
            unreachable!("checkpoint must unwind");
        });
        assert_eq!(
            out.unwrap_err(),
            ServeError::Cancelled {
                class: JobClass::PointMatch,
                reason: CancelReason::Cancelled,
            }
        );
        // The controller (and its executor) stay fully usable.
        assert_eq!(ctl.submit(JobClass::PointMatch, 1, |_| 7).unwrap(), 7);
    }

    #[test]
    fn zero_deadline_trips_at_first_checkpoint() {
        let ctl = controller(2, ServeConfig::for_pool(2));
        let token = JobToken::deadline_in(Duration::ZERO);
        let out: Result<(), _> = ctl.submit_with_token(JobClass::Batch, 1, token, |grant| {
            grant.token().checkpoint();
            unreachable!();
        });
        assert_eq!(
            out.unwrap_err(),
            ServeError::Cancelled {
                class: JobClass::Batch,
                reason: CancelReason::Deadline,
            }
        );
    }

    #[test]
    fn foreign_panics_propagate_unchanged() {
        let ctl = controller(2, ServeConfig::for_pool(2));
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _ = ctl.submit(JobClass::PointMatch, 1, |_| panic!("real bug"));
        }));
        let payload = result.unwrap_err();
        assert_eq!(*payload.downcast_ref::<&str>().unwrap(), "real bug");
        // A real panic still releases the running slot.
        assert_eq!(ctl.submit(JobClass::PointMatch, 1, |_| 5).unwrap(), 5);
    }

    #[test]
    fn governor_reads_rss_and_sets_pressure_flag() {
        let rss = current_rss_bytes().expect("procfs available in CI");
        assert!(rss > 0);
        let cache = Arc::new(FeatureCache::new(sm_text::normalize::Normalizer::new()));
        // Ceiling below current use: one poll must raise pressure.
        let governor = MemoryGovernor::new(
            MemoryPolicy {
                ceiling_bytes: rss / 2,
                cache_budget_bytes: 1 << 20,
                poll_interval: Duration::ZERO,
            },
            Arc::clone(&cache),
        );
        assert!(governor.poll());
        assert!(memory_pressure());
        // Ceiling far above: pressure clears (hysteresis margin included).
        let relaxed = MemoryGovernor::new(
            MemoryPolicy {
                ceiling_bytes: rss.saturating_mul(16),
                cache_budget_bytes: 1 << 20,
                poll_interval: Duration::ZERO,
            },
            cache,
        );
        assert!(!relaxed.poll());
        assert!(!memory_pressure());
    }
}

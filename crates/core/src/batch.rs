//! Batch match planning: one shared index and one worker pool for a whole
//! many-pair workload.
//!
//! The paper's enterprise scenarios are inherently *many-pair*: the
//! five-schema comprehensive vocabulary (§3.4) needs all 10 unordered pairs,
//! clustering for consolidation compares every registry schema with every
//! other, COI agreement matches each member against each member. Executing
//! those as a loop of independent two-schema runs repays per-pair costs that
//! are really per-*schema*: linguistic preparation (already cached by
//! [`FeatureCache`]) and — before this module — the token-blocking index,
//! which `generate_candidates` rebuilt twice per pair (once per probe
//! direction), i.e. `N·(N−1)` builds for an N-way effort that needs exactly
//! `N`.
//!
//! [`BatchPlanner::plan`] front-loads all shared work into a **Plan** stage
//! (reported as [`StageTimings::plan`]): every schema is prepared through
//! the engine's cache (concurrently, on the executor, with
//! [`FeatureCache::get_or_prepare`] coalescing racing preparations of the
//! same content) and indexed exactly once into a [`BatchIndex`] — the
//! multi-schema token index, partitioned per schema so each pair's IDF
//! weights are bit-for-bit those of a standalone run. [`MatchBatch::run`]
//! then executes all requested pairs concurrently on the persistent
//! [`Executor`]: pairs are job-level lanes claiming from the batch's
//! request queue, and each pair's Score/Merge stage fans its row chunks out
//! to the *same* pool, so an idle worker steals chunk work from the
//! straggler pair instead of idling at the tail (two-level scheduling; see
//! [`crate::exec`]).
//!
//! The contract mirrors the blocking index's: batching is an *execution*
//! change, never a semantics change. Per-pair results are byte-identical to
//! a sequential `run_blocked` loop over the same requests — pinned in
//! `tests/batch_pin.rs` across seeds, pair counts, and pool widths.

use crate::correspondence::MatchSet;
use crate::engine::{BlockedMatchResult, MatchEngine};
use crate::exec::Executor;
use crate::index::{BlockingPolicy, ElementTokenIndex};
use crate::pipeline::StageTimings;
use crate::prepare::{CacheStats, FeatureCache, PreparedSchema};
use crate::select::Selection;
use sm_schema::Schema;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One requested pairwise match: indices into the batch's schema list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairRequest {
    /// Source-side schema slot.
    pub left: usize,
    /// Target-side schema slot.
    pub right: usize,
}

impl From<(usize, usize)> for PairRequest {
    fn from((left, right): (usize, usize)) -> Self {
        PairRequest { left, right }
    }
}

/// Plans batches over one engine's configuration (obtained from
/// [`MatchEngine::batch`]).
pub struct BatchPlanner<'e> {
    engine: &'e MatchEngine,
    policy: BlockingPolicy,
}

impl<'e> BatchPlanner<'e> {
    pub(crate) fn new(engine: &'e MatchEngine) -> Self {
        BatchPlanner {
            engine,
            policy: BlockingPolicy::default(),
        }
    }

    /// Use a specific blocking policy for every pair of the batch
    /// ([`BlockingPolicy::Exhaustive`] reproduces dense runs byte for byte).
    pub fn with_policy(mut self, policy: BlockingPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Plan a batch: prepare all `schemas` and build the shared
    /// [`BatchIndex`] up front (the Plan stage), recording the requested
    /// pairs for [`MatchBatch::run`].
    ///
    /// # Panics
    /// Panics when a request indexes outside `schemas`.
    pub fn plan<'s>(
        &self,
        schemas: &[&'s Schema],
        requests: impl IntoIterator<Item = impl Into<PairRequest>>,
    ) -> MatchBatch<'e, 's> {
        let requests: Vec<PairRequest> = requests.into_iter().map(Into::into).collect();
        for r in &requests {
            assert!(
                r.left < schemas.len() && r.right < schemas.len(),
                "pair request ({}, {}) outside the {}-schema batch",
                r.left,
                r.right,
                schemas.len()
            );
        }

        let cache = self.engine.feature_cache();
        let exec = self.engine.executor();
        let started = Instant::now();
        let stats_before = cache.stats();
        // The engine's thread cap bounds planning lanes exactly like the
        // execute phase's job lanes. An exhaustive batch never probes an
        // index (candidate generation short-circuits to the full cross
        // product), so building one would be dead work.
        let prepared = prepare_schemas(cache, exec, self.engine.threads, schemas);
        let index = if matches!(self.policy, BlockingPolicy::Exhaustive) {
            BatchIndex::empty()
        } else {
            BatchIndex::build(exec, self.engine.threads, &prepared)
        };
        let stats_after = cache.stats();
        let plan = started.elapsed();

        MatchBatch {
            engine: self.engine,
            policy: self.policy,
            schemas: schemas.to_vec(),
            prepared,
            index,
            requests,
            plan,
            cache: delta_stats(stats_before, stats_after),
        }
    }

    /// Plan every unordered pair `(i, j)` with `i < j` — the N-way shape.
    pub fn plan_all_pairs<'s>(&self, schemas: &[&'s Schema]) -> MatchBatch<'e, 's> {
        let n = schemas.len();
        let requests =
            (0..n).flat_map(move |i| ((i + 1)..n).map(move |j| PairRequest { left: i, right: j }));
        self.plan(schemas, requests)
    }
}

/// Counter movement of the feature cache across one batch phase.
/// `hits`/`misses`/`evictions` are after−before deltas; `entries` is the
/// absolute resident count at the end of the phase (an occupancy gauge has
/// no meaningful delta).
fn delta_stats(before: CacheStats, after: CacheStats) -> CacheStats {
    CacheStats {
        hits: after.hits.saturating_sub(before.hits),
        misses: after.misses.saturating_sub(before.misses),
        evictions: after.evictions.saturating_sub(before.evictions),
        entries: after.entries,
    }
}

/// Prepare many schemata through one cache, concurrently on the executor
/// (at most `parallelism` lanes — callers bound by an engine pass its
/// thread cap; standalone bulk consumers pass `exec.threads()`).
///
/// Lanes claim schema slots from a shared queue;
/// [`FeatureCache::get_or_prepare`] guarantees a fingerprint is built at
/// most once even when two lanes (or two batches) race on equal content.
/// Exposed for the enterprise layer's bulk operations (clustering,
/// feasibility, repository warming), whose per-schema loops this replaces.
pub fn prepare_schemas(
    cache: &FeatureCache,
    exec: &Executor,
    parallelism: usize,
    schemas: &[&Schema],
) -> Vec<Arc<PreparedSchema>> {
    exec.run_map(parallelism, schemas, |_, schema| {
        cache.get_or_prepare(schema)
    })
}

/// [`prepare_schemas`] against the process-wide cache and executor at full
/// pool width — the standalone bulk-prepare the enterprise operators
/// (clustering, feasibility, repository warming) share.
pub fn prepare_schemas_global(schemas: &[&Schema]) -> Vec<Arc<PreparedSchema>> {
    let exec = Executor::global();
    prepare_schemas(FeatureCache::global(), exec, exec.threads(), schemas)
}

/// The batch's shared multi-schema token index: every schema of the batch
/// indexed exactly once, partitioned per schema.
///
/// Partitioning is what keeps batching invisible to results: blocking
/// weights are IDF-smoothed per opposing schema (`ln((n+1)/(df+1))+1` with
/// that schema's `n` and `df`), so candidate generation for a pair reads
/// only that pair's two partitions and reproduces the standalone
/// [`ElementTokenIndex`] probe bit for bit — while an N-way batch performs
/// `N` index builds instead of the sequential loop's `N·(N−1)`.
#[derive(Debug)]
pub struct BatchIndex {
    per_schema: Vec<ElementTokenIndex>,
}

impl BatchIndex {
    /// Index every prepared schema, concurrently on the executor (at most
    /// `parallelism` lanes). Each schema's build further fans its element
    /// chunks out to the same pool ([`ElementTokenIndex::build_parallel`]),
    /// so a small batch of large schemata still fills every lane.
    pub fn build(exec: &Executor, parallelism: usize, prepared: &[Arc<PreparedSchema>]) -> Self {
        BatchIndex {
            per_schema: exec.run_map(parallelism, prepared, |_, prepared| {
                ElementTokenIndex::build_parallel(prepared, exec, parallelism)
            }),
        }
    }

    /// An index over no schemata — what an exhaustive batch carries, since
    /// its candidate generation never probes one.
    pub fn empty() -> Self {
        BatchIndex {
            per_schema: Vec::new(),
        }
    }

    /// Number of indexed schemata.
    pub fn len(&self) -> usize {
        self.per_schema.len()
    }

    /// True when the batch holds no schemata.
    pub fn is_empty(&self) -> bool {
        self.per_schema.is_empty()
    }

    /// The partition of one schema slot.
    pub fn schema(&self, slot: usize) -> &ElementTokenIndex {
        &self.per_schema[slot]
    }
}

/// A planned batch: prepared schemata, the shared index, and the request
/// list, ready to execute (possibly several times).
pub struct MatchBatch<'e, 's> {
    engine: &'e MatchEngine,
    policy: BlockingPolicy,
    schemas: Vec<&'s Schema>,
    prepared: Vec<Arc<PreparedSchema>>,
    index: BatchIndex,
    requests: Vec<PairRequest>,
    plan: Duration,
    cache: CacheStats,
}

impl MatchBatch<'_, '_> {
    /// The planned pair requests, in execution-result order.
    pub fn requests(&self) -> &[PairRequest] {
        &self.requests
    }

    /// The prepared schemata, in schema-list order.
    pub fn prepared(&self) -> &[Arc<PreparedSchema>] {
        &self.prepared
    }

    /// The shared multi-schema token index ([`BatchIndex::empty`] for an
    /// exhaustive batch, which never probes one).
    pub fn index(&self) -> &BatchIndex {
        &self.index
    }

    /// Wall-clock time of the Plan stage (bulk prepare + index build).
    pub fn plan_time(&self) -> Duration {
        self.plan
    }

    /// Execute every requested pair concurrently on the engine's executor.
    pub fn run(&self) -> BatchResult {
        self.execute(None)
    }

    /// [`Self::run`], additionally applying `selection` to every pair's
    /// matrix (the Select stage, timed per pair).
    pub fn run_select(&self, selection: &Selection) -> BatchResult {
        self.execute(Some(selection))
    }

    /// Selection-only execution: apply `selection` to every pair and keep
    /// just the selected correspondences plus lightweight stats — each
    /// pair's matrix and candidate set drop inside the job, right after
    /// selection. This is the memory-bounded path for bulk consumers that
    /// never read scores (n-way population, repository bulk recording, COI
    /// evidence): a [`Self::run_select`] over P pairs retains P full
    /// matrices until its result drops, where this holds at most
    /// one-per-lane transiently.
    pub fn run_select_only(&self, selection: &Selection) -> BatchSelectResult {
        let started = Instant::now();
        let pairs: Vec<BatchSelection> = self.engine.executor().run_map(
            self.engine.threads,
            &self.requests,
            |_, &PairRequest { left, right }| {
                let mut run = self.run_pair(left, right);
                let select_started = Instant::now();
                let selected = selection.apply(&run.matrix);
                run.timings.select = select_started.elapsed();
                BatchSelection {
                    left,
                    right,
                    selected,
                    pairs_considered: run.pairs_considered,
                    pairs_scored: run.pairs_scored,
                    timings: run.timings,
                }
            },
        );
        let mut timings = StageTimings {
            plan: self.plan,
            ..StageTimings::default()
        };
        for p in &pairs {
            timings.accumulate(&p.timings);
        }
        BatchSelectResult {
            pairs,
            timings,
            cache: self.cache,
            elapsed: started.elapsed(),
        }
    }

    /// One pair's blocked run against the batch's shared preparation and
    /// index (exhaustive batches carry no index — candidate generation
    /// short-circuits before probing).
    fn run_pair(&self, left: usize, right: usize) -> crate::pipeline::BlockedRun {
        crate::obs::add(crate::obs::Counter::PairJobs, 1);
        let _job = crate::obs::span(
            crate::obs::SpanKind::PairJob,
            ((left as u64) << 32) | right as u64,
        );
        let indices = (!matches!(self.policy, BlockingPolicy::Exhaustive))
            .then(|| (self.index.schema(left), self.index.schema(right)));
        self.engine.pipeline().run_blocked_prepared(
            self.schemas[left],
            self.schemas[right],
            &self.prepared[left],
            &self.prepared[right],
            indices,
            &self.policy,
        )
    }

    fn execute(&self, selection: Option<&Selection>) -> BatchResult {
        let started = Instant::now();

        // Job-level lanes claim whole pairs; each pair's Score/Merge fans
        // chunk lanes out to the same pool (see the module docs).
        let pairs: Vec<BatchPairResult> = self.engine.executor().run_map(
            self.engine.threads,
            &self.requests,
            |_, &PairRequest { left, right }| {
                let pair_started = Instant::now();
                let mut run = self.run_pair(left, right);
                let selected = selection.map(|sel| {
                    let select_started = Instant::now();
                    let set = sel.apply(&run.matrix);
                    run.timings.select = select_started.elapsed();
                    set
                });
                BatchPairResult {
                    left,
                    right,
                    selected,
                    result: BlockedMatchResult {
                        matrix: run.matrix,
                        elapsed: pair_started.elapsed(),
                        pairs_considered: run.pairs_considered,
                        pairs_scored: run.pairs_scored,
                        candidates: run.candidates,
                        timings: run.timings,
                    },
                }
            },
        );
        let mut timings = StageTimings {
            plan: self.plan,
            ..StageTimings::default()
        };
        for p in &pairs {
            timings.accumulate(&p.result.timings);
        }
        BatchResult {
            pairs,
            timings,
            cache: self.cache,
            elapsed: started.elapsed(),
        }
    }
}

/// One pair's outcome within a batch.
#[derive(Debug)]
pub struct BatchPairResult {
    /// Source-side schema slot of the request.
    pub left: usize,
    /// Target-side schema slot of the request.
    pub right: usize,
    /// The pair's match result — byte-identical to a standalone
    /// [`MatchEngine::run_blocked`] under the batch's policy.
    pub result: BlockedMatchResult,
    /// Selected correspondences when the batch ran with a selection.
    pub selected: Option<MatchSet>,
}

/// Outcome of one batch execution.
#[derive(Debug)]
pub struct BatchResult {
    /// Per-pair results, in request order.
    pub pairs: Vec<BatchPairResult>,
    /// Aggregated stage timings: the batch's Plan stage plus the sum of
    /// every pair's per-stage times (CPU-time-like across concurrent pairs,
    /// so stages remain comparable with sequential runs).
    pub timings: StageTimings,
    /// Feature-cache counter movement during planning — how much of the
    /// preparation was amortized (`hits`) versus newly built (`misses`),
    /// and whether planning displaced resident entries (`evictions`).
    ///
    /// `hits`/`misses`/`evictions` are before/after deltas of the engine's
    /// cache counters; `entries` is the absolute resident count after
    /// planning (occupancy, not movement). On a *shared* cache (the global
    /// default) traffic from other engines planning concurrently is
    /// attributed to this batch too — treat the deltas as exact only for a
    /// private cache or an otherwise-idle process, and as an upper bound
    /// under concurrency.
    pub cache: CacheStats,
    /// Wall-clock time of the execution phase (planning is
    /// [`MatchBatch::plan_time`]).
    pub elapsed: Duration,
}

impl BatchResult {
    /// Total candidate pairs scored across the batch.
    pub fn pairs_scored(&self) -> usize {
        self.pairs.iter().map(|p| p.result.pairs_scored).sum()
    }

    /// Total cross-product size across the batch.
    pub fn pairs_considered(&self) -> usize {
        self.pairs.iter().map(|p| p.result.pairs_considered).sum()
    }
}

/// One pair's selection-only outcome within a batch
/// ([`MatchBatch::run_select_only`]).
#[derive(Debug)]
pub struct BatchSelection {
    /// Source-side schema slot of the request.
    pub left: usize,
    /// Target-side schema slot of the request.
    pub right: usize,
    /// The selected correspondences — identical to applying the selection
    /// to the pair's [`MatchEngine::run_blocked`] matrix.
    pub selected: MatchSet,
    /// Size of the pair's full cross product.
    pub pairs_considered: usize,
    /// Candidate pairs the voter panel actually scored.
    pub pairs_scored: usize,
    /// Per-stage wall-clock timings of the pair.
    pub timings: StageTimings,
}

/// Outcome of one selection-only batch execution (matrices were dropped
/// per pair; see [`MatchBatch::run_select_only`]).
#[derive(Debug)]
pub struct BatchSelectResult {
    /// Per-pair selections, in request order.
    pub pairs: Vec<BatchSelection>,
    /// Aggregated stage timings (Plan plus per-pair sums, as in
    /// [`BatchResult::timings`]).
    pub timings: StageTimings,
    /// Feature-cache counter movement during planning (same semantics and
    /// caveats as [`BatchResult::cache`]).
    pub cache: CacheStats,
    /// Wall-clock time of the execution phase.
    pub elapsed: Duration,
}

impl BatchSelectResult {
    /// Total candidate pairs scored across the batch.
    pub fn pairs_scored(&self) -> usize {
        self.pairs.iter().map(|p| p.pairs_scored).sum()
    }

    /// Total cross-product size across the batch.
    pub fn pairs_considered(&self) -> usize {
        self.pairs.iter().map(|p| p.pairs_considered).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::confidence::Confidence;
    use sm_schema::{DataType, ElementKind, SchemaFormat, SchemaId};
    use sm_text::normalize::Normalizer;

    fn schema(id: u32, words: &[&str]) -> Schema {
        let mut s = Schema::new(SchemaId(id), format!("S{id}"), SchemaFormat::Generic);
        let r = s.add_root("Record", ElementKind::Group, DataType::None);
        for w in words {
            s.add_child(r, *w, ElementKind::Column, DataType::text())
                .unwrap();
        }
        s
    }

    fn trio() -> Vec<Schema> {
        vec![
            schema(1, &["begin_date", "location_name", "remarks"]),
            schema(2, &["BeginDate", "LocationName", "priority"]),
            schema(3, &["start_date", "site_name", "severity"]),
        ]
    }

    fn engine() -> MatchEngine {
        MatchEngine::new().with_normalizer(Normalizer::new())
    }

    #[test]
    fn batch_matches_sequential_run_blocked_loop() {
        let schemas = trio();
        let refs: Vec<&Schema> = schemas.iter().collect();
        let engine = engine().with_threads(2);
        let batch = engine.batch().plan_all_pairs(&refs);
        let result = batch.run();
        assert_eq!(result.pairs.len(), 3);
        for p in &result.pairs {
            let standalone =
                engine.run_blocked(refs[p.left], refs[p.right], &BlockingPolicy::default());
            assert_eq!(
                p.result.matrix.as_slice(),
                standalone.matrix.as_slice(),
                "batched pair ({}, {}) diverged from the standalone run",
                p.left,
                p.right
            );
            assert_eq!(p.result.pairs_scored, standalone.pairs_scored);
        }
        assert!(result.timings.plan > Duration::ZERO);
        assert!(result.timings.total() >= result.timings.plan);
    }

    /// The batch planner's per-pair runs go through `run_blocked_prepared`,
    /// so a floored engine's cascade applies to every pair of the batch and
    /// the aggregated timings carry the tier counters.
    #[test]
    fn batch_inherits_cascade_and_aggregates_tier_counters() {
        let schemas = trio();
        let refs: Vec<&Schema> = schemas.iter().collect();
        let cascade = engine().with_threads(2).with_score_floor(Some(0.0));
        let reference = engine()
            .with_threads(2)
            .with_score_floor(Some(0.0))
            .with_cascade(false);
        let got = cascade.batch().plan_all_pairs(&refs).run();
        let want = reference.batch().plan_all_pairs(&refs).run();
        for (g, w) in got.pairs.iter().zip(&want.pairs) {
            assert_eq!(
                g.result.matrix.as_slice(),
                w.result.matrix.as_slice(),
                "cascade diverged on batched pair ({}, {})",
                g.left,
                g.right
            );
        }
        assert_eq!(
            got.timings.pairs_pruned + got.timings.pairs_full,
            got.pairs_scored() as u64,
            "aggregated tier counters must partition the scored pairs"
        );
        assert_eq!(want.timings.pairs_pruned, 0);
    }

    #[test]
    fn plan_amortizes_preparation() {
        let schemas = trio();
        let refs: Vec<&Schema> = schemas.iter().collect();
        let engine = engine();
        let batch = engine.batch().plan_all_pairs(&refs);
        assert_eq!(batch.prepared().len(), 3);
        assert_eq!(batch.index().len(), 3);
        assert_eq!(batch.requests().len(), 3);
        // Cold plan: every schema prepared exactly once, no re-preparation
        // per pair.
        assert_eq!(batch.cache.misses, 3);
        // A second plan over the same schemata is all hits.
        let batch2 = engine.batch().plan_all_pairs(&refs);
        assert_eq!(batch2.cache.misses, 0);
        assert_eq!(batch2.cache.hits, 3);
    }

    #[test]
    fn run_select_attaches_selections() {
        let schemas = trio();
        let refs: Vec<&Schema> = schemas.iter().collect();
        let engine = engine();
        let selection = Selection::OneToOne {
            min: Confidence::new(0.2),
        };
        let result = engine.batch().plan_all_pairs(&refs).run_select(&selection);
        for p in &result.pairs {
            let expected = selection.apply(&p.result.matrix);
            let got = p.selected.as_ref().expect("selection ran");
            assert_eq!(got.len(), expected.len());
        }
    }

    #[test]
    fn run_select_only_matches_run_select() {
        let schemas = trio();
        let refs: Vec<&Schema> = schemas.iter().collect();
        let engine = engine();
        let selection = Selection::OneToOne {
            min: Confidence::new(0.2),
        };
        let batch = engine.batch().plan_all_pairs(&refs);
        let full = batch.run_select(&selection);
        let lean = batch.run_select_only(&selection);
        assert_eq!(full.pairs.len(), lean.pairs.len());
        for (f, l) in full.pairs.iter().zip(&lean.pairs) {
            assert_eq!((f.left, f.right), (l.left, l.right));
            assert_eq!(f.result.pairs_scored, l.pairs_scored);
            let f_sel = f.selected.as_ref().expect("selection ran");
            assert_eq!(f_sel.len(), l.selected.len());
            for (a, b) in f_sel.all().iter().zip(l.selected.all()) {
                assert_eq!((a.source, a.target), (b.source, b.target));
            }
        }
    }

    #[test]
    fn explicit_requests_execute_in_order() {
        let schemas = trio();
        let refs: Vec<&Schema> = schemas.iter().collect();
        let engine = engine();
        let result = engine.batch().plan(&refs, [(2usize, 0usize), (0, 1)]).run();
        assert_eq!(result.pairs.len(), 2);
        assert_eq!((result.pairs[0].left, result.pairs[0].right), (2, 0));
        assert_eq!((result.pairs[1].left, result.pairs[1].right), (0, 1));
        assert_eq!(result.pairs_considered(), 2 * 4 * 4);
    }

    #[test]
    fn empty_batch_is_fine() {
        let engine = engine();
        let result = engine
            .batch()
            .plan(&[] as &[&Schema], Vec::<PairRequest>::new())
            .run();
        assert!(result.pairs.is_empty());
        assert_eq!(result.pairs_scored(), 0);
    }

    #[test]
    #[should_panic(expected = "outside the")]
    fn out_of_range_request_rejected() {
        let schemas = trio();
        let refs: Vec<&Schema> = schemas.iter().collect();
        let _ = engine().batch().plan(&refs, [(0usize, 7usize)]);
    }
}

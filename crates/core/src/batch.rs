//! Batch match planning: one shared index and one worker pool for a whole
//! many-pair workload.
//!
//! The paper's enterprise scenarios are inherently *many-pair*: the
//! five-schema comprehensive vocabulary (§3.4) needs all 10 unordered pairs,
//! clustering for consolidation compares every registry schema with every
//! other, COI agreement matches each member against each member. Executing
//! those as a loop of independent two-schema runs repays per-pair costs that
//! are really per-*schema*: linguistic preparation (already cached by
//! [`FeatureCache`]) and — before this module — the token-blocking index,
//! which `generate_candidates` rebuilt twice per pair (once per probe
//! direction), i.e. `N·(N−1)` builds for an N-way effort that needs exactly
//! `N`.
//!
//! [`BatchPlanner::plan`] front-loads all shared work into a **Plan** stage
//! (reported as [`StageTimings::plan`]): every schema is prepared through
//! the engine's cache (concurrently, on the executor, with
//! [`FeatureCache::get_or_prepare`] coalescing racing preparations of the
//! same content) and indexed exactly once into a [`BatchIndex`] — the
//! multi-schema token index, partitioned per schema so each pair's IDF
//! weights are bit-for-bit those of a standalone run. [`MatchBatch::run`]
//! then executes all requested pairs concurrently on the persistent
//! [`Executor`]: pairs are job-level lanes claiming from the batch's
//! request queue, and each pair's Score/Merge stage fans its row chunks out
//! to the *same* pool, so an idle worker steals chunk work from the
//! straggler pair instead of idling at the tail (two-level scheduling; see
//! [`crate::exec`]).
//!
//! The contract mirrors the blocking index's: batching is an *execution*
//! change, never a semantics change. Per-pair results are byte-identical to
//! a sequential `run_blocked` loop over the same requests — pinned in
//! `tests/batch_pin.rs` across seeds, pair counts, and pool widths.

use crate::correspondence::MatchSet;
use crate::engine::{BlockedMatchResult, MatchEngine};
use crate::exec::Executor;
use crate::index::{idf_weight, BlockingPolicy, ElementTokenIndex};
use crate::pipeline::StageTimings;
use crate::prepare::{CacheStats, FeatureCache, PreparedSchema};
use crate::select::Selection;
use sm_schema::Schema;
use sm_text::intern::TokenId;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One requested pairwise match: indices into the batch's schema list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairRequest {
    /// Source-side schema slot.
    pub left: usize,
    /// Target-side schema slot.
    pub right: usize,
}

impl From<(usize, usize)> for PairRequest {
    fn from((left, right): (usize, usize)) -> Self {
        PairRequest { left, right }
    }
}

/// How the planner decides *which* requested pairs to execute — the
/// overlap-aware tier in front of per-pair blocking. Orthogonal to
/// [`BlockingPolicy`], which governs candidate generation *within* a pair:
/// the plan policy prunes whole pairs before any pipeline runs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum PlanPolicy {
    /// Execute every requested pair — today's behavior, retained as the
    /// recall reference for the pruning policies.
    #[default]
    Exhaustive,
    /// Prune pairs whose IDF-weighted vocabulary-overlap upper bound (see
    /// [`OverlapEstimates`]) falls below `min_weight`. At
    /// [`PlanPolicy::provable`]'s threshold this drops exactly the
    /// zero-overlap pairs, whose selections are provably empty — the
    /// surviving plan reproduces the exhaustive selections byte for byte.
    OverlapThreshold {
        /// Minimum overlap bound a pair must reach to stay planned.
        min_weight: f64,
    },
    /// Cluster the schemata by overlap distance (single-linkage connected
    /// components at the cut) and match densely only *within* clusters;
    /// across clusters, only the per-cluster hub schemata meet. A lossy,
    /// much sparser plan for registry-scale N — the [`ClusterPlan`] is
    /// exposed on the batch for inspection.
    ClusterFirst {
        /// Merge schemata into one cluster while their overlap distance
        /// ([`OverlapEstimates::distance`]) is at most this cut.
        max_distance: f64,
    },
}

impl PlanPolicy {
    /// The provably lossless pruning threshold: keep every pair sharing at
    /// least one blocking token. Each shared token weighs at least 1.0
    /// ([`idf_weight`] at `df == n`), so any positive threshold at or below
    /// 1.0 prunes exactly the bound-zero pairs — and a pair with *no*
    /// shared blocking feature has an empty candidate set (token blocking,
    /// exact-name rescue, and child rescue all join on shared features), an
    /// all-zero matrix, and therefore empty selections.
    pub fn provable() -> Self {
        PlanPolicy::OverlapThreshold {
            min_weight: f64::MIN_POSITIVE,
        }
    }
}

/// IDF-weighted vocabulary-overlap upper bounds for all `n²` schema pairs,
/// computed in **one walk** over the schema-level token postings — no
/// per-pair probes. Entry `(i, j)` bounds the total IDF weight of blocking
/// tokens schemata `i` and `j` share: exactly that weight when built
/// uncapped, an upper bound when frequent tokens are capped into the
/// shared `ubiquitous` mass ([`OverlapEstimates::from_prepared_capped`]).
///
/// The walk reuses the same per-schema blocking vocabulary the shared
/// [`BatchIndex`] is built from (each schema's distinct
/// [`PreparedSchema::block_features_of`] union), weighted by the same
/// smoothed IDF shape ([`idf_weight`]) at schema granularity — so a zero
/// bound means *zero shared blocking tokens*, the condition under which a
/// pair's candidate set is provably empty.
#[derive(Debug, Clone)]
pub struct OverlapEstimates {
    n: usize,
    /// Row-major `n × n`; the diagonal holds each schema's total distinct
    /// blocking-token weight (its self-overlap).
    bounds: Vec<f64>,
    /// Weight mass of tokens more frequent than the df cap, charged to
    /// every off-diagonal bound instead of walked pair-by-pair.
    ubiquitous: f64,
}

impl OverlapEstimates {
    /// Exact overlap weights from prepared schemata (no df cap).
    ///
    /// # Panics
    /// Panics when the preparations do not share one token arena (ids
    /// would not be comparable across schemata).
    pub fn from_prepared(prepared: &[Arc<PreparedSchema>]) -> Self {
        Self::from_prepared_capped(prepared, usize::MAX)
    }

    /// Like [`Self::from_prepared`], but tokens appearing in more than
    /// `df_cap` schemata are not walked pair-by-pair: their weight joins a
    /// shared `ubiquitous` mass added to every off-diagonal bound. Bounds
    /// stay upper bounds (they can only grow); the walk drops from
    /// `O(df²)` to `O(df)` for the frequent tail.
    pub fn from_prepared_capped(prepared: &[Arc<PreparedSchema>], df_cap: usize) -> Self {
        let n = prepared.len();
        if let Some(first) = prepared.first() {
            for p in prepared {
                assert!(
                    Arc::ptr_eq(p.arena(), first.arena()),
                    "overlap estimation requires one shared token arena"
                );
            }
        }
        // Distinct blocking tokens per schema, then one global sort: the
        // posting list of every token is a contiguous run of (token, slot)
        // pairs, walked exactly once.
        let mut postings: Vec<(TokenId, u32)> = Vec::new();
        for (slot, p) in prepared.iter().enumerate() {
            let mut ids: Vec<TokenId> = (0..p.len())
                .flat_map(|e| p.block_features_of(e).iter().copied())
                .collect();
            ids.sort_unstable();
            ids.dedup();
            postings.extend(ids.into_iter().map(|t| (t, slot as u32)));
        }
        postings.sort_unstable();

        // CSR over the sorted pairs: one contiguous slot run per distinct
        // token, no per-token allocation.
        let slots: Vec<u32> = postings.iter().map(|&(_, s)| s).collect();
        let mut offsets: Vec<usize> = vec![0];
        for i in 1..postings.len() {
            if postings[i].0 != postings[i - 1].0 {
                offsets.push(i);
            }
        }
        offsets.push(postings.len());

        let nf = n as f64;
        Self::from_token_postings(
            n,
            offsets.windows(2).map(|w| {
                let run = &slots[w[0]..w[1]];
                (idf_weight(nf, run.len() as f64), run)
            }),
            df_cap,
        )
    }

    /// Build bounds from arbitrary weighted token postings — `(weight,
    /// ascending slots holding the token)` per distinct token. This is the
    /// generic walk the enterprise repository index reuses with its own
    /// live-document IDF weights.
    pub fn from_token_postings<S>(
        n: usize,
        postings: impl IntoIterator<Item = (f64, S)>,
        df_cap: usize,
    ) -> Self
    where
        S: AsRef<[u32]>,
    {
        let mut bounds = vec![0.0f64; n * n];
        let mut ubiquitous = 0.0f64;
        for (w, slots) in postings {
            let slots = slots.as_ref();
            let df = slots.len();
            if df == 0 {
                continue;
            }
            if df > df_cap {
                // Too frequent to walk quadratically: charge the weight to
                // the shared mass (every off-diagonal bound) and to the
                // self-weight of the slots that actually hold it.
                ubiquitous += w;
                for &s in slots {
                    bounds[(s as usize) * n + s as usize] += w;
                }
                continue;
            }
            for (k, &a) in slots.iter().enumerate() {
                let ai = a as usize;
                bounds[ai * n + ai] += w;
                for &b in &slots[k + 1..] {
                    let bi = b as usize;
                    bounds[ai * n + bi] += w;
                    bounds[bi * n + ai] += w;
                }
            }
        }
        OverlapEstimates {
            n,
            bounds,
            ubiquitous,
        }
    }

    /// Number of schemata covered.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when no schemata were estimated.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// A schema's total distinct blocking-token weight (its self-overlap
    /// bound — the maximum any pair involving it can reach exactly).
    pub fn self_weight(&self, i: usize) -> f64 {
        self.bounds[i * self.n + i]
    }

    /// Upper bound on the shared blocking-vocabulary weight of pair
    /// `(i, j)`. Exact when built uncapped; `bound == 0` always means the
    /// pair shares no blocking token at all.
    pub fn bound(&self, i: usize, j: usize) -> f64 {
        if i == j {
            self.self_weight(i)
        } else {
            self.bounds[i * self.n + j] + self.ubiquitous
        }
    }

    /// Overlap distance in `[0, 1]`: `1 − bound/min(self_i, self_j)` —
    /// zero when the smaller vocabulary is fully covered by the shared
    /// bound, one when nothing is shared (or a side is empty).
    pub fn distance(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 0.0;
        }
        let denom = self.self_weight(i).min(self.self_weight(j));
        if denom <= 0.0 {
            return 1.0;
        }
        (1.0 - self.bound(i, j) / denom).clamp(0.0, 1.0)
    }
}

/// The clustering a [`PlanPolicy::ClusterFirst`] plan committed to:
/// single-linkage connected components of the overlap-distance graph at
/// the policy's cut, plus one elected hub per component.
///
/// Single-linkage at a max-distance cut is exactly connected components of
/// the "distance ≤ cut" graph, so the planner computes it with a
/// union-find instead of a full agglomerative merge — the enterprise
/// layer's `DistanceMatrix` agglomerative path produces the identical
/// partition (pinned in its tests).
#[derive(Debug, Clone)]
pub struct ClusterPlan {
    /// Component id of each schema slot (components numbered by first
    /// member in slot order).
    pub component_of: Vec<usize>,
    /// Hub slot of each component: the member with the greatest total
    /// within-component overlap bound (ties to the lowest slot). Hubs are
    /// the only schemata matched *across* components.
    pub hubs: Vec<usize>,
}

impl ClusterPlan {
    /// Cluster by overlap distance at `max_distance` and elect hubs.
    pub fn from_overlap(overlap: &OverlapEstimates, max_distance: f64) -> Self {
        let n = overlap.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]]; // path halving
                x = parent[x];
            }
            x
        }
        for i in 0..n {
            for j in (i + 1)..n {
                if overlap.distance(i, j) <= max_distance {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    if ri != rj {
                        parent[ri.max(rj)] = ri.min(rj);
                    }
                }
            }
        }
        // Number components by first-seen slot order.
        let mut component_of = vec![usize::MAX; n];
        let mut roots: Vec<usize> = Vec::new();
        for (i, slot) in component_of.iter_mut().enumerate() {
            let r = find(&mut parent, i);
            let c = match roots.iter().position(|&x| x == r) {
                Some(c) => c,
                None => {
                    roots.push(r);
                    roots.len() - 1
                }
            };
            *slot = c;
        }
        // Hub election: maximize total within-component bound, ties to the
        // lowest slot (the iteration order guarantees that).
        let mut hubs = vec![usize::MAX; roots.len()];
        let mut hub_score = vec![f64::NEG_INFINITY; roots.len()];
        for i in 0..n {
            let c = component_of[i];
            let score: f64 = (0..n)
                .filter(|&j| j != i && component_of[j] == c)
                .map(|j| overlap.bound(i, j))
                .sum();
            if score > hub_score[c] {
                hub_score[c] = score;
                hubs[c] = i;
            }
        }
        ClusterPlan { component_of, hubs }
    }

    /// Number of components.
    pub fn components(&self) -> usize {
        self.hubs.len()
    }

    /// Whether the plan keeps pair `(left, right)`: same component, or
    /// both slots are their components' hubs.
    pub fn keeps(&self, left: usize, right: usize) -> bool {
        let (cl, cr) = (self.component_of[left], self.component_of[right]);
        cl == cr || (self.hubs[cl] == left && self.hubs[cr] == right)
    }
}

/// Wall-clock split of the Plan stage's overlap-aware work — the
/// estimate/cluster/schedule sub-components of [`StageTimings::plan`]
/// (all zero under [`PlanPolicy::Exhaustive`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanBreakdown {
    /// Building the [`OverlapEstimates`] (the one posting walk).
    pub estimate: Duration,
    /// Clustering the estimates and electing hubs (`ClusterFirst` only).
    pub cluster: Duration,
    /// Filtering the request list through the plan policy.
    pub schedule: Duration,
}

/// Plans batches over one engine's configuration (obtained from
/// [`MatchEngine::batch`]).
pub struct BatchPlanner<'e> {
    engine: &'e MatchEngine,
    policy: BlockingPolicy,
    plan_policy: PlanPolicy,
}

impl<'e> BatchPlanner<'e> {
    pub(crate) fn new(engine: &'e MatchEngine) -> Self {
        BatchPlanner {
            engine,
            policy: BlockingPolicy::default(),
            plan_policy: PlanPolicy::default(),
        }
    }

    /// Use a specific blocking policy for every pair of the batch
    /// ([`BlockingPolicy::Exhaustive`] reproduces dense runs byte for byte).
    pub fn with_policy(mut self, policy: BlockingPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Use a specific [`PlanPolicy`] for pair scheduling
    /// ([`PlanPolicy::Exhaustive`] keeps every requested pair).
    pub fn with_plan_policy(mut self, plan_policy: PlanPolicy) -> Self {
        self.plan_policy = plan_policy;
        self
    }

    /// Plan a batch: prepare all `schemas` and build the shared
    /// [`BatchIndex`] up front (the Plan stage), recording the requested
    /// pairs for [`MatchBatch::run`].
    ///
    /// # Panics
    /// Panics when a request indexes outside `schemas`.
    pub fn plan<'s>(
        &self,
        schemas: &[&'s Schema],
        requests: impl IntoIterator<Item = impl Into<PairRequest>>,
    ) -> MatchBatch<'e, 's> {
        let requests: Vec<PairRequest> = requests.into_iter().map(Into::into).collect();
        for r in &requests {
            assert!(
                r.left < schemas.len() && r.right < schemas.len(),
                "pair request ({}, {}) outside the {}-schema batch",
                r.left,
                r.right,
                schemas.len()
            );
        }

        let cache = self.engine.feature_cache();
        let exec = self.engine.executor();
        let started = Instant::now();
        let stats_before = cache.stats();
        // The engine's thread cap bounds planning lanes exactly like the
        // execute phase's job lanes. An exhaustive batch never probes an
        // index (candidate generation short-circuits to the full cross
        // product), so building one would be dead work.
        let prepared = prepare_schemas(cache, exec, self.engine.threads, schemas);
        let index = if matches!(self.policy, BlockingPolicy::Exhaustive) {
            BatchIndex::empty()
        } else {
            BatchIndex::build(exec, self.engine.threads, &prepared)
        };
        let stats_after = cache.stats();

        // Overlap-aware scheduling: estimate all-pairs overlap bounds in
        // one posting walk, optionally cluster, then filter the request
        // list — all still inside the Plan stage's wall clock, with the
        // sub-stages split out in the breakdown.
        let mut breakdown = PlanBreakdown::default();
        let mut overlap = None;
        let mut clusters = None;
        let mut pruned: Vec<PairRequest> = Vec::new();
        let mut requests = requests;
        if self.plan_policy != PlanPolicy::Exhaustive {
            let t = Instant::now();
            let estimates = OverlapEstimates::from_prepared(&prepared);
            breakdown.estimate = t.elapsed();
            match self.plan_policy {
                PlanPolicy::Exhaustive => unreachable!(),
                PlanPolicy::OverlapThreshold { min_weight } => {
                    let t = Instant::now();
                    let (keep, drop) = requests
                        .into_iter()
                        .partition(|r| estimates.bound(r.left, r.right) >= min_weight);
                    (requests, pruned) = (keep, drop);
                    breakdown.schedule = t.elapsed();
                }
                PlanPolicy::ClusterFirst { max_distance } => {
                    let t = Instant::now();
                    let plan = ClusterPlan::from_overlap(&estimates, max_distance);
                    breakdown.cluster = t.elapsed();
                    let t = Instant::now();
                    let (keep, drop) = requests
                        .into_iter()
                        .partition(|r| plan.keeps(r.left, r.right));
                    (requests, pruned) = (keep, drop);
                    breakdown.schedule = t.elapsed();
                    clusters = Some(plan);
                }
            }
            overlap = Some(estimates);
        }
        let plan = started.elapsed();

        MatchBatch {
            engine: self.engine,
            policy: self.policy,
            schemas: schemas.to_vec(),
            prepared,
            index,
            requests,
            pruned,
            plan,
            breakdown,
            overlap,
            clusters,
            cache: delta_stats(stats_before, stats_after),
        }
    }

    /// Plan every unordered pair `(i, j)` with `i < j` — the N-way shape.
    pub fn plan_all_pairs<'s>(&self, schemas: &[&'s Schema]) -> MatchBatch<'e, 's> {
        let n = schemas.len();
        let requests =
            (0..n).flat_map(move |i| ((i + 1)..n).map(move |j| PairRequest { left: i, right: j }));
        self.plan(schemas, requests)
    }
}

/// Counter movement of the feature cache across one batch phase.
/// `hits`/`misses`/`evictions` are after−before deltas; `entries` and
/// `resident_bytes` are the absolute occupancy at the end of the phase (a
/// gauge has no meaningful delta).
fn delta_stats(before: CacheStats, after: CacheStats) -> CacheStats {
    CacheStats {
        hits: after.hits.saturating_sub(before.hits),
        misses: after.misses.saturating_sub(before.misses),
        evictions: after.evictions.saturating_sub(before.evictions),
        entries: after.entries,
        resident_bytes: after.resident_bytes,
    }
}

/// Prepare many schemata through one cache, concurrently on the executor
/// (at most `parallelism` lanes — callers bound by an engine pass its
/// thread cap; standalone bulk consumers pass `exec.threads()`).
///
/// Lanes claim schema slots from a shared queue;
/// [`FeatureCache::get_or_prepare`] guarantees a fingerprint is built at
/// most once even when two lanes (or two batches) race on equal content.
/// Exposed for the enterprise layer's bulk operations (clustering,
/// feasibility, repository warming), whose per-schema loops this replaces.
pub fn prepare_schemas(
    cache: &FeatureCache,
    exec: &Executor,
    parallelism: usize,
    schemas: &[&Schema],
) -> Vec<Arc<PreparedSchema>> {
    exec.run_map(parallelism, schemas, |_, schema| {
        cache.get_or_prepare(schema)
    })
}

/// [`prepare_schemas`] against the process-wide cache and executor at full
/// pool width — the standalone bulk-prepare the enterprise operators
/// (clustering, feasibility, repository warming) share.
pub fn prepare_schemas_global(schemas: &[&Schema]) -> Vec<Arc<PreparedSchema>> {
    let exec = Executor::global();
    prepare_schemas(FeatureCache::global(), exec, exec.threads(), schemas)
}

/// The batch's shared multi-schema token index: every schema of the batch
/// indexed exactly once, partitioned per schema.
///
/// Partitioning is what keeps batching invisible to results: blocking
/// weights are IDF-smoothed per opposing schema (`ln((n+1)/(df+1))+1` with
/// that schema's `n` and `df`), so candidate generation for a pair reads
/// only that pair's two partitions and reproduces the standalone
/// [`ElementTokenIndex`] probe bit for bit — while an N-way batch performs
/// `N` index builds instead of the sequential loop's `N·(N−1)`.
#[derive(Debug)]
pub struct BatchIndex {
    per_schema: Vec<ElementTokenIndex>,
}

impl BatchIndex {
    /// Index every prepared schema, concurrently on the executor (at most
    /// `parallelism` lanes). Each schema's build further fans its element
    /// chunks out to the same pool ([`ElementTokenIndex::build_parallel`]),
    /// so a small batch of large schemata still fills every lane.
    pub fn build(exec: &Executor, parallelism: usize, prepared: &[Arc<PreparedSchema>]) -> Self {
        BatchIndex {
            per_schema: exec.run_map(parallelism, prepared, |_, prepared| {
                ElementTokenIndex::build_parallel(prepared, exec, parallelism)
            }),
        }
    }

    /// An index over no schemata — what an exhaustive batch carries, since
    /// its candidate generation never probes one.
    pub fn empty() -> Self {
        BatchIndex {
            per_schema: Vec::new(),
        }
    }

    /// Number of indexed schemata.
    pub fn len(&self) -> usize {
        self.per_schema.len()
    }

    /// True when the batch holds no schemata.
    pub fn is_empty(&self) -> bool {
        self.per_schema.is_empty()
    }

    /// The partition of one schema slot.
    pub fn schema(&self, slot: usize) -> &ElementTokenIndex {
        &self.per_schema[slot]
    }

    /// Surrender the per-schema partitions (for callers that keep standing
    /// index state across executions, like the incremental N-way path).
    pub fn into_per_schema(self) -> Vec<ElementTokenIndex> {
        self.per_schema
    }

    /// Append one more schema's partition (the incremental N-way path
    /// indexes schema N+1 against the standing batch artifacts).
    pub fn push(&mut self, index: ElementTokenIndex) {
        self.per_schema.push(index);
    }
}

/// A planned batch: prepared schemata, the shared index, and the request
/// list, ready to execute (possibly several times).
pub struct MatchBatch<'e, 's> {
    engine: &'e MatchEngine,
    policy: BlockingPolicy,
    schemas: Vec<&'s Schema>,
    prepared: Vec<Arc<PreparedSchema>>,
    index: BatchIndex,
    requests: Vec<PairRequest>,
    pruned: Vec<PairRequest>,
    plan: Duration,
    breakdown: PlanBreakdown,
    overlap: Option<OverlapEstimates>,
    clusters: Option<ClusterPlan>,
    cache: CacheStats,
}

impl MatchBatch<'_, '_> {
    /// The planned pair requests, in execution-result order (after any
    /// plan-policy pruning — see [`Self::pruned`] for what was dropped).
    pub fn requests(&self) -> &[PairRequest] {
        &self.requests
    }

    /// Requests the plan policy pruned, in original request order (empty
    /// under [`PlanPolicy::Exhaustive`]).
    pub fn pruned(&self) -> &[PairRequest] {
        &self.pruned
    }

    /// The Plan stage's estimate/cluster/schedule wall-clock split (all
    /// zero under [`PlanPolicy::Exhaustive`]).
    pub fn plan_breakdown(&self) -> PlanBreakdown {
        self.breakdown
    }

    /// The overlap bounds the plan policy consulted (`None` under
    /// [`PlanPolicy::Exhaustive`], which never estimates).
    pub fn overlap(&self) -> Option<&OverlapEstimates> {
        self.overlap.as_ref()
    }

    /// The committed clustering (`Some` only under
    /// [`PlanPolicy::ClusterFirst`]).
    pub fn clusters(&self) -> Option<&ClusterPlan> {
        self.clusters.as_ref()
    }

    /// Surrender the planned artifacts — prepared schemata and the shared
    /// index — for callers that keep standing state across executions
    /// (the incremental N-way consolidation path).
    pub fn into_plan_parts(self) -> (Vec<Arc<PreparedSchema>>, BatchIndex) {
        (self.prepared, self.index)
    }

    /// The prepared schemata, in schema-list order.
    pub fn prepared(&self) -> &[Arc<PreparedSchema>] {
        &self.prepared
    }

    /// The shared multi-schema token index ([`BatchIndex::empty`] for an
    /// exhaustive batch, which never probes one).
    pub fn index(&self) -> &BatchIndex {
        &self.index
    }

    /// Wall-clock time of the Plan stage (bulk prepare + index build).
    pub fn plan_time(&self) -> Duration {
        self.plan
    }

    /// Execute every requested pair concurrently on the engine's executor.
    pub fn run(&self) -> BatchResult {
        self.execute(None)
    }

    /// [`Self::run`], additionally applying `selection` to every pair's
    /// matrix (the Select stage, timed per pair).
    pub fn run_select(&self, selection: &Selection) -> BatchResult {
        self.execute(Some(selection))
    }

    /// Selection-only execution: apply `selection` to every pair and keep
    /// just the selected correspondences plus lightweight stats — each
    /// pair's matrix and candidate set drop inside the job, right after
    /// selection. This is the memory-bounded path for bulk consumers that
    /// never read scores (n-way population, repository bulk recording, COI
    /// evidence): a [`Self::run_select`] over P pairs retains P full
    /// matrices until its result drops, where this holds at most
    /// one-per-lane transiently.
    pub fn run_select_only(&self, selection: &Selection) -> BatchSelectResult {
        let started = Instant::now();
        let pairs: Vec<BatchSelection> = self.engine.run_map(
            self.engine.threads,
            &self.requests,
            |_, &PairRequest { left, right }| {
                let mut run = self.run_pair(left, right);
                let select_started = Instant::now();
                let selected = selection.apply(&run.matrix);
                run.timings.select = select_started.elapsed();
                BatchSelection {
                    left,
                    right,
                    selected,
                    pairs_considered: run.pairs_considered,
                    pairs_scored: run.pairs_scored,
                    timings: run.timings,
                }
            },
        );
        let mut timings = StageTimings {
            plan: self.plan,
            plan_estimate: self.breakdown.estimate,
            plan_cluster: self.breakdown.cluster,
            plan_schedule: self.breakdown.schedule,
            ..StageTimings::default()
        };
        for p in &pairs {
            timings.accumulate(&p.timings);
        }
        BatchSelectResult {
            pairs,
            timings,
            cache: self.cache,
            elapsed: started.elapsed(),
        }
    }

    /// One pair's blocked run against the batch's shared preparation and
    /// index (exhaustive batches carry no index — candidate generation
    /// short-circuits before probing).
    fn run_pair(&self, left: usize, right: usize) -> crate::pipeline::BlockedRun {
        // Pair-job cancellation point: a tripped token stops between pairs
        // before this pair touches the cache or allocates a matrix.
        self.engine.checkpoint();
        crate::obs::add(crate::obs::Counter::PairJobs, 1);
        let _job = crate::obs::span(
            crate::obs::SpanKind::PairJob,
            ((left as u64) << 32) | right as u64,
        );
        let indices = (!matches!(self.policy, BlockingPolicy::Exhaustive))
            .then(|| (self.index.schema(left), self.index.schema(right)));
        self.engine.pipeline().run_blocked_prepared(
            self.schemas[left],
            self.schemas[right],
            &self.prepared[left],
            &self.prepared[right],
            indices,
            &self.policy,
        )
    }

    fn execute(&self, selection: Option<&Selection>) -> BatchResult {
        let started = Instant::now();

        // Job-level lanes claim whole pairs; each pair's Score/Merge fans
        // chunk lanes out to the same pool (see the module docs).
        let pairs: Vec<BatchPairResult> = self.engine.run_map(
            self.engine.threads,
            &self.requests,
            |_, &PairRequest { left, right }| {
                let pair_started = Instant::now();
                let mut run = self.run_pair(left, right);
                let selected = selection.map(|sel| {
                    let select_started = Instant::now();
                    let set = sel.apply(&run.matrix);
                    run.timings.select = select_started.elapsed();
                    set
                });
                BatchPairResult {
                    left,
                    right,
                    selected,
                    result: BlockedMatchResult {
                        matrix: run.matrix,
                        elapsed: pair_started.elapsed(),
                        pairs_considered: run.pairs_considered,
                        pairs_scored: run.pairs_scored,
                        candidates: run.candidates,
                        timings: run.timings,
                    },
                }
            },
        );
        let mut timings = StageTimings {
            plan: self.plan,
            plan_estimate: self.breakdown.estimate,
            plan_cluster: self.breakdown.cluster,
            plan_schedule: self.breakdown.schedule,
            ..StageTimings::default()
        };
        for p in &pairs {
            timings.accumulate(&p.result.timings);
        }
        BatchResult {
            pairs,
            timings,
            cache: self.cache,
            elapsed: started.elapsed(),
        }
    }
}

/// One pair's outcome within a batch.
#[derive(Debug)]
pub struct BatchPairResult {
    /// Source-side schema slot of the request.
    pub left: usize,
    /// Target-side schema slot of the request.
    pub right: usize,
    /// The pair's match result — byte-identical to a standalone
    /// [`MatchEngine::run_blocked`] under the batch's policy.
    pub result: BlockedMatchResult,
    /// Selected correspondences when the batch ran with a selection.
    pub selected: Option<MatchSet>,
}

/// Outcome of one batch execution.
#[derive(Debug)]
pub struct BatchResult {
    /// Per-pair results, in request order.
    pub pairs: Vec<BatchPairResult>,
    /// Aggregated stage timings: the batch's Plan stage plus the sum of
    /// every pair's per-stage times (CPU-time-like across concurrent pairs,
    /// so stages remain comparable with sequential runs).
    pub timings: StageTimings,
    /// Feature-cache counter movement during planning — how much of the
    /// preparation was amortized (`hits`) versus newly built (`misses`),
    /// and whether planning displaced resident entries (`evictions`).
    ///
    /// `hits`/`misses`/`evictions` are before/after deltas of the engine's
    /// cache counters; `entries` is the absolute resident count after
    /// planning (occupancy, not movement). On a *shared* cache (the global
    /// default) traffic from other engines planning concurrently is
    /// attributed to this batch too — treat the deltas as exact only for a
    /// private cache or an otherwise-idle process, and as an upper bound
    /// under concurrency.
    pub cache: CacheStats,
    /// Wall-clock time of the execution phase (planning is
    /// [`MatchBatch::plan_time`]).
    pub elapsed: Duration,
}

impl BatchResult {
    /// Total candidate pairs scored across the batch.
    pub fn pairs_scored(&self) -> usize {
        self.pairs.iter().map(|p| p.result.pairs_scored).sum()
    }

    /// Total cross-product size across the batch.
    pub fn pairs_considered(&self) -> usize {
        self.pairs.iter().map(|p| p.result.pairs_considered).sum()
    }
}

/// One pair's selection-only outcome within a batch
/// ([`MatchBatch::run_select_only`]).
#[derive(Debug)]
pub struct BatchSelection {
    /// Source-side schema slot of the request.
    pub left: usize,
    /// Target-side schema slot of the request.
    pub right: usize,
    /// The selected correspondences — identical to applying the selection
    /// to the pair's [`MatchEngine::run_blocked`] matrix.
    pub selected: MatchSet,
    /// Size of the pair's full cross product.
    pub pairs_considered: usize,
    /// Candidate pairs the voter panel actually scored.
    pub pairs_scored: usize,
    /// Per-stage wall-clock timings of the pair.
    pub timings: StageTimings,
}

/// Outcome of one selection-only batch execution (matrices were dropped
/// per pair; see [`MatchBatch::run_select_only`]).
#[derive(Debug)]
pub struct BatchSelectResult {
    /// Per-pair selections, in request order.
    pub pairs: Vec<BatchSelection>,
    /// Aggregated stage timings (Plan plus per-pair sums, as in
    /// [`BatchResult::timings`]).
    pub timings: StageTimings,
    /// Feature-cache counter movement during planning (same semantics and
    /// caveats as [`BatchResult::cache`]).
    pub cache: CacheStats,
    /// Wall-clock time of the execution phase.
    pub elapsed: Duration,
}

impl BatchSelectResult {
    /// Total candidate pairs scored across the batch.
    pub fn pairs_scored(&self) -> usize {
        self.pairs.iter().map(|p| p.pairs_scored).sum()
    }

    /// Total cross-product size across the batch.
    pub fn pairs_considered(&self) -> usize {
        self.pairs.iter().map(|p| p.pairs_considered).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::confidence::Confidence;
    use sm_schema::{DataType, ElementKind, SchemaFormat, SchemaId};
    use sm_text::normalize::Normalizer;

    fn schema(id: u32, words: &[&str]) -> Schema {
        let mut s = Schema::new(SchemaId(id), format!("S{id}"), SchemaFormat::Generic);
        let r = s.add_root("Record", ElementKind::Group, DataType::None);
        for w in words {
            s.add_child(r, *w, ElementKind::Column, DataType::text())
                .unwrap();
        }
        s
    }

    fn trio() -> Vec<Schema> {
        vec![
            schema(1, &["begin_date", "location_name", "remarks"]),
            schema(2, &["BeginDate", "LocationName", "priority"]),
            schema(3, &["start_date", "site_name", "severity"]),
        ]
    }

    fn engine() -> MatchEngine {
        MatchEngine::new().with_normalizer(Normalizer::new())
    }

    #[test]
    fn batch_matches_sequential_run_blocked_loop() {
        let schemas = trio();
        let refs: Vec<&Schema> = schemas.iter().collect();
        let engine = engine().with_threads(2);
        let batch = engine.batch().plan_all_pairs(&refs);
        let result = batch.run();
        assert_eq!(result.pairs.len(), 3);
        for p in &result.pairs {
            let standalone =
                engine.run_blocked(refs[p.left], refs[p.right], &BlockingPolicy::default());
            assert_eq!(
                p.result.matrix.as_slice(),
                standalone.matrix.as_slice(),
                "batched pair ({}, {}) diverged from the standalone run",
                p.left,
                p.right
            );
            assert_eq!(p.result.pairs_scored, standalone.pairs_scored);
        }
        assert!(result.timings.plan > Duration::ZERO);
        assert!(result.timings.total() >= result.timings.plan);
    }

    /// The batch planner's per-pair runs go through `run_blocked_prepared`,
    /// so a floored engine's cascade applies to every pair of the batch and
    /// the aggregated timings carry the tier counters.
    #[test]
    fn batch_inherits_cascade_and_aggregates_tier_counters() {
        let schemas = trio();
        let refs: Vec<&Schema> = schemas.iter().collect();
        let cascade = engine().with_threads(2).with_score_floor(Some(0.0));
        let reference = engine()
            .with_threads(2)
            .with_score_floor(Some(0.0))
            .with_cascade(false);
        let got = cascade.batch().plan_all_pairs(&refs).run();
        let want = reference.batch().plan_all_pairs(&refs).run();
        for (g, w) in got.pairs.iter().zip(&want.pairs) {
            assert_eq!(
                g.result.matrix.as_slice(),
                w.result.matrix.as_slice(),
                "cascade diverged on batched pair ({}, {})",
                g.left,
                g.right
            );
        }
        assert_eq!(
            got.timings.pairs_pruned + got.timings.pairs_full,
            got.pairs_scored() as u64,
            "aggregated tier counters must partition the scored pairs"
        );
        assert_eq!(want.timings.pairs_pruned, 0);
    }

    #[test]
    fn plan_amortizes_preparation() {
        let schemas = trio();
        let refs: Vec<&Schema> = schemas.iter().collect();
        let engine = engine();
        let batch = engine.batch().plan_all_pairs(&refs);
        assert_eq!(batch.prepared().len(), 3);
        assert_eq!(batch.index().len(), 3);
        assert_eq!(batch.requests().len(), 3);
        // Cold plan: every schema prepared exactly once, no re-preparation
        // per pair.
        assert_eq!(batch.cache.misses, 3);
        // A second plan over the same schemata is all hits.
        let batch2 = engine.batch().plan_all_pairs(&refs);
        assert_eq!(batch2.cache.misses, 0);
        assert_eq!(batch2.cache.hits, 3);
    }

    #[test]
    fn run_select_attaches_selections() {
        let schemas = trio();
        let refs: Vec<&Schema> = schemas.iter().collect();
        let engine = engine();
        let selection = Selection::OneToOne {
            min: Confidence::new(0.2),
        };
        let result = engine.batch().plan_all_pairs(&refs).run_select(&selection);
        for p in &result.pairs {
            let expected = selection.apply(&p.result.matrix);
            let got = p.selected.as_ref().expect("selection ran");
            assert_eq!(got.len(), expected.len());
        }
    }

    #[test]
    fn run_select_only_matches_run_select() {
        let schemas = trio();
        let refs: Vec<&Schema> = schemas.iter().collect();
        let engine = engine();
        let selection = Selection::OneToOne {
            min: Confidence::new(0.2),
        };
        let batch = engine.batch().plan_all_pairs(&refs);
        let full = batch.run_select(&selection);
        let lean = batch.run_select_only(&selection);
        assert_eq!(full.pairs.len(), lean.pairs.len());
        for (f, l) in full.pairs.iter().zip(&lean.pairs) {
            assert_eq!((f.left, f.right), (l.left, l.right));
            assert_eq!(f.result.pairs_scored, l.pairs_scored);
            let f_sel = f.selected.as_ref().expect("selection ran");
            assert_eq!(f_sel.len(), l.selected.len());
            for (a, b) in f_sel.all().iter().zip(l.selected.all()) {
                assert_eq!((a.source, a.target), (b.source, b.target));
            }
        }
    }

    #[test]
    fn explicit_requests_execute_in_order() {
        let schemas = trio();
        let refs: Vec<&Schema> = schemas.iter().collect();
        let engine = engine();
        let result = engine.batch().plan(&refs, [(2usize, 0usize), (0, 1)]).run();
        assert_eq!(result.pairs.len(), 2);
        assert_eq!((result.pairs[0].left, result.pairs[0].right), (2, 0));
        assert_eq!((result.pairs[1].left, result.pairs[1].right), (0, 1));
        assert_eq!(result.pairs_considered(), 2 * 4 * 4);
    }

    #[test]
    fn empty_batch_is_fine() {
        let engine = engine();
        let result = engine
            .batch()
            .plan(&[] as &[&Schema], Vec::<PairRequest>::new())
            .run();
        assert!(result.pairs.is_empty());
        assert_eq!(result.pairs_scored(), 0);
    }

    #[test]
    #[should_panic(expected = "outside the")]
    fn out_of_range_request_rejected() {
        let schemas = trio();
        let refs: Vec<&Schema> = schemas.iter().collect();
        let _ = engine().batch().plan(&refs, [(0usize, 7usize)]);
    }

    /// Two disjoint-vocabulary islands plus the trio: zero-bound pairs are
    /// exactly the cross-island ones. The islands' root element must not be
    /// the trio's shared "Record" — roots block like any other element.
    fn two_islands() -> Vec<Schema> {
        fn island(id: u32, words: &[&str]) -> Schema {
            let mut s = Schema::new(SchemaId(id), format!("S{id}"), SchemaFormat::Generic);
            let r = s.add_root("Starship", ElementKind::Group, DataType::None);
            for w in words {
                s.add_child(r, *w, ElementKind::Column, DataType::text())
                    .unwrap();
            }
            s
        }
        let mut schemas = trio();
        schemas.push(island(7, &["flux_capacitor", "warp_coil", "plasma_vent"]));
        schemas.push(island(8, &["FluxCapacitor", "WarpCoil", "dilithium"]));
        schemas
    }

    #[test]
    fn overlap_bounds_are_exact_when_uncapped() {
        let schemas = two_islands();
        let refs: Vec<&Schema> = schemas.iter().collect();
        let engine = engine();
        let batch = engine
            .batch()
            .with_plan_policy(PlanPolicy::provable())
            .plan_all_pairs(&refs);
        let est = batch.overlap().expect("policy estimates");
        let prepared = batch.prepared();
        let n = prepared.len() as f64;
        // Recompute every pair's true shared-vocabulary weight from the
        // prepared block features by brute force.
        let vocab: Vec<Vec<TokenId>> = prepared
            .iter()
            .map(|p| {
                let mut ids: Vec<TokenId> = (0..p.len())
                    .flat_map(|e| p.block_features_of(e).iter().copied())
                    .collect();
                ids.sort_unstable();
                ids.dedup();
                ids
            })
            .collect();
        let df_of = |t: TokenId| vocab.iter().filter(|v| v.binary_search(&t).is_ok()).count();
        for i in 0..prepared.len() {
            for j in (i + 1)..prepared.len() {
                let shared: f64 = vocab[i]
                    .iter()
                    .filter(|t| vocab[j].binary_search(t).is_ok())
                    .map(|&t| idf_weight(n, df_of(t) as f64))
                    .sum();
                let bound = est.bound(i, j);
                assert!(
                    (bound - shared).abs() < 1e-9,
                    "uncapped bound({i}, {j}) = {bound} must equal true shared weight {shared}"
                );
            }
        }
        // Cross-island pairs share nothing.
        assert_eq!(est.bound(0, 3), 0.0);
        assert_eq!(est.bound(2, 4), 0.0);
        assert!(est.bound(3, 4) > 0.0, "islands share flux/warp vocabulary");
    }

    #[test]
    fn capped_bounds_dominate_exact_bounds() {
        let schemas = two_islands();
        let refs: Vec<&Schema> = schemas.iter().collect();
        let engine = engine();
        let batch = engine.batch().plan_all_pairs(&refs);
        let exact = OverlapEstimates::from_prepared(batch.prepared());
        let capped = OverlapEstimates::from_prepared_capped(batch.prepared(), 1);
        for i in 0..refs.len() {
            for j in 0..refs.len() {
                assert!(
                    capped.bound(i, j) >= exact.bound(i, j) - 1e-12,
                    "capped bound({i}, {j}) must dominate the exact bound"
                );
            }
            assert!(
                (capped.self_weight(i) - exact.self_weight(i)).abs() < 1e-9,
                "self weights are never capped away"
            );
        }
    }

    #[test]
    fn provable_prune_drops_only_empty_pairs_and_keeps_selections() {
        let schemas = two_islands();
        let refs: Vec<&Schema> = schemas.iter().collect();
        let engine = engine().with_threads(2);
        let selection = Selection::OneToOne {
            min: Confidence::new(0.2),
        };
        let exhaustive = engine.batch().plan_all_pairs(&refs);
        let pruned = engine
            .batch()
            .with_plan_policy(PlanPolicy::provable())
            .plan_all_pairs(&refs);
        // Trio×island pairs (6 of them) share no blocking token.
        assert_eq!(exhaustive.requests().len(), 10);
        assert_eq!(pruned.requests().len(), 4);
        assert_eq!(pruned.pruned().len(), 6);
        let full: Vec<BatchSelection> = exhaustive.run_select_only(&selection).pairs;
        let lean = pruned.run_select_only(&selection).pairs;
        // Every pruned pair selected nothing in the exhaustive reference...
        for p in pruned.pruned() {
            let reference = full
                .iter()
                .find(|f| (f.left, f.right) == (p.left, p.right))
                .expect("pruned pair was requested exhaustively");
            assert_eq!(
                reference.selected.len(),
                0,
                "pruned pair ({}, {}) had selections",
                p.left,
                p.right
            );
        }
        // ...and every surviving pair selects identically.
        for l in &lean {
            let reference = full
                .iter()
                .find(|f| (f.left, f.right) == (l.left, l.right))
                .expect("planned pair was requested exhaustively");
            assert_eq!(reference.selected.len(), l.selected.len());
            for (a, b) in reference.selected.all().iter().zip(l.selected.all()) {
                assert_eq!((a.source, a.target), (b.source, b.target));
                assert_eq!(a.score, b.score);
            }
        }
        let breakdown = pruned.plan_breakdown();
        assert!(breakdown.estimate > Duration::ZERO);
        assert_eq!(breakdown.cluster, Duration::ZERO);
        assert!(pruned.plan_time() >= breakdown.estimate + breakdown.schedule);
        let timings = pruned.run().timings;
        assert_eq!(timings.plan_estimate, breakdown.estimate);
        assert_eq!(timings.plan_schedule, breakdown.schedule);
    }

    #[test]
    fn cluster_first_matches_within_and_hubs_across() {
        let schemas = two_islands();
        let refs: Vec<&Schema> = schemas.iter().collect();
        let engine = engine();
        let batch = engine
            .batch()
            .with_plan_policy(PlanPolicy::ClusterFirst { max_distance: 0.9 })
            .plan_all_pairs(&refs);
        let plan = batch.clusters().expect("cluster-first commits a plan");
        // Trio {0,1,2} and island {3,4} are separate components.
        assert_eq!(plan.component_of[0], plan.component_of[1]);
        assert_eq!(plan.component_of[0], plan.component_of[2]);
        assert_eq!(plan.component_of[3], plan.component_of[4]);
        assert_ne!(plan.component_of[0], plan.component_of[3]);
        assert_eq!(plan.components(), 2);
        // Within-component pairs all planned; across only hub×hub.
        for r in batch.requests() {
            assert!(plan.keeps(r.left, r.right));
        }
        let cross_planned = batch
            .requests()
            .iter()
            .filter(|r| plan.component_of[r.left] != plan.component_of[r.right])
            .count();
        assert_eq!(cross_planned, 1, "exactly one hub×hub bridge pair");
        assert!(batch.plan_breakdown().cluster > Duration::ZERO);
    }

    #[test]
    fn exhaustive_plan_policy_estimates_nothing() {
        let schemas = trio();
        let refs: Vec<&Schema> = schemas.iter().collect();
        let engine = engine();
        let batch = engine.batch().plan_all_pairs(&refs);
        assert!(batch.overlap().is_none());
        assert!(batch.pruned().is_empty());
        assert_eq!(batch.plan_breakdown(), PlanBreakdown::default());
    }
}

//! The match engine: voters × merger over all candidate pairs, in parallel.
//!
//! Reproduces the paper's headline performance datum: "we had recently scaled
//! Harmony to perform matches of this size, and the fully automated match
//! executed in 10.2 seconds" for 1378×784 ≈ 1.08·10^6 pairs (§3.3). The
//! engine shards the match matrix by source row across worker threads
//! (crossbeam scoped threads; the context is shared read-only).

use crate::confidence::Confidence;
use crate::context::MatchContext;
use crate::matrix::MatchMatrix;
use crate::merger::MergeStrategy;
use crate::voter::{default_voters, MatchVoter};
use sm_schema::{ElementId, Schema};
use sm_text::normalize::Normalizer;
use std::time::{Duration, Instant};

/// Configuration of a match run.
pub struct MatchEngine {
    voters: Vec<Box<dyn MatchVoter>>,
    merger: MergeStrategy,
    normalizer: Normalizer,
    threads: usize,
    /// Structural-propagation blend factor α ∈ [0,1): a non-root pair's final
    /// score is `(1−α)·own + α·parents'`. Disambiguates generic leaf names
    /// (`name`, `identifier`) by their containers — a one-step analogue of
    /// similarity flooding. 0 disables.
    propagation_alpha: f64,
}

impl MatchEngine {
    /// Engine with the default voter panel, Harmony merger, default
    /// normalizer, and one thread per available CPU.
    pub fn new() -> Self {
        MatchEngine {
            voters: default_voters(),
            merger: MergeStrategy::default(),
            normalizer: Normalizer::new(),
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            propagation_alpha: 0.3,
        }
    }

    /// Replace the voter panel.
    pub fn with_voters(mut self, voters: Vec<Box<dyn MatchVoter>>) -> Self {
        self.voters = voters;
        self
    }

    /// Replace the merge strategy.
    pub fn with_merger(mut self, merger: MergeStrategy) -> Self {
        self.merger = merger;
        self
    }

    /// Replace the normalizer.
    pub fn with_normalizer(mut self, normalizer: Normalizer) -> Self {
        self.normalizer = normalizer;
        self
    }

    /// Set the worker-thread count (values < 1 are treated as 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Set the structural-propagation factor (clamped to `[0, 0.95]`;
    /// 0 disables propagation).
    pub fn with_propagation(mut self, alpha: f64) -> Self {
        self.propagation_alpha = alpha.clamp(0.0, 0.95);
        self
    }

    /// Names of the configured voters, in panel order.
    pub fn voter_names(&self) -> Vec<&'static str> {
        self.voters.iter().map(|v| v.name()).collect()
    }

    /// Borrow the normalizer (e.g. to extend its abbreviation dictionary).
    pub fn normalizer(&self) -> &Normalizer {
        &self.normalizer
    }

    /// Build the linguistic context for a schema pair. Exposed so callers
    /// performing many restricted matches (the incremental workflow) can
    /// amortize it.
    pub fn build_context<'a>(&self, source: &'a Schema, target: &'a Schema) -> MatchContext<'a> {
        MatchContext::build(source, target, &self.normalizer)
    }

    /// The full automated match with sampled instance data attached (used
    /// together with a panel containing [`crate::voter::InstanceVoter`]).
    pub fn run_with_instances(
        &self,
        source: &Schema,
        target: &Schema,
        source_instances: &sm_schema::InstanceData,
        target_instances: &sm_schema::InstanceData,
    ) -> MatchResult {
        let ctx = MatchContext::build_with_instances(
            source,
            target,
            &self.normalizer,
            source_instances,
            target_instances,
        );
        self.run_on_context(source, target, &ctx)
    }

    /// Score one pair under the configured panel and merger.
    pub fn score_pair(&self, ctx: &MatchContext<'_>, s: ElementId, t: ElementId) -> Confidence {
        let votes: Vec<Confidence> = self.voters.iter().map(|v| v.vote(ctx, s, t)).collect();
        self.merger.merge(&votes)
    }

    /// Per-voter scores for one pair (provenance / debugging / ablation).
    pub fn explain_pair(
        &self,
        ctx: &MatchContext<'_>,
        s: ElementId,
        t: ElementId,
    ) -> Vec<(&'static str, Confidence)> {
        self.voters
            .iter()
            .map(|v| (v.name(), v.vote(ctx, s, t)))
            .collect()
    }

    /// The full automated match: every source element against every target
    /// element. This is the paper's `MATCH(S1, S2)` operator.
    pub fn run(&self, source: &Schema, target: &Schema) -> MatchResult {
        let ctx = self.build_context(source, target);
        self.run_on_context(source, target, &ctx)
    }

    /// Fill the full matrix against an already-built context.
    fn run_on_context(
        &self,
        source: &Schema,
        target: &Schema,
        ctx: &MatchContext<'_>,
    ) -> MatchResult {
        let started = Instant::now();
        let mut matrix = MatchMatrix::new(source.len(), target.len());
        let cols = target.len();

        if source.is_empty() || target.is_empty() {
            return MatchResult {
                matrix,
                elapsed: started.elapsed(),
                pairs_considered: 0,
            };
        }

        let threads = self.threads.min(source.len()).max(1);
        if threads == 1 {
            for s in source.ids() {
                let row = matrix.row_mut(s);
                for t in target.ids() {
                    row[t.index()] = self.score_pair(ctx, s, t).value() as f32;
                }
            }
        } else {
            // Shard rows across scoped threads; each thread owns a disjoint
            // set of row slices of the score buffer.
            let rows_per_thread = source.len().div_ceil(threads);
            let mut rows: Vec<(usize, &mut [f32])> = matrix.rows_mut().enumerate().collect();
            let ctx_ref = &ctx;
            let this = self;
            crossbeam::thread::scope(|scope| {
                while !rows.is_empty() {
                    let take = rows_per_thread.min(rows.len());
                    let chunk: Vec<(usize, &mut [f32])> = rows.drain(..take).collect();
                    scope.spawn(move |_| {
                        for (row_idx, row) in chunk {
                            let s = ElementId(row_idx as u32);
                            for (j, cell) in row.iter_mut().enumerate().take(cols) {
                                let t = ElementId(j as u32);
                                *cell = this.score_pair(ctx_ref, s, t).value() as f32;
                            }
                        }
                    });
                }
            })
            .expect("match worker panicked");
        }

        if self.propagation_alpha > 0.0 {
            self.propagate(source, target, &mut matrix);
        }

        MatchResult {
            pairs_considered: source.len() * target.len(),
            matrix,
            elapsed: started.elapsed(),
        }
    }

    /// One structural-propagation pass: blend every non-root pair with its
    /// parents' *base* score (order-independent).
    fn propagate(&self, source: &Schema, target: &Schema, matrix: &mut MatchMatrix) {
        let alpha = self.propagation_alpha;
        let base = matrix.clone();
        let target_parents: Vec<Option<ElementId>> =
            target.elements().iter().map(|e| e.parent).collect();
        for s in source.ids() {
            let Some(ps) = source.element(s).parent else {
                continue;
            };
            let row = matrix.row_mut(s);
            for (j, cell) in row.iter_mut().enumerate() {
                if let Some(pt) = target_parents[j] {
                    let own = f64::from(*cell);
                    let par = base.get(ps, pt).value();
                    *cell = ((1.0 - alpha) * own + alpha * par) as f32;
                }
            }
        }
    }

    /// Restricted match over explicit candidate id lists (the sub-tree /
    /// depth-filtered increments of the paper's workflow). Returns scored
    /// pairs rather than a dense matrix, since restrictions are sparse.
    pub fn run_restricted(
        &self,
        ctx: &MatchContext<'_>,
        source_ids: &[ElementId],
        target_ids: &[ElementId],
    ) -> RestrictedResult {
        let started = Instant::now();
        let alpha = self.propagation_alpha;
        // Memoized parent-pair base scores so propagation stays cheap even
        // when many leaves share a parent.
        let mut parent_memo: std::collections::HashMap<(ElementId, ElementId), f64> =
            std::collections::HashMap::new();
        let mut pairs = Vec::with_capacity(source_ids.len() * target_ids.len());
        for &s in source_ids {
            let ps = ctx.source.element(s).parent;
            for &t in target_ids {
                let own = self.score_pair(ctx, s, t).value();
                let blended = match (alpha > 0.0, ps, ctx.target.element(t).parent) {
                    (true, Some(ps), Some(pt)) => {
                        let par = *parent_memo
                            .entry((ps, pt))
                            .or_insert_with(|| self.score_pair(ctx, ps, pt).value());
                        (1.0 - alpha) * own + alpha * par
                    }
                    _ => own,
                };
                pairs.push((s, t, Confidence::new(blended)));
            }
        }
        RestrictedResult {
            pairs_considered: source_ids.len() * target_ids.len(),
            pairs,
            elapsed: started.elapsed(),
        }
    }
}

impl Default for MatchEngine {
    fn default() -> Self {
        MatchEngine::new()
    }
}

/// Result of a full `MATCH(S1, S2)` run.
pub struct MatchResult {
    /// The dense score matrix.
    pub matrix: MatchMatrix,
    /// Wall-clock time of the run (context build + scoring).
    pub elapsed: Duration,
    /// Number of candidate pairs scored (`|S1| · |S2|`).
    pub pairs_considered: usize,
}

/// Result of a restricted (incremental) match.
#[derive(Debug)]
pub struct RestrictedResult {
    /// Scored pairs in source-major order.
    pub pairs: Vec<(ElementId, ElementId, Confidence)>,
    /// Number of candidate pairs scored in this increment.
    pub pairs_considered: usize,
    /// Wall-clock time of the increment.
    pub elapsed: Duration,
}

impl RestrictedResult {
    /// Pairs scoring at least `threshold`, best first.
    pub fn above(&self, threshold: Confidence) -> Vec<(ElementId, ElementId, Confidence)> {
        let mut hits: Vec<_> = self
            .pairs
            .iter()
            .filter(|(_, _, c)| c.value() >= threshold.value())
            .copied()
            .collect();
        hits.sort_by(|a, b| b.2.value().partial_cmp(&a.2.value()).expect("finite"));
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_schema::{DataType, Documentation, ElementKind, Schema, SchemaFormat, SchemaId};

    fn fixture() -> (Schema, Schema) {
        let mut a = Schema::new(SchemaId(1), "S_A", SchemaFormat::Relational);
        let p = a.add_root("Person", ElementKind::Table, DataType::None);
        let pid = a
            .add_child(p, "person_id", ElementKind::Column, DataType::Integer)
            .unwrap();
        a.set_doc(pid, Documentation::embedded("unique person identifier"))
            .unwrap();
        a.add_child(p, "last_name", ElementKind::Column, DataType::varchar(40))
            .unwrap();
        let v = a.add_root("Vehicle", ElementKind::Table, DataType::None);
        a.add_child(v, "vin", ElementKind::Column, DataType::varchar(17))
            .unwrap();

        let mut b = Schema::new(SchemaId(2), "S_B", SchemaFormat::Xml);
        let p2 = b.add_root("PersonType", ElementKind::ComplexType, DataType::None);
        let pid2 = b
            .add_child(p2, "PersonIdentifier", ElementKind::XmlElement, DataType::Integer)
            .unwrap();
        b.set_doc(pid2, Documentation::embedded("unique identifier of the person"))
            .unwrap();
        b.add_child(p2, "LastName", ElementKind::XmlElement, DataType::text())
            .unwrap();
        let w = b.add_root("WeaponType", ElementKind::ComplexType, DataType::None);
        b.add_child(w, "SerialNumber", ElementKind::XmlElement, DataType::text())
            .unwrap();
        (a, b)
    }

    #[test]
    fn full_match_fills_matrix() {
        let (a, b) = fixture();
        let engine = MatchEngine::new().with_threads(2);
        let r = engine.run(&a, &b);
        assert_eq!(r.pairs_considered, a.len() * b.len());
        assert_eq!(r.matrix.rows(), a.len());
        assert_eq!(r.matrix.cols(), b.len());
    }

    #[test]
    fn true_pairs_outscore_false_pairs() {
        let (a, b) = fixture();
        let engine = MatchEngine::new().with_threads(1);
        let r = engine.run(&a, &b);
        let pid = a.find_by_name("person_id").unwrap();
        let pid2 = b.find_by_name("PersonIdentifier").unwrap();
        let serial = b.find_by_name("SerialNumber").unwrap();
        let good = r.matrix.get(pid, pid2);
        let bad = r.matrix.get(pid, serial);
        assert!(good.value() > bad.value(), "good {good} bad {bad}");
        assert!(good.value() > 0.2, "true pair should score well: {good}");

        let ln = a.find_by_name("last_name").unwrap();
        let ln2 = b.find_by_name("LastName").unwrap();
        assert!(r.matrix.get(ln, ln2).value() > 0.3);
    }

    #[test]
    fn single_and_multi_thread_agree() {
        let (a, b) = fixture();
        let e1 = MatchEngine::new().with_threads(1);
        let e4 = MatchEngine::new().with_threads(4);
        let r1 = e1.run(&a, &b);
        let r4 = e4.run(&a, &b);
        for s in a.ids() {
            for t in b.ids() {
                assert!(
                    (r1.matrix.get(s, t).value() - r4.matrix.get(s, t).value()).abs() < 1e-9,
                    "thread-count must not change scores"
                );
            }
        }
    }

    #[test]
    fn empty_schemas_yield_empty_result() {
        let a = Schema::new(SchemaId(1), "e", SchemaFormat::Generic);
        let (_, b) = fixture();
        let engine = MatchEngine::new();
        let r = engine.run(&a, &b);
        assert_eq!(r.pairs_considered, 0);
        assert!(r.matrix.is_empty());
    }

    #[test]
    fn restricted_match_counts_pairs() {
        let (a, b) = fixture();
        let engine = MatchEngine::new();
        let ctx = engine.build_context(&a, &b);
        let person = a.find_by_name("Person").unwrap();
        let src: Vec<ElementId> = a.subtree_ids(person);
        let tgt: Vec<ElementId> = b.ids().collect();
        let r = engine.run_restricted(&ctx, &src, &tgt);
        assert_eq!(r.pairs_considered, src.len() * b.len());
        assert_eq!(r.pairs.len(), r.pairs_considered);
        // Threshold filtering sorts best-first.
        let hits = r.above(Confidence::new(0.2));
        for w in hits.windows(2) {
            assert!(w[0].2.value() >= w[1].2.value());
        }
    }

    #[test]
    fn explain_pair_lists_all_voters() {
        let (a, b) = fixture();
        let engine = MatchEngine::new();
        let ctx = engine.build_context(&a, &b);
        let pid = a.find_by_name("person_id").unwrap();
        let pid2 = b.find_by_name("PersonIdentifier").unwrap();
        let explanation = engine.explain_pair(&ctx, pid, pid2);
        assert_eq!(explanation.len(), engine.voter_names().len());
        assert!(explanation.iter().any(|(n, _)| *n == "documentation"));
    }

    #[test]
    fn merger_choice_changes_scores() {
        let (a, b) = fixture();
        let harmony = MatchEngine::new().with_threads(1);
        let avg = MatchEngine::new()
            .with_merger(MergeStrategy::Average)
            .with_threads(1);
        let rh = harmony.run(&a, &b);
        let ra = avg.run(&a, &b);
        let pid = a.find_by_name("person_id").unwrap();
        let pid2 = b.find_by_name("PersonIdentifier").unwrap();
        // Average dilutes with neutral voters, Harmony does not.
        assert!(rh.matrix.get(pid, pid2).value() > ra.matrix.get(pid, pid2).value());
    }
}

//! The match engine: configuration + entry points over the staged pipeline.
//!
//! Reproduces the paper's headline performance datum: "we had recently scaled
//! Harmony to perform matches of this size, and the fully automated match
//! executed in 10.2 seconds" for 1378×784 ≈ 1.08·10^6 pairs (§3.3). The
//! actual execution lives in [`crate::pipeline::MatchPipeline`], which stages
//! the run as `Prepare → Score → Merge → Propagate → Select` and shards rows
//! across scoped threads with chunked work-stealing. Linguistic
//! preprocessing is served by the engine's [`FeatureCache`], so repeated
//! matching against the same schemata (incremental sessions, n-way efforts,
//! repository search) amortizes the Prepare stage across runs.

use crate::batch::BatchPlanner;
use crate::confidence::Confidence;
use crate::context::MatchContext;
use crate::exec::Executor;
use crate::index::{BlockingPolicy, CandidateSet};
use crate::matrix::MatchMatrix;
use crate::merger::MergeStrategy;
use crate::pipeline::{MatchPipeline, StageTimings};
use crate::prepare::{FeatureCache, PreparedSchema};
use crate::voter::{default_voters, MatchVoter};
use sm_schema::{ElementId, Schema};
use sm_text::normalize::Normalizer;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Detect the worker-thread count for this host.
///
/// Order of precedence:
/// 1. the `SM_THREADS` environment variable (explicit operator override —
///    containers with distorted CPU accounting, benchmark rigs pinning a
///    thread count);
/// 2. [`std::thread::available_parallelism`] (respects cgroup quotas and
///    CPU affinity masks);
/// 3. the processor count in `/proc/cpuinfo` — the fallback for platforms
///    where `available_parallelism` errors out entirely;
/// 4. 1.
pub fn detect_threads() -> usize {
    if let Ok(v) = std::env::var("SM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    if let Ok(n) = std::thread::available_parallelism() {
        return n.get();
    }
    if let Ok(cpuinfo) = std::fs::read_to_string("/proc/cpuinfo") {
        let n = cpuinfo
            .lines()
            .filter(|l| l.starts_with("processor"))
            .count();
        if n >= 1 {
            return n;
        }
    }
    1
}

/// Configuration of a match run.
pub struct MatchEngine {
    pub(crate) voters: Vec<Box<dyn MatchVoter>>,
    pub(crate) merger: MergeStrategy,
    /// Per-schema feature cache (owns the normalizer).
    pub(crate) cache: Arc<FeatureCache>,
    /// The persistent worker pool every parallel stage runs on.
    pub(crate) exec: Arc<Executor>,
    pub(crate) threads: usize,
    /// Structural-propagation blend factor α ∈ [0,1): a non-root pair's final
    /// score is `(1−α)·own + α·parents'`. Disambiguates generic leaf names
    /// (`name`, `identifier`) by their containers — a one-step analogue of
    /// similarity flooding. 0 disables.
    pub(crate) propagation_alpha: f64,
    /// Merged-score floor: when `Some(f)`, merged cells scoring below `f`
    /// are written as exactly `0.0` (on the f64 merged value, before the
    /// f32 matrix narrowing). `None` — the default — preserves the exact
    /// historical semantics. The floor is what licenses the score cascade:
    /// a pair whose provable merged upper bound already falls below `f`
    /// can skip the expensive voters and write `0.0` directly.
    pub(crate) score_floor: Option<f64>,
    /// Whether `voters` is still the untouched [`default_voters`] panel —
    /// the cascade's per-voter bounds are derived for exactly that panel,
    /// so any `with_voters` replacement disables tier-1 skipping.
    pub(crate) panel_is_default: bool,
    /// Test/bench override: `false` forces the full-panel reference path
    /// even when a floor is set (the retained reference the cascade is
    /// pinned against).
    pub(crate) cascade_enabled: bool,
    /// Serving-layer cancellation/deadline token, checked at chunk
    /// boundaries of every parallel stage. `None` (the default) makes
    /// every checkpoint a no-op.
    pub(crate) job_token: Option<crate::serve::JobToken>,
    /// Serving-layer helper-lane budget this engine's stages draw from.
    /// `None` (the default) is unbudgeted — exactly the historical
    /// behavior.
    pub(crate) lane_budget: Option<Arc<crate::exec::LaneBudget>>,
}

impl MatchEngine {
    /// Engine with the default voter panel, Harmony merger, the process-wide
    /// [`FeatureCache`] (default normalizer), and one thread per available
    /// CPU.
    pub fn new() -> Self {
        MatchEngine {
            voters: default_voters(),
            merger: MergeStrategy::default(),
            cache: Arc::clone(FeatureCache::global()),
            exec: Arc::clone(Executor::global()),
            threads: detect_threads(),
            propagation_alpha: 0.3,
            score_floor: None,
            panel_is_default: true,
            cascade_enabled: true,
            job_token: None,
            lane_budget: None,
        }
    }

    /// Replace the voter panel. A custom panel disables the tier-1 cascade
    /// (its per-voter bounds are derived for the default panel only); runs
    /// fall back to full-panel scoring, floored if a floor is set.
    pub fn with_voters(mut self, voters: Vec<Box<dyn MatchVoter>>) -> Self {
        self.voters = voters;
        self.panel_is_default = false;
        self
    }

    /// Set the merged-score floor: merged scores below `floor` are written
    /// as exactly `0.0`. Cells a selection threshold ≥ `floor` would never
    /// accept anyway become skippable for the scoring cascade — with
    /// `Some(0.0)`, every non-positive merged score flattens to `0.0` and
    /// the Score stage may prune provably-losing pairs outright. `None`
    /// restores the exact historical semantics.
    pub fn with_score_floor(mut self, floor: Option<f64>) -> Self {
        self.score_floor = floor;
        self
    }

    /// Force the full-panel reference path even when a floor is set
    /// (pin tests and benches compare the cascade against exactly this).
    pub fn with_cascade(mut self, enabled: bool) -> Self {
        self.cascade_enabled = enabled;
        self
    }

    /// True when runs will use the tier-1/tier-2 cascade: a floor is set,
    /// the panel is the untouched default, and the merger is the Harmony
    /// weighted vote (the bound derivation targets exactly that merge).
    pub fn cascade_active(&self) -> bool {
        self.cascade_enabled
            && self.score_floor.is_some()
            && self.panel_is_default
            && matches!(self.merger, MergeStrategy::HarmonyWeighted)
    }

    /// Replace the merge strategy.
    pub fn with_merger(mut self, merger: MergeStrategy) -> Self {
        self.merger = merger;
        self
    }

    /// Replace the normalizer. The engine switches to a private feature cache
    /// for the new configuration (prepared features are only valid for the
    /// normalizer that produced them).
    pub fn with_normalizer(mut self, normalizer: Normalizer) -> Self {
        self.cache = Arc::new(FeatureCache::new(normalizer));
        self
    }

    /// Share an explicit feature cache (e.g. one owned by a repository, or by
    /// several engines with the same normalizer configuration).
    pub fn with_feature_cache(mut self, cache: Arc<FeatureCache>) -> Self {
        self.cache = cache;
        self
    }

    /// Set the parallelism cap for this engine's runs (values < 1 are
    /// treated as 1). This bounds how many executor lanes a run uses; the
    /// pool itself is shared (see [`Self::with_executor`]).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Run on an explicit executor instead of [`Executor::global`] (tests
    /// pinning a pool width, embedders isolating workloads).
    pub fn with_executor(mut self, exec: Arc<Executor>) -> Self {
        self.exec = exec;
        self
    }

    /// The executor this engine's parallel stages run on.
    pub fn executor(&self) -> &Arc<Executor> {
        &self.exec
    }

    /// Attach a serving-layer cancellation/deadline token: every parallel
    /// stage checks it at chunk boundaries and unwinds cooperatively when
    /// it trips (see [`crate::serve`]).
    pub fn with_job_token(mut self, token: crate::serve::JobToken) -> Self {
        self.job_token = Some(token);
        self
    }

    /// Draw helper lanes from a shared [`crate::exec::LaneBudget`] instead
    /// of claiming the pool freely — the serving layer's per-class
    /// fair-share mechanism.
    pub fn with_lane_budget(mut self, budget: Arc<crate::exec::LaneBudget>) -> Self {
        self.lane_budget = Some(budget);
        self
    }

    /// The attached job token, if any.
    pub fn job_token(&self) -> Option<&crate::serve::JobToken> {
        self.job_token.as_ref()
    }

    /// Cooperative cancellation point: unwinds iff a token is attached and
    /// tripped. Stages call this at chunk boundaries, never under a lock.
    pub(crate) fn checkpoint(&self) {
        if let Some(token) = &self.job_token {
            token.checkpoint();
        }
    }

    /// [`Executor::run_lanes`] through this engine's lane budget.
    pub(crate) fn run_lanes<F>(&self, parallelism: usize, work: F)
    where
        F: Fn(usize) + Sync,
    {
        self.exec
            .run_lanes_budgeted(parallelism, self.lane_budget.as_deref(), work);
    }

    /// [`Executor::run_map`] through this engine's lane budget.
    pub(crate) fn run_map<T, R, F>(&self, parallelism: usize, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.exec
            .run_map_budgeted(parallelism, self.lane_budget.as_deref(), items, f)
    }

    /// A batch planner over this engine's configuration — the entry point
    /// for many-pair workloads (see [`crate::batch`]).
    pub fn batch(&self) -> BatchPlanner<'_> {
        BatchPlanner::new(self)
    }

    /// Set the structural-propagation factor (clamped to `[0, 0.95]`;
    /// 0 disables propagation).
    pub fn with_propagation(mut self, alpha: f64) -> Self {
        self.propagation_alpha = alpha.clamp(0.0, 0.95);
        self
    }

    /// Names of the configured voters, in panel order.
    pub fn voter_names(&self) -> Vec<&'static str> {
        self.voters.iter().map(|v| v.name()).collect()
    }

    /// Borrow the normalizer (e.g. to inspect its options).
    pub fn normalizer(&self) -> &Normalizer {
        self.cache.normalizer()
    }

    /// The engine's feature cache.
    pub fn feature_cache(&self) -> &Arc<FeatureCache> {
        &self.cache
    }

    /// Fetch (or build) the cached per-schema preparation — the Prepare
    /// stage's per-schema half, exposed so repositories and n-way efforts can
    /// warm the cache explicitly.
    pub fn prepare(&self, schema: &Schema) -> Arc<PreparedSchema> {
        self.cache.prepare(schema)
    }

    /// A staged view of this engine's configuration.
    pub fn pipeline(&self) -> MatchPipeline<'_> {
        MatchPipeline::new(self)
    }

    /// Build the linguistic context for a schema pair. Exposed so callers
    /// performing many restricted matches (the incremental workflow) can
    /// amortize it. Per-schema features come from the feature cache; only the
    /// joint TF-IDF corpus is computed per pair.
    pub fn build_context<'a>(&self, source: &'a Schema, target: &'a Schema) -> MatchContext<'a> {
        let prepared_source = self.prepare(source);
        let prepared_target = self.prepare(target);
        // Trusted: the preparations were just served by the cache for these
        // exact schemata, so the staleness re-fingerprint is skipped.
        MatchContext::from_prepared_trusted(
            source,
            target,
            &prepared_source,
            &prepared_target,
            &sm_schema::InstanceData::empty(),
            &sm_schema::InstanceData::empty(),
        )
    }

    /// The full automated match with sampled instance data attached (used
    /// together with a panel containing [`crate::voter::InstanceVoter`]).
    pub fn run_with_instances(
        &self,
        source: &Schema,
        target: &Schema,
        source_instances: &sm_schema::InstanceData,
        target_instances: &sm_schema::InstanceData,
    ) -> MatchResult {
        let started = Instant::now();
        let prepared_source = self.prepare(source);
        let prepared_target = self.prepare(target);
        let ctx = MatchContext::from_prepared_trusted(
            source,
            target,
            &prepared_source,
            &prepared_target,
            source_instances,
            target_instances,
        );
        let timings = StageTimings {
            prepare: started.elapsed(),
            ..StageTimings::default()
        };
        let run = self.pipeline().run_on_context(&ctx, timings);
        MatchResult {
            pairs_considered: run.pairs_considered,
            matrix: run.matrix,
            elapsed: started.elapsed(),
            timings: run.timings,
        }
    }

    /// Score one pair under the configured panel and merger.
    pub fn score_pair(&self, ctx: &MatchContext<'_>, s: ElementId, t: ElementId) -> Confidence {
        let votes: Vec<Confidence> = self.voters.iter().map(|v| v.vote(ctx, s, t)).collect();
        self.merger.merge(&votes)
    }

    /// Per-voter scores for one pair (provenance / debugging / ablation).
    pub fn explain_pair(
        &self,
        ctx: &MatchContext<'_>,
        s: ElementId,
        t: ElementId,
    ) -> Vec<(&'static str, Confidence)> {
        self.voters
            .iter()
            .map(|v| (v.name(), v.vote(ctx, s, t)))
            .collect()
    }

    /// The full automated match: every source element against every target
    /// element. This is the paper's `MATCH(S1, S2)` operator, executed as the
    /// staged pipeline.
    pub fn run(&self, source: &Schema, target: &Schema) -> MatchResult {
        let started = Instant::now();
        let run = self.pipeline().run(source, target);
        MatchResult {
            pairs_considered: run.pairs_considered,
            matrix: run.matrix,
            elapsed: started.elapsed(),
            timings: run.timings,
        }
    }

    /// The blocked match: candidate pairs are generated from the token-
    /// blocking index under `policy` and only those are scored (see
    /// [`crate::index`]). With [`BlockingPolicy::Exhaustive`] the result is
    /// byte-identical to [`Self::run`]; with the default policy it scores a
    /// few percent of the cross product at paper scale.
    pub fn run_blocked(
        &self,
        source: &Schema,
        target: &Schema,
        policy: &BlockingPolicy,
    ) -> BlockedMatchResult {
        let started = Instant::now();
        let run = self.pipeline().run_blocked(source, target, policy);
        BlockedMatchResult {
            matrix: run.matrix,
            elapsed: started.elapsed(),
            pairs_considered: run.pairs_considered,
            pairs_scored: run.pairs_scored,
            candidates: run.candidates,
            timings: run.timings,
        }
    }

    /// Restricted match over explicit candidate id lists (the sub-tree /
    /// depth-filtered increments of the paper's workflow). Returns scored
    /// pairs rather than a dense matrix, since restrictions are sparse.
    ///
    /// Source rows are sharded across executor lanes (each increment is
    /// 10^4–10^5 pairs in the paper's case study); every lane keeps a
    /// private parent-score memo, so per-pair values — and the source-major
    /// output order — are identical to the historical sequential loop.
    pub fn run_restricted(
        &self,
        ctx: &MatchContext<'_>,
        source_ids: &[ElementId],
        target_ids: &[ElementId],
    ) -> RestrictedResult {
        let started = Instant::now();
        let alpha = self.propagation_alpha;
        let cols = target_ids.len();
        let mut pairs =
            vec![(ElementId(0), ElementId(0), Confidence::NEUTRAL); source_ids.len() * cols];

        // One work item per source row: deterministic output slots, lane-
        // local memoized parent-pair base scores (propagation stays cheap
        // when many leaves share a parent).
        let threads = self.threads.min(source_ids.len()).max(1);
        let queue = Mutex::new(pairs.chunks_mut(cols.max(1)).zip(source_ids.iter()));
        self.exec.run_lanes(threads, |_| {
            let mut parent_memo: std::collections::HashMap<(ElementId, ElementId), f64> =
                std::collections::HashMap::new();
            loop {
                let claimed = queue.lock().expect("restricted queue poisoned").next();
                let Some((row, &s)) = claimed else { break };
                let ps = ctx.source.element(s).parent;
                for (slot, &t) in row.iter_mut().zip(target_ids) {
                    let own = self.score_pair(ctx, s, t).value();
                    let blended = match (alpha > 0.0, ps, ctx.target.element(t).parent) {
                        (true, Some(ps), Some(pt)) => {
                            let par = *parent_memo
                                .entry((ps, pt))
                                .or_insert_with(|| self.score_pair(ctx, ps, pt).value());
                            (1.0 - alpha) * own + alpha * par
                        }
                        _ => own,
                    };
                    *slot = (s, t, Confidence::new(blended));
                }
            }
        });
        RestrictedResult {
            pairs_considered: source_ids.len() * cols,
            pairs,
            elapsed: started.elapsed(),
        }
    }
}

impl Default for MatchEngine {
    fn default() -> Self {
        MatchEngine::new()
    }
}

/// Result of a full `MATCH(S1, S2)` run.
pub struct MatchResult {
    /// The dense score matrix.
    pub matrix: MatchMatrix,
    /// Wall-clock time of the run (context build + scoring).
    pub elapsed: Duration,
    /// Number of candidate pairs scored (`|S1| · |S2|`).
    pub pairs_considered: usize,
    /// Per-stage wall-clock breakdown of the pipeline.
    pub timings: StageTimings,
}

/// Result of a blocked `MATCH(S1, S2)` run.
#[derive(Debug)]
pub struct BlockedMatchResult {
    /// The score matrix; pairs pruned by blocking hold the neutral `0.0`.
    pub matrix: MatchMatrix,
    /// Wall-clock time of the run (prepare + block + scoring + propagate).
    pub elapsed: Duration,
    /// Size of the full cross product (`|S1| · |S2|`).
    pub pairs_considered: usize,
    /// Candidate pairs actually scored.
    pub pairs_scored: usize,
    /// The candidate set that was scored.
    pub candidates: CandidateSet,
    /// Per-stage wall-clock breakdown (including the Block stage).
    pub timings: StageTimings,
}

/// Result of a restricted (incremental) match.
#[derive(Debug)]
pub struct RestrictedResult {
    /// Scored pairs in source-major order.
    pub pairs: Vec<(ElementId, ElementId, Confidence)>,
    /// Number of candidate pairs scored in this increment.
    pub pairs_considered: usize,
    /// Wall-clock time of the increment.
    pub elapsed: Duration,
}

impl RestrictedResult {
    /// Pairs scoring at least `threshold`, best first.
    pub fn above(&self, threshold: Confidence) -> Vec<(ElementId, ElementId, Confidence)> {
        let mut hits: Vec<_> = self
            .pairs
            .iter()
            .filter(|(_, _, c)| c.value() >= threshold.value())
            .copied()
            .collect();
        hits.sort_by(|a, b| b.2.value().partial_cmp(&a.2.value()).expect("finite"));
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_schema::{DataType, Documentation, ElementKind, Schema, SchemaFormat, SchemaId};

    fn fixture() -> (Schema, Schema) {
        let mut a = Schema::new(SchemaId(1), "S_A", SchemaFormat::Relational);
        let p = a.add_root("Person", ElementKind::Table, DataType::None);
        let pid = a
            .add_child(p, "person_id", ElementKind::Column, DataType::Integer)
            .unwrap();
        a.set_doc(pid, Documentation::embedded("unique person identifier"))
            .unwrap();
        a.add_child(p, "last_name", ElementKind::Column, DataType::varchar(40))
            .unwrap();
        let v = a.add_root("Vehicle", ElementKind::Table, DataType::None);
        a.add_child(v, "vin", ElementKind::Column, DataType::varchar(17))
            .unwrap();

        let mut b = Schema::new(SchemaId(2), "S_B", SchemaFormat::Xml);
        let p2 = b.add_root("PersonType", ElementKind::ComplexType, DataType::None);
        let pid2 = b
            .add_child(
                p2,
                "PersonIdentifier",
                ElementKind::XmlElement,
                DataType::Integer,
            )
            .unwrap();
        b.set_doc(
            pid2,
            Documentation::embedded("unique identifier of the person"),
        )
        .unwrap();
        b.add_child(p2, "LastName", ElementKind::XmlElement, DataType::text())
            .unwrap();
        let w = b.add_root("WeaponType", ElementKind::ComplexType, DataType::None);
        b.add_child(w, "SerialNumber", ElementKind::XmlElement, DataType::text())
            .unwrap();
        (a, b)
    }

    #[test]
    fn full_match_fills_matrix() {
        let (a, b) = fixture();
        let engine = MatchEngine::new().with_threads(2);
        let r = engine.run(&a, &b);
        assert_eq!(r.pairs_considered, a.len() * b.len());
        assert_eq!(r.matrix.rows(), a.len());
        assert_eq!(r.matrix.cols(), b.len());
    }

    #[test]
    fn true_pairs_outscore_false_pairs() {
        let (a, b) = fixture();
        let engine = MatchEngine::new().with_threads(1);
        let r = engine.run(&a, &b);
        let pid = a.find_by_name("person_id").unwrap();
        let pid2 = b.find_by_name("PersonIdentifier").unwrap();
        let serial = b.find_by_name("SerialNumber").unwrap();
        let good = r.matrix.get(pid, pid2);
        let bad = r.matrix.get(pid, serial);
        assert!(good.value() > bad.value(), "good {good} bad {bad}");
        assert!(good.value() > 0.2, "true pair should score well: {good}");

        let ln = a.find_by_name("last_name").unwrap();
        let ln2 = b.find_by_name("LastName").unwrap();
        assert!(r.matrix.get(ln, ln2).value() > 0.3);
    }

    #[test]
    fn single_and_multi_thread_agree() {
        let (a, b) = fixture();
        let e1 = MatchEngine::new().with_threads(1);
        let e4 = MatchEngine::new().with_threads(4);
        let r1 = e1.run(&a, &b);
        let r4 = e4.run(&a, &b);
        for s in a.ids() {
            for t in b.ids() {
                assert!(
                    (r1.matrix.get(s, t).value() - r4.matrix.get(s, t).value()).abs() < 1e-9,
                    "thread-count must not change scores"
                );
            }
        }
    }

    #[test]
    fn empty_schemas_yield_empty_result() {
        let a = Schema::new(SchemaId(1), "e", SchemaFormat::Generic);
        let (_, b) = fixture();
        let engine = MatchEngine::new();
        let r = engine.run(&a, &b);
        assert_eq!(r.pairs_considered, 0);
        assert!(r.matrix.is_empty());
    }

    #[test]
    fn restricted_match_counts_pairs() {
        let (a, b) = fixture();
        let engine = MatchEngine::new();
        let ctx = engine.build_context(&a, &b);
        let person = a.find_by_name("Person").unwrap();
        let src: Vec<ElementId> = a.subtree_ids(person);
        let tgt: Vec<ElementId> = b.ids().collect();
        let r = engine.run_restricted(&ctx, &src, &tgt);
        assert_eq!(r.pairs_considered, src.len() * b.len());
        assert_eq!(r.pairs.len(), r.pairs_considered);
        // Threshold filtering sorts best-first.
        let hits = r.above(Confidence::new(0.2));
        for w in hits.windows(2) {
            assert!(w[0].2.value() >= w[1].2.value());
        }
    }

    #[test]
    fn explain_pair_lists_all_voters() {
        let (a, b) = fixture();
        let engine = MatchEngine::new();
        let ctx = engine.build_context(&a, &b);
        let pid = a.find_by_name("person_id").unwrap();
        let pid2 = b.find_by_name("PersonIdentifier").unwrap();
        let explanation = engine.explain_pair(&ctx, pid, pid2);
        assert_eq!(explanation.len(), engine.voter_names().len());
        assert!(explanation.iter().any(|(n, _)| *n == "documentation"));
    }

    #[test]
    fn merger_choice_changes_scores() {
        let (a, b) = fixture();
        let harmony = MatchEngine::new().with_threads(1);
        let avg = MatchEngine::new()
            .with_merger(MergeStrategy::Average)
            .with_threads(1);
        let rh = harmony.run(&a, &b);
        let ra = avg.run(&a, &b);
        let pid = a.find_by_name("person_id").unwrap();
        let pid2 = b.find_by_name("PersonIdentifier").unwrap();
        // Average dilutes with neutral voters, Harmony does not.
        assert!(rh.matrix.get(pid, pid2).value() > ra.matrix.get(pid, pid2).value());
    }

    #[test]
    fn second_run_hits_feature_cache() {
        let (a, b) = fixture();
        // Private cache so other tests' global-cache traffic can't interfere.
        let engine = MatchEngine::new().with_normalizer(Normalizer::new());
        let r1 = engine.run(&a, &b);
        let stats_cold = engine.feature_cache().stats();
        assert_eq!(stats_cold.misses, 2, "both schemata prepared once");
        let r2 = engine.run(&a, &b);
        let stats_warm = engine.feature_cache().stats();
        assert_eq!(stats_warm.misses, 2, "warm run prepares nothing");
        assert_eq!(stats_warm.hits, stats_cold.hits + 2);
        assert_eq!(
            r1.matrix.as_slice(),
            r2.matrix.as_slice(),
            "cached run must be byte-identical"
        );
    }

    #[test]
    fn timings_sum_close_to_elapsed() {
        let (a, b) = fixture();
        let engine = MatchEngine::new().with_threads(2);
        let r = engine.run(&a, &b);
        assert!(r.timings.total() <= r.elapsed + Duration::from_millis(5));
        assert!(r.timings.prepare > Duration::ZERO);
    }
}

//! Precomputed linguistic context for one match operation.
//!
//! Voters are invoked for up to ~10^6 (source, target) pairs (the paper's
//! 1378×784 case). All per-*element* work — tokenization, stemming,
//! abbreviation expansion, TF-IDF vectorization — is done once per element
//! here, so the per-pair cost is a handful of set intersections.

use sm_schema::instances::{InstanceData, InstanceProfile};
use sm_schema::{ElementId, Schema};
use sm_text::normalize::{Normalizer, TokenBag};
use sm_text::tfidf::{Corpus, DocVector, FinalizedCorpus};

/// Which side of the match an element belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The left/source schema (the paper's S_A).
    Source,
    /// The right/target schema (the paper's S_B).
    Target,
}

/// Per-element precomputed features.
#[derive(Debug, Clone)]
pub struct ElementFeatures {
    /// Normalized name tokens.
    pub name_bag: TokenBag,
    /// Raw lowercased name (for edit-distance voters).
    pub raw_name: String,
    /// Normalized documentation tokens.
    pub doc_bag: TokenBag,
    /// TF-IDF vector of name + documentation.
    pub doc_vector: DocVector,
    /// Normalized tokens of the parent's name (empty for roots).
    pub parent_bag: TokenBag,
    /// Normalized name tokens of the element's children (flattened).
    pub children_bag: TokenBag,
    /// Distributional profile of sampled instance values, when available.
    /// `None` in the paper's common case ("data … may not yet exist, or may
    /// be sensitive").
    pub instances: Option<InstanceProfile>,
}

/// Precomputed context for matching `source` against `target`.
pub struct MatchContext<'a> {
    /// The source schema (rows of the match matrix).
    pub source: &'a Schema,
    /// The target schema (columns of the match matrix).
    pub target: &'a Schema,
    source_features: Vec<ElementFeatures>,
    target_features: Vec<ElementFeatures>,
    /// TF-IDF corpus built over *both* schemata's documentation, so IDF
    /// reflects the joint vocabulary of the match problem.
    pub corpus: FinalizedCorpus,
}

impl<'a> MatchContext<'a> {
    /// Build the context, running the full normalization pipeline once per
    /// element of each schema. No instance data is consulted.
    pub fn build(source: &'a Schema, target: &'a Schema, normalizer: &Normalizer) -> Self {
        Self::build_with_instances(
            source,
            target,
            normalizer,
            &InstanceData::empty(),
            &InstanceData::empty(),
        )
    }

    /// Build the context with sampled instance data attached to one or both
    /// schemata; the [`crate::voter::InstanceVoter`] consumes the resulting
    /// profiles.
    pub fn build_with_instances(
        source: &'a Schema,
        target: &'a Schema,
        normalizer: &Normalizer,
        source_instances: &InstanceData,
        target_instances: &InstanceData,
    ) -> Self {
        // Pass 1: token bags.
        let source_partial = Self::partial_features(source, normalizer, source_instances);
        let target_partial = Self::partial_features(target, normalizer, target_instances);

        // Pass 2: joint TF-IDF corpus over name+doc tokens.
        let mut corpus = Corpus::new();
        let mut source_doc_ids = Vec::with_capacity(source_partial.len());
        for f in &source_partial {
            let mut toks = f.name_bag.tokens.clone();
            toks.extend(f.doc_bag.tokens.iter().cloned());
            source_doc_ids.push(corpus.add_document(&toks));
        }
        let mut target_doc_ids = Vec::with_capacity(target_partial.len());
        for f in &target_partial {
            let mut toks = f.name_bag.tokens.clone();
            toks.extend(f.doc_bag.tokens.iter().cloned());
            target_doc_ids.push(corpus.add_document(&toks));
        }
        let corpus = corpus.finalize();

        let attach = |partial: Vec<PartialFeatures>, ids: &[usize]| -> Vec<ElementFeatures> {
            partial
                .into_iter()
                .zip(ids)
                .map(|(p, &doc_id)| ElementFeatures {
                    name_bag: p.name_bag,
                    raw_name: p.raw_name,
                    doc_bag: p.doc_bag,
                    doc_vector: corpus.vector(doc_id).clone(),
                    parent_bag: p.parent_bag,
                    children_bag: p.children_bag,
                    instances: p.instances,
                })
                .collect()
        };

        let source_features = attach(source_partial, &source_doc_ids);
        let target_features = attach(target_partial, &target_doc_ids);

        MatchContext {
            source,
            target,
            source_features,
            target_features,
            corpus,
        }
    }

    fn partial_features(
        schema: &Schema,
        normalizer: &Normalizer,
        instances: &InstanceData,
    ) -> Vec<PartialFeatures> {
        let bags: Vec<TokenBag> = schema
            .elements()
            .iter()
            .map(|e| normalizer.name(&e.name))
            .collect();
        schema
            .elements()
            .iter()
            .map(|e| {
                let parent_bag = e
                    .parent
                    .map(|p| bags[p.index()].clone())
                    .unwrap_or_default();
                let mut children_tokens = Vec::new();
                for &c in &e.children {
                    children_tokens.extend(bags[c.index()].tokens.iter().cloned());
                }
                PartialFeatures {
                    name_bag: bags[e.id.index()].clone(),
                    raw_name: e.name.to_lowercase(),
                    doc_bag: normalizer.prose(e.doc_text()),
                    parent_bag,
                    children_bag: TokenBag {
                        tokens: children_tokens,
                    },
                    instances: instances
                        .get(e.id)
                        .and_then(InstanceProfile::from_values),
                }
            })
            .collect()
    }

    /// Features of a source element.
    #[inline]
    pub fn source_feat(&self, id: ElementId) -> &ElementFeatures {
        &self.source_features[id.index()]
    }

    /// Features of a target element.
    #[inline]
    pub fn target_feat(&self, id: ElementId) -> &ElementFeatures {
        &self.target_features[id.index()]
    }

    /// Features of an element on the given side.
    #[inline]
    pub fn feat(&self, side: Side, id: ElementId) -> &ElementFeatures {
        match side {
            Side::Source => self.source_feat(id),
            Side::Target => self.target_feat(id),
        }
    }
}

struct PartialFeatures {
    name_bag: TokenBag,
    raw_name: String,
    doc_bag: TokenBag,
    parent_bag: TokenBag,
    children_bag: TokenBag,
    instances: Option<InstanceProfile>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_schema::{DataType, ElementKind, SchemaFormat, SchemaId};

    fn schemas() -> (Schema, Schema) {
        let mut a = Schema::new(SchemaId(1), "S_A", SchemaFormat::Relational);
        let t = a.add_root("Person", ElementKind::Table, DataType::None);
        let c = a
            .add_child(t, "birth_dt", ElementKind::Column, DataType::Date)
            .unwrap();
        a.set_doc(c, sm_schema::Documentation::embedded("the date of birth"))
            .unwrap();

        let mut b = Schema::new(SchemaId(2), "S_B", SchemaFormat::Xml);
        let ty = b.add_root("PersonType", ElementKind::ComplexType, DataType::None);
        b.add_child(ty, "BirthDate", ElementKind::XmlElement, DataType::Date)
            .unwrap();
        (a, b)
    }

    #[test]
    fn features_precomputed_for_every_element() {
        let (a, b) = schemas();
        let n = Normalizer::new();
        let ctx = MatchContext::build(&a, &b, &n);
        for id in a.ids() {
            let f = ctx.source_feat(id);
            assert!(!f.raw_name.is_empty());
        }
        for id in b.ids() {
            let _ = ctx.target_feat(id);
        }
        assert_eq!(ctx.corpus.len(), a.len() + b.len());
    }

    #[test]
    fn abbreviation_bridges_formats() {
        let (a, b) = schemas();
        let n = Normalizer::new();
        let ctx = MatchContext::build(&a, &b, &n);
        let src = a.find_by_name("birth_dt").unwrap();
        let tgt = b.find_by_name("BirthDate").unwrap();
        // birth_dt expands dt→date; BirthDate tokenizes to birth/date.
        let overlap = ctx.source_feat(src).name_bag.overlap(&ctx.target_feat(tgt).name_bag);
        assert_eq!(overlap, 2, "birth and date should both be shared");
    }

    #[test]
    fn parent_and_children_bags() {
        let (a, b) = schemas();
        let n = Normalizer::new();
        let ctx = MatchContext::build(&a, &b, &n);
        let col = a.find_by_name("birth_dt").unwrap();
        assert!(!ctx.source_feat(col).parent_bag.is_empty(), "column has parent");
        let table = a.find_by_name("Person").unwrap();
        assert!(ctx.source_feat(table).parent_bag.is_empty(), "root has none");
        assert!(
            !ctx.source_feat(table).children_bag.is_empty(),
            "table sees child tokens"
        );
    }

    #[test]
    fn doc_vectors_capture_documentation() {
        let (a, b) = schemas();
        let n = Normalizer::new();
        let ctx = MatchContext::build(&a, &b, &n);
        let src = a.find_by_name("birth_dt").unwrap();
        let tgt = b.find_by_name("BirthDate").unwrap();
        let sim = ctx
            .source_feat(src)
            .doc_vector
            .cosine(&ctx.target_feat(tgt).doc_vector);
        assert!(sim > 0.3, "documented date columns should be similar: {sim}");
    }

    #[test]
    fn empty_schemas_build_empty_context() {
        let a = Schema::new(SchemaId(1), "e1", SchemaFormat::Generic);
        let b = Schema::new(SchemaId(2), "e2", SchemaFormat::Generic);
        let n = Normalizer::new();
        let ctx = MatchContext::build(&a, &b, &n);
        assert_eq!(ctx.corpus.len(), 0);
    }
}

//! Precomputed linguistic context for one match operation.
//!
//! Voters are invoked for up to ~10^6 (source, target) pairs (the paper's
//! 1378×784 case). All per-*element* work — tokenization, stemming,
//! abbreviation expansion — lives in [`crate::prepare::PreparedSchema`] and
//! is computed once per schema (and cached across runs by
//! [`crate::prepare::FeatureCache`]). This module assembles the per-*pair*
//! remainder: the joint TF-IDF corpus, whose IDF weights depend on the
//! combined vocabulary of the two schemata being matched, and optional
//! instance profiles. Per-pair voter cost stays a handful of set
//! intersections.

use crate::prepare::{PreparedElement, PreparedSchema};
use sm_schema::instances::{InstanceData, InstanceProfile};
use sm_schema::{ElementId, Schema};
use sm_text::normalize::Normalizer;
use sm_text::tfidf::{Corpus, DocVector, FinalizedCorpus};

/// Which side of the match an element belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The left/source schema (the paper's S_A).
    Source,
    /// The right/target schema (the paper's S_B).
    Target,
}

/// Per-element precomputed features: the shared per-schema part (token
/// bags, raw name — see [`PreparedElement`]) plus the per-pair part
/// (TF-IDF vector against the joint corpus, instance profile).
///
/// The per-schema half is held by `Arc` and surfaced through `Deref`, so
/// voters read `feat.name_bag` etc. without the context having deep-cloned
/// any token bag: a context build against a warm cache copies only pointers
/// and the per-pair vectors.
#[derive(Debug, Clone)]
pub struct ElementFeatures {
    /// Shared per-schema features (name/doc/parent/children bags, raw name).
    pub base: std::sync::Arc<PreparedElement>,
    /// TF-IDF vector of name + documentation against the pair's joint corpus.
    pub doc_vector: DocVector,
    /// Prefix sums of [`Self::doc_vector`]'s squared weights in descending
    /// order (see [`DocVector::top_squared_prefix`]) — with a cap on the
    /// number of shared terms, Cauchy-Schwarz bounds the cosine from above.
    /// Tier-1 cascade input; empty-document vectors get the single-entry
    /// `[0.0]` prefix.
    pub doc_sq_prefix: Vec<f64>,
    /// Distributional profile of sampled instance values, when available.
    /// `None` in the paper's common case ("data … may not yet exist, or may
    /// be sensitive").
    pub instances: Option<InstanceProfile>,
}

impl std::ops::Deref for ElementFeatures {
    type Target = PreparedElement;

    fn deref(&self) -> &PreparedElement {
        &self.base
    }
}

/// Precomputed context for matching `source` against `target`.
pub struct MatchContext<'a> {
    /// The source schema (rows of the match matrix).
    pub source: &'a Schema,
    /// The target schema (columns of the match matrix).
    pub target: &'a Schema,
    source_features: Vec<ElementFeatures>,
    target_features: Vec<ElementFeatures>,
    /// TF-IDF corpus built over *both* schemata's documentation, so IDF
    /// reflects the joint vocabulary of the match problem.
    pub corpus: FinalizedCorpus,
    /// Tag of the arena both preparations' ids point into (memo keys).
    arena_tag: u32,
}

impl<'a> MatchContext<'a> {
    /// Build the context, running the full normalization pipeline once per
    /// element of each schema. No instance data is consulted. Callers holding
    /// a [`crate::prepare::FeatureCache`] should prefer [`Self::from_prepared`],
    /// which skips normalization entirely.
    pub fn build(source: &'a Schema, target: &'a Schema, normalizer: &Normalizer) -> Self {
        Self::build_with_instances(
            source,
            target,
            normalizer,
            &InstanceData::empty(),
            &InstanceData::empty(),
        )
    }

    /// Build the context with sampled instance data attached to one or both
    /// schemata; the [`crate::voter::InstanceVoter`] consumes the resulting
    /// profiles.
    pub fn build_with_instances(
        source: &'a Schema,
        target: &'a Schema,
        normalizer: &Normalizer,
        source_instances: &InstanceData,
        target_instances: &InstanceData,
    ) -> Self {
        let prepared_source = PreparedSchema::build(source, normalizer);
        let prepared_target = PreparedSchema::build(target, normalizer);
        Self::from_prepared_with_instances(
            source,
            target,
            &prepared_source,
            &prepared_target,
            source_instances,
            target_instances,
        )
    }

    /// Assemble the context from already-prepared schemata (the Prepare stage
    /// of the match pipeline). Only the joint TF-IDF corpus is computed here.
    pub fn from_prepared(
        source: &'a Schema,
        target: &'a Schema,
        prepared_source: &PreparedSchema,
        prepared_target: &PreparedSchema,
    ) -> Self {
        Self::from_prepared_with_instances(
            source,
            target,
            prepared_source,
            prepared_target,
            &InstanceData::empty(),
            &InstanceData::empty(),
        )
    }

    /// [`Self::from_prepared`] with sampled instance data attached.
    ///
    /// # Panics
    /// Panics when a preparation does not reflect its schema's current
    /// content (see [`PreparedSchema::is_current_for`]): a stale preparation
    /// would silently misalign the TF-IDF corpus and produce wrong scores,
    /// so the check is enforced in release builds too. The fingerprint
    /// comparison is O(total name/doc bytes) — noise next to the corpus
    /// assembly this method performs anyway.
    pub fn from_prepared_with_instances(
        source: &'a Schema,
        target: &'a Schema,
        prepared_source: &PreparedSchema,
        prepared_target: &PreparedSchema,
        source_instances: &InstanceData,
        target_instances: &InstanceData,
    ) -> Self {
        assert!(
            prepared_source.is_current_for(source),
            "stale preparation for source schema {:?}",
            source.id
        );
        assert!(
            prepared_target.is_current_for(target),
            "stale preparation for target schema {:?}",
            target.id
        );
        Self::from_prepared_trusted(
            source,
            target,
            prepared_source,
            prepared_target,
            source_instances,
            target_instances,
        )
    }

    /// [`Self::from_prepared_with_instances`] without the staleness
    /// re-fingerprint — for callers that *just obtained* the preparations
    /// from a [`crate::prepare::FeatureCache`] keyed by the same schemata,
    /// where the fingerprint was computed moments ago for the cache lookup
    /// (hashing all name/doc bytes twice per run would be pure overhead on
    /// the hot path).
    pub(crate) fn from_prepared_trusted(
        source: &'a Schema,
        target: &'a Schema,
        prepared_source: &PreparedSchema,
        prepared_target: &PreparedSchema,
        source_instances: &InstanceData,
        target_instances: &InstanceData,
    ) -> Self {
        debug_assert!(prepared_source.is_current_for(source));
        debug_assert!(prepared_target.is_current_for(target));
        // Interned ids are only meaningful within one arena; preparations
        // from different arenas would silently mis-key the corpus.
        assert!(
            std::sync::Arc::ptr_eq(prepared_source.arena(), prepared_target.arena()),
            "source and target preparations must share one token arena"
        );

        // Joint TF-IDF corpus over name+doc tokens, source rows first —
        // the same document order the historical single-pass build used.
        // Documents are fed as pre-interned ids: corpus assembly allocates
        // no strings at all.
        let mut corpus = Corpus::with_arena(std::sync::Arc::clone(prepared_source.arena()));
        for e in prepared_source.elements() {
            corpus.add_document_ids(&e.corpus_ids);
        }
        for e in prepared_target.elements() {
            corpus.add_document_ids(&e.corpus_ids);
        }
        let corpus = corpus.finalize();

        let attach = |schema: &Schema,
                      prepared: &PreparedSchema,
                      instances: &InstanceData,
                      doc_offset: usize|
         -> Vec<ElementFeatures> {
            schema
                .elements()
                .iter()
                .zip(prepared.elements())
                .enumerate()
                .map(|(idx, (e, p))| {
                    let doc_vector = corpus.vector(doc_offset + idx).clone();
                    ElementFeatures {
                        base: std::sync::Arc::clone(p),
                        doc_sq_prefix: doc_vector.top_squared_prefix(),
                        doc_vector,
                        instances: instances.get(e.id).and_then(InstanceProfile::from_values),
                    }
                })
                .collect()
        };

        let source_features = attach(source, prepared_source, source_instances, 0);
        let target_features = attach(target, prepared_target, target_instances, source.len());

        MatchContext {
            source,
            target,
            source_features,
            target_features,
            corpus,
            arena_tag: prepared_source.arena().tag(),
        }
    }

    /// The tag of the token arena this context's interned ids point into
    /// (see [`sm_text::intern::TokenArena::tag`]); voters fold it into
    /// their per-thread memo keys.
    #[inline]
    pub fn arena_tag(&self) -> u32 {
        self.arena_tag
    }

    /// Features of a source element.
    #[inline]
    pub fn source_feat(&self, id: ElementId) -> &ElementFeatures {
        &self.source_features[id.index()]
    }

    /// Features of a target element.
    #[inline]
    pub fn target_feat(&self, id: ElementId) -> &ElementFeatures {
        &self.target_features[id.index()]
    }

    /// Features of an element on the given side.
    #[inline]
    pub fn feat(&self, side: Side, id: ElementId) -> &ElementFeatures {
        match side {
            Side::Source => self.source_feat(id),
            Side::Target => self.target_feat(id),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_schema::{DataType, ElementKind, SchemaFormat, SchemaId};

    fn schemas() -> (Schema, Schema) {
        let mut a = Schema::new(SchemaId(1), "S_A", SchemaFormat::Relational);
        let t = a.add_root("Person", ElementKind::Table, DataType::None);
        let c = a
            .add_child(t, "birth_dt", ElementKind::Column, DataType::Date)
            .unwrap();
        a.set_doc(c, sm_schema::Documentation::embedded("the date of birth"))
            .unwrap();

        let mut b = Schema::new(SchemaId(2), "S_B", SchemaFormat::Xml);
        let ty = b.add_root("PersonType", ElementKind::ComplexType, DataType::None);
        b.add_child(ty, "BirthDate", ElementKind::XmlElement, DataType::Date)
            .unwrap();
        (a, b)
    }

    #[test]
    fn features_precomputed_for_every_element() {
        let (a, b) = schemas();
        let n = Normalizer::new();
        let ctx = MatchContext::build(&a, &b, &n);
        for id in a.ids() {
            let f = ctx.source_feat(id);
            assert!(!f.raw_name.is_empty());
        }
        for id in b.ids() {
            let _ = ctx.target_feat(id);
        }
        assert_eq!(ctx.corpus.len(), a.len() + b.len());
    }

    #[test]
    fn abbreviation_bridges_formats() {
        let (a, b) = schemas();
        let n = Normalizer::new();
        let ctx = MatchContext::build(&a, &b, &n);
        let src = a.find_by_name("birth_dt").unwrap();
        let tgt = b.find_by_name("BirthDate").unwrap();
        // birth_dt expands dt→date; BirthDate tokenizes to birth/date.
        let overlap = ctx
            .source_feat(src)
            .name_bag
            .overlap(&ctx.target_feat(tgt).name_bag);
        assert_eq!(overlap, 2, "birth and date should both be shared");
    }

    #[test]
    fn parent_and_children_bags() {
        let (a, b) = schemas();
        let n = Normalizer::new();
        let ctx = MatchContext::build(&a, &b, &n);
        let col = a.find_by_name("birth_dt").unwrap();
        assert!(
            !ctx.source_feat(col).parent_bag.is_empty(),
            "column has parent"
        );
        let table = a.find_by_name("Person").unwrap();
        assert!(
            ctx.source_feat(table).parent_bag.is_empty(),
            "root has none"
        );
        assert!(
            !ctx.source_feat(table).children_bag.is_empty(),
            "table sees child tokens"
        );
    }

    #[test]
    fn doc_vectors_capture_documentation() {
        let (a, b) = schemas();
        let n = Normalizer::new();
        let ctx = MatchContext::build(&a, &b, &n);
        let src = a.find_by_name("birth_dt").unwrap();
        let tgt = b.find_by_name("BirthDate").unwrap();
        let sim = ctx
            .source_feat(src)
            .doc_vector
            .cosine(&ctx.target_feat(tgt).doc_vector);
        assert!(
            sim > 0.3,
            "documented date columns should be similar: {sim}"
        );
    }

    #[test]
    fn empty_schemas_build_empty_context() {
        let a = Schema::new(SchemaId(1), "e1", SchemaFormat::Generic);
        let b = Schema::new(SchemaId(2), "e2", SchemaFormat::Generic);
        let n = Normalizer::new();
        let ctx = MatchContext::build(&a, &b, &n);
        assert_eq!(ctx.corpus.len(), 0);
    }

    #[test]
    fn from_prepared_equals_direct_build() {
        let (a, b) = schemas();
        let n = Normalizer::new();
        let direct = MatchContext::build(&a, &b, &n);
        let pa = PreparedSchema::build(&a, &n);
        let pb = PreparedSchema::build(&b, &n);
        let cached = MatchContext::from_prepared(&a, &b, &pa, &pb);
        for id in a.ids() {
            let d = direct.source_feat(id);
            let c = cached.source_feat(id);
            assert_eq!(d.name_bag, c.name_bag);
            assert_eq!(d.raw_name, c.raw_name);
            assert_eq!(d.doc_bag, c.doc_bag);
            assert_eq!(d.doc_vector, c.doc_vector);
            assert_eq!(d.parent_bag, c.parent_bag);
            assert_eq!(d.children_bag, c.children_bag);
        }
        for id in b.ids() {
            assert_eq!(
                direct.target_feat(id).doc_vector,
                cached.target_feat(id).doc_vector
            );
        }
    }
}

//! Token-blocking index: sparse candidate generation for the match pipeline.
//!
//! The dense pipeline scores every `|S1| × |S2|` pair — ~10^6 voter-panel
//! invocations at the paper's 1378×784 scale, 98%+ of the hot path's wall
//! clock. But true correspondences almost always share *some* cheap lexical
//! evidence: a normalized name token, a documentation token, a phonetic
//! (Soundex) key, or an acronym. This module exploits that with the standard
//! blocking technique of the schema/entity-matching literature the paper
//! builds on:
//!
//! 1. build an [`ElementTokenIndex`] — an inverted index from features of
//!    one schema's [`PreparedSchema`] (name + documentation tokens, Soundex
//!    keys of name tokens, acronym keys) to posting lists of element
//!    indices, IDF-weighted so rare features count for more;
//! 2. probe it with the other schema's elements, accumulating per-pair
//!    feature-overlap weights over the posting lists;
//! 3. let a [`BlockingPolicy`] turn the weights into a [`CandidateSet`] — a
//!    sparse row-major (CSR) pair set the pipeline then scores instead of
//!    the full cross product.
//!
//! Candidate generation runs in both directions (source→target and
//! target→source) and the results are unioned, so an element with an
//! unusually generic vocabulary on one side can still be rescued by the
//! other side's view of it. Finally the set is closed under parenthood:
//! **parents of a candidate pair are candidates themselves**, which keeps
//! the Propagate stage semantics-preserving (a candidate's structural blend
//! reads its parents' *scored* base value, never an unscored zero) and
//! implicitly recovers container pairs whose own names disagree but whose
//! children overlap — exactly the pairs the `StructureVoter` exists for.

use crate::prepare::PreparedSchema;
use sm_schema::Schema;
use sm_text::intern::{TokenArena, TokenId};
use std::collections::HashMap;
use std::sync::Arc;

/// Smoothed IDF weight of a feature present in `df` of `n` documents — the
/// same shape the repository search index uses, so "rare ⇒ discriminating"
/// means the same thing at both element and schema granularity.
fn idf_weight(n: f64, df: f64) -> f64 {
    ((n + 1.0) / (df + 1.0)).ln() + 1.0
}

/// How aggressively to prune the candidate space. All policies operate on
/// the IDF-weighted feature-overlap accumulated over the inverted index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BlockingPolicy {
    /// Keep, for every element, its `k` best-overlapping opposites (both
    /// directions, unioned), plus *every* pair whose overlap weight reaches
    /// `min_weight` — so dense neighborhoods are capped at `k` while pairs
    /// with strong shared evidence are never dropped by the cap.
    TopK {
        /// Candidates kept per element (per direction).
        k: usize,
        /// Overlap weight at which a pair is kept even beyond `k`.
        min_weight: f64,
    },
    /// Keep every pair whose accumulated overlap weight reaches
    /// `min_weight`, with no per-element cap.
    WeightedThreshold {
        /// Minimum overlap weight for a pair to become a candidate.
        min_weight: f64,
    },
    /// Every pair is a candidate — the fallback that makes `run_blocked`
    /// reproduce the dense pipeline byte for byte.
    Exhaustive,
}

impl Default for BlockingPolicy {
    /// The default operating point: top-24 per element, with pairs kept
    /// beyond the cap only on a genuinely rare feature collision (smoothed
    /// IDF weight 6 ≈ one feature shared by < 1% of elements; ubiquitous
    /// boilerplate tokens weigh ≈ 1 each and never add up to it). Tuned on
    /// the synthetic paper-scale workload: 100% of dense above-threshold
    /// pairs survive while a few percent of the cross product is scored.
    fn default() -> Self {
        BlockingPolicy::TopK {
            k: 24,
            min_weight: 6.0,
        }
    }
}

/// A sparse set of candidate `(source element, target element)` pairs in
/// CSR (row-major) layout: for each source row, a sorted slice of target
/// column indices.
#[derive(Debug, Clone)]
pub struct CandidateSet {
    rows: usize,
    cols: usize,
    /// `offsets[r]..offsets[r+1]` indexes `targets` for row `r`.
    offsets: Vec<usize>,
    targets: Vec<u32>,
}

impl CandidateSet {
    /// Build from per-row candidate lists (each list must be sorted and
    /// deduplicated).
    fn from_rows(rows_lists: Vec<Vec<u32>>, cols: usize) -> Self {
        let rows = rows_lists.len();
        let mut offsets = Vec::with_capacity(rows + 1);
        let mut targets = Vec::with_capacity(rows_lists.iter().map(Vec::len).sum());
        offsets.push(0);
        for list in rows_lists {
            debug_assert!(list.windows(2).all(|w| w[0] < w[1]), "sorted + deduped");
            targets.extend(list);
            offsets.push(targets.len());
        }
        CandidateSet {
            rows,
            cols,
            offsets,
            targets,
        }
    }

    /// The complete cross product (every pair a candidate).
    pub fn exhaustive(rows: usize, cols: usize) -> Self {
        let all: Vec<u32> = (0..cols as u32).collect();
        CandidateSet::from_rows(vec![all; rows], cols)
    }

    /// Number of source rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of target columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of candidate pairs.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// True when no pair survived blocking.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Candidate target columns of one source row (sorted ascending).
    pub fn row(&self, r: usize) -> &[u32] {
        &self.targets[self.offsets[r]..self.offsets[r + 1]]
    }

    /// Is `(r, c)` a candidate pair?
    pub fn contains(&self, r: usize, c: usize) -> bool {
        r < self.rows && self.row(r).binary_search(&(c as u32)).is_ok()
    }

    /// Fraction of the cross product that survived blocking (1.0 for the
    /// exhaustive policy; 0.0 for a degenerate empty problem).
    pub fn density(&self) -> f64 {
        let full = self.rows * self.cols;
        if full == 0 {
            0.0
        } else {
            self.len() as f64 / full as f64
        }
    }
}

/// Inverted index from lexical features to posting lists of element indices,
/// built over one side's [`PreparedSchema`].
///
/// Features per element are the preparation's interned
/// [`crate::prepare::PreparedElement::block_features`] (building the index
/// re-tokenizes nothing and allocates no strings):
/// * distinct normalized name + documentation tokens (`corpus_ids`);
/// * `s:`-prefixed Soundex keys of the name tokens, so misspellings and
///   convention drift (`organisation`/`organization`) still collide;
/// * `a:`-prefixed acronym keys: every short raw name, and the acronym of
///   every multi-token name (`coi` ↔ `community_of_interest`).
#[derive(Debug)]
pub struct ElementTokenIndex {
    /// Interned feature id → sorted element indices containing it.
    postings: HashMap<TokenId, Vec<u32>>,
    /// Exact normalized-name key (the full `name_ids` sequence) → element
    /// indices bearing that name. Backs the exact-name rescue of candidate
    /// generation; building it here means a batch pays it once per schema,
    /// like every other posting.
    name_postings: HashMap<Vec<TokenId>, Vec<u32>>,
    /// The arena the feature ids point into (string-keyed lookups intern
    /// through it).
    arena: Arc<TokenArena>,
    /// Number of indexed elements.
    len: usize,
}

impl ElementTokenIndex {
    /// Index every element of a prepared schema by its interned blocking
    /// features.
    pub fn build(prepared: &PreparedSchema) -> Self {
        let mut postings: HashMap<TokenId, Vec<u32>> = HashMap::new();
        let mut name_postings: HashMap<Vec<TokenId>, Vec<u32>> = HashMap::new();
        for idx in 0..prepared.len() {
            let element = prepared.element(idx);
            for &feat in &element.block_features {
                postings.entry(feat).or_default().push(idx as u32);
            }
            if !element.name_ids.is_empty() {
                // Clone the key only on first sight of a name — duplicate
                // names (what this map exists for) just push.
                match name_postings.get_mut(element.name_ids.as_slice()) {
                    Some(list) => list.push(idx as u32),
                    None => {
                        name_postings.insert(element.name_ids.clone(), vec![idx as u32]);
                    }
                }
            }
        }
        ElementTokenIndex {
            postings,
            name_postings,
            arena: Arc::clone(prepared.arena()),
            len: prepared.len(),
        }
    }

    /// Elements whose full normalized name equals `name_ids` (empty when
    /// none, or when `name_ids` is empty).
    pub fn name_postings(&self, name_ids: &[TokenId]) -> &[u32] {
        self.name_postings.get(name_ids).map_or(&[], Vec::as_slice)
    }

    /// Number of indexed elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no elements are indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of distinct features.
    pub fn feature_count(&self) -> usize {
        self.postings.len()
    }

    /// Posting list of an interned feature (empty when absent).
    pub fn postings_by_id(&self, feature: TokenId) -> &[u32] {
        self.postings.get(&feature).map_or(&[], Vec::as_slice)
    }

    /// Posting list of a feature string (empty when absent). Convenience
    /// for inspection and tests; the probe loop uses ids.
    pub fn postings(&self, feature: &str) -> &[u32] {
        self.arena
            .lookup(feature)
            .map_or(&[], |id| self.postings_by_id(id))
    }

    /// IDF weight of a feature under this index's document frequency.
    pub fn weight(&self, feature: &str) -> f64 {
        idf_weight(self.len as f64, self.postings(feature).len() as f64)
    }
}

/// One direction of candidate generation: probe `index` (built over the
/// `to` side) with every element of the `from` side's interned blocking
/// features, returning per-`from`-element `(candidate, overlap weight)`
/// lists under `policy`. Features are walked in their prepared order
/// (lexicographic by resolved string), which keeps the float accumulation
/// order — and therefore every borderline policy decision — identical to
/// the historical string-keyed implementation.
fn probe_side(
    from: &PreparedSchema,
    index: &ElementTokenIndex,
    policy: &BlockingPolicy,
) -> Vec<Vec<(u32, f64)>> {
    let n_to = index.len();
    let mut acc: Vec<f64> = vec![0.0; n_to];
    let mut touched: Vec<u32> = Vec::new();
    let mut out: Vec<Vec<(u32, f64)>> = Vec::with_capacity(from.len());
    for idx in 0..from.len() {
        let feats = &from.element(idx).block_features;
        touched.clear();
        for &feat in feats {
            let posting = index.postings_by_id(feat);
            if posting.is_empty() {
                continue;
            }
            let w = idf_weight(n_to as f64, posting.len() as f64);
            for &t in posting {
                if acc[t as usize] == 0.0 {
                    touched.push(t);
                }
                acc[t as usize] += w;
            }
        }
        let mut kept: Vec<(u32, f64)> = match *policy {
            BlockingPolicy::Exhaustive => (0..n_to as u32).map(|t| (t, acc[t as usize])).collect(),
            BlockingPolicy::WeightedThreshold { min_weight } => {
                let mut kept: Vec<(u32, f64)> = touched
                    .iter()
                    .filter(|&&t| acc[t as usize] >= min_weight)
                    .map(|&t| (t, acc[t as usize]))
                    .collect();
                kept.sort_unstable_by_key(|&(t, _)| t);
                kept
            }
            BlockingPolicy::TopK { k, min_weight } => {
                let mut ranked: Vec<u32> = touched.clone();
                // Deterministic order: weight desc, column asc.
                ranked.sort_unstable_by(|&a, &b| {
                    acc[b as usize]
                        .partial_cmp(&acc[a as usize])
                        .expect("finite overlap weight")
                        .then(a.cmp(&b))
                });
                let mut kept: Vec<(u32, f64)> = ranked
                    .iter()
                    .enumerate()
                    .filter(|&(rank, &t)| rank < k || acc[t as usize] >= min_weight)
                    .map(|(_, &t)| (t, acc[t as usize]))
                    .collect();
                kept.sort_unstable_by_key(|&(t, _)| t);
                kept
            }
        };
        kept.dedup_by_key(|&mut (t, _)| t);
        for &t in &touched {
            acc[t as usize] = 0.0;
        }
        out.push(kept);
    }
    out
}

/// Overlap weight at which a candidate *container* pair also enqueues its
/// children's cross product. Structural propagation can lift a child pair
/// above the operating threshold on its parents' strength alone, so a child
/// whose own vocabulary shares nothing must still be scored when its
/// parents collide hard (`organization.width` ↔ `ORGANIZATION/WEIGHT`). The
/// bound keeps the rescue from exploding: only strongly-overlapping
/// container pairs (a rare-token name collision, not generic-vocabulary
/// noise) fan out to their children.
const CHILD_RESCUE_WEIGHT: f64 = 5.0;

/// Per container, at most this many strongest partners fan out to children.
/// A container has essentially one true counterpart; rescuing its few best
/// collisions covers propagation lift while keeping the fan-out linear in
/// the number of containers instead of quadratic.
const CHILD_RESCUE_PARTNERS: usize = 3;

/// Generate the candidate pair set for matching `source` against `target`
/// under `policy`.
///
/// Both directions are probed and unioned, then the set is closed
/// structurally:
/// * **exact-name rescue** — two elements whose normalized name token
///   sequences are equal (the `exact-name` voter's own equality test, so
///   `NM`/`name` and `Id`/`identifier` collide after abbreviation
///   expansion) are always candidates. Exact name equality is the
///   strongest single voter signal, but a ubiquitous name (`identifier`,
///   `name`) carries so little IDF weight that the top-k cap can drop the
///   true counterpart in a dense neighborhood of look-alikes; a hash join
///   on the interned token sequences recovers exactly those pairs at
///   `O(rows + cols + collisions)` cost;
/// * **child rescue** — a candidate pair of containers whose overlap weight
///   reaches [`CHILD_RESCUE_WEIGHT`] adds its children's cross product, so
///   pairs that only clear the operating threshold through their parents'
///   propagation blend are still scored;
/// * **parent closure** (transitive) — for every candidate `(s, t)` whose
///   elements both have parents, `(parent(s), parent(t))` is added, up to
///   the roots, keeping the Propagate stage's base reads scored.
pub fn generate_candidates(
    source: &Schema,
    target: &Schema,
    prepared_source: &PreparedSchema,
    prepared_target: &PreparedSchema,
    policy: &BlockingPolicy,
) -> CandidateSet {
    let rows = prepared_source.len();
    let cols = prepared_target.len();
    if rows == 0 || cols == 0 {
        return CandidateSet::from_rows(vec![Vec::new(); rows], cols);
    }
    if matches!(policy, BlockingPolicy::Exhaustive) {
        return CandidateSet::exhaustive(rows, cols);
    }
    // Per-pair index builds; a batch amortizes them via
    // [`generate_candidates_with`] instead.
    let source_index = ElementTokenIndex::build(prepared_source);
    let target_index = ElementTokenIndex::build(prepared_target);
    generate_candidates_with(
        source,
        target,
        prepared_source,
        prepared_target,
        &source_index,
        &target_index,
        policy,
    )
}

/// [`generate_candidates`] against pre-built per-schema token indices — the
/// batch planner's entry point, which indexes each of a batch's N schemata
/// once instead of once per pair per direction.
///
/// `source_index` / `target_index` must be built over exactly
/// `prepared_source` / `prepared_target`; the result is then bit-for-bit the
/// set [`generate_candidates`] produces (index construction is deterministic
/// per schema, so sharing one build across pairs changes nothing).
#[allow(clippy::too_many_arguments)]
pub fn generate_candidates_with(
    source: &Schema,
    target: &Schema,
    prepared_source: &PreparedSchema,
    prepared_target: &PreparedSchema,
    source_index: &ElementTokenIndex,
    target_index: &ElementTokenIndex,
    policy: &BlockingPolicy,
) -> CandidateSet {
    let rows = prepared_source.len();
    let cols = prepared_target.len();
    debug_assert_eq!(rows, source.len());
    debug_assert_eq!(cols, target.len());
    // Hard checks (cheap next to the probe): a stale or swapped index would
    // otherwise produce a plausible-but-wrong candidate set in release.
    assert_eq!(
        source_index.len(),
        rows,
        "source index does not match the prepared source schema"
    );
    assert_eq!(
        target_index.len(),
        cols,
        "target index does not match the prepared target schema"
    );
    if rows == 0 || cols == 0 {
        return CandidateSet::from_rows(vec![Vec::new(); rows], cols);
    }
    if matches!(policy, BlockingPolicy::Exhaustive) {
        return CandidateSet::exhaustive(rows, cols);
    }

    // Forward: probe the target index with source elements. Features come
    // pre-interned from the preparations, so the probe allocates no strings.
    let weighted = probe_side(prepared_source, target_index, policy);
    let mut per_row: Vec<Vec<u32>> = weighted
        .iter()
        .map(|list| list.iter().map(|&(t, _)| t).collect())
        .collect();
    let mut strong: Vec<(u32, u32, f64)> = weighted
        .iter()
        .enumerate()
        .flat_map(|(s, list)| {
            list.iter()
                .filter(|&&(_, w)| w >= CHILD_RESCUE_WEIGHT)
                .map(move |&(t, w)| (s as u32, t, w))
        })
        .collect();

    // Backward: probe the source index with target elements; transpose in.
    for (t, sources) in probe_side(prepared_target, source_index, policy)
        .into_iter()
        .enumerate()
    {
        for (s, w) in sources {
            per_row[s as usize].push(t as u32);
            if w >= CHILD_RESCUE_WEIGHT {
                strong.push((s, t as u32, w));
            }
        }
    }

    // Exact-name rescue: equal normalized name-token sequences (the
    // exact-name voter's equality test) are always candidates. Empty bags
    // excepted — the voter is neutral on those. The name postings live on
    // the prebuilt index, so a batch pays the map once per schema.
    for (s, list) in per_row.iter_mut().enumerate() {
        let ids = prepared_source.element(s).name_ids.as_slice();
        if !ids.is_empty() {
            list.extend(target_index.name_postings(ids).iter().copied());
        }
    }

    // Child rescue for strongly-overlapping container pairs, capped at each
    // container's strongest partners (both directions).
    strong.sort_unstable_by(|a, b| {
        (a.0, a.1)
            .cmp(&(b.0, b.1))
            .then(b.2.partial_cmp(&a.2).expect("finite"))
    });
    strong.dedup_by_key(|&mut (s, t, _)| (s, t));
    strong.sort_unstable_by(|a, b| {
        b.2.partial_cmp(&a.2)
            .expect("finite")
            .then((a.0, a.1).cmp(&(b.0, b.1)))
    });
    let mut source_fanout = vec![0usize; rows];
    let mut target_fanout = vec![0usize; cols];
    for (s, t, _) in strong {
        let (s, t) = (s as usize, t as usize);
        if source_fanout[s] >= CHILD_RESCUE_PARTNERS || target_fanout[t] >= CHILD_RESCUE_PARTNERS {
            continue;
        }
        let sc = &source.elements()[s].children;
        let tc = &target.elements()[t].children;
        if sc.is_empty() || tc.is_empty() {
            continue;
        }
        source_fanout[s] += 1;
        target_fanout[t] += 1;
        for &cs in sc {
            let list = &mut per_row[cs.index()];
            list.extend(tc.iter().map(|ct| ct.0));
        }
    }

    // Parent closure (transitive): parents of candidates are candidates.
    let source_parents: Vec<Option<u32>> = source
        .elements()
        .iter()
        .map(|e| e.parent.map(|p| p.0))
        .collect();
    let target_parents: Vec<Option<u32>> = target
        .elements()
        .iter()
        .map(|e| e.parent.map(|p| p.0))
        .collect();
    for list in &mut per_row {
        list.sort_unstable();
        list.dedup();
    }
    let mut frontier: Vec<(u32, u32)> = Vec::new();
    for (s, list) in per_row.iter().enumerate() {
        for &t in list {
            if let (Some(ps), Some(pt)) = (source_parents[s], target_parents[t as usize]) {
                frontier.push((ps, pt));
            }
        }
    }
    while let Some((s, t)) = frontier.pop() {
        let list = &mut per_row[s as usize];
        if !list.contains(&t) {
            list.push(t);
            if let (Some(ps), Some(pt)) = (source_parents[s as usize], target_parents[t as usize]) {
                frontier.push((ps, pt));
            }
        }
    }

    for list in &mut per_row {
        list.sort_unstable();
        list.dedup();
    }
    CandidateSet::from_rows(per_row, cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prepare::default_normalizer;
    use sm_schema::{DataType, Documentation, ElementKind, SchemaFormat, SchemaId};
    use sm_text::soundex::soundex;

    fn prepared(s: &Schema) -> PreparedSchema {
        PreparedSchema::build(s, default_normalizer())
    }

    fn fixture() -> (Schema, Schema) {
        let mut a = Schema::new(SchemaId(1), "S_A", SchemaFormat::Relational);
        let p = a.add_root("Person", ElementKind::Table, DataType::None);
        let pid = a
            .add_child(p, "person_id", ElementKind::Column, DataType::Integer)
            .unwrap();
        a.set_doc(pid, Documentation::embedded("unique person identifier"))
            .unwrap();
        a.add_child(p, "last_name", ElementKind::Column, DataType::varchar(40))
            .unwrap();
        let c = a.add_root("COI", ElementKind::Table, DataType::None);
        a.add_child(c, "member", ElementKind::Column, DataType::text())
            .unwrap();

        let mut b = Schema::new(SchemaId(2), "S_B", SchemaFormat::Xml);
        let p2 = b.add_root("PersonType", ElementKind::ComplexType, DataType::None);
        b.add_child(
            p2,
            "PersonIdentifier",
            ElementKind::XmlElement,
            DataType::Integer,
        )
        .unwrap();
        b.add_child(p2, "LastName", ElementKind::XmlElement, DataType::text())
            .unwrap();
        let c2 = b.add_root(
            "CommunityOfInterest",
            ElementKind::ComplexType,
            DataType::None,
        );
        b.add_child(c2, "MemberName", ElementKind::XmlElement, DataType::text())
            .unwrap();
        (a, b)
    }

    #[test]
    fn index_posts_name_doc_soundex_and_acronym_features() {
        let (a, _) = fixture();
        let pa = prepared(&a);
        let index = ElementTokenIndex::build(&pa);
        assert_eq!(index.len(), a.len());
        let person = a.find_by_name("person_id").unwrap();
        // Name token posting.
        assert!(index.postings("person").contains(&(person.0)));
        // Doc token posting ("unique" survives prose normalization).
        assert!(index.postings("uniqu").contains(&(person.0)));
        // Soundex key of a name token.
        assert!(!index
            .postings(&format!("s:{}", soundex("person")))
            .is_empty());
        // Short raw name indexed as an acronym key.
        let coi = a.find_by_name("COI").unwrap();
        assert!(index.postings("a:coi").contains(&(coi.0)));
    }

    #[test]
    fn rare_features_outweigh_common_ones() {
        let (a, _) = fixture();
        let index = ElementTokenIndex::build(&prepared(&a));
        // "person" appears in two elements, "member" in one.
        assert!(index.weight("member") > index.weight("person"));
        assert!(index.weight("absent-token") > index.weight("member"));
    }

    #[test]
    fn default_policy_finds_true_pairs_and_prunes() {
        let (a, b) = fixture();
        let (pa, pb) = (prepared(&a), prepared(&b));
        let cands = generate_candidates(&a, &b, &pa, &pb, &BlockingPolicy::default());
        let pid = a.find_by_name("person_id").unwrap();
        let pid2 = b.find_by_name("PersonIdentifier").unwrap();
        assert!(cands.contains(pid.index(), pid2.index()));
        let ln = a.find_by_name("last_name").unwrap();
        let ln2 = b.find_by_name("LastName").unwrap();
        assert!(cands.contains(ln.index(), ln2.index()));
        assert!(cands.len() <= a.len() * b.len());
    }

    #[test]
    fn acronym_key_blocks_coi_to_community_of_interest() {
        let (a, b) = fixture();
        let (pa, pb) = (prepared(&a), prepared(&b));
        // A tight threshold policy: only strong shared evidence survives;
        // the acronym key must be enough to rescue COI.
        let cands = generate_candidates(
            &a,
            &b,
            &pa,
            &pb,
            &BlockingPolicy::TopK {
                k: 1,
                min_weight: f64::INFINITY,
            },
        );
        let coi = a.find_by_name("COI").unwrap();
        let full = b.find_by_name("CommunityOfInterest").unwrap();
        assert!(cands.contains(coi.index(), full.index()));
    }

    #[test]
    fn exact_name_pairs_survive_any_cap() {
        // Dozens of elements all sharing the ubiquitous "identifier" token:
        // the IDF weight of the collision is tiny and the top-k cap is 1,
        // but the one *exactly equal* name must still be a candidate.
        let mut a = Schema::new(SchemaId(1), "A", SchemaFormat::Generic);
        let ra = a.add_root("Root", ElementKind::Group, DataType::None);
        a.add_child(ra, "identifier", ElementKind::Column, DataType::Integer)
            .unwrap();
        for i in 0..30 {
            a.add_child(
                ra,
                format!("thing_{i}_identifier"),
                ElementKind::Column,
                DataType::Integer,
            )
            .unwrap();
        }
        let mut b = Schema::new(SchemaId(2), "B", SchemaFormat::Generic);
        let rb = b.add_root("Base", ElementKind::Group, DataType::None);
        let target = b
            .add_child(rb, "identifier", ElementKind::Column, DataType::Integer)
            .unwrap();
        for i in 0..30 {
            b.add_child(
                rb,
                format!("item_{i}_identifier"),
                ElementKind::Column,
                DataType::Integer,
            )
            .unwrap();
        }
        let (pa, pb) = (prepared(&a), prepared(&b));
        let cands = generate_candidates(
            &a,
            &b,
            &pa,
            &pb,
            &BlockingPolicy::TopK {
                k: 1,
                min_weight: f64::INFINITY,
            },
        );
        let source = a.find_by_name("identifier").unwrap();
        assert!(
            cands.contains(source.index(), target.index()),
            "exact-name pair must survive the cap"
        );
    }

    #[test]
    fn parents_of_candidates_are_candidates() {
        let (a, b) = fixture();
        let (pa, pb) = (prepared(&a), prepared(&b));
        let cands = generate_candidates(&a, &b, &pa, &pb, &BlockingPolicy::default());
        for s in 0..cands.rows() {
            for &t in cands.row(s) {
                let ps = a.elements()[s].parent;
                let pt = b.elements()[t as usize].parent;
                if let (Some(ps), Some(pt)) = (ps, pt) {
                    assert!(
                        cands.contains(ps.index(), pt.index()),
                        "parent of candidate ({s},{t}) missing"
                    );
                }
            }
        }
    }

    #[test]
    fn exhaustive_policy_is_the_full_cross_product() {
        let (a, b) = fixture();
        let (pa, pb) = (prepared(&a), prepared(&b));
        let cands = generate_candidates(&a, &b, &pa, &pb, &BlockingPolicy::Exhaustive);
        assert_eq!(cands.len(), a.len() * b.len());
        assert!((cands.density() - 1.0).abs() < 1e-12);
        for s in 0..a.len() {
            assert_eq!(cands.row(s).len(), b.len());
        }
    }

    #[test]
    fn weighted_threshold_at_infinity_keeps_exactly_the_name_rescue_closure() {
        let (a, b) = fixture();
        let (pa, pb) = (prepared(&a), prepared(&b));
        let cands = generate_candidates(
            &a,
            &b,
            &pa,
            &pb,
            &BlockingPolicy::WeightedThreshold {
                min_weight: f64::INFINITY,
            },
        );
        // Probing keeps nothing at infinite weight; the candidate set is
        // exactly the exact-name rescue (equal normalized name tokens, e.g.
        // "last_name" ≡ "LastName") closed under parenthood.
        let mut expected: std::collections::BTreeSet<(usize, usize)> =
            std::collections::BTreeSet::new();
        for s in 0..a.len() {
            for t in 0..b.len() {
                if !pa.element(s).name_ids.is_empty()
                    && pa.element(s).name_ids == pb.element(t).name_ids
                {
                    let (mut sp, mut tp) = (Some(s), Some(t));
                    while let (Some(cs), Some(ct)) = (sp, tp) {
                        expected.insert((cs, ct));
                        sp = a.elements()[cs].parent.map(|p| p.index());
                        tp = b.elements()[ct].parent.map(|p| p.index());
                    }
                }
            }
        }
        let got: std::collections::BTreeSet<(usize, usize)> = (0..cands.rows())
            .flat_map(|s| cands.row(s).iter().map(move |&t| (s, t as usize)))
            .collect();
        assert_eq!(got, expected);
        assert!(!got.is_empty(), "fixture has exact-name pairs");
        assert!(cands.density() < 1.0, "still prunes almost everything");
    }

    #[test]
    fn empty_sides_are_safe() {
        let (a, _) = fixture();
        let empty = Schema::new(SchemaId(9), "E", SchemaFormat::Generic);
        let (pa, pe) = (prepared(&a), prepared(&empty));
        let cands = generate_candidates(&a, &empty, &pa, &pe, &BlockingPolicy::default());
        assert!(cands.is_empty());
        assert_eq!(cands.rows(), a.len());
        assert_eq!(cands.cols(), 0);
    }
}

//! Token-blocking index: sparse candidate generation for the match pipeline.
//!
//! The dense pipeline scores every `|S1| × |S2|` pair — ~10^6 voter-panel
//! invocations at the paper's 1378×784 scale, 98%+ of the hot path's wall
//! clock. But true correspondences almost always share *some* cheap lexical
//! evidence: a normalized name token, a documentation token, a phonetic
//! (Soundex) key, or an acronym. This module exploits that with the standard
//! blocking technique of the schema/entity-matching literature the paper
//! builds on:
//!
//! 1. build an [`ElementTokenIndex`] — an inverted index from features of
//!    one schema's [`PreparedSchema`] (name + documentation tokens, Soundex
//!    keys of name tokens, acronym keys) to posting lists of element
//!    indices, IDF-weighted so rare features count for more;
//! 2. probe it with the other schema's elements, accumulating per-pair
//!    feature-overlap weights over the posting lists;
//! 3. let a [`BlockingPolicy`] turn the weights into a [`CandidateSet`] — a
//!    sparse row-major (CSR) pair set the pipeline then scores instead of
//!    the full cross product.
//!
//! # Layout: flat CSR, weights precomputed
//!
//! The index is a *flat* compressed-sparse-row store: one sorted feature-id
//! table, one contiguous postings arena sliced by CSR offsets, and one
//! parallel `f64` table of **IDF weights computed once at build** — a probe
//! does a binary search over contiguous `u32`s and reads its weight next to
//! the posting slice, instead of hashing a `TokenId` into a
//! `HashMap<TokenId, Vec<u32>>` and recomputing `ln((n+1)/(df+1))+1` per
//! feature per probing element. The exact-name table is flattened the same
//! way (sorted distinct name-token sequences + CSR postings). Weights are
//! per-feature functions of `(n, df)` only, so precomputation changes no
//! bit of any accumulated overlap: each probe row still adds the exact same
//! `f64` values in the exact same feature order as the historical map-keyed
//! implementation (retained, verbatim, in [`reference`] and pinned against
//! this module in `tests/csr_index_pin.rs`).
//!
//! # Parallelism
//!
//! Index build and probing both run on the persistent
//! [`crate::exec::Executor`] when the caller provides one
//! ([`generate_candidates_exec`] / [`ElementTokenIndex::build_parallel`];
//! the plain entry points run the same code inline). Build fans element
//! chunks out to lanes and merges their `(feature, element)` pair lists in
//! deterministic chunk order; probing fans chunks of *both* directions out
//! through one shared claim queue, so the source→target and target→source
//! probes execute as concurrent lanes and each lane reuses one
//! accumulator/scratch block across every element it claims. Results are
//! assembled in element order, so the candidate set is bit-identical at
//! every lane count.
//!
//! Candidate generation runs in both directions (source→target and
//! target→source) and the results are unioned, so an element with an
//! unusually generic vocabulary on one side can still be rescued by the
//! other side's view of it. Finally the set is closed under parenthood:
//! **parents of a candidate pair are candidates themselves**, which keeps
//! the Propagate stage semantics-preserving (a candidate's structural blend
//! reads its parents' *scored* base value, never an unscored zero) and
//! implicitly recovers container pairs whose own names disagree but whose
//! children overlap — exactly the pairs the `StructureVoter` exists for.
//! The union, child-rescue, and parent-closure passes all operate on one
//! flat packed pair list (sorted `(row << 32) | col` keys) instead of
//! per-row `Vec<Vec<u32>>` buffers: closure membership is a merge walk over
//! sorted runs, not a linear `contains` per frontier pair.

use crate::exec::Executor;
use crate::prepare::PreparedSchema;
use sm_schema::Schema;
use sm_text::intern::{TokenArena, TokenId};
use std::ops::Range;
use std::sync::{Arc, Mutex};

/// Smoothed IDF weight of a feature present in `df` of `n` documents — the
/// same shape the repository search index uses, so "rare ⇒ discriminating"
/// means the same thing at both element and schema granularity. Public so
/// the batch planner's overlap estimator (and the enterprise repository
/// index) weigh schema-level tokens with the identical formula; note
/// `idf_weight(n, df) >= 1.0` whenever `df <= n`, which is what lets a
/// zero overlap bound mean "zero shared tokens" exactly.
pub fn idf_weight(n: f64, df: f64) -> f64 {
    ((n + 1.0) / (df + 1.0)).ln() + 1.0
}

/// Flat CSR posting arrays assembled from *sorted* packed
/// `(key << 32) | slot` pairs: distinct keys ascending, `offsets[k]..[k+1]`
/// slicing `postings` (slots ascending per key), and
/// `weights[k] = ln((n_docs+1)/(df+1)) + 1` — the one smoothed-IDF formula
/// shared by the element-level blocking index and the repository index, so
/// precomputed weight bits are identical wherever the layout is used.
pub fn csr_from_sorted_pairs(pairs: &[u64], n_docs: f64) -> CsrPostings {
    debug_assert!(pairs.windows(2).all(|w| w[0] <= w[1]), "pairs sorted");
    let mut keys: Vec<u32> = Vec::new();
    let mut offsets: Vec<u32> = vec![0];
    let mut postings: Vec<u32> = Vec::with_capacity(pairs.len());
    let mut weights: Vec<f64> = Vec::new();
    let mut i = 0usize;
    while i < pairs.len() {
        let key = (pairs[i] >> 32) as u32;
        let start = i;
        while i < pairs.len() && (pairs[i] >> 32) as u32 == key {
            postings.push((pairs[i] & 0xffff_ffff) as u32);
            i += 1;
        }
        keys.push(key);
        offsets.push(postings.len() as u32);
        weights.push(idf_weight(n_docs, (i - start) as f64));
    }
    CsrPostings {
        keys,
        offsets,
        postings,
        weights,
    }
}

/// Output of [`csr_from_sorted_pairs`]: one flat CSR posting store with its
/// precomputed per-key IDF weights.
#[derive(Debug)]
pub struct CsrPostings {
    /// Distinct keys, ascending.
    pub keys: Vec<u32>,
    /// `offsets[k]..offsets[k+1]` slices `postings` for `keys[k]`.
    pub offsets: Vec<u32>,
    /// Contiguous posting arena: ascending slots per key.
    pub postings: Vec<u32>,
    /// Precomputed smoothed IDF weight per key.
    pub weights: Vec<f64>,
}

/// How aggressively to prune the candidate space. All policies operate on
/// the IDF-weighted feature-overlap accumulated over the inverted index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BlockingPolicy {
    /// Keep, for every element, its `k` best-overlapping opposites (both
    /// directions, unioned), plus *every* pair whose overlap weight reaches
    /// `min_weight` — so dense neighborhoods are capped at `k` while pairs
    /// with strong shared evidence are never dropped by the cap.
    TopK {
        /// Candidates kept per element (per direction).
        k: usize,
        /// Overlap weight at which a pair is kept even beyond `k`.
        min_weight: f64,
    },
    /// Keep every pair whose accumulated overlap weight reaches
    /// `min_weight`, with no per-element cap.
    WeightedThreshold {
        /// Minimum overlap weight for a pair to become a candidate.
        min_weight: f64,
    },
    /// Every pair is a candidate — the fallback that makes `run_blocked`
    /// reproduce the dense pipeline byte for byte.
    Exhaustive,
}

impl Default for BlockingPolicy {
    /// The default operating point: top-24 per element, with pairs kept
    /// beyond the cap only on a genuinely rare feature collision (smoothed
    /// IDF weight 6 ≈ one feature shared by < 1% of elements; ubiquitous
    /// boilerplate tokens weigh ≈ 1 each and never add up to it). Tuned on
    /// the synthetic paper-scale workload: 100% of dense above-threshold
    /// pairs survive while a few percent of the cross product is scored.
    fn default() -> Self {
        BlockingPolicy::TopK {
            k: 24,
            min_weight: 6.0,
        }
    }
}

/// A sparse set of candidate `(source element, target element)` pairs in
/// CSR (row-major) layout: for each source row, a sorted slice of target
/// column indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateSet {
    rows: usize,
    cols: usize,
    /// `offsets[r]..offsets[r+1]` indexes `targets` for row `r`.
    offsets: Vec<usize>,
    targets: Vec<u32>,
}

impl CandidateSet {
    /// Build from per-row candidate lists (each list must be sorted and
    /// deduplicated). Used by the [`reference`] implementation and tests;
    /// the CSR path assembles from a flat sorted pair list instead.
    pub(crate) fn from_rows(rows_lists: Vec<Vec<u32>>, cols: usize) -> Self {
        let rows = rows_lists.len();
        let mut offsets = Vec::with_capacity(rows + 1);
        let mut targets = Vec::with_capacity(rows_lists.iter().map(Vec::len).sum());
        offsets.push(0);
        for list in rows_lists {
            debug_assert!(list.windows(2).all(|w| w[0] < w[1]), "sorted + deduped");
            targets.extend(list);
            offsets.push(targets.len());
        }
        CandidateSet {
            rows,
            cols,
            offsets,
            targets,
        }
    }

    /// Build from a sorted, deduplicated flat list of packed
    /// `(row << 32) | col` pairs — the zero-copy output of the flat
    /// union/closure passes.
    fn from_sorted_pairs(rows: usize, cols: usize, pairs: &[u64]) -> Self {
        debug_assert!(pairs.windows(2).all(|w| w[0] < w[1]), "sorted + deduped");
        let mut offsets = Vec::with_capacity(rows + 1);
        let mut targets = Vec::with_capacity(pairs.len());
        offsets.push(0);
        let mut row = 0usize;
        for &p in pairs {
            let (r, c) = ((p >> 32) as usize, (p & 0xffff_ffff) as u32);
            while row < r {
                offsets.push(targets.len());
                row += 1;
            }
            targets.push(c);
        }
        while row < rows {
            offsets.push(targets.len());
            row += 1;
        }
        CandidateSet {
            rows,
            cols,
            offsets,
            targets,
        }
    }

    /// A set with no candidates at all.
    fn empty(rows: usize, cols: usize) -> Self {
        CandidateSet {
            rows,
            cols,
            offsets: vec![0; rows + 1],
            targets: Vec::new(),
        }
    }

    /// The complete cross product (every pair a candidate).
    pub fn exhaustive(rows: usize, cols: usize) -> Self {
        let mut offsets = Vec::with_capacity(rows + 1);
        let mut targets = Vec::with_capacity(rows * cols);
        offsets.push(0);
        for _ in 0..rows {
            targets.extend(0..cols as u32);
            offsets.push(targets.len());
        }
        CandidateSet {
            rows,
            cols,
            offsets,
            targets,
        }
    }

    /// Number of source rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of target columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of candidate pairs.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// True when no pair survived blocking.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Candidate target columns of one source row (sorted ascending).
    ///
    /// This slice is the unit of work for the sparse Score stage: the
    /// pipeline hands it to the score cascade's tier-1 row kernel (or the
    /// reference per-pair loop) together with the row's matrix slice, so
    /// the CSR layout is consumed directly with no per-pair indirection.
    pub fn row(&self, r: usize) -> &[u32] {
        &self.targets[self.offsets[r]..self.offsets[r + 1]]
    }

    /// Is `(r, c)` a candidate pair?
    pub fn contains(&self, r: usize, c: usize) -> bool {
        r < self.rows && self.row(r).binary_search(&(c as u32)).is_ok()
    }

    /// Fraction of the cross product that survived blocking (1.0 for the
    /// exhaustive policy; 0.0 for a degenerate empty problem).
    pub fn density(&self) -> f64 {
        let full = self.rows * self.cols;
        if full == 0 {
            0.0
        } else {
            self.len() as f64 / full as f64
        }
    }
}

/// Elements per build/probe chunk: small enough that lanes load-balance,
/// large enough that per-chunk bookkeeping (one queue claim, one result
/// push) is noise next to the posting walks inside.
const CHUNK_ELEMENTS: usize = 64;

/// Run `f` over `chunk`-sized ranges of `0..n`, returning the chunk outputs
/// in chunk order. With `Some((exec, parallelism))` and more than one chunk,
/// ranges are claimed as [`Executor::run_map`] items; otherwise the loop
/// runs inline on the caller (no executor required — tests and the plain
/// entry points take this path). Shared with the repository-level index
/// (`sm_enterprise::index`), whose parallel build has the same
/// deterministic chunk-merge shape.
pub fn run_chunked<T: Send>(
    par: Option<(&Executor, usize)>,
    n: usize,
    chunk: usize,
    f: impl Fn(usize, Range<usize>) -> T + Sync,
) -> Vec<T> {
    let ranges: Vec<Range<usize>> = (0..n)
        .step_by(chunk.max(1))
        .map(|start| start..(start + chunk).min(n))
        .collect();
    match par {
        Some((exec, parallelism)) if parallelism > 1 && ranges.len() > 1 => {
            exec.run_map(parallelism, &ranges, |index, range| f(index, range.clone()))
        }
        _ => ranges
            .into_iter()
            .enumerate()
            .map(|(index, range)| f(index, range))
            .collect(),
    }
}

/// Serving-layer execution controls threaded through candidate generation:
/// an optional helper-lane budget (class fair share) and an optional job
/// token (cooperative cancellation at chunk boundaries). The default —
/// both `None` — is exactly the historical unbudgeted, uncancellable
/// behavior.
#[derive(Clone, Copy, Default)]
pub struct GovernedExec<'a> {
    /// Helper lanes are claimed against this budget when set.
    pub budget: Option<&'a crate::exec::LaneBudget>,
    /// Checked at probe-chunk boundaries when set.
    pub token: Option<&'a crate::serve::JobToken>,
}

/// Inverted index from lexical features to posting lists of element indices,
/// built over one side's [`PreparedSchema`] — flat CSR layout with the IDF
/// weight table precomputed at build (see the module docs).
///
/// Features per element are the preparation's interned
/// [`crate::prepare::PreparedElement::block_features`] (building the index
/// re-tokenizes nothing and allocates no strings):
/// * distinct normalized name + documentation tokens (`corpus_ids`);
/// * `s:`-prefixed Soundex keys of the name tokens, so misspellings and
///   convention drift (`organisation`/`organization`) still collide;
/// * `a:`-prefixed acronym keys: every short raw name, and the acronym of
///   every multi-token name (`coi` ↔ `community_of_interest`).
#[derive(Debug)]
pub struct ElementTokenIndex {
    /// Distinct feature ids, ascending — the binary-search probe table.
    features: Vec<TokenId>,
    /// `offsets[f]..offsets[f+1]` slices `postings` for `features[f]`.
    offsets: Vec<u32>,
    /// Contiguous posting arena: ascending element indices per feature.
    postings: Vec<u32>,
    /// Precomputed IDF weight of `features[f]` (`idf_weight(len, df)`,
    /// computed once here instead of per probe per feature).
    weights: Vec<f64>,
    /// Flattened exact-name table: `name_key_offsets[k]..[k+1]` slices
    /// `name_tokens` into the `k`-th distinct normalized-name token
    /// sequence; keys ascend in `TokenId`-lexicographic sequence order.
    name_key_offsets: Vec<u32>,
    name_tokens: Vec<TokenId>,
    /// `name_post_offsets[k]..[k+1]` slices `name_posts`: ascending element
    /// indices bearing the `k`-th name key. Backs the exact-name rescue;
    /// building it here means a batch pays it once per schema.
    name_post_offsets: Vec<u32>,
    name_posts: Vec<u32>,
    /// The arena the feature ids point into (string-keyed lookups intern
    /// through it).
    arena: Arc<TokenArena>,
    /// Number of indexed elements.
    len: usize,
}

impl ElementTokenIndex {
    /// Index every element of a prepared schema by its interned blocking
    /// features, inline on the calling thread.
    pub fn build(prepared: &PreparedSchema) -> Self {
        Self::build_opt(prepared, None)
    }

    /// [`Self::build`] with element chunks fanned out across up to
    /// `parallelism` executor lanes. The per-chunk `(feature, element)`
    /// pair lists are merged in chunk order before the sort that lays out
    /// the CSR arena, so the result is bit-identical to the inline build at
    /// every lane count.
    pub fn build_parallel(prepared: &PreparedSchema, exec: &Executor, parallelism: usize) -> Self {
        Self::build_opt(prepared, Some((exec, parallelism)))
    }

    fn build_opt(prepared: &PreparedSchema, par: Option<(&Executor, usize)>) -> Self {
        let n = prepared.len();
        let _span = crate::obs::span(crate::obs::SpanKind::IndexBuild, n as u64);

        // Phase 1 (parallel): per element chunk, emit packed
        // `(feature << 32) | element` pairs. Chunks merge in chunk order,
        // i.e. element order — deterministic at any lane count.
        let chunk_pairs = run_chunked(par, n, CHUNK_ELEMENTS, |_, range| {
            let mut out: Vec<u64> = Vec::new();
            for idx in range {
                for &feat in prepared.block_features_of(idx) {
                    out.push((u64::from(feat.0) << 32) | idx as u64);
                }
            }
            out
        });
        let mut pairs: Vec<u64> = Vec::with_capacity(chunk_pairs.iter().map(Vec::len).sum());
        for c in chunk_pairs {
            pairs.extend(c);
        }
        // Feature-major, element-ascending: exactly the CSR layout order.
        // Features are distinct per element, so there are no duplicates.
        pairs.sort_unstable();
        let csr = csr_from_sorted_pairs(&pairs, n as f64);
        let features: Vec<TokenId> = csr.keys.into_iter().map(TokenId).collect();
        let (offsets, postings, weights) = (csr.offsets, csr.postings, csr.weights);

        // Phase 2 (serial; cheap next to the postings sort): the flattened
        // exact-name table. Elements sort by (name sequence, element), so
        // groups are contiguous and each group's postings ascend.
        let mut named: Vec<u32> = (0..n as u32)
            .filter(|&idx| !prepared.element(idx as usize).name_ids.is_empty())
            .collect();
        named.sort_unstable_by(|&a, &b| {
            prepared
                .element(a as usize)
                .name_ids
                .cmp(&prepared.element(b as usize).name_ids)
                .then(a.cmp(&b))
        });
        let mut name_key_offsets: Vec<u32> = vec![0];
        let mut name_tokens: Vec<TokenId> = Vec::new();
        let mut name_post_offsets: Vec<u32> = vec![0];
        let mut name_posts: Vec<u32> = Vec::with_capacity(named.len());
        let mut j = 0usize;
        while j < named.len() {
            let key = prepared.element(named[j] as usize).name_ids.as_slice();
            name_tokens.extend_from_slice(key);
            name_key_offsets.push(name_tokens.len() as u32);
            while j < named.len() && prepared.element(named[j] as usize).name_ids == key {
                name_posts.push(named[j]);
                j += 1;
            }
            name_post_offsets.push(name_posts.len() as u32);
        }

        ElementTokenIndex {
            features,
            offsets,
            postings,
            weights,
            name_key_offsets,
            name_tokens,
            name_post_offsets,
            name_posts,
            arena: Arc::clone(prepared.arena()),
            len: n,
        }
    }

    /// Slot of a feature in the sorted table, if indexed.
    #[inline]
    fn feature_slot(&self, feature: TokenId) -> Option<usize> {
        self.features.binary_search(&feature).ok()
    }

    /// Posting slice and precomputed IDF weight of a feature — the probe
    /// loop's single lookup (`None` when the feature is absent).
    #[inline]
    pub fn probe_feature(&self, feature: TokenId) -> Option<(&[u32], f64)> {
        let slot = self.feature_slot(feature)?;
        let range = self.offsets[slot] as usize..self.offsets[slot + 1] as usize;
        Some((&self.postings[range], self.weights[slot]))
    }

    /// The `k`-th distinct name key (sorted ascending by token sequence).
    #[inline]
    fn name_key(&self, k: usize) -> &[TokenId] {
        &self.name_tokens[self.name_key_offsets[k] as usize..self.name_key_offsets[k + 1] as usize]
    }

    /// Elements whose full normalized name equals `name_ids` (empty when
    /// none, or when `name_ids` is empty).
    pub fn name_postings(&self, name_ids: &[TokenId]) -> &[u32] {
        if name_ids.is_empty() {
            return &[];
        }
        let n_keys = self.name_key_offsets.len() - 1;
        let at = {
            let (mut lo, mut hi) = (0usize, n_keys);
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                if self.name_key(mid) < name_ids {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            lo
        };
        if at < n_keys && self.name_key(at) == name_ids {
            &self.name_posts
                [self.name_post_offsets[at] as usize..self.name_post_offsets[at + 1] as usize]
        } else {
            &[]
        }
    }

    /// Number of indexed elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no elements are indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of distinct features.
    pub fn feature_count(&self) -> usize {
        self.features.len()
    }

    /// Posting list of an interned feature (empty when absent).
    pub fn postings_by_id(&self, feature: TokenId) -> &[u32] {
        self.probe_feature(feature)
            .map_or(&[], |(posting, _)| posting)
    }

    /// Posting list of a feature string (empty when absent). Convenience
    /// for inspection and tests; the probe loop uses ids.
    pub fn postings(&self, feature: &str) -> &[u32] {
        self.arena
            .lookup(feature)
            .map_or(&[], |id| self.postings_by_id(id))
    }

    /// IDF weight of an interned feature under this index's document
    /// frequency — the precomputed table entry, or the `df = 0` weight for
    /// features absent from every indexed element.
    pub fn weight_by_id(&self, feature: TokenId) -> f64 {
        self.feature_slot(feature).map_or_else(
            || idf_weight(self.len as f64, 0.0),
            |slot| self.weights[slot],
        )
    }

    /// IDF weight of a feature under this index's document frequency.
    pub fn weight(&self, feature: &str) -> f64 {
        self.arena.lookup(feature).map_or_else(
            || idf_weight(self.len as f64, 0.0),
            |id| self.weight_by_id(id),
        )
    }

    /// Probe one element's features under `policy`, returning its kept
    /// `(candidate, overlap weight)` list — the per-row kernel of candidate
    /// generation, exposed for probe micro-benches and custom drivers. The
    /// result lives in `scratch` and is overwritten by the next call;
    /// `scratch` must have been sized for at least [`Self::len`] candidates.
    pub fn probe_row<'s>(
        &self,
        feats: &[TokenId],
        policy: &BlockingPolicy,
        scratch: &'s mut ProbeScratch,
    ) -> &'s [(u32, f64)] {
        assert!(scratch.acc.len() >= self.len, "scratch smaller than index");
        probe_element(feats, self, policy, scratch);
        &scratch.kept
    }
}

/// One side's probe output in CSR form: per probing element, a slice of
/// `(candidate, overlap weight)` entries.
struct ProbeRows {
    offsets: Vec<u32>,
    entries: Vec<(u32, f64)>,
}

impl ProbeRows {
    #[inline]
    fn row(&self, r: usize) -> &[(u32, f64)] {
        &self.entries[self.offsets[r] as usize..self.offsets[r + 1] as usize]
    }
}

/// Lane-owned probe scratch, reused across every element the lane claims —
/// no per-pair (or per-element) allocation churn. Public so callers (and
/// the probe micro-benches) can drive [`ElementTokenIndex::probe_row`]
/// without paying an allocation per row.
#[derive(Debug)]
pub struct ProbeScratch {
    /// Per-candidate accumulated overlap weight (reset via `touched`).
    acc: Vec<f64>,
    /// Candidates touched by the current element, in first-touch order.
    touched: Vec<u32>,
    /// Ranking buffer for the top-k policy.
    ranked: Vec<u32>,
    /// The current element's kept candidates before they join the chunk
    /// output.
    kept: Vec<(u32, f64)>,
    /// Rows probed through this scratch since the last flush — accumulated
    /// locally so the posting hot loop never touches a process-wide atomic.
    rows_probed: u64,
    /// Posting-list entries walked since the last flush.
    postings_touched: u64,
}

impl ProbeScratch {
    /// Scratch able to probe any index of at most `max_candidates` elements.
    pub fn new(max_candidates: usize) -> Self {
        ProbeScratch {
            acc: vec![0.0; max_candidates],
            touched: Vec::new(),
            ranked: Vec::new(),
            kept: Vec::new(),
            rows_probed: 0,
            postings_touched: 0,
        }
    }

    /// Flush the locally accumulated probe counters into the process-wide
    /// [`crate::obs`] registry (`probe.rows` / `probe.postings`) and zero
    /// them. Called once per lane by the pipeline's probe pass; custom
    /// `probe_row` drivers may call it at whatever granularity they like.
    pub fn flush_probe_counters(&mut self) {
        crate::obs::add(crate::obs::Counter::ProbeRows, self.rows_probed);
        crate::obs::add(crate::obs::Counter::ProbePostings, self.postings_touched);
        self.rows_probed = 0;
        self.postings_touched = 0;
    }
}

/// Probe one element's features against `index`, applying `policy` into
/// `scratch.kept`. The accumulation order (features in prepared order,
/// postings ascending) and every policy decision are exactly the historical
/// [`reference`] implementation's; only the per-feature weight lookup moved
/// from a recomputed `ln` to the precomputed table.
fn probe_element(
    feats: &[TokenId],
    index: &ElementTokenIndex,
    policy: &BlockingPolicy,
    scratch: &mut ProbeScratch,
) {
    scratch.rows_probed += 1;
    let acc = &mut scratch.acc;
    let touched = &mut scratch.touched;
    touched.clear();
    for &feat in feats {
        let Some((posting, w)) = index.probe_feature(feat) else {
            continue;
        };
        scratch.postings_touched += posting.len() as u64;
        for &t in posting {
            if acc[t as usize] == 0.0 {
                touched.push(t);
            }
            acc[t as usize] += w;
        }
    }
    let kept = &mut scratch.kept;
    kept.clear();
    match *policy {
        BlockingPolicy::Exhaustive => {
            kept.extend((0..index.len() as u32).map(|t| (t, acc[t as usize])));
        }
        BlockingPolicy::WeightedThreshold { min_weight } => {
            kept.extend(
                touched
                    .iter()
                    .filter(|&&t| acc[t as usize] >= min_weight)
                    .map(|&t| (t, acc[t as usize])),
            );
            kept.sort_unstable_by_key(|&(t, _)| t);
        }
        BlockingPolicy::TopK { k, min_weight } => {
            let ranked = &mut scratch.ranked;
            ranked.clear();
            ranked.extend_from_slice(touched);
            // Deterministic rank order: weight desc, column asc. The
            // reference sorts the whole buffer; selecting the k-th pivot
            // partitions the identical total order, so the kept *set* —
            // ranks below k, plus everything at or above `min_weight` — is
            // unchanged while the cost drops from O(m log m) to O(m).
            let by_rank = |&a: &u32, &b: &u32| {
                acc[b as usize]
                    .partial_cmp(&acc[a as usize])
                    .expect("finite overlap weight")
                    .then(a.cmp(&b))
            };
            if ranked.len() > k {
                if k > 0 {
                    ranked.select_nth_unstable_by(k - 1, by_rank);
                }
                kept.extend(ranked[..k].iter().map(|&t| (t, acc[t as usize])));
                kept.extend(
                    ranked[k..]
                        .iter()
                        .filter(|&&t| acc[t as usize] >= min_weight)
                        .map(|&t| (t, acc[t as usize])),
                );
            } else {
                kept.extend(ranked.iter().map(|&t| (t, acc[t as usize])));
            }
            kept.sort_unstable_by_key(|&(t, _)| t);
        }
    }
    for &t in touched.iter() {
        acc[t as usize] = 0.0;
    }
}

/// Both probe directions — source elements against `target_index` and
/// target elements against `source_index` — as chunks fed through one
/// shared claim queue, so the directions run as concurrent executor lanes
/// and a lane finishing one direction's chunks immediately steals the
/// other's. Each lane owns one [`ProbeScratch`], reused across all its
/// claims. Outputs are stitched per direction in element order:
/// bit-identical at any lane count.
#[allow(clippy::too_many_arguments)]
fn probe_sides(
    prepared_source: &PreparedSchema,
    prepared_target: &PreparedSchema,
    source_index: &ElementTokenIndex,
    target_index: &ElementTokenIndex,
    policy: &BlockingPolicy,
    par: Option<(&Executor, usize)>,
    gov: GovernedExec<'_>,
) -> (ProbeRows, ProbeRows) {
    let rows = prepared_source.len();
    let cols = prepared_target.len();
    struct ChunkDesc {
        /// 0 = forward (source→target index), 1 = backward.
        dir: usize,
        range: Range<usize>,
    }
    struct ChunkOut {
        counts: Vec<u32>,
        entries: Vec<(u32, f64)>,
    }
    let mut descs: Vec<ChunkDesc> = Vec::new();
    for start in (0..rows).step_by(CHUNK_ELEMENTS) {
        descs.push(ChunkDesc {
            dir: 0,
            range: start..(start + CHUNK_ELEMENTS).min(rows),
        });
    }
    for start in (0..cols).step_by(CHUNK_ELEMENTS) {
        descs.push(ChunkDesc {
            dir: 1,
            range: start..(start + CHUNK_ELEMENTS).min(cols),
        });
    }

    let run_chunk = |desc: &ChunkDesc, scratch: &mut ProbeScratch| -> ChunkOut {
        let _chunk = crate::obs::span(crate::obs::SpanKind::ProbeChunk, desc.range.len() as u64);
        let (from, index) = if desc.dir == 0 {
            (prepared_source, target_index)
        } else {
            (prepared_target, source_index)
        };
        let mut out = ChunkOut {
            counts: Vec::with_capacity(desc.range.len()),
            entries: Vec::new(),
        };
        for idx in desc.range.clone() {
            probe_element(from.block_features_of(idx), index, policy, scratch);
            out.counts.push(scratch.kept.len() as u32);
            out.entries.extend_from_slice(&scratch.kept);
        }
        out
    };

    let outs: Vec<ChunkOut> = match par {
        Some((exec, parallelism)) if parallelism > 1 && descs.len() > 1 => {
            let done: Mutex<Vec<(usize, ChunkOut)>> = Mutex::new(Vec::with_capacity(descs.len()));
            let queue = Mutex::new(descs.iter().enumerate());
            exec.run_lanes_budgeted(parallelism.min(descs.len()), gov.budget, |_| {
                let mut scratch = ProbeScratch::new(rows.max(cols));
                loop {
                    let claimed = queue.lock().expect("probe queue poisoned").next();
                    let Some((index, desc)) = claimed else { break };
                    // Cancellation point (queue lock released, chunk not
                    // yet probed).
                    if let Some(token) = gov.token {
                        token.checkpoint();
                    }
                    let out = run_chunk(desc, &mut scratch);
                    done.lock()
                        .expect("probe results poisoned")
                        .push((index, out));
                }
                scratch.flush_probe_counters();
            });
            let mut done = done.into_inner().expect("probe results poisoned");
            done.sort_unstable_by_key(|&(index, _)| index);
            done.into_iter().map(|(_, out)| out).collect()
        }
        _ => {
            let mut scratch = ProbeScratch::new(rows.max(cols));
            let mut outs = Vec::with_capacity(descs.len());
            for desc in &descs {
                if let Some(token) = gov.token {
                    token.checkpoint();
                }
                outs.push(run_chunk(desc, &mut scratch));
            }
            scratch.flush_probe_counters();
            outs
        }
    };

    // Stitch per direction, in chunk (= element) order.
    let stitch = |dir: usize, n: usize| -> ProbeRows {
        let mut probe = ProbeRows {
            offsets: Vec::with_capacity(n + 1),
            entries: Vec::new(),
        };
        probe.offsets.push(0);
        for (desc, out) in descs.iter().zip(&outs) {
            if desc.dir != dir {
                continue;
            }
            probe.entries.extend_from_slice(&out.entries);
            let mut at = *probe.offsets.last().expect("non-empty offsets");
            for &c in &out.counts {
                at += c;
                probe.offsets.push(at);
            }
        }
        probe
    };
    (stitch(0, rows), stitch(1, cols))
}

/// Overlap weight at which a candidate *container* pair also enqueues its
/// children's cross product. Structural propagation can lift a child pair
/// above the operating threshold on its parents' strength alone, so a child
/// whose own vocabulary shares nothing must still be scored when its
/// parents collide hard (`organization.width` ↔ `ORGANIZATION/WEIGHT`). The
/// bound keeps the rescue from exploding: only strongly-overlapping
/// container pairs (a rare-token name collision, not generic-vocabulary
/// noise) fan out to their children.
const CHILD_RESCUE_WEIGHT: f64 = 5.0;

/// Per container, at most this many strongest partners fan out to children.
/// A container has essentially one true counterpart; rescuing its few best
/// collisions covers propagation lift while keeping the fan-out linear in
/// the number of containers instead of quadratic.
const CHILD_RESCUE_PARTNERS: usize = 3;

/// Generate the candidate pair set for matching `source` against `target`
/// under `policy`, inline on the calling thread (index builds included).
///
/// Both directions are probed and unioned, then the set is closed
/// structurally:
/// * **exact-name rescue** — two elements whose normalized name token
///   sequences are equal (the `exact-name` voter's own equality test, so
///   `NM`/`name` and `Id`/`identifier` collide after abbreviation
///   expansion) are always candidates. Exact name equality is the
///   strongest single voter signal, but a ubiquitous name (`identifier`,
///   `name`) carries so little IDF weight that the top-k cap can drop the
///   true counterpart in a dense neighborhood of look-alikes; a sorted-key
///   join on the interned token sequences recovers exactly those pairs at
///   `O((rows + cols) log keys + collisions)` cost;
/// * **child rescue** — a candidate pair of containers whose overlap weight
///   reaches [`CHILD_RESCUE_WEIGHT`] adds its children's cross product, so
///   pairs that only clear the operating threshold through their parents'
///   propagation blend are still scored;
/// * **parent closure** (transitive) — for every candidate `(s, t)` whose
///   elements both have parents, `(parent(s), parent(t))` is added, up to
///   the roots, keeping the Propagate stage's base reads scored.
pub fn generate_candidates(
    source: &Schema,
    target: &Schema,
    prepared_source: &PreparedSchema,
    prepared_target: &PreparedSchema,
    policy: &BlockingPolicy,
) -> CandidateSet {
    generate_candidates_opt(
        source,
        target,
        prepared_source,
        prepared_target,
        policy,
        None,
        GovernedExec::default(),
    )
}

/// [`generate_candidates`] with index builds and probes fanned out across
/// up to `parallelism` lanes of `exec` — the pipeline's entry point.
pub fn generate_candidates_exec(
    source: &Schema,
    target: &Schema,
    prepared_source: &PreparedSchema,
    prepared_target: &PreparedSchema,
    policy: &BlockingPolicy,
    exec: &Executor,
    parallelism: usize,
) -> CandidateSet {
    generate_candidates_governed(
        source,
        target,
        prepared_source,
        prepared_target,
        policy,
        exec,
        parallelism,
        GovernedExec::default(),
    )
}

/// [`generate_candidates_exec`] under serving-layer controls: helper lanes
/// drawn from `gov.budget`, cancellation checked at chunk boundaries
/// against `gov.token`. With both `None` this is byte-identical to the
/// ungoverned path.
#[allow(clippy::too_many_arguments)]
pub fn generate_candidates_governed(
    source: &Schema,
    target: &Schema,
    prepared_source: &PreparedSchema,
    prepared_target: &PreparedSchema,
    policy: &BlockingPolicy,
    exec: &Executor,
    parallelism: usize,
    gov: GovernedExec<'_>,
) -> CandidateSet {
    generate_candidates_opt(
        source,
        target,
        prepared_source,
        prepared_target,
        policy,
        Some((exec, parallelism)),
        gov,
    )
}

#[allow(clippy::too_many_arguments)]
fn generate_candidates_opt(
    source: &Schema,
    target: &Schema,
    prepared_source: &PreparedSchema,
    prepared_target: &PreparedSchema,
    policy: &BlockingPolicy,
    par: Option<(&Executor, usize)>,
    gov: GovernedExec<'_>,
) -> CandidateSet {
    let rows = prepared_source.len();
    let cols = prepared_target.len();
    if rows == 0 || cols == 0 {
        return CandidateSet::empty(rows, cols);
    }
    if matches!(policy, BlockingPolicy::Exhaustive) {
        return CandidateSet::exhaustive(rows, cols);
    }
    // Per-pair index builds; a batch amortizes them via
    // [`generate_candidates_with`] instead.
    if let Some(token) = gov.token {
        token.checkpoint();
    }
    let (source_index, target_index) = match par {
        Some((exec, parallelism)) => (
            ElementTokenIndex::build_parallel(prepared_source, exec, parallelism),
            ElementTokenIndex::build_parallel(prepared_target, exec, parallelism),
        ),
        None => (
            ElementTokenIndex::build(prepared_source),
            ElementTokenIndex::build(prepared_target),
        ),
    };
    generate_candidates_with_opt(
        source,
        target,
        prepared_source,
        prepared_target,
        &source_index,
        &target_index,
        policy,
        par,
        gov,
    )
}

/// [`generate_candidates`] against pre-built per-schema token indices — the
/// batch planner's entry point, which indexes each of a batch's N schemata
/// once instead of once per pair per direction.
///
/// `source_index` / `target_index` must be built over exactly
/// `prepared_source` / `prepared_target`; the result is then bit-for-bit the
/// set [`generate_candidates`] produces (index construction is deterministic
/// per schema, so sharing one build across pairs changes nothing).
#[allow(clippy::too_many_arguments)]
pub fn generate_candidates_with(
    source: &Schema,
    target: &Schema,
    prepared_source: &PreparedSchema,
    prepared_target: &PreparedSchema,
    source_index: &ElementTokenIndex,
    target_index: &ElementTokenIndex,
    policy: &BlockingPolicy,
) -> CandidateSet {
    generate_candidates_with_opt(
        source,
        target,
        prepared_source,
        prepared_target,
        source_index,
        target_index,
        policy,
        None,
        GovernedExec::default(),
    )
}

/// [`generate_candidates_with`] with the two probe directions running as
/// concurrent lanes on `exec` (each direction further chunked; see
/// [`probe_sides`]).
#[allow(clippy::too_many_arguments)]
pub fn generate_candidates_with_exec(
    source: &Schema,
    target: &Schema,
    prepared_source: &PreparedSchema,
    prepared_target: &PreparedSchema,
    source_index: &ElementTokenIndex,
    target_index: &ElementTokenIndex,
    policy: &BlockingPolicy,
    exec: &Executor,
    parallelism: usize,
) -> CandidateSet {
    generate_candidates_with_governed(
        source,
        target,
        prepared_source,
        prepared_target,
        source_index,
        target_index,
        policy,
        exec,
        parallelism,
        GovernedExec::default(),
    )
}

/// [`generate_candidates_with_exec`] under serving-layer controls (see
/// [`GovernedExec`]).
#[allow(clippy::too_many_arguments)]
pub fn generate_candidates_with_governed(
    source: &Schema,
    target: &Schema,
    prepared_source: &PreparedSchema,
    prepared_target: &PreparedSchema,
    source_index: &ElementTokenIndex,
    target_index: &ElementTokenIndex,
    policy: &BlockingPolicy,
    exec: &Executor,
    parallelism: usize,
    gov: GovernedExec<'_>,
) -> CandidateSet {
    generate_candidates_with_opt(
        source,
        target,
        prepared_source,
        prepared_target,
        source_index,
        target_index,
        policy,
        Some((exec, parallelism)),
        gov,
    )
}

/// Pack a pair into the sort key of the flat union/closure passes.
#[inline]
fn pack(s: u32, t: u32) -> u64 {
    (u64::from(s) << 32) | u64::from(t)
}

#[allow(clippy::too_many_arguments)]
fn generate_candidates_with_opt(
    source: &Schema,
    target: &Schema,
    prepared_source: &PreparedSchema,
    prepared_target: &PreparedSchema,
    source_index: &ElementTokenIndex,
    target_index: &ElementTokenIndex,
    policy: &BlockingPolicy,
    par: Option<(&Executor, usize)>,
    gov: GovernedExec<'_>,
) -> CandidateSet {
    let rows = prepared_source.len();
    let cols = prepared_target.len();
    debug_assert_eq!(rows, source.len());
    debug_assert_eq!(cols, target.len());
    // Hard checks (cheap next to the probe): a stale or swapped index would
    // otherwise produce a plausible-but-wrong candidate set in release.
    assert_eq!(
        source_index.len(),
        rows,
        "source index does not match the prepared source schema"
    );
    assert_eq!(
        target_index.len(),
        cols,
        "target index does not match the prepared target schema"
    );
    if rows == 0 || cols == 0 {
        return CandidateSet::empty(rows, cols);
    }
    if matches!(policy, BlockingPolicy::Exhaustive) {
        return CandidateSet::exhaustive(rows, cols);
    }

    // Both probe directions (concurrent lanes under an executor). Features
    // come pre-interned from the preparations, so probing allocates no
    // strings.
    let (fwd, bwd) = probe_sides(
        prepared_source,
        prepared_target,
        source_index,
        target_index,
        policy,
        par,
        gov,
    );

    // Union + rescues into one flat packed pair list (no per-row buffers).
    // `strong` collects child-rescue candidates: only pairs where *both*
    // elements are containers can ever fan out, and a childless entry has
    // zero side effects in the capped rescue loop (its skip increments no
    // fanout counter), so filtering here is invisible to the result while
    // shrinking the weight-sorted buffer from "most kept pairs" (almost
    // everything clears the weight bound) to the handful of container
    // collisions.
    let source_has_children: Vec<bool> = source
        .elements()
        .iter()
        .map(|e| !e.children.is_empty())
        .collect();
    let target_has_children: Vec<bool> = target
        .elements()
        .iter()
        .map(|e| !e.children.is_empty())
        .collect();
    let mut pairs: Vec<u64> =
        Vec::with_capacity(fwd.entries.len() + bwd.entries.len() + rows + cols);
    let mut strong: Vec<(u32, u32, f64)> = Vec::new();
    for (s, &s_container) in source_has_children.iter().enumerate() {
        for &(t, w) in fwd.row(s) {
            pairs.push(pack(s as u32, t));
            if w >= CHILD_RESCUE_WEIGHT && s_container && target_has_children[t as usize] {
                strong.push((s as u32, t, w));
            }
        }
        // Exact-name rescue: equal normalized name-token sequences (the
        // exact-name voter's equality test) are always candidates. Empty
        // bags excepted — the voter is neutral on those. The name table
        // lives on the prebuilt index, so a batch pays it once per schema.
        let ids = prepared_source.element(s).name_ids.as_slice();
        for &t in target_index.name_postings(ids) {
            pairs.push(pack(s as u32, t));
        }
    }
    for (t, &t_container) in target_has_children.iter().enumerate() {
        for &(s, w) in bwd.row(t) {
            pairs.push(pack(s, t as u32));
            if w >= CHILD_RESCUE_WEIGHT && t_container && source_has_children[s as usize] {
                strong.push((s, t as u32, w));
            }
        }
    }

    // Child rescue for strongly-overlapping container pairs, capped at each
    // container's strongest partners (both directions).
    strong.sort_unstable_by(|a, b| {
        (a.0, a.1)
            .cmp(&(b.0, b.1))
            .then(b.2.partial_cmp(&a.2).expect("finite"))
    });
    strong.dedup_by_key(|&mut (s, t, _)| (s, t));
    strong.sort_unstable_by(|a, b| {
        b.2.partial_cmp(&a.2)
            .expect("finite")
            .then((a.0, a.1).cmp(&(b.0, b.1)))
    });
    let mut source_fanout = vec![0usize; rows];
    let mut target_fanout = vec![0usize; cols];
    for (s, t, _) in strong {
        let (s, t) = (s as usize, t as usize);
        if source_fanout[s] >= CHILD_RESCUE_PARTNERS || target_fanout[t] >= CHILD_RESCUE_PARTNERS {
            continue;
        }
        // Both sides have children by the collection filter above.
        let sc = &source.elements()[s].children;
        let tc = &target.elements()[t].children;
        debug_assert!(!sc.is_empty() && !tc.is_empty());
        source_fanout[s] += 1;
        target_fanout[t] += 1;
        for &cs in sc {
            for ct in tc {
                pairs.push(pack(cs.0, ct.0));
            }
        }
    }

    pairs.sort_unstable();
    pairs.dedup();

    // Parent closure (transitive): parents of candidates are candidates.
    // Level by level: the frontier is the sorted set of parent pairs of the
    // previous level's *new* pairs; membership is a merge walk against the
    // sorted accumulated set, and each level merges in sorted order. The
    // loop depth is the schema tree height, and the resulting set is the
    // unique parenthood closure — identical to the reference's
    // stack-based `contains` walk, without its linear scans.
    let source_parents: Vec<Option<u32>> = source
        .elements()
        .iter()
        .map(|e| e.parent.map(|p| p.0))
        .collect();
    let target_parents: Vec<Option<u32>> = target
        .elements()
        .iter()
        .map(|e| e.parent.map(|p| p.0))
        .collect();
    let parents_of = |level: &[u64]| -> Vec<u64> {
        let mut up: Vec<u64> = level
            .iter()
            .filter_map(|&p| {
                let (s, t) = ((p >> 32) as usize, (p & 0xffff_ffff) as usize);
                match (source_parents[s], target_parents[t]) {
                    (Some(ps), Some(pt)) => Some(pack(ps, pt)),
                    _ => None,
                }
            })
            .collect();
        up.sort_unstable();
        up.dedup();
        up
    };
    let mut frontier = parents_of(&pairs);
    while !frontier.is_empty() {
        // fresh = frontier \ pairs (both sorted).
        let mut fresh: Vec<u64> = Vec::new();
        let mut at = 0usize;
        for &p in &frontier {
            while at < pairs.len() && pairs[at] < p {
                at += 1;
            }
            if at >= pairs.len() || pairs[at] != p {
                fresh.push(p);
            }
        }
        if fresh.is_empty() {
            break;
        }
        let mut merged: Vec<u64> = Vec::with_capacity(pairs.len() + fresh.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < pairs.len() && j < fresh.len() {
            if pairs[i] < fresh[j] {
                merged.push(pairs[i]);
                i += 1;
            } else {
                merged.push(fresh[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&pairs[i..]);
        merged.extend_from_slice(&fresh[j..]);
        pairs = merged;
        frontier = parents_of(&fresh);
    }

    CandidateSet::from_sorted_pairs(rows, cols, &pairs)
}

pub mod reference {
    //! The retained map-based reference implementation of the blocking
    //! index — the exact pre-CSR code path, kept as the oracle for the pin
    //! tests (`tests/csr_index_pin.rs`) and the CSR-vs-map micro-benches.
    //! Semantics documentation lives on the production items; this module
    //! only mirrors them.

    use super::{
        idf_weight, BlockingPolicy, CandidateSet, CHILD_RESCUE_PARTNERS, CHILD_RESCUE_WEIGHT,
    };
    use crate::prepare::PreparedSchema;
    use sm_schema::Schema;
    use sm_text::intern::{TokenArena, TokenId};
    use std::collections::HashMap;
    use std::sync::Arc;

    /// The historical map-keyed inverted index: `HashMap` postings, IDF
    /// weights recomputed on every probe.
    #[derive(Debug)]
    pub struct ReferenceTokenIndex {
        postings: HashMap<TokenId, Vec<u32>>,
        name_postings: HashMap<Vec<TokenId>, Vec<u32>>,
        arena: Arc<TokenArena>,
        len: usize,
    }

    impl ReferenceTokenIndex {
        /// Index every element of a prepared schema (single-threaded map
        /// inserts, exactly as before the CSR rebuild).
        pub fn build(prepared: &PreparedSchema) -> Self {
            let mut postings: HashMap<TokenId, Vec<u32>> = HashMap::new();
            let mut name_postings: HashMap<Vec<TokenId>, Vec<u32>> = HashMap::new();
            for idx in 0..prepared.len() {
                let element = prepared.element(idx);
                for &feat in &element.block_features {
                    postings.entry(feat).or_default().push(idx as u32);
                }
                if !element.name_ids.is_empty() {
                    match name_postings.get_mut(element.name_ids.as_slice()) {
                        Some(list) => list.push(idx as u32),
                        None => {
                            name_postings.insert(element.name_ids.clone(), vec![idx as u32]);
                        }
                    }
                }
            }
            ReferenceTokenIndex {
                postings,
                name_postings,
                arena: Arc::clone(prepared.arena()),
                len: prepared.len(),
            }
        }

        /// Elements whose full normalized name equals `name_ids`.
        pub fn name_postings(&self, name_ids: &[TokenId]) -> &[u32] {
            self.name_postings.get(name_ids).map_or(&[], Vec::as_slice)
        }

        /// Number of indexed elements.
        pub fn len(&self) -> usize {
            self.len
        }

        /// True when no elements are indexed.
        pub fn is_empty(&self) -> bool {
            self.len == 0
        }

        /// Every indexed feature id (arbitrary map order).
        pub fn feature_ids(&self) -> impl Iterator<Item = TokenId> + '_ {
            self.postings.keys().copied()
        }

        /// Posting list of an interned feature (empty when absent).
        pub fn postings_by_id(&self, feature: TokenId) -> &[u32] {
            self.postings.get(&feature).map_or(&[], Vec::as_slice)
        }

        /// Posting list of a feature string (empty when absent).
        pub fn postings(&self, feature: &str) -> &[u32] {
            self.arena
                .lookup(feature)
                .map_or(&[], |id| self.postings_by_id(id))
        }

        /// IDF weight, recomputed from the document frequency per call —
        /// the historical per-probe cost the CSR table eliminates.
        pub fn weight_by_id(&self, feature: TokenId) -> f64 {
            idf_weight(self.len as f64, self.postings_by_id(feature).len() as f64)
        }

        /// String-keyed [`Self::weight_by_id`].
        pub fn weight(&self, feature: &str) -> f64 {
            idf_weight(self.len as f64, self.postings(feature).len() as f64)
        }
    }

    /// One direction of candidate generation over the map index, verbatim
    /// from the pre-CSR implementation.
    fn probe_side(
        from: &PreparedSchema,
        index: &ReferenceTokenIndex,
        policy: &BlockingPolicy,
    ) -> Vec<Vec<(u32, f64)>> {
        let n_to = index.len();
        let mut acc: Vec<f64> = vec![0.0; n_to];
        let mut touched: Vec<u32> = Vec::new();
        let mut out: Vec<Vec<(u32, f64)>> = Vec::with_capacity(from.len());
        for idx in 0..from.len() {
            let feats = &from.element(idx).block_features;
            touched.clear();
            for &feat in feats {
                let posting = index.postings_by_id(feat);
                if posting.is_empty() {
                    continue;
                }
                let w = idf_weight(n_to as f64, posting.len() as f64);
                for &t in posting {
                    if acc[t as usize] == 0.0 {
                        touched.push(t);
                    }
                    acc[t as usize] += w;
                }
            }
            let mut kept: Vec<(u32, f64)> = match *policy {
                BlockingPolicy::Exhaustive => {
                    (0..n_to as u32).map(|t| (t, acc[t as usize])).collect()
                }
                BlockingPolicy::WeightedThreshold { min_weight } => {
                    let mut kept: Vec<(u32, f64)> = touched
                        .iter()
                        .filter(|&&t| acc[t as usize] >= min_weight)
                        .map(|&t| (t, acc[t as usize]))
                        .collect();
                    kept.sort_unstable_by_key(|&(t, _)| t);
                    kept
                }
                BlockingPolicy::TopK { k, min_weight } => {
                    let mut ranked: Vec<u32> = touched.clone();
                    ranked.sort_unstable_by(|&a, &b| {
                        acc[b as usize]
                            .partial_cmp(&acc[a as usize])
                            .expect("finite overlap weight")
                            .then(a.cmp(&b))
                    });
                    let mut kept: Vec<(u32, f64)> = ranked
                        .iter()
                        .enumerate()
                        .filter(|&(rank, &t)| rank < k || acc[t as usize] >= min_weight)
                        .map(|(_, &t)| (t, acc[t as usize]))
                        .collect();
                    kept.sort_unstable_by_key(|&(t, _)| t);
                    kept
                }
            };
            kept.dedup_by_key(|&mut (t, _)| t);
            for &t in &touched {
                acc[t as usize] = 0.0;
            }
            out.push(kept);
        }
        out
    }

    /// The pre-CSR candidate generation: map-keyed indices, per-row
    /// `Vec<Vec<u32>>` union buffers, stack-based parent closure. The CSR
    /// path must reproduce its output byte for byte under every policy.
    pub fn generate_candidates(
        source: &Schema,
        target: &Schema,
        prepared_source: &PreparedSchema,
        prepared_target: &PreparedSchema,
        policy: &BlockingPolicy,
    ) -> CandidateSet {
        let rows = prepared_source.len();
        let cols = prepared_target.len();
        if rows == 0 || cols == 0 {
            return CandidateSet::from_rows(vec![Vec::new(); rows], cols);
        }
        if matches!(policy, BlockingPolicy::Exhaustive) {
            return CandidateSet::exhaustive(rows, cols);
        }
        let source_index = ReferenceTokenIndex::build(prepared_source);
        let target_index = ReferenceTokenIndex::build(prepared_target);

        let weighted = probe_side(prepared_source, &target_index, policy);
        let mut per_row: Vec<Vec<u32>> = weighted
            .iter()
            .map(|list| list.iter().map(|&(t, _)| t).collect())
            .collect();
        let mut strong: Vec<(u32, u32, f64)> = weighted
            .iter()
            .enumerate()
            .flat_map(|(s, list)| {
                list.iter()
                    .filter(|&&(_, w)| w >= CHILD_RESCUE_WEIGHT)
                    .map(move |&(t, w)| (s as u32, t, w))
            })
            .collect();

        for (t, sources) in probe_side(prepared_target, &source_index, policy)
            .into_iter()
            .enumerate()
        {
            for (s, w) in sources {
                per_row[s as usize].push(t as u32);
                if w >= CHILD_RESCUE_WEIGHT {
                    strong.push((s, t as u32, w));
                }
            }
        }

        for (s, list) in per_row.iter_mut().enumerate() {
            let ids = prepared_source.element(s).name_ids.as_slice();
            if !ids.is_empty() {
                list.extend(target_index.name_postings(ids).iter().copied());
            }
        }

        strong.sort_unstable_by(|a, b| {
            (a.0, a.1)
                .cmp(&(b.0, b.1))
                .then(b.2.partial_cmp(&a.2).expect("finite"))
        });
        strong.dedup_by_key(|&mut (s, t, _)| (s, t));
        strong.sort_unstable_by(|a, b| {
            b.2.partial_cmp(&a.2)
                .expect("finite")
                .then((a.0, a.1).cmp(&(b.0, b.1)))
        });
        let mut source_fanout = vec![0usize; rows];
        let mut target_fanout = vec![0usize; cols];
        for (s, t, _) in strong {
            let (s, t) = (s as usize, t as usize);
            if source_fanout[s] >= CHILD_RESCUE_PARTNERS
                || target_fanout[t] >= CHILD_RESCUE_PARTNERS
            {
                continue;
            }
            let sc = &source.elements()[s].children;
            let tc = &target.elements()[t].children;
            if sc.is_empty() || tc.is_empty() {
                continue;
            }
            source_fanout[s] += 1;
            target_fanout[t] += 1;
            for &cs in sc {
                let list = &mut per_row[cs.index()];
                list.extend(tc.iter().map(|ct| ct.0));
            }
        }

        let source_parents: Vec<Option<u32>> = source
            .elements()
            .iter()
            .map(|e| e.parent.map(|p| p.0))
            .collect();
        let target_parents: Vec<Option<u32>> = target
            .elements()
            .iter()
            .map(|e| e.parent.map(|p| p.0))
            .collect();
        for list in &mut per_row {
            list.sort_unstable();
            list.dedup();
        }
        let mut frontier: Vec<(u32, u32)> = Vec::new();
        for (s, list) in per_row.iter().enumerate() {
            for &t in list {
                if let (Some(ps), Some(pt)) = (source_parents[s], target_parents[t as usize]) {
                    frontier.push((ps, pt));
                }
            }
        }
        while let Some((s, t)) = frontier.pop() {
            let list = &mut per_row[s as usize];
            if !list.contains(&t) {
                list.push(t);
                if let (Some(ps), Some(pt)) =
                    (source_parents[s as usize], target_parents[t as usize])
                {
                    frontier.push((ps, pt));
                }
            }
        }

        for list in &mut per_row {
            list.sort_unstable();
            list.dedup();
        }
        CandidateSet::from_rows(per_row, cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prepare::default_normalizer;
    use sm_schema::{DataType, Documentation, ElementKind, SchemaFormat, SchemaId};
    use sm_text::soundex::soundex;

    fn prepared(s: &Schema) -> PreparedSchema {
        PreparedSchema::build(s, default_normalizer())
    }

    fn fixture() -> (Schema, Schema) {
        let mut a = Schema::new(SchemaId(1), "S_A", SchemaFormat::Relational);
        let p = a.add_root("Person", ElementKind::Table, DataType::None);
        let pid = a
            .add_child(p, "person_id", ElementKind::Column, DataType::Integer)
            .unwrap();
        a.set_doc(pid, Documentation::embedded("unique person identifier"))
            .unwrap();
        a.add_child(p, "last_name", ElementKind::Column, DataType::varchar(40))
            .unwrap();
        let c = a.add_root("COI", ElementKind::Table, DataType::None);
        a.add_child(c, "member", ElementKind::Column, DataType::text())
            .unwrap();

        let mut b = Schema::new(SchemaId(2), "S_B", SchemaFormat::Xml);
        let p2 = b.add_root("PersonType", ElementKind::ComplexType, DataType::None);
        b.add_child(
            p2,
            "PersonIdentifier",
            ElementKind::XmlElement,
            DataType::Integer,
        )
        .unwrap();
        b.add_child(p2, "LastName", ElementKind::XmlElement, DataType::text())
            .unwrap();
        let c2 = b.add_root(
            "CommunityOfInterest",
            ElementKind::ComplexType,
            DataType::None,
        );
        b.add_child(c2, "MemberName", ElementKind::XmlElement, DataType::text())
            .unwrap();
        (a, b)
    }

    #[test]
    fn index_posts_name_doc_soundex_and_acronym_features() {
        let (a, _) = fixture();
        let pa = prepared(&a);
        let index = ElementTokenIndex::build(&pa);
        assert_eq!(index.len(), a.len());
        let person = a.find_by_name("person_id").unwrap();
        // Name token posting.
        assert!(index.postings("person").contains(&(person.0)));
        // Doc token posting ("unique" survives prose normalization).
        assert!(index.postings("uniqu").contains(&(person.0)));
        // Soundex key of a name token.
        assert!(!index
            .postings(&format!("s:{}", soundex("person")))
            .is_empty());
        // Short raw name indexed as an acronym key.
        let coi = a.find_by_name("COI").unwrap();
        assert!(index.postings("a:coi").contains(&(coi.0)));
    }

    #[test]
    fn csr_index_mirrors_reference_postings_and_weights() {
        let (a, b) = fixture();
        for s in [&a, &b] {
            let p = prepared(s);
            let csr = ElementTokenIndex::build(&p);
            let reference = reference::ReferenceTokenIndex::build(&p);
            let mut seen = 0usize;
            for feat in reference.feature_ids() {
                assert_eq!(csr.postings_by_id(feat), reference.postings_by_id(feat));
                assert_eq!(
                    csr.weight_by_id(feat).to_bits(),
                    reference.weight_by_id(feat).to_bits()
                );
                seen += 1;
            }
            assert_eq!(csr.feature_count(), seen);
            // Name table round-trips every element's name key.
            for idx in 0..p.len() {
                let ids = p.element(idx).name_ids.as_slice();
                assert_eq!(csr.name_postings(ids), reference.name_postings(ids));
            }
        }
    }

    #[test]
    fn parallel_build_is_identical_to_inline_build() {
        let (a, _) = fixture();
        let pa = prepared(&a);
        let exec = Executor::new(4);
        let inline = ElementTokenIndex::build(&pa);
        let parallel = ElementTokenIndex::build_parallel(&pa, &exec, 4);
        assert_eq!(inline.features, parallel.features);
        assert_eq!(inline.offsets, parallel.offsets);
        assert_eq!(inline.postings, parallel.postings);
        assert_eq!(
            inline
                .weights
                .iter()
                .map(|w| w.to_bits())
                .collect::<Vec<_>>(),
            parallel
                .weights
                .iter()
                .map(|w| w.to_bits())
                .collect::<Vec<_>>()
        );
        assert_eq!(inline.name_posts, parallel.name_posts);
        assert_eq!(inline.name_tokens, parallel.name_tokens);
    }

    #[test]
    fn rare_features_outweigh_common_ones() {
        let (a, _) = fixture();
        let index = ElementTokenIndex::build(&prepared(&a));
        // "person" appears in two elements, "member" in one.
        assert!(index.weight("member") > index.weight("person"));
        assert!(index.weight("absent-token") > index.weight("member"));
    }

    #[test]
    fn default_policy_finds_true_pairs_and_prunes() {
        let (a, b) = fixture();
        let (pa, pb) = (prepared(&a), prepared(&b));
        let cands = generate_candidates(&a, &b, &pa, &pb, &BlockingPolicy::default());
        let pid = a.find_by_name("person_id").unwrap();
        let pid2 = b.find_by_name("PersonIdentifier").unwrap();
        assert!(cands.contains(pid.index(), pid2.index()));
        let ln = a.find_by_name("last_name").unwrap();
        let ln2 = b.find_by_name("LastName").unwrap();
        assert!(cands.contains(ln.index(), ln2.index()));
        assert!(cands.len() <= a.len() * b.len());
    }

    #[test]
    fn acronym_key_blocks_coi_to_community_of_interest() {
        let (a, b) = fixture();
        let (pa, pb) = (prepared(&a), prepared(&b));
        // A tight threshold policy: only strong shared evidence survives;
        // the acronym key must be enough to rescue COI.
        let cands = generate_candidates(
            &a,
            &b,
            &pa,
            &pb,
            &BlockingPolicy::TopK {
                k: 1,
                min_weight: f64::INFINITY,
            },
        );
        let coi = a.find_by_name("COI").unwrap();
        let full = b.find_by_name("CommunityOfInterest").unwrap();
        assert!(cands.contains(coi.index(), full.index()));
    }

    #[test]
    fn exact_name_pairs_survive_any_cap() {
        // Dozens of elements all sharing the ubiquitous "identifier" token:
        // the IDF weight of the collision is tiny and the top-k cap is 1,
        // but the one *exactly equal* name must still be a candidate.
        let mut a = Schema::new(SchemaId(1), "A", SchemaFormat::Generic);
        let ra = a.add_root("Root", ElementKind::Group, DataType::None);
        a.add_child(ra, "identifier", ElementKind::Column, DataType::Integer)
            .unwrap();
        for i in 0..30 {
            a.add_child(
                ra,
                format!("thing_{i}_identifier"),
                ElementKind::Column,
                DataType::Integer,
            )
            .unwrap();
        }
        let mut b = Schema::new(SchemaId(2), "B", SchemaFormat::Generic);
        let rb = b.add_root("Base", ElementKind::Group, DataType::None);
        let target = b
            .add_child(rb, "identifier", ElementKind::Column, DataType::Integer)
            .unwrap();
        for i in 0..30 {
            b.add_child(
                rb,
                format!("item_{i}_identifier"),
                ElementKind::Column,
                DataType::Integer,
            )
            .unwrap();
        }
        let (pa, pb) = (prepared(&a), prepared(&b));
        let cands = generate_candidates(
            &a,
            &b,
            &pa,
            &pb,
            &BlockingPolicy::TopK {
                k: 1,
                min_weight: f64::INFINITY,
            },
        );
        let source = a.find_by_name("identifier").unwrap();
        assert!(
            cands.contains(source.index(), target.index()),
            "exact-name pair must survive the cap"
        );
    }

    #[test]
    fn parents_of_candidates_are_candidates() {
        let (a, b) = fixture();
        let (pa, pb) = (prepared(&a), prepared(&b));
        let cands = generate_candidates(&a, &b, &pa, &pb, &BlockingPolicy::default());
        for s in 0..cands.rows() {
            for &t in cands.row(s) {
                let ps = a.elements()[s].parent;
                let pt = b.elements()[t as usize].parent;
                if let (Some(ps), Some(pt)) = (ps, pt) {
                    assert!(
                        cands.contains(ps.index(), pt.index()),
                        "parent of candidate ({s},{t}) missing"
                    );
                }
            }
        }
    }

    #[test]
    fn exhaustive_policy_is_the_full_cross_product() {
        let (a, b) = fixture();
        let (pa, pb) = (prepared(&a), prepared(&b));
        let cands = generate_candidates(&a, &b, &pa, &pb, &BlockingPolicy::Exhaustive);
        assert_eq!(cands.len(), a.len() * b.len());
        assert!((cands.density() - 1.0).abs() < 1e-12);
        for s in 0..a.len() {
            assert_eq!(cands.row(s).len(), b.len());
        }
    }

    #[test]
    fn weighted_threshold_at_infinity_keeps_exactly_the_name_rescue_closure() {
        let (a, b) = fixture();
        let (pa, pb) = (prepared(&a), prepared(&b));
        let cands = generate_candidates(
            &a,
            &b,
            &pa,
            &pb,
            &BlockingPolicy::WeightedThreshold {
                min_weight: f64::INFINITY,
            },
        );
        // Probing keeps nothing at infinite weight; the candidate set is
        // exactly the exact-name rescue (equal normalized name tokens, e.g.
        // "last_name" ≡ "LastName") closed under parenthood.
        let mut expected: std::collections::BTreeSet<(usize, usize)> =
            std::collections::BTreeSet::new();
        for s in 0..a.len() {
            for t in 0..b.len() {
                if !pa.element(s).name_ids.is_empty()
                    && pa.element(s).name_ids == pb.element(t).name_ids
                {
                    let (mut sp, mut tp) = (Some(s), Some(t));
                    while let (Some(cs), Some(ct)) = (sp, tp) {
                        expected.insert((cs, ct));
                        sp = a.elements()[cs].parent.map(|p| p.index());
                        tp = b.elements()[ct].parent.map(|p| p.index());
                    }
                }
            }
        }
        let got: std::collections::BTreeSet<(usize, usize)> = (0..cands.rows())
            .flat_map(|s| cands.row(s).iter().map(move |&t| (s, t as usize)))
            .collect();
        assert_eq!(got, expected);
        assert!(!got.is_empty(), "fixture has exact-name pairs");
        assert!(cands.density() < 1.0, "still prunes almost everything");
    }

    #[test]
    fn csr_generation_matches_reference_on_fixture() {
        let (a, b) = fixture();
        let (pa, pb) = (prepared(&a), prepared(&b));
        let exec = Executor::new(3);
        for policy in [
            BlockingPolicy::default(),
            BlockingPolicy::TopK {
                k: 2,
                min_weight: 3.0,
            },
            BlockingPolicy::WeightedThreshold { min_weight: 2.0 },
            BlockingPolicy::Exhaustive,
        ] {
            let expect = reference::generate_candidates(&a, &b, &pa, &pb, &policy);
            let inline = generate_candidates(&a, &b, &pa, &pb, &policy);
            assert_eq!(inline, expect, "inline CSR diverged under {policy:?}");
            let parallel = generate_candidates_exec(&a, &b, &pa, &pb, &policy, &exec, 3);
            assert_eq!(parallel, expect, "parallel CSR diverged under {policy:?}");
        }
    }

    #[test]
    fn empty_sides_are_safe() {
        let (a, _) = fixture();
        let empty = Schema::new(SchemaId(9), "E", SchemaFormat::Generic);
        let (pa, pe) = (prepared(&a), prepared(&empty));
        let cands = generate_candidates(&a, &empty, &pa, &pe, &BlockingPolicy::default());
        assert!(cands.is_empty());
        assert_eq!(cands.rows(), a.len());
        assert_eq!(cands.cols(), 0);
    }
}

//! Match voters.
//!
//! The paper (§3.2): *"several match voters are invoked, each of which
//! identifies correspondences using a different strategy."* Every voter maps
//! a (source element, target element) pair to an evidence-aware
//! [`Confidence`]. Voters must be cheap per pair — all heavy per-element work
//! lives in [`MatchContext`].
//!
//! Each voter's scoring body is a `pub(crate)` free function over
//! [`ElementFeatures`] (`exact_name_vote`, `token_vote`, …); the trait impls
//! here delegate to them, and so do the structure-of-arrays batch kernels in
//! [`crate::cascade`], which re-invoke the *same* functions voter-major over
//! a CSR candidate row. One body per voter is what keeps the cascaded score
//! path bit-identical to per-pair `MatchVoter` dispatch.

use crate::confidence::Confidence;
use crate::context::{ElementFeatures, MatchContext};
use sm_schema::{DataType, ElementId, ElementKind};
use sm_text::intern::sorted_ids_jaccard;
use sm_text::similarity::{jaro_winkler_chars, levenshtein_sim_chars, monge_elkan_jw_interned};
use sm_text::soundex::soundex_key_sim;

/// A strategy that scores candidate correspondences.
pub trait MatchVoter: Send + Sync {
    /// Stable voter name (appears in provenance and reports).
    fn name(&self) -> &'static str;

    /// Score one candidate pair.
    fn vote(&self, ctx: &MatchContext<'_>, s: ElementId, t: ElementId) -> Confidence;
}

// ---------------------------------------------------------------------------
// Free-function voter kernels. One body per voter, shared by the trait impls
// below and by the cascade's batch path (`crate::cascade`) — the only way to
// guarantee both paths produce bit-identical confidences.
// ---------------------------------------------------------------------------

/// [`ExactNameVoter`]'s body.
pub(crate) fn exact_name_vote(fa: &ElementFeatures, fb: &ElementFeatures) -> Confidence {
    let a = &fa.name_ids;
    let b = &fb.name_ids;
    if a.is_empty() || b.is_empty() {
        return Confidence::NEUTRAL;
    }
    // Interned-sequence equality ⇔ normalized-token-sequence equality.
    if a == b {
        Confidence::from_evidence(1.0, a.len() as f64, 0.8)
    } else {
        // Exact mismatch is weak negative evidence only: most true
        // correspondences do NOT share exact names.
        Confidence::from_evidence(0.35, 1.0, 6.0)
    }
}

/// [`TokenVoter`]'s body.
pub(crate) fn token_vote(tag: u32, fa: &ElementFeatures, fb: &ElementFeatures) -> Confidence {
    if fa.name_ids.is_empty() || fb.name_ids.is_empty() {
        return Confidence::NEUTRAL;
    }
    // Exact token overlap plus soft (per-token edit-distance) alignment:
    // `date` vs `datetime` should contribute even though the stems
    // differ. The soft component is discounted so exact overlap wins.
    // Both run on interned ids: the Jaccard is a sorted merge walk, and
    // Monge-Elkan short-circuits every shared token to 1.0 via an id
    // membership test before falling back to character-level JW.
    let jaccard = sorted_ids_jaccard(&fa.name_set, &fb.name_set);
    let soft = monge_elkan_jw_interned(
        tag,
        &fa.name_bag.tokens,
        &fa.name_ids,
        &fa.name_set,
        &fb.name_bag.tokens,
        &fb.name_ids,
        &fb.name_set,
    );
    let sim = jaccard.max(0.85 * soft);
    let evidence = (fa.name_ids.len() + fb.name_ids.len()) as f64 / 2.0;
    Confidence::from_evidence(sim, evidence, 1.5)
}

/// The memoized raw-name similarity blend behind [`EditDistanceVoter`].
/// Names were char-decoded and Soundex-encoded once at prepare time; the
/// pair loop runs on slices and packed keys only. Raw names repeat heavily
/// across enterprise schemata (boilerplate `id`, `name`, `code` columns),
/// so the blended similarity is memoized per thread by interned raw-name
/// pair — ids are stable and the blend is a pure function of the two
/// strings, so entries never invalidate. The memo is capacity-bounded
/// (see [`sm_text::intern::PairMemo`]); flushes surface through
/// [`sm_text::intern::pair_memo_stats`].
pub(crate) fn edit_distance_sim(tag: u32, fa: &ElementFeatures, fb: &ElementFeatures) -> f64 {
    std::thread_local! {
        static EDIT_MEMO: std::cell::RefCell<sm_text::intern::PairMemo> =
            std::cell::RefCell::new(sm_text::intern::PairMemo::new());
    }
    EDIT_MEMO.with(|memo| {
        memo.borrow_mut()
            .get_or_insert_with(tag, fa.raw_name_id, fb.raw_name_id, || {
                let jw = jaro_winkler_chars(&fa.raw_chars, &fb.raw_chars);
                let lev = levenshtein_sim_chars(&fa.raw_chars, &fb.raw_chars);
                let sdx = soundex_key_sim(fa.raw_soundex, fb.raw_soundex);
                0.5 * jw + 0.4 * lev + 0.1 * sdx
            })
    })
}

/// [`EditDistanceVoter`]'s body.
pub(crate) fn edit_distance_vote(
    tag: u32,
    fa: &ElementFeatures,
    fb: &ElementFeatures,
) -> Confidence {
    if fa.raw_chars.is_empty() || fb.raw_chars.is_empty() {
        return Confidence::NEUTRAL;
    }
    let sim = edit_distance_sim(tag, fa, fb);
    // Short names provide little evidence; evidence grows with length.
    let evidence = (fa.raw_chars.len().min(fb.raw_chars.len()) as f64) / 3.0;
    Confidence::from_evidence(sim, evidence, 1.2)
}

/// [`DocVoter`]'s body.
pub(crate) fn doc_vote(fa: &ElementFeatures, fb: &ElementFeatures) -> Confidence {
    if fa.doc_vector.is_empty() || fb.doc_vector.is_empty() {
        return Confidence::NEUTRAL;
    }
    let cosine = fa.doc_vector.cosine(&fb.doc_vector);
    // Calibration: a random documentation pair has cosine near 0, not
    // near 0.5, so raw cosine is a poor evidence *ratio*. The square
    // root re-centres it: cosine 0.25 ≈ "as much for as against".
    let ratio = cosine.sqrt();
    let evidence = fa.doc_vector.token_count.min(fb.doc_vector.token_count) as f64;
    Confidence::from_evidence(ratio, evidence, 5.0)
}

/// [`TypeVoter`]'s body.
pub(crate) fn type_vote(ta: DataType, tb: DataType) -> Confidence {
    let compat = ta.compatibility(tb);
    // A single type observation is modest evidence; incompatibility is
    // stronger evidence than compatibility (types rule out, they don't
    // rule in).
    let evidence = if compat < 0.2 { 3.0 } else { 1.0 };
    Confidence::from_evidence(compat, evidence, 2.0)
}

/// [`PathVoter`]'s body.
pub(crate) fn path_vote(fa: &ElementFeatures, fb: &ElementFeatures) -> Confidence {
    if fa.parent_set.is_empty() || fb.parent_set.is_empty() {
        return Confidence::NEUTRAL;
    }
    let jaccard = sorted_ids_jaccard(&fa.parent_set, &fb.parent_set);
    // Evidence counts tokens with multiplicity, as the bags do.
    let evidence = (fa.parent_bag.len() + fb.parent_bag.len()) as f64 / 2.0;
    Confidence::from_evidence(jaccard, evidence, 2.0)
}

/// [`StructureVoter`]'s body.
pub(crate) fn structure_vote(fa: &ElementFeatures, fb: &ElementFeatures) -> Confidence {
    if fa.children_set.is_empty() || fb.children_set.is_empty() {
        return Confidence::NEUTRAL;
    }
    let jaccard = sorted_ids_jaccard(&fa.children_set, &fb.children_set);
    let evidence = (fa.children_bag.len().min(fb.children_bag.len())) as f64;
    Confidence::from_evidence(jaccard, evidence, 6.0)
}

/// [`RoleVoter`]'s body.
pub(crate) fn role_vote(ka: ElementKind, kb: ElementKind) -> Confidence {
    if ka.role_compatible(kb) {
        Confidence::NEUTRAL
    } else {
        // A container/leaf mismatch is solid negative evidence.
        Confidence::from_evidence(0.0, 4.0, 2.0)
    }
}

/// [`AcronymVoter`]'s body.
pub(crate) fn acronym_vote(fa: &ElementFeatures, fb: &ElementFeatures) -> Confidence {
    if fa.raw_name.len() < 2 || fb.raw_name.len() < 2 {
        return Confidence::NEUTRAL;
    }
    // Acronyms were computed and interned at prepare time; the per-pair
    // check is two integer compares (interning is injective, so id
    // equality is string equality).
    let hit = (fb.name_ids.len() >= 2 && fa.raw_name_id == fb.acronym_id)
        || (fa.name_ids.len() >= 2 && fb.raw_name_id == fa.acronym_id);
    if hit {
        let evidence = fa.name_ids.len().max(fb.name_ids.len()) as f64;
        Confidence::from_evidence(0.95, evidence, 1.0)
    } else {
        Confidence::NEUTRAL
    }
}

/// Exact-name voter: full-credit when normalized token sequences are equal.
///
/// Evidence: the number of tokens — `id` == `id` is weak evidence, a
/// five-token equality is strong.
#[derive(Debug, Default, Clone, Copy)]
pub struct ExactNameVoter;

impl MatchVoter for ExactNameVoter {
    fn name(&self) -> &'static str {
        "exact-name"
    }

    fn vote(&self, ctx: &MatchContext<'_>, s: ElementId, t: ElementId) -> Confidence {
        exact_name_vote(ctx.source_feat(s), ctx.target_feat(t))
    }
}

/// Token-overlap voter: Jaccard similarity of normalized name-token sets,
/// with evidence equal to the union size.
#[derive(Debug, Default, Clone, Copy)]
pub struct TokenVoter;

impl MatchVoter for TokenVoter {
    fn name(&self) -> &'static str {
        "name-tokens"
    }

    fn vote(&self, ctx: &MatchContext<'_>, s: ElementId, t: ElementId) -> Confidence {
        token_vote(ctx.arena_tag(), ctx.source_feat(s), ctx.target_feat(t))
    }
}

/// Edit-distance voter: blend of Jaro-Winkler and normalized Levenshtein on
/// raw lowercase names, plus a Soundex tie-breaker. Catches misspellings and
/// convention drift that tokenization cannot.
#[derive(Debug, Default, Clone, Copy)]
pub struct EditDistanceVoter;

impl MatchVoter for EditDistanceVoter {
    fn name(&self) -> &'static str {
        "edit-distance"
    }

    fn vote(&self, ctx: &MatchContext<'_>, s: ElementId, t: ElementId) -> Confidence {
        edit_distance_vote(ctx.arena_tag(), ctx.source_feat(s), ctx.target_feat(t))
    }
}

/// Documentation voter: TF-IDF cosine over name+documentation text.
///
/// This is the voter the paper leans on ("Harmony relies heavily on textual
/// documentation"), and the one whose evidence varies most: elements range
/// from undocumented to paragraph-length descriptions. Evidence is the
/// smaller of the two token counts — a correspondence supported by two long
/// descriptions is far more trustworthy than one supported by a long and an
/// empty one.
#[derive(Debug, Default, Clone, Copy)]
pub struct DocVoter;

impl MatchVoter for DocVoter {
    fn name(&self) -> &'static str {
        "documentation"
    }

    fn vote(&self, ctx: &MatchContext<'_>, s: ElementId, t: ElementId) -> Confidence {
        doc_vote(ctx.source_feat(s), ctx.target_feat(t))
    }
}

/// Data-type voter: compatibility of normalized value types. Weak but cheap;
/// its main value is *vetoing* absurd pairs (a table vs a date column).
#[derive(Debug, Default, Clone, Copy)]
pub struct TypeVoter;

impl MatchVoter for TypeVoter {
    fn name(&self) -> &'static str {
        "data-type"
    }

    fn vote(&self, ctx: &MatchContext<'_>, s: ElementId, t: ElementId) -> Confidence {
        type_vote(
            ctx.source.element(s).datatype,
            ctx.target.element(t).datatype,
        )
    }
}

/// Path voter: token overlap of the *parents'* names. `Vehicle/vin` vs
/// `VehicleType/Vin` gains support because their containers align.
#[derive(Debug, Default, Clone, Copy)]
pub struct PathVoter;

impl MatchVoter for PathVoter {
    fn name(&self) -> &'static str {
        "path-context"
    }

    fn vote(&self, ctx: &MatchContext<'_>, s: ElementId, t: ElementId) -> Confidence {
        path_vote(ctx.source_feat(s), ctx.target_feat(t))
    }
}

/// Structural voter: for container elements, overlap of the *children's*
/// combined name tokens — two tables whose columns share vocabulary likely
/// describe the same concept even when the tables' own names differ.
#[derive(Debug, Default, Clone, Copy)]
pub struct StructureVoter;

impl MatchVoter for StructureVoter {
    fn name(&self) -> &'static str {
        "structure"
    }

    fn vote(&self, ctx: &MatchContext<'_>, s: ElementId, t: ElementId) -> Confidence {
        structure_vote(ctx.source_feat(s), ctx.target_feat(t))
    }
}

/// Role voter: containers should match containers, leaves leaves. Produces
/// negative evidence for role mismatches and stays neutral otherwise.
#[derive(Debug, Default, Clone, Copy)]
pub struct RoleVoter;

impl MatchVoter for RoleVoter {
    fn name(&self) -> &'static str {
        "role"
    }

    fn vote(&self, ctx: &MatchContext<'_>, s: ElementId, t: ElementId) -> Confidence {
        role_vote(ctx.source.element(s).kind, ctx.target.element(t).kind)
    }
}

/// Acronym voter: fires when one side's whole name equals the acronym of the
/// other side's token sequence (`COI` vs `community_of_interest`).
#[derive(Debug, Default, Clone, Copy)]
pub struct AcronymVoter;

impl MatchVoter for AcronymVoter {
    fn name(&self) -> &'static str {
        "acronym"
    }

    fn vote(&self, ctx: &MatchContext<'_>, s: ElementId, t: ElementId) -> Confidence {
        acronym_vote(ctx.source_feat(s), ctx.target_feat(t))
    }
}

/// Instance voter: distributional similarity of sampled data values — the
/// *conventional* evidence source the paper's Harmony deliberately de-
/// emphasizes ("relies heavily on textual documentation … instead of data
/// instances"). Neutral whenever either side has no sample, which is the
/// common enterprise case; experiment F9 compares the two evidence regimes.
#[derive(Debug, Default, Clone, Copy)]
pub struct InstanceVoter;

impl MatchVoter for InstanceVoter {
    fn name(&self) -> &'static str {
        "instances"
    }

    fn vote(&self, ctx: &MatchContext<'_>, s: ElementId, t: ElementId) -> Confidence {
        let (Some(pa), Some(pb)) = (
            ctx.source_feat(s).instances.as_ref(),
            ctx.target_feat(t).instances.as_ref(),
        ) else {
            return Confidence::NEUTRAL;
        };
        let sim = pa.similarity(pb);
        // Evidence grows with the smaller sample; profiles built from a
        // handful of rows are weak testimony.
        let evidence = pa.count.min(pb.count) as f64;
        Confidence::from_evidence(sim, evidence, 8.0)
    }
}

/// The default Harmony voter panel, in a fixed, documented order. Matches
/// the paper's design: documentation-driven, no instance evidence.
pub fn default_voters() -> Vec<Box<dyn MatchVoter>> {
    vec![
        Box::new(ExactNameVoter),
        Box::new(TokenVoter),
        Box::new(EditDistanceVoter),
        Box::new(DocVoter),
        Box::new(TypeVoter),
        Box::new(PathVoter),
        Box::new(StructureVoter),
        Box::new(RoleVoter),
        Box::new(AcronymVoter),
    ]
}

/// The default panel extended with the [`InstanceVoter`] — the conventional
/// configuration, usable when data samples exist.
pub fn voters_with_instances() -> Vec<Box<dyn MatchVoter>> {
    let mut v = default_voters();
    v.push(Box::new(InstanceVoter));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_schema::{DataType, Documentation, ElementKind, Schema, SchemaFormat, SchemaId};
    use sm_text::normalize::Normalizer;

    fn fixture() -> (Schema, Schema) {
        let mut a = Schema::new(SchemaId(1), "S_A", SchemaFormat::Relational);
        let ev = a.add_root("All_Event_Vitals", ElementKind::Table, DataType::None);
        let d = a
            .add_child(
                ev,
                "DATE_BEGIN_156",
                ElementKind::Column,
                DataType::DateTime,
            )
            .unwrap();
        a.set_doc(d, Documentation::embedded("date and time the event began"))
            .unwrap();
        a.add_child(ev, "event_loc", ElementKind::Column, DataType::text())
            .unwrap();
        let coi = a.add_root("COI", ElementKind::Table, DataType::None);
        a.add_child(coi, "member", ElementKind::Column, DataType::text())
            .unwrap();

        let mut b = Schema::new(SchemaId(2), "S_B", SchemaFormat::Xml);
        let ev2 = b.add_root("Event", ElementKind::ComplexType, DataType::None);
        let d2 = b
            .add_child(
                ev2,
                "DATETIME_FIRST_INFO",
                ElementKind::XmlElement,
                DataType::DateTime,
            )
            .unwrap();
        b.set_doc(
            d2,
            Documentation::embedded("date and time when information about the event first arrived"),
        )
        .unwrap();
        b.add_child(
            ev2,
            "EventLocation",
            ElementKind::XmlElement,
            DataType::text(),
        )
        .unwrap();
        let c = b.add_root(
            "CommunityOfInterest",
            ElementKind::ComplexType,
            DataType::None,
        );
        b.add_child(c, "MemberName", ElementKind::XmlElement, DataType::text())
            .unwrap();
        (a, b)
    }

    fn ctx<'x>(a: &'x Schema, b: &'x Schema) -> MatchContext<'x> {
        MatchContext::build(a, b, &Normalizer::new())
    }

    #[test]
    fn exact_name_fires_only_on_equality() {
        let (a, b) = fixture();
        let c = ctx(&a, &b);
        let loc_a = a.find_by_name("event_loc").unwrap();
        let loc_b = b.find_by_name("EventLocation").unwrap();
        // event_loc expands loc→location; EventLocation tokenizes to the
        // same normalized pair → exact hit.
        let v = ExactNameVoter.vote(&c, loc_a, loc_b);
        assert!(v.value() > 0.5, "{v}");
        let date_a = a.find_by_name("DATE_BEGIN_156").unwrap();
        let v2 = ExactNameVoter.vote(&c, date_a, loc_b);
        assert!(v2.value() < 0.0);
    }

    #[test]
    fn token_voter_scores_partial_overlap_between_extremes() {
        let (a, b) = fixture();
        let c = ctx(&a, &b);
        let date_a = a.find_by_name("DATE_BEGIN_156").unwrap();
        let date_b = b.find_by_name("DATETIME_FIRST_INFO").unwrap();
        let loc_b = b.find_by_name("EventLocation").unwrap();
        let related = TokenVoter.vote(&c, date_a, date_b);
        let unrelated = TokenVoter.vote(&c, date_a, loc_b);
        assert!(
            related.value() > unrelated.value(),
            "related {related} vs unrelated {unrelated}"
        );
    }

    #[test]
    fn doc_voter_uses_documentation_and_needs_it() {
        let (a, b) = fixture();
        let c = ctx(&a, &b);
        let date_a = a.find_by_name("DATE_BEGIN_156").unwrap();
        let date_b = b.find_by_name("DATETIME_FIRST_INFO").unwrap();
        let v = DocVoter.vote(&c, date_a, date_b);
        assert!(v.value() > 0.0, "shared doc vocabulary: {v}");
        // An unrelated documented pair must score below the related one.
        let member_b = b.find_by_name("MemberName").unwrap();
        let unrelated = DocVoter.vote(&c, date_a, member_b);
        assert!(unrelated.value() < v.value());
    }

    #[test]
    fn type_voter_vetoes_structural_vs_leaf() {
        let (a, b) = fixture();
        let c = ctx(&a, &b);
        let table = a.find_by_name("All_Event_Vitals").unwrap();
        let leaf = b.find_by_name("DATETIME_FIRST_INFO").unwrap();
        assert!(TypeVoter.vote(&c, table, leaf).value() < -0.3);
        let date_a = a.find_by_name("DATE_BEGIN_156").unwrap();
        assert!(TypeVoter.vote(&c, date_a, leaf).value() > 0.0);
    }

    #[test]
    fn path_voter_rewards_matching_containers() {
        let (a, b) = fixture();
        let c = ctx(&a, &b);
        let date_a = a.find_by_name("DATE_BEGIN_156").unwrap();
        let date_b = b.find_by_name("DATETIME_FIRST_INFO").unwrap();
        let member_b = b.find_by_name("MemberName").unwrap();
        let same_ctx = PathVoter.vote(&c, date_a, date_b);
        let diff_ctx = PathVoter.vote(&c, date_a, member_b);
        assert!(same_ctx.value() > diff_ctx.value());
        // Roots have no parents → neutral.
        let t = a.find_by_name("COI").unwrap();
        let e = b.find_by_name("Event").unwrap();
        assert!(PathVoter.vote(&c, t, e).is_neutral());
    }

    #[test]
    fn structure_voter_compares_children_vocabulary() {
        let (a, b) = fixture();
        let c = ctx(&a, &b);
        let ev_a = a.find_by_name("All_Event_Vitals").unwrap();
        let ev_b = b.find_by_name("Event").unwrap();
        let coi_b = b.find_by_name("CommunityOfInterest").unwrap();
        let good = StructureVoter.vote(&c, ev_a, ev_b);
        let bad = StructureVoter.vote(&c, ev_a, coi_b);
        assert!(good.value() > bad.value(), "good {good} bad {bad}");
        // Leaves have no children → neutral.
        let leaf = a.find_by_name("member").unwrap();
        assert!(StructureVoter.vote(&c, leaf, ev_b).is_neutral());
    }

    #[test]
    fn role_voter_penalizes_container_leaf() {
        let (a, b) = fixture();
        let c = ctx(&a, &b);
        let table = a.find_by_name("COI").unwrap();
        let leaf = b.find_by_name("MemberName").unwrap();
        assert!(RoleVoter.vote(&c, table, leaf).value() < 0.0);
        let ct = b.find_by_name("CommunityOfInterest").unwrap();
        assert!(RoleVoter.vote(&c, table, ct).is_neutral());
    }

    #[test]
    fn acronym_voter_fires_on_coi() {
        let (a, b) = fixture();
        let c = ctx(&a, &b);
        let coi = a.find_by_name("COI").unwrap();
        let full = b.find_by_name("CommunityOfInterest").unwrap();
        let v = AcronymVoter.vote(&c, coi, full);
        assert!(v.value() > 0.5, "{v}");
        let ev = b.find_by_name("Event").unwrap();
        assert!(AcronymVoter.vote(&c, coi, ev).is_neutral());
    }

    #[test]
    fn edit_distance_handles_misspellings() {
        let mut a = Schema::new(SchemaId(1), "a", SchemaFormat::Generic);
        a.add_root("organisation_name", ElementKind::Group, DataType::text());
        let mut b = Schema::new(SchemaId(2), "b", SchemaFormat::Generic);
        b.add_root("organization_name", ElementKind::Group, DataType::text());
        b.add_root("weapon_code", ElementKind::Group, DataType::text());
        let c = ctx(&a, &b);
        let s = a.find_by_name("organisation_name").unwrap();
        let close = b.find_by_name("organization_name").unwrap();
        let far = b.find_by_name("weapon_code").unwrap();
        let v_close = EditDistanceVoter.vote(&c, s, close);
        let v_far = EditDistanceVoter.vote(&c, s, far);
        assert!(v_close.value() > 0.5, "{v_close}");
        assert!(v_close.value() > v_far.value());
    }

    #[test]
    fn all_default_voters_bounded() {
        let (a, b) = fixture();
        let c = ctx(&a, &b);
        for voter in default_voters() {
            for s in a.ids() {
                for t in b.ids() {
                    let v = voter.vote(&c, s, t);
                    assert!(
                        v.value() > -1.0 && v.value() < 1.0,
                        "{} out of range: {v}",
                        voter.name()
                    );
                }
            }
        }
    }

    #[test]
    fn voter_names_unique() {
        let names: Vec<&str> = default_voters().iter().map(|v| v.name()).collect();
        let set: std::collections::HashSet<&&str> = names.iter().collect();
        assert_eq!(names.len(), set.len());
    }
}

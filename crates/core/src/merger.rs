//! Vote mergers.
//!
//! The paper (§3.2): *"A vote merger combines the confidence scores into a
//! single match score … based on how confident each match voter is regarding
//! a given correspondence."* [`MergeStrategy::HarmonyWeighted`] implements
//! that commitment-weighted combination; the alternatives reproduce the
//! "conventional" combiners (COMA-style weighted linear, average, max) for
//! the ablation experiment (F5 in DESIGN.md).

use crate::confidence::Confidence;
use serde::{Deserialize, Serialize};

/// How per-voter confidences are combined into one match score.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum MergeStrategy {
    /// Harmony's scheme: a weighted mean where each vote's weight is its own
    /// commitment |c|. Confident voters (much evidence, decisive ratio)
    /// dominate; neutral voters are ignored entirely.
    #[default]
    HarmonyWeighted,
    /// Plain arithmetic mean of all votes (neutral votes dilute).
    Average,
    /// The single most positive vote wins (COMA's `max` combiner).
    Max,
    /// Fixed per-voter weights, position-aligned with the voter panel
    /// (COMA-style weighted linear combination). Missing weights default to 1.
    Linear(Vec<f64>),
}

impl MergeStrategy {
    /// Merge one pair's votes into a single confidence.
    ///
    /// `votes[i]` must correspond to the i-th voter of the panel (relevant
    /// for [`MergeStrategy::Linear`]). Empty input merges to neutral.
    pub fn merge(&self, votes: &[Confidence]) -> Confidence {
        if votes.is_empty() {
            return Confidence::NEUTRAL;
        }
        match self {
            MergeStrategy::HarmonyWeighted => {
                let mut num = 0.0;
                let mut den = 0.0;
                for v in votes {
                    let w = v.commitment();
                    num += w * v.value();
                    den += w;
                }
                if den == 0.0 {
                    Confidence::NEUTRAL
                } else {
                    Confidence::new(num / den)
                }
            }
            MergeStrategy::Average => {
                let sum: f64 = votes.iter().map(|v| v.value()).sum();
                Confidence::new(sum / votes.len() as f64)
            }
            MergeStrategy::Max => Confidence::new(
                votes
                    .iter()
                    .map(|v| v.value())
                    .fold(f64::NEG_INFINITY, f64::max),
            ),
            MergeStrategy::Linear(weights) => {
                let mut num = 0.0;
                let mut den = 0.0;
                for (i, v) in votes.iter().enumerate() {
                    let w = weights.get(i).copied().unwrap_or(1.0).max(0.0);
                    num += w * v.value();
                    den += w;
                }
                if den == 0.0 {
                    Confidence::NEUTRAL
                } else {
                    Confidence::new(num / den)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(v: f64) -> Confidence {
        Confidence::new(v)
    }

    #[test]
    fn empty_votes_merge_to_neutral() {
        for s in [
            MergeStrategy::HarmonyWeighted,
            MergeStrategy::Average,
            MergeStrategy::Max,
            MergeStrategy::Linear(vec![]),
        ] {
            assert!(s.merge(&[]).is_neutral(), "{s:?}");
        }
    }

    #[test]
    fn harmony_ignores_neutral_votes() {
        // One confident positive + many neutrals: the neutrals must not
        // dilute (this is the whole point vs. Average).
        let votes = [c(0.8), c(0.0), c(0.0), c(0.0), c(0.0)];
        let harmony = MergeStrategy::HarmonyWeighted.merge(&votes);
        let average = MergeStrategy::Average.merge(&votes);
        assert!((harmony.value() - 0.8).abs() < 1e-9);
        assert!((average.value() - 0.16).abs() < 1e-9);
    }

    #[test]
    fn harmony_confident_voter_dominates_wobbly_one() {
        let votes = [c(0.9), c(-0.1)];
        let merged = MergeStrategy::HarmonyWeighted.merge(&votes);
        // (0.9·0.9 + 0.1·(−0.1)) / (0.9+0.1) = 0.80
        assert!((merged.value() - 0.80).abs() < 1e-9);
    }

    #[test]
    fn all_neutral_merges_neutral() {
        let votes = [c(0.0), c(0.0)];
        assert!(MergeStrategy::HarmonyWeighted.merge(&votes).is_neutral());
    }

    #[test]
    fn max_takes_most_positive() {
        let votes = [c(-0.9), c(0.2), c(0.7)];
        assert!((MergeStrategy::Max.merge(&votes).value() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn linear_respects_weights() {
        let votes = [c(1.0 - 1e-9), c(-1.0 + 1e-9)];
        let s = MergeStrategy::Linear(vec![3.0, 1.0]);
        let merged = s.merge(&votes);
        assert!((merged.value() - 0.5).abs() < 1e-6);
        // Missing weights default to 1 → plain average.
        let t = MergeStrategy::Linear(vec![]);
        assert!((t.merge(&votes).value()).abs() < 1e-6);
    }

    #[test]
    fn linear_negative_weights_clamped() {
        let votes = [c(0.5), c(-0.5)];
        let s = MergeStrategy::Linear(vec![-5.0, 1.0]);
        assert!((s.merge(&votes).value() + 0.5).abs() < 1e-9);
    }

    #[test]
    fn merged_scores_stay_in_open_interval() {
        let votes = [c(0.999), c(0.999), c(0.999)];
        for s in [
            MergeStrategy::HarmonyWeighted,
            MergeStrategy::Average,
            MergeStrategy::Max,
            MergeStrategy::Linear(vec![1.0, 1.0, 1.0]),
        ] {
            let m = s.merge(&votes);
            assert!(m.value() > -1.0 && m.value() < 1.0);
        }
    }

    #[test]
    fn negative_evidence_pulls_harmony_down() {
        let votes = [c(0.4), c(-0.8)];
        let merged = MergeStrategy::HarmonyWeighted.merge(&votes);
        assert!(merged.value() < 0.0, "{merged}");
    }
}
